#!/usr/bin/env python3
"""Scenario: evaluating a custom workload on a custom machine.

Shows the extension points a downstream user needs: define a new
:class:`WorkloadProfile` (here, a producer/consumer pipeline with a hot
shared queue), build a custom :class:`SystemConfig`, and drive the
simulator directly with :func:`generate_streams` / :func:`run_trace`.

Usage::

    python examples/custom_workload.py
"""

from repro import (
    InLLCSpec,
    SparseSpec,
    System,
    SystemConfig,
    WorkloadProfile,
    generate_streams,
    run_trace,
)

PIPELINE = WorkloadProfile(
    name="pipeline",
    description="producer/consumer stages around a hot shared queue",
    private_fraction=0.45,
    shared_fraction=0.20,  # the queue slots, bounced between stages
    hot_fraction=0.20,  # queue head/tail control blocks: very high STRA
    code_fraction=0.10,
    stream_fraction=0.05,
    pool_factor=0.02,
    hot_blocks_per_core=8.0,
    write_fraction_shared=0.45,  # queue slots are write-heavy
    sharer_bin_weights=(0.9, 0.1, 0.0, 0.0),  # stage-to-stage pairs
    cpi_gap=20,
)


def simulate(scheme, tag: str) -> None:
    config = SystemConfig(num_cores=16, l1_kb=8, l2_kb=32, scheme=scheme)
    streams = generate_streams(PIPELINE, config, total_accesses=20_000, seed=2)
    system = System(config)
    stats = run_trace(system, streams)
    system.check_invariants()
    print(
        f"{tag:20} cycles={stats.cycles:9d} "
        f"miss={stats.llc_miss_rate:6.1%} "
        f"3hop={stats.three_hop / max(1, stats.llc_transactions):6.1%} "
        f"invalidations={stats.invalidations}"
    )


def main() -> None:
    print(f"workload: {PIPELINE.name} - {PIPELINE.description}")
    from repro import RunScale

    scale = RunScale(num_cores=16, spill_window=96)
    simulate(SparseSpec(ratio=2.0), "sparse 2x")
    simulate(SparseSpec(ratio=1 / 16), "sparse 1/16x")
    simulate(InLLCSpec(), "in-LLC")
    simulate(scale.tiny_spec(1 / 64, "gnru", spill=True), "tiny 1/64x +spill")


if __name__ == "__main__":
    main()
