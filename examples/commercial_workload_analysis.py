#!/usr/bin/env python3
"""Scenario: why commercial server workloads stress in-LLC tracking.

The paper's SPECWeb/TPC traces share large code and data footprints
across all cores, so plain in-LLC tracking (no sparse directory at all)
lengthens a large fraction of their LLC accesses to three hops — with
instruction fetches dominating. This script reproduces that analysis for
a commercial and a scientific workload, then shows how the dynamic spill
policy recovers the loss at a 1/256x tiny directory.

Usage::

    python examples/commercial_workload_analysis.py
"""

from repro import InLLCSpec, RunScale, SparseSpec, run_app
from repro.interconnect.traffic import MessageClass

APPS = ["SPECWeb-B", "314.mgrid"]


def main() -> None:
    scale = RunScale(num_cores=16, total_accesses=24_000, spill_window=96)
    for app in APPS:
        base = run_app(app, SparseSpec(ratio=2.0), scale)
        inllc = run_app(app, InLLCSpec(), scale)
        tiny = run_app(app, scale.tiny_spec(1 / 256, "gnru", spill=True), scale)

        stats = inllc.stats
        total = max(1, stats.llc_transactions)
        print(f"=== {app} ===")
        print(f"  in-LLC tracking vs sparse 2x: {inllc.normalized_cycles(base):.3f}x time")
        print(
            f"  lengthened LLC accesses: {stats.lengthened / total:6.1%} "
            f"(code {stats.lengthened_code / total:.1%}, "
            f"data {stats.lengthened_data / total:.1%})"
        )
        base_coh = base.stats.traffic.bytes_for(MessageClass.COHERENCE)
        inllc_coh = stats.traffic.bytes_for(MessageClass.COHERENCE)
        if base_coh:
            print(f"  coherence traffic vs baseline: {inllc_coh / base_coh:.2f}x")
        tstats = tiny.stats
        print(
            f"  tiny 1/256x +DynSpill: {tiny.normalized_cycles(base):.3f}x time, "
            f"lengthened down to {tstats.lengthened_fraction:.1%}, "
            f"{tstats.spills} spills saving {tstats.spill_saved} accesses, "
            f"miss rate {base.stats.llc_miss_rate:.1%} -> {tstats.llc_miss_rate:.1%}"
        )
        print()


if __name__ == "__main__":
    main()
