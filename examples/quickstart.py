#!/usr/bin/env python3
"""Quickstart: compare a tiny directory against the 2x sparse baseline.

Runs one application (barnes, the paper's most sharing-intensive
workload) under three coherence-tracking schemes and prints the headline
numbers: execution time, lengthened (3-hop shared read) accesses, LLC
miss rate, and coherence storage.

Usage::

    python examples/quickstart.py [app]
"""

import sys

from repro import InLLCSpec, RunScale, SparseSpec, run_app
from repro.energy.model import directory_kilobytes
from repro.sim.config import SystemConfig


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "barnes"
    scale = RunScale(num_cores=16, total_accesses=24_000, spill_window=96)

    schemes = [
        ("sparse 2x (baseline)", SparseSpec(ratio=2.0)),
        ("in-LLC tracking", InLLCSpec()),
        ("tiny 1/64x +gNRU+spill", scale.tiny_spec(1 / 64, "gnru", spill=True)),
    ]

    print(f"application: {app} ({scale.num_cores} cores)")
    print(f"{'scheme':24} {'norm.time':>9} {'lengthened':>10} {'miss rate':>9}")
    baseline = None
    for name, spec in schemes:
        result = run_app(app, spec, scale)
        if baseline is None:
            baseline = result
        stats = result.stats
        print(
            f"{name:24} {result.normalized_cycles(baseline):9.3f} "
            f"{stats.lengthened_fraction:9.1%} {stats.llc_miss_rate:9.1%}"
        )

    paper = SystemConfig.paper()
    print()
    print("coherence storage at the paper's 128-core scale:")
    print(f"  sparse 2x directory : {directory_kilobytes(paper, 2.0):8.1f} KB")
    print(f"  tiny 1/64x directory: {directory_kilobytes(paper, 1 / 64, tiny=True):8.1f} KB")


if __name__ == "__main__":
    main()
