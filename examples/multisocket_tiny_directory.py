#!/usr/bin/env python3
"""Scenario: the paper's §VI future direction — inter-socket tracking.

The paper closes by proposing the tiny directory for the inter-socket
coherence directory of multi-socket servers. This script models an
8-socket machine at socket granularity (see
``repro/multisocket/system.py`` for the level-shift argument) and
compares a conventional 2x socket-grain directory against undersized
sparse directories and tiny directories with dynamic spilling.

Usage::

    python examples/multisocket_tiny_directory.py
"""

from repro.analysis.runner import RunScale
from repro.multisocket.experiment import intersocket_directory_study


def main() -> None:
    scale = RunScale(num_cores=8, total_accesses=12_000, spill_window=64)
    figure = intersocket_directory_study(
        scale, apps=["barnes", "SPECWeb-B", "TPC-C", "compress"], num_sockets=8
    )
    print(figure.render())
    print()
    print(
        "At equal size the tiny directory tracks the hot inter-socket\n"
        "shared set and spills the rest into the home agents, holding\n"
        "close to the 2x directory where the plain sparse directory of\n"
        "the same size already degrades - the paper's closing claim."
    )


if __name__ == "__main__":
    main()
