#!/usr/bin/env python3
"""Scenario: sizing the coherence directory for a many-core part.

An architect wants to know how small the coherence-tracking budget can
get before performance falls off a cliff — the paper's Fig. 1 question —
and how the tiny directory changes the answer. This script sweeps the
baseline sparse directory from 2x down to 1/32x and compares against
tiny directories of 1/32x and 1/256x, for a scientific and a commercial
workload.

Usage::

    python examples/directory_sizing_study.py
"""

from repro import RunScale, SparseSpec, run_app
from repro.analysis.tables import format_table

APPS = ["barnes", "TPC-C"]
SPARSE_SIZES = [2.0, 1 / 4, 1 / 8, 1 / 16, 1 / 32]
TINY_SIZES = [1 / 32, 1 / 256]


def main() -> None:
    scale = RunScale(num_cores=16, total_accesses=24_000, spill_window=96)
    columns = (
        [f"sparse {r if r >= 1 else '1/%d' % round(1 / r)}x" for r in SPARSE_SIZES]
        + [f"tiny 1/{round(1 / r)}x" for r in TINY_SIZES]
    )
    values = {}
    for app in APPS:
        row = []
        baseline = None
        for ratio in SPARSE_SIZES:
            result = run_app(app, SparseSpec(ratio=ratio), scale)
            if baseline is None:
                baseline = result
            row.append(result.normalized_cycles(baseline))
        for ratio in TINY_SIZES:
            spec = scale.tiny_spec(ratio, "gnru", spill=True)
            row.append(run_app(app, spec, scale).normalized_cycles(baseline))
        values[app] = row

    print(
        format_table(
            "Directory sizing study (execution time normalized to sparse 2x)",
            APPS,
            columns,
            values,
        )
    )
    print()
    print(
        "The baseline sparse directory degrades steadily as it shrinks;\n"
        "the tiny directory holds within a few percent of the 2x baseline\n"
        "even at 1/256x of the tracking capacity - the paper's headline."
    )


if __name__ == "__main__":
    main()
