#!/usr/bin/env python3
"""Render a JSONL trace as a per-address transaction timeline.

Input is the file ``--trace`` / ``REPRO_TRACE=jsonl`` produces (one
:class:`repro.telemetry.TraceEvent` JSON object per line). Output is a
kind summary followed by a per-address timeline: the busiest addresses
(or those named with ``--addr``), each with its events in simulated
order, one line per event::

    $ python tools/trace_report.py trace.jsonl --limit 2
    trace.jsonl: 455648 events, 15 kinds, 4083 addresses
    ...
    addr 0x400000000 (1203 events)
      @24      core 0  txn:start    op=READ
      @88      core 0  txn:finish   latency=64
      ...

Traces merged from parallel workers interleave several runs' sequence
numbers; within one address the report orders by ``(cycle, seq)``,
which reconstructs each block's transaction history regardless of which
worker emitted it.

When the trace carries a ``measure:start`` event (the engine emits one
at the warmup boundary, where statistics reset), the header reports the
measurement-start cycle and each timeline gets a divider separating
warmup events from measured ones. Merged multi-run traces may hold
several such events; the divider uses the earliest.

Exit status: 0 on success, 1 when the trace is missing or empty.
"""

from __future__ import annotations

import argparse
import collections
import os
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.telemetry import read_trace  # noqa: E402


def _parse_addr(text: str) -> int:
    return int(text, 0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python tools/trace_report.py",
        description="Summarize a repro JSONL trace as per-address timelines.",
    )
    parser.add_argument("trace", help="JSONL trace file (e.g. trace.jsonl)")
    parser.add_argument(
        "--addr",
        action="append",
        type=_parse_addr,
        metavar="ADDR",
        help="show only this block address (hex or decimal; repeatable)",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=5,
        metavar="N",
        help="addresses shown, busiest first (default: 5; 0 = all)",
    )
    parser.add_argument(
        "--events",
        type=int,
        default=20,
        metavar="N",
        help="events shown per address (default: 20; 0 = all)",
    )
    return parser


def _event_line(event) -> str:
    cycle = f"@{event.cycle}" if event.cycle is not None else "@-"
    core = f"core {event.core}" if event.core is not None else "      "
    data = " ".join(f"{key}={value}" for key, value in event.data.items())
    return f"  {cycle:<9} {core:<7} {event.kind:<15} {data}".rstrip()


def render(events, addrs=None, limit=5, per_addr=20) -> "list[str]":
    """Build the report lines for parsed trace ``events``."""
    kinds = collections.Counter(event.kind for event in events)
    by_addr: "dict[int, list]" = collections.defaultdict(list)
    for event in events:
        if event.addr is not None:
            by_addr[event.addr].append(event)

    lines = [
        f"{len(events)} events, {len(kinds)} kinds, "
        f"{len(by_addr)} addresses"
    ]
    width = max((len(kind) for kind in kinds), default=0)
    for kind, count in kinds.most_common():
        lines.append(f"  {kind:<{width}}  {count}")

    measure_starts = sorted(
        (e for e in events if e.kind == "measure:start"),
        key=lambda e: (e.cycle if e.cycle is not None else -1, e.seq),
    )
    boundary = None
    if measure_starts:
        first = measure_starts[0]
        boundary = first.cycle
        warmup = first.data.get("warmup_accesses")
        note = f" after {warmup} warmup accesses" if warmup is not None else ""
        extra = (
            f" (+{len(measure_starts) - 1} more runs)"
            if len(measure_starts) > 1
            else ""
        )
        lines.append(f"measurement starts @{boundary}{note}{extra}")

    if addrs:
        selected = [(addr, by_addr.get(addr, [])) for addr in addrs]
    else:
        ranked = sorted(
            by_addr.items(), key=lambda item: (-len(item[1]), item[0])
        )
        selected = ranked[:limit] if limit else ranked

    for addr, addr_events in selected:
        lines.append("")
        lines.append(f"addr {addr:#x} ({len(addr_events)} events)")
        addr_events = sorted(
            addr_events,
            key=lambda e: (e.cycle if e.cycle is not None else -1, e.seq),
        )
        shown = addr_events[:per_addr] if per_addr else addr_events
        marked = False
        for event in shown:
            if (
                not marked
                and boundary is not None
                and event.cycle is not None
                and event.cycle >= boundary
            ):
                lines.append(f"  --- measurement starts @{boundary} ---")
                marked = True
            lines.append(_event_line(event))
        hidden = len(addr_events) - len(shown)
        if hidden > 0:
            lines.append(f"  ... {hidden} more")
    return lines


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if not os.path.exists(args.trace):
        print(f"trace_report: no such trace: {args.trace}", file=sys.stderr)
        return 1
    events = read_trace(args.trace)
    if not events:
        print(f"trace_report: {args.trace} holds no events", file=sys.stderr)
        return 1
    lines = render(
        events, addrs=args.addr, limit=args.limit, per_addr=args.events
    )
    print(f"{args.trace}: {lines[0]}")
    for line in lines[1:]:
        print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
