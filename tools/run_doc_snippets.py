#!/usr/bin/env python3
"""Execute every fenced ``python`` snippet in the documentation.

Keeps the prose honest: each ```` ```python ```` block in ``README.md``,
``EXPERIMENTS.md``, and ``docs/*.md`` must be a self-contained program
that runs clean against the current tree (generated ``docs/api/`` pages
are exempt —
their snippets are docstring fragments, not programs). Each block runs
in a fresh namespace, so an example cannot silently lean on state a
previous example happened to leave behind.

Opt a block out by putting ``<!-- doctest: skip -->`` on its own line
directly above the opening fence (illustrative fragments, deliberately
failing examples).

Hermeticity: runs force ``REPRO_SCALE=quick`` and point
``REPRO_CACHE_DIR`` at a throwaway directory, so doc runs are fast and
never touch (or depend on) the developer's real result cache.

Exit status: number of failing blocks, capped at 1.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import sys
import tempfile
import time
import traceback

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

SKIP_MARKER = "<!-- doctest: skip -->"
FENCE = re.compile(r"^```python\s*$")


def extract_blocks(path: pathlib.Path) -> "list[tuple[int, str]]":
    """(first_code_line, code) for each runnable python block in ``path``."""
    lines = path.read_text().splitlines()
    blocks = []
    index = 0
    while index < len(lines):
        if FENCE.match(lines[index]):
            # Look upward past blank lines for a skip marker.
            probe = index - 1
            while probe >= 0 and not lines[probe].strip():
                probe -= 1
            skipped = probe >= 0 and lines[probe].strip() == SKIP_MARKER
            start = index + 1
            end = start
            while end < len(lines) and lines[end].rstrip() != "```":
                end += 1
            if not skipped:
                blocks.append((start + 1, "\n".join(lines[start:end])))
            index = end
        index += 1
    return blocks


def doc_files() -> "list[pathlib.Path]":
    files = [REPO / "README.md", REPO / "EXPERIMENTS.md"]
    files += sorted((REPO / "docs").glob("*.md"))
    return [f for f in files if f.exists()]


def run_block(path: pathlib.Path, lineno: int, code: str) -> "str | None":
    """Run one block; returns the formatted traceback on failure."""
    label = f"{path.relative_to(REPO)}:{lineno}"
    # Fresh namespace per block: every example must stand alone.
    namespace = {"__name__": "__doc_snippet__"}
    try:
        exec(compile(code, label, "exec"), namespace)  # noqa: S102
    except Exception:  # noqa: BLE001 - report and keep checking
        return traceback.format_exc()
    return None


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/run_doc_snippets.py",
        description="Run every fenced python snippet in README.md, EXPERIMENTS.md, and docs/.",
    )
    parser.add_argument(
        "files",
        nargs="*",
        type=pathlib.Path,
        help="markdown files to check (default: README.md, EXPERIMENTS.md, docs/*.md)",
    )
    args = parser.parse_args(argv)

    os.environ["REPRO_SCALE"] = "quick"
    failures = 0
    total = 0
    with tempfile.TemporaryDirectory(prefix="repro-doctest-") as tmp:
        os.environ["REPRO_CACHE_DIR"] = tmp
        for path in args.files or doc_files():
            path = path.resolve()
            for lineno, code in extract_blocks(path):
                total += 1
                started = time.perf_counter()
                error = run_block(path, lineno, code)
                elapsed = time.perf_counter() - started
                label = f"{path.relative_to(REPO)}:{lineno}"
                if error is None:
                    print(f"ok   {label} ({elapsed:.1f}s)")
                else:
                    failures += 1
                    print(f"FAIL {label}")
                    print(error, file=sys.stderr)
    print(f"doc snippets: {total} run, {failures} failed")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
