"""Assemble EXPERIMENTS.md from a benchmark run log.

Reads the text tables printed by ``pytest benchmarks/ --benchmark-only
-s`` and emits EXPERIMENTS.md with per-figure paper-vs-measured
commentary. Run from the repository root::

    python tools/build_experiments_md.py bench_run1.log
"""

import re
import sys

HEADER = """\
# EXPERIMENTS — paper vs. measured

This file records, for every table and figure of the paper's evaluation,
what the paper reports and what this reproduction measures at the default
harness scale (32 cores, 8 KB L1 / 32 KB L2 / 4 MB LLC with paper-exact
capacity ratios, 48K steady-state accesses after an init pass and 40%
warmup — see DESIGN.md §1 and README "Scaling methodology").

**How to read the comparison.** The paper's absolute numbers come from a
cycle-accurate 128-core out-of-order simulator running real application
traces; ours come from a scaled trace-driven timing model running
calibrated synthetic workloads on blocking cores. Absolute magnitudes
therefore differ — blocking cores overweight every extra memory
transaction, so directory-pressure slowdowns (Figs. 1, 3, 22) come out
larger than the paper's, and percentages measured against LLC-access
denominators shift with the synthetic access mix. The reproduction
targets are the *shapes*: orderings between schemes, monotone trends
across sizes, which applications are outliers, where crossovers sit, and
the headline claim that a 1/32x-1/256x tiny directory with
DSTRA+gNRU+DynSpill lands within a few percent of the 2x sparse
baseline. Per-figure verdicts below.

Regenerate everything with `pytest benchmarks/ --benchmark-only -s`
(cached in `.repro_cache/`) or one figure with `python -m repro fig13`.

Table I (system configuration) is encoded as `SystemConfig.paper()` and
validated by `tests/test_config.py`; Table II (applications) as
`repro.workloads.profiles`, validated by `tests/test_workloads.py`.

**Benchmarks quickstart.** Beyond the figures, the simulator's own
speed is benchmarked by `benchmarks/bench_micro_hotpath.py` (fast lane
vs. reference lane, trace cache vs. cold generation) and gated in CI
against `benchmarks/baselines/` via `tools/compare_bench.py` — see
`docs/performance.md`. The two engine lanes are pinned bit-identical:

```python
from repro import SparseSpec, System, SystemConfig, generate_streams, run_trace

config = SystemConfig(num_cores=4, scheme=SparseSpec())
streams = generate_streams("bodytrack", config, 2000, seed=7)
reference = run_trace(System(config), streams, fast_path=False)
fast = run_trace(System(config), streams, fast_path=True)
assert fast.dump() == reference.dump()
```

---
"""

#: Commentary per table caption prefix, in presentation order.
COMMENTARY = [
    ("Fig. 1:", """\
**Paper:** 1/4x, 1/8x, 1/16x sparse directories cost +3% / +11% / +28%
on average, with ocean_cp improving as the directory shrinks.
**Measured:** +24% / +31% / +36% — same monotone ordering and the same
outlier structure (314.mgrid *improves* with smaller directories, the
ocean_cp effect: losing tracking entries converts performance-critical
3-hop accesses into 2-hop refetches). Magnitudes are larger because the
blocking-core model cannot hide the refetches that directory evictions
cause, and the synthetic private working sets keep L2s fully live (real
L2s hold a large dead fraction whose invalidation is free)."""),
    ("Fig. 2:", """\
**Paper:** on average 21% of allocated LLC blocks experience 2+ distinct
sharers; SPECWeb/TPC have much larger shared footprints; bins shrink
with sharer count.
**Measured:** 11% average with the same structure — barnes highest
(28%), commercial applications 13-15%, streaming scientific codes lowest
(mgrid 1%), and monotonically shrinking bins."""),
    ("Fig. 3: shared-only set-associative", """\
**Paper:** even tracking *only* shared blocks, 1/16x..1/128x directories
lose 1% / 4% / 13% / 28%.
**Measured:** 2% / 4% / 6% / 8% — matches at 1/16x-1/32x; shallower at
the small end because the synthetic shared working sets, sized to the
scaled LLC, stress a 1/128x directory less than the commercial traces'
footprints do. The conclusion the paper draws (you cannot reach 1/32x
and below by evicting private blocks alone) is visible: barnes already
loses 12-27%."""),
    ("Fig. 3: shared-only skew-associative", """\
**Paper:** the 4-way skew-associative variant trims the set-associative
losses (0.5% / 3% / 12% at 1/16x..1/64x).
**Measured:** consistently slightly better than the set-associative
variant at every size, same ordering."""),
    ("Fig. 4:", """\
**Paper:** the tag-extended (storage-heavy) in-LLC variant matches the
2x directory; the data-bits-borrowed variant loses 11% on average, >10%
for several applications.
**Measured:** 1.001 vs 1.049 average — the tag-extended variant is
indistinguishable from baseline and every application pays for borrowing
data bits, barnes most (+9%). Roughly half the paper's magnitude, again
the blocking-core scaling."""),
    ("Fig. 5:", """\
**Paper:** in-LLC tracking adds ~1% processor and writeback traffic and
>5% coherence traffic (forwarded shared reads).
**Measured:** processor +0%, writeback +7% (the borrowed-bits partial
messages), coherence 2.9x. The coherence *class* grows much more here
because the baseline's absolute coherence traffic is small in the
synthetic mix; total interconnect bytes grow 7%, in line with the
paper's direction."""),
    ("Fig. 6:", """\
**Paper:** 30% of LLC accesses suffer a lengthened (3-hop) critical
path on average; code accesses dominate for the commercial workloads.
**Measured:** 36% average; code exceeds data for SPECWeb/SPECJBB/TPC
rows; mgrid/art/ocean negligible — the application ranking the tiny
directory's motivation rests on."""),
    ("Fig. 7:", """\
**Paper:** only 8% of allocated LLC blocks source all those lengthened
accesses on average; barnes is the outlier at 78%.
**Measured:** 8.0% average (coincidentally exact); barnes is the
largest at 24%. The *concentration* argument — a tiny structure can
cover the offenders — holds."""),
    ("Fig. 8:", """\
**Paper:** among non-zero-STRA blocks, the high categories are a small
minority (C6+C7 = 12% of blocks).
**Measured:** same left-heavy block distribution (C5+ = ~2%). Our
residencies see fewer LLC reads per block, so the extreme categories
are rarer than in multi-billion-instruction traces."""),
    ("Fig. 9:", """\
**Paper:** the offending *accesses* concentrate in the high categories
(C6+C7 = 54% of accesses vs 12% of blocks).
**Measured:** the access distribution is clearly right-shifted versus
the block distribution (C4+ = 30% of accesses vs 6.5% of blocks) — the
skew that makes STRA-based selection work, at compressed category
range."""),
    ("Fig. 10:", """\
**Paper:** at 1/32x — DSTRA 1.01, +gNRU 1.01, +DynSpill 1.005 vs 2x.
**Measured:** 1.028 / 1.027 / 1.008. Within a percent of the paper's
gaps; spilling recovers most of the residual."""),
    ("Fig. 11:", """\
**Paper:** at 1/64x — 1.03 / 1.02 / 1.01.
**Measured:** 1.038 / 1.039 / 1.011 — essentially the paper's numbers."""),
    ("Fig. 12:", """\
**Paper:** at 1/128x — 1.06 / 1.05 / 1.01.
**Measured:** 1.043 / 1.043 / 1.013 — the paper's +DynSpill value to
within a fraction of a percent."""),
    ("Fig. 13:", """\
**Paper:** at 1/256x — 1.08 / 1.06 / 1.01; the headline: a 23.75 KB
structure within a percent of an 8 MB one.
**Measured:** 1.045 / 1.045 / 1.016 — the full ordering (DSTRA ~= gNRU
>> +spill ~= baseline) and the headline robustness reproduce. Our
DSTRA-vs-gNRU delta is smaller than the paper's because short traces
exercise few generations and eviction notices free dead entries quickly
at this scale (see Figs. 16-17)."""),
    ("Fig. 14:", """\
**Paper:** residual lengthened accesses at 1/32x: 3% / 2% / <1%.
**Measured:** 15% / 15% / 3.7% — the same collapse pattern: the
allocation policies leave a residue that DynSpill removes. Our
no-spill residue is larger than the paper's because the synthetic hot
sets are big relative to the scaled tiny directory."""),
    ("Fig. 15:", """\
**Paper:** at 1/256x: 23% / 20% / 4% — spilling becomes essential.
**Measured:** 30% / 30% / 6.8% — the same cliff: without spilling most
of the in-LLC lengthening remains; DynSpill removes the bulk of it."""),
    ("Fig. 16:", """\
**Paper:** gNRU yields 3% / 12% / 23% / 39% more tiny-directory hits
than DSTRA as the size shrinks 1/32x -> 1/256x.
**Measured:** hit counts within 1% of DSTRA at every size — the gNRU
hit advantage does not materialize at this scale, because eviction
notices free dead entries quickly in small private caches, leaving few
stale high-category entries for gNRU to reclaim (the paper's multi-
billion-instruction runs with 2048-block L2s hold dead entries far
longer). The allocation effect (Fig. 17) does appear."""),
    ("Fig. 17:", """\
**Paper:** gNRU admits vastly more allocations at small sizes (74x at
1/256x) by evicting useless entries.
**Measured:** gNRU admits 1.19x-1.28x the allocations of DSTRA, same
direction, strongly compressed magnitude for the Fig. 16 reason."""),
    ("Fig. 18:", """\
**Paper:** entries still earn many hits per allocation under gNRU
(17.5-59.5 across sizes) — the tracked subset is genuinely hot.
**Measured:** 3.3-5.9 hits per allocation, *decreasing* with size
(smaller directories keep only the hottest entries, so their per-entry
hit counts are higher); the paper's increasing trend reflects allocation
volumes our shorter runs do not reach. Entries still earn multiple hits
each — tracking remains profitable at every size."""),
    ("Fig. 19:", """\
**Paper:** spilled entries save 2% / 5% / 11% / 16% of LLC accesses
from lengthening as the tiny directory shrinks 1/32x -> 1/256x.
**Measured:** 23.7% / 21.5% / 18.2% / 13.6% — the same inverse-size
staircase (more spill benefit as the directory shrinks), with
barnes/SPECWeb/TPC among the biggest beneficiaries as in the paper; our
levels are higher because more of the hot set misses the tiny directory
at scaled sizes."""),
    ("Fig. 20:", """\
**Paper:** DynSpill's LLC miss-rate increase stays under 0.5pp on
average, max 2.1pp (316.applu at 1/256x) — within the delta guarantee.
**Measured:** averages of +0.04pp to +0.07pp across sizes, maxima
around 1pp, never approaching delta_A = 25pp. The guarantee mechanism
(sampled no-spill sets + windowed threshold adaptation) is doing its
job."""),
    ("Fig. 21:", """\
**Paper:** versus the 1/256x tiny directory, the 2x baseline burns ~19%
more total (leakage-dominated) energy; baseline dynamic energy is lower
(the tiny scheme pays extra LLC data writes for state updates); shrinking
the baseline directory first saves energy then loses it to execution
time.
**Measured:** the same picture — tiny has the lowest total, the 2x
baseline pays ~8% more total despite cheaper dynamic energy, the
baseline curve bottoms out at 1x-1/2x and rises toward 1/16x, and
execution cycles rise monotonically as the baseline shrinks. Structure
capacities are evaluated at the paper's 128-core geometry (DESIGN.md)."""),
    ("Fig. 22:", """\
**Paper:** MgD loses 0.1% / 8% / 29% / 63% at 1/8x..1/64x; Stash 1/32x
loses 41%, broadcast traffic being the bottleneck. Both are far from the
tiny directory at equal size.
**Measured:** MgD 1.33 / 1.36 / 1.38 / 1.44 and Stash 1.07 — both far
above the tiny directory's 1.01-1.03 at the same sizes, the paper's
comparison conclusion. Deviations: our MgD starts degraded already at
1/8x because the synthetic workloads' shared (block-grain) footprint is
large relative to the scaled directory, muting MgD's private-region
savings; our Stash penalty is milder because a scaled 32-core broadcast
is 4x cheaper than the 128-core one."""),
    ("§V-A halved", """\
**Paper:** with the whole hierarchy halved (16 MB LLC), the 1/128x tiny
directory is +7% (gNRU) and +1% (+DynSpill) vs 2x.
**Measured:** 1.041 (gNRU) and 1.019 (+DynSpill) — the same relation:
spilling recovers most of the gNRU gap when capacity is halved and
spilling pressure rises."""),
    ("§VI multi-socket", """\
**Paper:** §VI proposes the tiny directory for inter-socket tracking as
future work (no evaluation).
**Measured (new experiment):** modelling sockets as coherence agents,
tiny directories with spilling stay within 1% of the 2x socket
directory (1.002 at 1/32x, 1.008 at 1/128x) while sparse directories of
the same sizes lose 29-40% — quantifying the paper's closing claim."""),
    ("Ablation A1:", """\
**New ablation (DESIGN.md §5):** the adaptive generation length is
statistically indistinguishable from fixed 16K/256K-cycle generations
at this scale — the gNRU mechanism is robust to its one magic number."""),
    ("Ablation A2:", """\
**New ablation:** adaptive delta classes A-D vs fixed delta_B: nearly
identical performance and miss-rate impact here; the adaptive classes
matter in phases with simultaneously high miss rate and high STRA ratio
(rare in steady-state synthetic runs)."""),
    ("Ablation A3:", """\
**New ablation:** 4-, 6-, and 8-bit STRA counters perform identically
at this scale, supporting the paper's choice of cheap 6-bit counters."""),
]


def extract_tables(log_text: str) -> "dict[str, str]":
    """Map caption -> full table text, from the benchmark log."""
    tables = {}
    lines = log_text.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        if re.match(r"^(Fig\. \d+|Ablation A\d|§V)", line):
            caption = line
            block = [line]
            i += 1
            while i < len(lines) and (
                "|" in lines[i] or lines[i].startswith("-") or
                lines[i].startswith("  note")
            ):
                block.append(lines[i])
                i += 1
            tables[caption] = "\n".join(block)
        else:
            i += 1
    return tables


def main() -> int:
    log_path = sys.argv[1] if len(sys.argv) > 1 else "bench_run1.log"
    with open(log_path) as handle:
        tables = extract_tables(handle.read())
    parts = [HEADER]
    used = set()
    for prefix, commentary in COMMENTARY:
        matches = [cap for cap in tables if cap.startswith(prefix) and cap not in used]
        if not matches:
            parts.append(f"## {prefix}\n\n*(table missing from {log_path})*\n")
            continue
        caption = matches[0]
        used.add(caption)
        parts.append(f"## {caption.split(':')[0]}\n")
        parts.append(commentary + "\n")
        parts.append("```\n" + tables[caption] + "\n```\n")
    with open("EXPERIMENTS.md", "w") as handle:
        handle.write("\n".join(parts))
    print(f"EXPERIMENTS.md written with {len(used)} tables")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
