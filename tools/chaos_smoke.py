#!/usr/bin/env python3
"""CI chaos smoke: recovery under faults, worker kills, resource chaos.

Five phases, all small enough for a CI job:

1. **Recovery smoke** — for every scheme family, run one application
   with a directory corruption injected mid-trace
   (``REPRO_FAULTS=corrupt_directory_entry@...``) under
   ``REPRO_RECOVERY=repair`` and assert the run completes, performed at
   least one repair, published the recovery stats section, and passes a
   full post-run invariant audit.
2. **Worker-kill smoke** — run a small supervised sweep in which one
   worker ``os._exit``\\ s mid-point exactly once (marker file), and
   assert the sweep still completes every point, respawned the pool,
   and the injected-fault repairs show up in the swept results'
   recovery sections.
3. **RSS-budget smoke** — arm a ballast ``REPRO_BUDGET_RSS`` far below
   the interpreter's resident set and assert the watchdog converts the
   doomed run into a structured ``BudgetExceeded`` keep-going failure
   (never a crash), and that disarming the budget restores clean runs.
4. **Disk-quota smoke** — run a sweep under a tiny ``REPRO_DISK_QUOTA``
   and assert it completes degraded: entries pruned/skipped to fit the
   quota, no stray ``*.tmp`` litter, results still correct.
5. **SIGTERM smoke** — SIGTERM a child mid-sweep and assert the
   distinct resumable exit code, a loadable flushed journal, and that
   ``resume=True`` completes the sweep without recomputing journaled
   points.

Run from the repo root::

    PYTHONPATH=src python tools/chaos_smoke.py
"""

from __future__ import annotations

import multiprocessing
import os
import pathlib
import sys
import tempfile

# The worker-kill phase patches run_app in the parent and relies on
# fork workers inheriting the patch (same technique as the test suite).
if multiprocessing.get_start_method(allow_none=True) is None:
    try:
        multiprocessing.set_start_method("fork")
    except (ValueError, RuntimeError):
        pass

CHAOS_ENV = {
    "REPRO_SCALE": "quick",
    "REPRO_AUDIT": "1000",
    "REPRO_FAULTS": "corrupt_directory_entry@10000",
    "REPRO_FAULT_SEED": "11",
    "REPRO_RECOVERY": "repair",
}

SCHEMES = None  # populated in main() after the env is set


def _build_schemes():
    from repro.sim.config import (
        InLLCSpec,
        MgdSpec,
        SparseSpec,
        StashSpec,
        TinySpec,
    )

    return [
        ("sparse", SparseSpec(ratio=2.0)),
        ("inllc", InLLCSpec()),
        ("tiny", TinySpec(ratio=1 / 32, policy="gnru", spill=True,
                          spill_window=96)),
        ("mgd", MgdSpec(ratio=1 / 32)),
        ("stash", StashSpec(ratio=1 / 32)),
    ]


def recovery_smoke() -> None:
    """Every scheme self-heals an injected directory corruption."""
    from repro.analysis.runner import run_app

    for label, spec in _build_schemes():
        result = run_app("barnes", spec)
        injected = result.meta.get("injected_faults", 0)
        repairs = result.meta.get("repairs", 0)
        recovery = result.stats.recovery
        assert injected >= 1, f"{label}: no fault was injected"
        assert repairs >= 1, f"{label}: fault was not repaired"
        assert recovery.get("repairs", 0) >= 1, (
            f"{label}: recovery stats section missing/empty: {recovery}"
        )
        assert recovery.get("escalations", 0) == 0, (
            f"{label}: recovery escalated: {recovery}"
        )
        print(
            f"recovery[{label}]: injected={injected} repairs={repairs} "
            f"probe_messages={recovery['probe_messages']} "
            f"repair_cycles={recovery['repair_cycles']}"
        )


#: Marker file armed by the worker-kill phase; the patched run_app
#: kills its worker process exactly once, on the first sight of it.
_KILL_MARKER: "pathlib.Path | None" = None

_REAL_RUN_APP = None


def _killer_run_app(app, scheme, scale=None, config=None):
    name = app if isinstance(app, str) else app.name
    if name == "ocean_cp" and _KILL_MARKER is not None and _KILL_MARKER.exists():
        _KILL_MARKER.unlink()
        os._exit(71)
    return _REAL_RUN_APP(app, scheme, scale, config)


def worker_kill_smoke() -> None:
    """A killed sweep worker is survived, its point recomputed."""
    global _KILL_MARKER, _REAL_RUN_APP
    import repro.analysis.runner as runner_mod
    from repro.analysis.cache import clear_failed_marks
    from repro.analysis.runner import HarnessPolicy, scale_from_env
    from repro.parallel import SupervisorPolicy, SweepPoint, run_sweep
    from repro.sim.config import SparseSpec, TinySpec

    scale = scale_from_env()
    points = [
        SweepPoint("barnes", SparseSpec(ratio=2.0), scale),
        SweepPoint("ocean_cp", SparseSpec(ratio=2.0), scale),
        SweepPoint("swaptions", TinySpec(ratio=1 / 32, policy="gnru",
                                         spill=True,
                                         spill_window=scale.spill_window),
                   scale),
    ]
    _KILL_MARKER = pathlib.Path(tempfile.mkdtemp()) / "kill-once"
    _KILL_MARKER.write_text("armed")
    _REAL_RUN_APP = runner_mod.run_app
    runner_mod.run_app = _killer_run_app  # fork workers inherit this
    clear_failed_marks()
    try:
        report = run_sweep(
            points,
            jobs=2,
            policy=HarnessPolicy(keep_going=True),
            supervisor=SupervisorPolicy(
                max_pool_respawns=2,
                max_point_retries=1,
                backoff_base_s=0.05,
                backoff_cap_s=0.2,
                jitter_s=0.0,
            ),
        )
    finally:
        runner_mod.run_app = _REAL_RUN_APP
    assert report.pool_respawns >= 1, "worker kill did not break the pool"
    assert not report.failures, f"sweep lost points: {report.failures}"
    assert all(
        r is not None and not r.meta.get("failed") for r in report.results
    ), "a point came back failed"
    healed = [r for r in report.results if r.stats.recovery.get("repairs")]
    assert healed, "no swept result carries a recovery stats section"
    print(
        f"worker-kill: points={len(report.results)} "
        f"pool_respawns={report.pool_respawns} "
        f"degraded={report.degraded_serial} healed_points={len(healed)}"
    )


# ----------------------------------------------------------------------
# Resource chaos (see repro.guard and docs/resilience.md)
# ----------------------------------------------------------------------

def rss_budget_smoke() -> None:
    """A ballast RSS budget trips as a structured failure, not a crash."""
    from repro.analysis.runner import HarnessPolicy, run_app_guarded
    from repro.guard.watchdog import process_rss_mb
    from repro.sim.config import SparseSpec

    if process_rss_mb() is None:
        print("rss-budget: skipped (no RSS introspection on this platform)")
        return
    policy = HarnessPolicy(keep_going=True)
    # 16 MB is ballast: a bare interpreter already sits far above it,
    # so the very first watchdog sample must trip.
    os.environ["REPRO_BUDGET_RSS"] = "16"
    try:
        result = run_app_guarded("barnes", SparseSpec(ratio=2.0),
                                 policy=policy)
    finally:
        del os.environ["REPRO_BUDGET_RSS"]
    assert policy.failures, "rss-budget: 16 MB budget did not trip"
    error = policy.failures[-1].error
    assert "BudgetExceeded" in error, (
        f"rss-budget: expected BudgetExceeded, got: {error}"
    )
    assert result.meta.get("failed"), "rss-budget: placeholder missing"
    clean = run_app_guarded("barnes", SparseSpec(ratio=2.0),
                            policy=HarnessPolicy(keep_going=True))
    assert not clean.meta.get("failed"), "rss-budget: budget leaked"
    assert not clean.stats.guard, "rss-budget: guard section on clean run"
    print(f"rss-budget: tripped structurally ({error.split('(')[0].strip()})")


def disk_quota_smoke() -> None:
    """A tiny artifact quota degrades cache writes, never the sweep."""
    from repro.analysis.runner import HarnessPolicy, scale_from_env
    from repro.parallel import SweepPoint, run_sweep
    from repro.sim.config import SparseSpec, TinySpec

    quota_mb = 0.02  # 20 KB: at most one entry survives
    scale = scale_from_env()
    points = [
        SweepPoint("barnes", SparseSpec(ratio=2.0), scale),
        SweepPoint("swaptions", TinySpec(ratio=1 / 32, policy="gnru",
                                         spill=True,
                                         spill_window=scale.spill_window),
                   scale),
    ]
    cache_dir = pathlib.Path(tempfile.mkdtemp(prefix="chaos-quota-"))
    os.environ["REPRO_DISK_QUOTA"] = str(quota_mb)
    saved_cache = os.environ["REPRO_CACHE_DIR"]
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    try:
        report = run_sweep(points, jobs=1,
                           policy=HarnessPolicy(keep_going=True))
    finally:
        os.environ["REPRO_CACHE_DIR"] = saved_cache
        del os.environ["REPRO_DISK_QUOTA"]
    assert not report.failures, f"disk-quota: sweep failed: {report.failures}"
    used = sum(p.stat().st_size for p in cache_dir.glob("*.json"))
    assert used <= quota_mb * 1024 * 1024, (
        f"disk-quota: {used} cached bytes exceed the quota"
    )
    litter = list(cache_dir.glob("*.tmp"))
    assert not litter, f"disk-quota: stray temp files: {litter}"
    print(f"disk-quota: sweep degraded cleanly ({used} cached bytes "
          f"within {int(quota_mb * 1024 * 1024)})")


def _sigterm_child(points, cache_dir: str) -> None:
    from repro.analysis.runner import HarnessPolicy
    from repro.errors import ShutdownRequested
    from repro.guard.shutdown import EXIT_INTERRUPTED, graceful_scope
    from repro.parallel import SweepJournal, run_sweep

    os.environ["REPRO_CACHE_DIR"] = cache_dir
    journal = SweepJournal(pathlib.Path(cache_dir) / SweepJournal.FILENAME)
    try:
        with graceful_scope():
            run_sweep(points, jobs=1, policy=HarnessPolicy(keep_going=True),
                      journal=journal)
    except ShutdownRequested:
        os._exit(EXIT_INTERRUPTED)
    os._exit(0)


def sigterm_smoke() -> None:
    """SIGTERM mid-sweep: resumable exit code + flushed journal."""
    import signal
    import time

    from repro.analysis.runner import HarnessPolicy, scale_from_env
    from repro.guard.shutdown import EXIT_INTERRUPTED
    from repro.parallel import SweepJournal, SweepPoint, run_sweep
    from repro.sim.config import SparseSpec

    scale = scale_from_env()
    points = [
        SweepPoint(app, SparseSpec(ratio=2.0), scale)
        for app in ("barnes", "swaptions", "bodytrack")
    ]
    cache_dir = pathlib.Path(tempfile.mkdtemp(prefix="chaos-sigterm-"))
    journal_path = cache_dir / SweepJournal.FILENAME
    ctx = multiprocessing.get_context("fork")
    child = ctx.Process(target=_sigterm_child,
                        args=(points, str(cache_dir)))
    child.start()
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline and child.is_alive():
        if journal_path.exists() and journal_path.stat().st_size > 0:
            break
        time.sleep(0.02)
    if child.is_alive():
        os.kill(child.pid, signal.SIGTERM)
    child.join(timeout=60.0)
    assert child.exitcode in (EXIT_INTERRUPTED, 0), (
        f"sigterm: expected exit {EXIT_INTERRUPTED} (or 0 on race), "
        f"got {child.exitcode}"
    )
    journaled = SweepJournal(journal_path).load()
    assert journaled, "sigterm: journal empty after SIGTERM"
    saved_cache = os.environ["REPRO_CACHE_DIR"]
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    try:
        resumed = run_sweep(points, jobs=1,
                            policy=HarnessPolicy(keep_going=True),
                            journal=SweepJournal(journal_path), resume=True)
    finally:
        os.environ["REPRO_CACHE_DIR"] = saved_cache
    assert not resumed.failures, f"sigterm: resume failed: {resumed.failures}"
    if child.exitcode == EXIT_INTERRUPTED:
        assert resumed.resumed_points >= 1, (
            "sigterm: resume ignored the journal"
        )
    print(f"sigterm: child exit={child.exitcode} "
          f"journaled={len(journaled)} resumed={resumed.resumed_points}")


def main() -> int:
    os.environ.update(CHAOS_ENV)
    os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(prefix="chaos-cache-")
    os.environ["REPRO_CACHE"] = "on"
    recovery_smoke()
    worker_kill_smoke()
    rss_budget_smoke()
    disk_quota_smoke()
    sigterm_smoke()
    print("chaos_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
