#!/usr/bin/env python3
"""CI chaos smoke: recovery under injected faults + worker-kill sweeps.

Two phases, both small enough for a CI job:

1. **Recovery smoke** — for every scheme family, run one application
   with a directory corruption injected mid-trace
   (``REPRO_FAULTS=corrupt_directory_entry@...``) under
   ``REPRO_RECOVERY=repair`` and assert the run completes, performed at
   least one repair, published the recovery stats section, and passes a
   full post-run invariant audit.
2. **Worker-kill smoke** — run a small supervised sweep in which one
   worker ``os._exit``\\ s mid-point exactly once (marker file), and
   assert the sweep still completes every point, respawned the pool,
   and the injected-fault repairs show up in the swept results'
   recovery sections.

Run from the repo root::

    PYTHONPATH=src python tools/chaos_smoke.py
"""

from __future__ import annotations

import multiprocessing
import os
import pathlib
import sys
import tempfile

# The worker-kill phase patches run_app in the parent and relies on
# fork workers inheriting the patch (same technique as the test suite).
if multiprocessing.get_start_method(allow_none=True) is None:
    try:
        multiprocessing.set_start_method("fork")
    except (ValueError, RuntimeError):
        pass

CHAOS_ENV = {
    "REPRO_SCALE": "quick",
    "REPRO_AUDIT": "1000",
    "REPRO_FAULTS": "corrupt_directory_entry@10000",
    "REPRO_FAULT_SEED": "11",
    "REPRO_RECOVERY": "repair",
}

SCHEMES = None  # populated in main() after the env is set


def _build_schemes():
    from repro.sim.config import (
        InLLCSpec,
        MgdSpec,
        SparseSpec,
        StashSpec,
        TinySpec,
    )

    return [
        ("sparse", SparseSpec(ratio=2.0)),
        ("inllc", InLLCSpec()),
        ("tiny", TinySpec(ratio=1 / 32, policy="gnru", spill=True,
                          spill_window=96)),
        ("mgd", MgdSpec(ratio=1 / 32)),
        ("stash", StashSpec(ratio=1 / 32)),
    ]


def recovery_smoke() -> None:
    """Every scheme self-heals an injected directory corruption."""
    from repro.analysis.runner import run_app

    for label, spec in _build_schemes():
        result = run_app("barnes", spec)
        injected = result.meta.get("injected_faults", 0)
        repairs = result.meta.get("repairs", 0)
        recovery = result.stats.recovery
        assert injected >= 1, f"{label}: no fault was injected"
        assert repairs >= 1, f"{label}: fault was not repaired"
        assert recovery.get("repairs", 0) >= 1, (
            f"{label}: recovery stats section missing/empty: {recovery}"
        )
        assert recovery.get("escalations", 0) == 0, (
            f"{label}: recovery escalated: {recovery}"
        )
        print(
            f"recovery[{label}]: injected={injected} repairs={repairs} "
            f"probe_messages={recovery['probe_messages']} "
            f"repair_cycles={recovery['repair_cycles']}"
        )


#: Marker file armed by the worker-kill phase; the patched run_app
#: kills its worker process exactly once, on the first sight of it.
_KILL_MARKER: "pathlib.Path | None" = None

_REAL_RUN_APP = None


def _killer_run_app(app, scheme, scale=None, config=None):
    name = app if isinstance(app, str) else app.name
    if name == "ocean_cp" and _KILL_MARKER is not None and _KILL_MARKER.exists():
        _KILL_MARKER.unlink()
        os._exit(71)
    return _REAL_RUN_APP(app, scheme, scale, config)


def worker_kill_smoke() -> None:
    """A killed sweep worker is survived, its point recomputed."""
    global _KILL_MARKER, _REAL_RUN_APP
    import repro.analysis.runner as runner_mod
    from repro.analysis.cache import clear_failed_marks
    from repro.analysis.runner import HarnessPolicy, scale_from_env
    from repro.parallel import SupervisorPolicy, SweepPoint, run_sweep
    from repro.sim.config import SparseSpec, TinySpec

    scale = scale_from_env()
    points = [
        SweepPoint("barnes", SparseSpec(ratio=2.0), scale),
        SweepPoint("ocean_cp", SparseSpec(ratio=2.0), scale),
        SweepPoint("swaptions", TinySpec(ratio=1 / 32, policy="gnru",
                                         spill=True,
                                         spill_window=scale.spill_window),
                   scale),
    ]
    _KILL_MARKER = pathlib.Path(tempfile.mkdtemp()) / "kill-once"
    _KILL_MARKER.write_text("armed")
    _REAL_RUN_APP = runner_mod.run_app
    runner_mod.run_app = _killer_run_app  # fork workers inherit this
    clear_failed_marks()
    try:
        report = run_sweep(
            points,
            jobs=2,
            policy=HarnessPolicy(keep_going=True),
            supervisor=SupervisorPolicy(
                max_pool_respawns=2,
                max_point_retries=1,
                backoff_base_s=0.05,
                backoff_cap_s=0.2,
                jitter_s=0.0,
            ),
        )
    finally:
        runner_mod.run_app = _REAL_RUN_APP
    assert report.pool_respawns >= 1, "worker kill did not break the pool"
    assert not report.failures, f"sweep lost points: {report.failures}"
    assert all(
        r is not None and not r.meta.get("failed") for r in report.results
    ), "a point came back failed"
    healed = [r for r in report.results if r.stats.recovery.get("repairs")]
    assert healed, "no swept result carries a recovery stats section"
    print(
        f"worker-kill: points={len(report.results)} "
        f"pool_respawns={report.pool_respawns} "
        f"degraded={report.degraded_serial} healed_points={len(healed)}"
    )


def main() -> int:
    os.environ.update(CHAOS_ENV)
    os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(prefix="chaos-cache-")
    os.environ["REPRO_CACHE"] = "on"
    recovery_smoke()
    worker_kill_smoke()
    print("chaos_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
