#!/usr/bin/env python3
"""Documentation consistency checker (CI gate).

Three checks, all cheap and dependency-free (CLI parsers are read via
``ast``, so no simulator import is needed):

1. **Intra-repo links** — every relative markdown link in README.md and
   ``docs/*.md`` must resolve to an existing file (anchors stripped;
   paths tried relative to the containing file, then to the repo root).
2. **Flag coverage** — every long CLI flag defined by ``add_argument``
   in a tracked parser module must be documented in its paired doc
   (see ``FLAG_PAIRS``).
3. **Stale flags** — every flag row in a paired doc's CLI flag table(s)
   (markdown table rows whose first cell starts with ``--``) must still
   exist in its parser, so removed flags cannot linger in the docs.

Exit status 0 when clean, 1 with one line per problem otherwise.
"""

from __future__ import annotations

import ast
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

#: (parser module, documenting markdown file[, flag subset]) entries
#: kept in lockstep. Without a third element every flag the module
#: defines must appear in the doc; with one, only the listed flags are
#: required there (for flags whose home doc is a second file — e.g. the
#: resilience flags of the figure CLI are documented in
#: ``docs/resilience.md`` as well as the harness guide).
FLAG_PAIRS = [
    ("src/repro/__main__.py", "docs/harness.md"),
    ("src/repro/__main__.py", "docs/resilience.md",
     ("--audit", "--recovery", "--resume")),
    ("src/repro/__main__.py", "docs/telemetry.md",
     ("--trace", "--trace-out", "--metrics")),
    ("src/repro/verify/cli.py", "docs/verification.md"),
    ("src/repro/verify/diff_cli.py", "docs/verification.md"),
    ("src/repro/guard/soak.py", "docs/resilience.md"),
]

#: ``REPRO_*`` environment variables that are implementation plumbing,
#: not user surface; exempt from the documentation requirement.
ENV_INTERNAL = {
    "REPRO_TRACE_WORKER",  # set by the pool to route worker trace parts
}

#: Markdown inline link: [text](target), ignoring images and code spans.
_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^()\s]+)\)")
#: First cell of a markdown table row that documents a CLI flag.
_FLAG_ROW = re.compile(r"^\|\s*`(--[a-z][a-z0-9-]*)[` =\[]")


def doc_files() -> "list[pathlib.Path]":
    return [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))


def parser_flags(module: pathlib.Path) -> "set[str]":
    """Long option strings of every ``add_argument`` call in ``module``."""
    tree = ast.parse(module.read_text())
    flags = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "add_argument"):
            continue
        for arg in node.args:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                if arg.value.startswith("--"):
                    flags.add(arg.value)
    return flags


def check_links() -> "list[str]":
    problems = []
    for path in doc_files():
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for match in _LINK.finditer(line):
                target = match.group(1)
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                plain = target.split("#", 1)[0]
                if not plain:
                    continue
                local = (path.parent / plain).resolve()
                rooted = (REPO / plain).resolve()
                if not local.exists() and not rooted.exists():
                    problems.append(
                        f"{path.relative_to(REPO)}:{lineno}: "
                        f"broken link -> {target}"
                    )
    return problems


def check_flags(
    module_rel: str, doc_rel: str, only: "tuple[str, ...] | None" = None
) -> "list[str]":
    module = REPO / module_rel
    doc = REPO / doc_rel
    if not module.exists():
        return [f"{module_rel}: missing (flag check needs it)"]
    if not doc.exists():
        return [f"{doc_rel}: missing (flag check needs it)"]
    problems = []
    defined = parser_flags(module)
    if only is not None:
        unknown = sorted(set(only) - defined)
        for flag in unknown:
            problems.append(
                f"check_docs.FLAG_PAIRS: {flag} is not defined in {module_rel}"
            )
        defined &= set(only)
    doc_text = doc.read_text()
    for flag in sorted(defined):
        if flag not in doc_text:
            problems.append(
                f"{doc_rel}: CLI flag {flag} ({module_rel}) is undocumented"
            )
    return problems


def documented_flags(doc: pathlib.Path) -> "set[str]":
    """Flags appearing as rows of the doc's CLI flag table(s)."""
    documented = set()
    for line in doc.read_text().splitlines():
        match = _FLAG_ROW.match(line.strip())
        if match:
            documented.add(match.group(1))
    return documented


def check_stale_flags() -> "list[str]":
    """Every documented flag row must still exist in *some* paired parser.

    Checked per doc rather than per pair: two parsers may share one doc
    (e.g. the verify and diff CLIs both live in ``docs/verification.md``),
    so a row is stale only when no parser paired with that doc defines
    it. Docs paired only through restricted subsets keep the old rule:
    rows outside the union of subsets belong to no pair here and are
    ignored.
    """
    per_doc: "dict[str, dict]" = {}
    for pair in FLAG_PAIRS:
        module_rel, doc_rel = pair[0], pair[1]
        only = pair[2] if len(pair) > 2 else None
        module = REPO / module_rel
        if not module.exists() or not (REPO / doc_rel).exists():
            continue  # reported by check_flags
        entry = per_doc.setdefault(
            doc_rel, {"defined": set(), "subsets": set(), "unrestricted": False}
        )
        flags = parser_flags(module)
        if only is None:
            entry["unrestricted"] = True
            entry["defined"] |= flags
        else:
            entry["defined"] |= flags & set(only)
            entry["subsets"] |= set(only)
    problems = []
    for doc_rel, entry in sorted(per_doc.items()):
        documented = documented_flags(REPO / doc_rel)
        if not entry["unrestricted"]:
            documented &= entry["subsets"]
        for flag in sorted(documented - entry["defined"]):
            problems.append(
                f"{doc_rel}: flag {flag} is documented but no longer "
                f"defined in any parser paired with this doc"
            )
    return problems


_ENV_VAR = re.compile(r"\bREPRO_[A-Z_]+\b")


def check_env_vars() -> "list[str]":
    """Keep the ``REPRO_*`` surface and its documentation in lockstep.

    Every variable the simulator reads must be mentioned somewhere in
    README.md or ``docs/*.md`` (except :data:`ENV_INTERNAL`), and every
    variable the docs mention must still exist in the source, so a
    renamed knob cannot leave its old name lingering in the docs.
    """
    in_src: "set[str]" = set()
    for path in sorted((REPO / "src").rglob("*.py")):
        in_src |= set(_ENV_VAR.findall(path.read_text()))
    in_docs: "set[str]" = set()
    for path in doc_files():
        in_docs |= set(_ENV_VAR.findall(path.read_text()))
    problems = []
    for var in sorted(in_src - in_docs - ENV_INTERNAL):
        problems.append(f"docs: environment variable {var} is undocumented")
    for var in sorted(in_docs - in_src):
        problems.append(
            f"docs: environment variable {var} is documented but never "
            "read under src/"
        )
    return problems


def main() -> int:
    problems = check_links()
    problems += check_env_vars()
    for pair in FLAG_PAIRS:
        problems += check_flags(*pair)
    problems += check_stale_flags()
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"check_docs: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    flags = sum(len(parser_flags(REPO / pair[0])) for pair in FLAG_PAIRS)
    files = len(doc_files())
    print(f"check_docs: OK ({files} doc files, {flags} CLI flags)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
