#!/usr/bin/env python3
"""Regenerate or staleness-check the committed differential corpus.

The corpus under ``tests/corpus/`` is five committed ``.rtrace``
captures, one per scenario in :mod:`repro.workloads.scenarios`. They are
generated deterministically from (profile, geometry, seed), so this tool
can always verify the committed artifacts against the source of truth:

* ``python tools/rebuild_corpus.py`` — (re)write every corpus file;
* ``python tools/rebuild_corpus.py --check`` — regenerate in memory and
  fail (exit 1) if any committed capture decodes to different streams or
  provenance than the current scenario definitions produce, is missing,
  or exceeds the 50 KB size budget. Comparison is over *decoded
  content*, never raw bytes, so a zlib implementation change can't fake
  a staleness failure.

Run from the repo root (or anywhere; paths are repo-relative). CI runs
``--check`` in the differential-smoke job.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.workloads.capture import load_capture  # noqa: E402
from repro.workloads.scenarios import (  # noqa: E402
    SCENARIOS,
    record_scenario,
    scenario_streams,
)

CORPUS_DIR = REPO / "tests" / "corpus"

#: Hard per-file size budget (bytes); the corpus must stay clone-cheap.
MAX_BYTES = 50 * 1024


def check_one(scenario, path: pathlib.Path) -> "list[str]":
    problems = []
    if not path.exists():
        return [f"{path.name}: missing (run tools/rebuild_corpus.py)"]
    size = path.stat().st_size
    if size > MAX_BYTES:
        problems.append(f"{path.name}: {size} bytes exceeds the 50 KB budget")
    try:
        streams, header = load_capture(path)
    except Exception as err:  # TraceError or worse: report, don't crash
        return problems + [f"{path.name}: unreadable ({err})"]
    expected = scenario_streams(scenario)
    if streams != expected:
        problems.append(
            f"{path.name}: decoded streams differ from the current "
            f"scenario definition (stale; run tools/rebuild_corpus.py)"
        )
    if header.get("seed") != scenario.seed:
        problems.append(
            f"{path.name}: header seed {header.get('seed')} != "
            f"{scenario.seed}"
        )
    if header.get("geometry") != scenario.geometry():
        problems.append(f"{path.name}: header geometry drifted")
    meta = header.get("meta") or {}
    if meta.get("scenario") != scenario.name:
        problems.append(f"{path.name}: header scenario name drifted")
    profile = header.get("profile") or {}
    if profile.get("name") != scenario.profile.name:
        problems.append(f"{path.name}: header profile name drifted")
    return problems


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the committed corpus instead of rewriting it",
    )
    parser.add_argument(
        "--only",
        action="append",
        choices=sorted(SCENARIOS),
        help="restrict to the named scenario(s)",
    )
    args = parser.parse_args(argv)
    names = args.only or sorted(SCENARIOS)
    problems: "list[str]" = []
    for name in names:
        scenario = SCENARIOS[name]
        path = CORPUS_DIR / f"{name}.rtrace"
        if args.check:
            problems += check_one(scenario, path)
        else:
            record_scenario(scenario, path)
            size = path.stat().st_size
            total = sum(len(s) for s in scenario_streams(scenario))
            print(f"wrote {path.relative_to(REPO)}: {total} accesses, {size} bytes")
            if size > MAX_BYTES:
                problems.append(
                    f"{path.name}: {size} bytes exceeds the 50 KB budget"
                )
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"rebuild_corpus: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    if args.check:
        print(f"rebuild_corpus: OK ({len(names)} scenario(s) fresh)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
