"""Calibration sweep: per-app headline stats vs paper targets."""
import sys, time
from repro import SparseSpec, InLLCSpec, run_app, RunScale, APPLICATIONS

apps = sys.argv[1:] or list(APPLICATIONS)
sc = RunScale()
print("%-12s %7s %7s %7s %7s %7s %7s" % ("app", "mr2x", "shared%", "len%", "lenblk%", "inllc", "t(s)"))
for app in apps:
    t = time.time()
    base = run_app(app, SparseSpec(ratio=2.0), sc)
    il = run_app(app, InLLCSpec(), sc)
    s, si = base.stats, il.stats
    print("%-12s %7.3f %7.3f %7.3f %7.3f %7.3f %7.1f" % (
        app, s.llc_miss_rate, s.shared_block_fraction,
        si.lengthened_fraction, si.lengthened_block_fraction,
        il.cycles / base.cycles, time.time() - t))
