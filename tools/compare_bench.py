#!/usr/bin/env python3
"""Compare ``BENCH_*.json`` perf points against committed baselines.

The CI perf-smoke job runs ``benchmarks/bench_micro_hotpath.py`` into a
fresh directory and then gates the result with::

    python tools/compare_bench.py benchmarks/baselines .repro_bench --tolerance 0.15

For every baseline point, the candidate directory must contain a point
of the same name, and each metric listed in the point's ``gate`` block
must satisfy two checks:

* **floor** — an absolute requirement carried in the point itself (e.g.
  the fast lane's ``speedup`` floor of 1.5, which encodes the
  acceptance criterion independent of any baseline);
* **tolerance** — no regression beyond ``tolerance`` relative to the
  baseline value (``candidate >= baseline * (1 - tolerance)`` for
  higher-is-better metrics, the mirror image for lower-is-better).
  Points whose gate spec sets ``floor_only`` skip this check — used for
  ratios whose denominator is sub-µs noise (the trace-cache hit) or
  whose run-to-run variance exceeds any meaningful tolerance.

Gated metrics are wall-clock *ratios*, so the comparison is meaningful
across machines; absolute seconds in the payloads are informational.
Candidate points with no baseline are reported but never fail the gate
(new benchmarks land before their first baseline is committed).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys


def load_points(directory: str) -> "dict[str, dict]":
    """Load every ``BENCH_*.json`` in ``directory``, keyed by name."""
    points = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        with open(path) as handle:
            payload = json.load(handle)
        name = payload.get("name") or os.path.basename(path)
        points[name] = payload
    return points


def compare_metric(
    name: str,
    metric: str,
    spec: dict,
    baseline_value: "float | None",
    candidate_value: "float | None",
    tolerance: float,
) -> "list[str]":
    """Check one gated metric; returns a list of failure messages."""
    failures = []
    if candidate_value is None:
        failures.append(f"{name}: gated metric {metric!r} missing from candidate")
        return failures
    higher = spec.get("direction", "higher") == "higher"
    floor = spec.get("floor")
    if floor is not None:
        if higher and candidate_value < floor:
            failures.append(
                f"{name}: {metric}={candidate_value:.4g} below floor {floor:.4g}"
            )
        elif not higher and candidate_value > floor:
            failures.append(
                f"{name}: {metric}={candidate_value:.4g} above ceiling {floor:.4g}"
            )
    if baseline_value is not None and not spec.get("floor_only"):
        if higher:
            limit = baseline_value * (1.0 - tolerance)
            if candidate_value < limit:
                failures.append(
                    f"{name}: {metric}={candidate_value:.4g} regressed more "
                    f"than {tolerance:.0%} below baseline "
                    f"{baseline_value:.4g} (limit {limit:.4g})"
                )
        else:
            limit = baseline_value * (1.0 + tolerance)
            if candidate_value > limit:
                failures.append(
                    f"{name}: {metric}={candidate_value:.4g} regressed more "
                    f"than {tolerance:.0%} above baseline "
                    f"{baseline_value:.4g} (limit {limit:.4g})"
                )
    return failures


def compare(
    baseline_dir: str, candidate_dir: str, tolerance: float
) -> "tuple[list[str], list[str]]":
    """Compare two BENCH directories; returns (report_lines, failures)."""
    baselines = load_points(baseline_dir)
    candidates = load_points(candidate_dir)
    report: "list[str]" = []
    failures: "list[str]" = []
    for name, baseline in sorted(baselines.items()):
        candidate = candidates.get(name)
        if candidate is None:
            failures.append(f"{name}: present in baselines but not produced")
            continue
        gate = candidate.get("gate") or baseline.get("gate") or {}
        base_metrics = baseline.get("metrics") or {}
        cand_metrics = candidate.get("metrics") or {}
        for metric, spec in sorted(gate.items()):
            baseline_value = base_metrics.get(metric)
            candidate_value = cand_metrics.get(metric)
            failures.extend(
                compare_metric(
                    name, metric, spec, baseline_value, candidate_value, tolerance
                )
            )
            if candidate_value is not None:
                delta = ""
                if baseline_value:
                    delta = f" (baseline {baseline_value:.4g})"
                report.append(f"{name}: {metric}={candidate_value:.4g}{delta}")
    for name in sorted(set(candidates) - set(baselines)):
        report.append(f"{name}: new point, no baseline yet (not gated)")
    return report, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline_dir", help="committed BENCH_*.json baselines")
    parser.add_argument("candidate_dir", help="freshly produced BENCH_*.json points")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed relative regression against baseline (default 0.15)",
    )
    args = parser.parse_args(argv)
    report, failures = compare(
        args.baseline_dir, args.candidate_dir, args.tolerance
    )
    for line in report:
        print(line)
    if failures:
        for line in failures:
            print(f"FAIL {line}", file=sys.stderr)
        print(f"compare_bench: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("compare_bench: all gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
