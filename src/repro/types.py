"""Common value types shared across the simulator.

The simulator works at cache-block granularity. A *block address* is the
physical address with the block-offset bits stripped (i.e. ``addr >>
log2(block_size)``). All structures in this package index blocks by their
block address, never by byte address; helpers here convert between the two.
"""

from __future__ import annotations

import enum

#: Size of a cache block in bytes (Table I of the paper).
BLOCK_SIZE = 64

#: log2 of the block size, used for byte<->block address conversion.
BLOCK_SHIFT = 6


class AccessKind(enum.Enum):
    """Kind of memory access issued by a core.

    ``IFETCH`` is an instruction read. The protocol responds to instruction
    reads in the S state even for a single requester (Section III-B of the
    paper) to accelerate code sharing.
    """

    READ = "read"
    WRITE = "write"
    IFETCH = "ifetch"

    @property
    def is_read(self) -> bool:
        """True for accesses that do not require exclusive ownership."""
        return self is not AccessKind.WRITE


class PrivateState(enum.Enum):
    """MESI state of a block in a core's private cache hierarchy."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    @property
    def is_exclusive(self) -> bool:
        """True when the holder owns the only valid private copy."""
        return self in (PrivateState.MODIFIED, PrivateState.EXCLUSIVE)


class LLCState(enum.Enum):
    """Stable state of an LLC block under in-LLC tracking (Table III).

    The two physical state bits (V, D) of an LLC block encode four states.
    ``CORRUPTED`` is the (V=0, D=1) encoding introduced by the paper: part
    of the data block is reused to store extended coherence state, so the
    data held in the LLC is not the authoritative block content.
    ``SPILLED_ENTRY`` also uses the (V=0, D=1) encoding but for a block
    that holds a *spilled coherence tracking entry* of another LLC-resident
    block with the same tag (Section IV-B1); it is distinguished here as a
    separate enum member for clarity.
    """

    INVALID = "invalid"  # V=0, D=0
    CLEAN = "clean"  # V=1, D=0: valid, unowned, not shared
    DIRTY = "dirty"  # V=1, D=1: valid, modified, unowned, not shared
    CORRUPTED = "corrupted"  # V=0, D=1: owned/shared, data bits borrowed
    SPILLED_ENTRY = "spilled"  # V=0, D=1: holds another block's tracking entry


def block_address(byte_address: int) -> int:
    """Return the block address for ``byte_address``."""
    return byte_address >> BLOCK_SHIFT


def byte_address(block_addr: int) -> int:
    """Return the first byte address of block ``block_addr``."""
    return block_addr << BLOCK_SHIFT


class Access:
    """A single memory access in a trace.

    Attributes:
        core: issuing core id, in ``[0, num_cores)``.
        addr: block address (not byte address).
        kind: read / write / instruction fetch.
        gap: compute cycles the core spends before issuing this access;
            models the non-memory work between consecutive accesses and is
            the knob through which workload CPI enters the timing model.

    Implemented with ``__slots__`` rather than a dataclass because traces
    hold hundreds of thousands of these.
    """

    __slots__ = ("core", "addr", "kind", "gap")

    def __init__(self, core: int, addr: int, kind: AccessKind, gap: int = 0) -> None:
        self.core = core
        self.addr = addr
        self.kind = kind
        self.gap = gap

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Access):
            return NotImplemented
        return (
            self.core == other.core
            and self.addr == other.addr
            and self.kind == other.kind
            and self.gap == other.gap
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Access(core={self.core}, addr={self.addr:#x}, "
            f"kind={self.kind.value}, gap={self.gap})"
        )
