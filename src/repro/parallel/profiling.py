"""Lightweight observability for sweep runs.

Every point executed by :func:`repro.parallel.executor.run_sweep` yields
a :class:`RunProfile` — wall time, simulated accesses per second, cache
hit/miss, and the worker that ran it. :class:`SweepSummary` aggregates
the profiles of one sweep into the one-paragraph report the CLI prints,
and :func:`print_slowest_profile` renders the cProfile stats the
``--profile`` flag collects for the slowest computed point.
"""

from __future__ import annotations

import pstats
import sys
from dataclasses import dataclass, field


@dataclass(frozen=True)
class RunProfile:
    """Observability record for one executed sweep point."""

    app: str
    scheme: str
    #: Submission index of the point within its sweep.
    index: int
    #: Wall-clock seconds the point took on its worker (including a
    #: cache-hit load, which is why hits show tiny but non-zero times).
    wall_s: float
    #: Simulated accesses per wall-clock second; 0.0 for cache hits and
    #: failed runs, where the figure would be meaningless.
    accesses_per_s: float
    #: True when the result came from the on-disk cache.
    cache_hit: bool
    #: True when the run exhausted its attempts (keep-going placeholder).
    failed: bool
    #: PID of the worker process that executed the point.
    worker: int
    #: Where the point's cProfile dump was written (``--profile`` only).
    stats_path: "str | None" = None

    @property
    def label(self) -> str:
        return f"{self.app}/{self.scheme}"


@dataclass(frozen=True)
class SweepSummary:
    """Aggregated statistics of one sweep."""

    points: int
    computed: int
    cache_hits: int
    failed: int
    jobs: int
    #: Wall-clock seconds of the whole sweep, pool overhead included.
    wall_s: float
    #: Sum of per-point wall times; ``cpu_s / wall_s`` is the effective
    #: parallel speedup.
    cpu_s: float
    slowest: "RunProfile | None"
    #: Resource-governance provenance of the sweep (backpressure
    #: throttling, journal degradation); empty for clean sweeps.
    guard: "dict[str, object]" = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Aggregate point-seconds per wall-second (parallel efficiency)."""
        if self.wall_s <= 0:
            return 0.0
        return self.cpu_s / self.wall_s

    def render(self) -> str:
        """The one-paragraph sweep report the CLI prints."""
        parts = [f"{self.computed} computed"]
        if self.cache_hits:
            parts.append(f"{self.cache_hits} cached")
        if self.failed:
            parts.append(f"{self.failed} failed")
        lines = [
            f"sweep: {self.points} point(s) ({', '.join(parts)}), "
            f"jobs={self.jobs}, wall {self.wall_s:.1f}s, "
            f"point-time {self.cpu_s:.1f}s ({self.speedup:.1f}x)"
        ]
        if self.slowest is not None:
            slow = self.slowest
            lines.append(
                f"  slowest: {slow.label} {slow.wall_s:.2f}s "
                f"({slow.accesses_per_s:,.0f} accesses/s, "
                f"worker {slow.worker})"
            )
        throttling = self.guard.get("backpressure")
        if isinstance(throttling, dict):
            events = throttling.get("throttle_events") or []
            lines.append(
                f"  backpressure: {len(events)} throttle event(s), "
                f"jobs dipped to {throttling.get('min_effective_jobs')} "
                f"of {throttling.get('jobs')}"
            )
        if self.guard.get("journal_disabled"):
            lines.append(
                "  journal: disabled mid-sweep "
                f"({self.guard['journal_disabled']})"
            )
        return "\n".join(lines)


def summarize(
    profiles: "list[RunProfile]",
    jobs: int,
    wall_s: float,
    guard: "dict[str, object] | None" = None,
) -> SweepSummary:
    """Fold a sweep's :class:`RunProfile` list into a :class:`SweepSummary`."""
    computed = [p for p in profiles if not p.cache_hit and not p.failed]
    slowest = max(computed, key=lambda p: p.wall_s, default=None)
    return SweepSummary(
        points=len(profiles),
        computed=len(computed),
        cache_hits=sum(1 for p in profiles if p.cache_hit),
        failed=sum(1 for p in profiles if p.failed),
        jobs=jobs,
        wall_s=wall_s,
        cpu_s=sum(p.wall_s for p in profiles),
        slowest=slowest,
        guard=dict(guard or {}),
    )


def render_profiles_table(profiles: "list[RunProfile]") -> str:
    """A per-point table of the sweep's profiles (slowest first)."""
    header = f"{'point':32} {'wall_s':>8} {'acc/s':>10} {'src':>6} {'worker':>7}"
    rows = [header, "-" * len(header)]
    for prof in sorted(profiles, key=lambda p: p.wall_s, reverse=True):
        source = "fail" if prof.failed else ("cache" if prof.cache_hit else "run")
        rows.append(
            f"{prof.label[:32]:32} {prof.wall_s:8.2f} "
            f"{prof.accesses_per_s:10,.0f} {source:>6} {prof.worker:7d}"
        )
    return "\n".join(rows)


def print_slowest_profile(
    profiles: "list[RunProfile]", stream=None, limit: int = 20
) -> "RunProfile | None":
    """Print cProfile stats of the slowest *computed* point, if collected.

    Returns the profile whose stats were printed, or None when the sweep
    computed nothing under profiling (e.g. every point was cached).
    """
    stream = stream if stream is not None else sys.stdout
    candidates = [
        p for p in profiles
        if p.stats_path is not None and not p.cache_hit and not p.failed
    ]
    if not candidates:
        print("no computed point was profiled (all cached or failed)",
              file=stream)
        return None
    slowest = max(candidates, key=lambda p: p.wall_s)
    print(f"cProfile of slowest point {slowest.label} "
          f"({slowest.wall_s:.2f}s wall):", file=stream)
    stats = pstats.Stats(slowest.stats_path, stream=stream)
    stats.sort_stats("cumulative").print_stats(limit)
    return slowest
