"""Crash-safe sweep checkpoint journal.

The journal is an append-only JSONL file recording one line per
completed sweep point (by its stable cache key): ``ok`` when the point
computed and its result is in the result cache, ``failed`` with enough
context to replay the :class:`~repro.analysis.runner.RunFailure`. If
the sweep process is killed — power loss, OOM kill, Ctrl-C — the journal
survives with at worst one torn trailing line, which :meth:`load`
tolerates; ``--resume`` then skips every journaled point and recomputes
only what is genuinely missing.

Appending a full line per point (open, write, flush, fsync, close) is
deliberately boring: points take seconds to compute, so journal I/O is
noise, and the format stays greppable and mergeable.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.errors import ArtifactWriteError


class SweepJournal:
    """Append-only per-point completion journal for one sweep."""

    FILENAME = "sweep.journal"

    def __init__(self, path: "pathlib.Path | str") -> None:
        self.path = pathlib.Path(path)

    @classmethod
    def default(cls) -> "SweepJournal":
        """The journal co-located with the result cache."""
        from repro.analysis.cache import cache_dir

        return cls(cache_dir() / cls.FILENAME)

    def reset(self) -> None:
        """Start a fresh sweep: drop any previous journal."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def load(self) -> "dict[str, dict]":
        """Latest record per point key; torn/corrupt lines are skipped."""
        records: "dict[str, dict]" = {}
        try:
            text = self.path.read_text()
        except (FileNotFoundError, OSError):
            return records
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                # A torn write from a killed sweep; later lines (there
                # are none unless the file was concatenated) still load.
                continue
            key = record.get("key")
            if isinstance(key, str) and record.get("status") in ("ok", "failed"):
                records[key] = record
        return records

    def record_ok(self, key: str) -> None:
        """Journal a successfully computed (and cached) point."""
        self._append({"key": key, "status": "ok"})

    def record_failed(
        self, key: str, app: str, scheme: str, error: str, attempts: int = 1
    ) -> None:
        """Journal a point that exhausted its attempts."""
        self._append(
            {
                "key": key,
                "status": "failed",
                "app": app,
                "scheme": scheme,
                "error": error,
                "attempts": attempts,
            }
        )

    def _append(self, record: "dict") -> None:
        payload = json.dumps(record, sort_keys=True) + "\n"
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as err:
            # A full disk must not masquerade as a crashed sweep: surface
            # a structured error the executor can downgrade to
            # journal-less operation (the sweep itself keeps going).
            raise ArtifactWriteError(
                f"cannot append to sweep journal {self.path}: {err}",
                path=str(self.path),
            ) from err
