"""Harvest the sweep points an experiment will need, without running it.

Every figure function in :mod:`repro.analysis.experiments` pulls its
runs through :func:`repro.analysis.cache.cached_run`. Planning mode
(:func:`repro.analysis.cache.recording_points`) exploits that choke
point: the experiment is invoked once with ``cached_run`` replaced by a
recorder that logs each requested (app, scheme, scale) triple and
returns a cheap placeholder. The recorded list is exactly the point set
to fan out over the pool — no per-figure duplication of grid logic, and
experiments that build their own scales (the halved-hierarchy study)
are planned correctly for free.
"""

from __future__ import annotations

from repro.analysis.cache import recording_points
from repro.parallel.points import SweepPoint, dedupe_points


def collect_points(experiment, *args, **kwargs) -> "list[SweepPoint]":
    """The deduplicated sweep points ``experiment(*args, **kwargs)`` needs.

    The experiment runs once in planning mode. Placeholder results keep
    most figure math finite (``cycles == 1``), but derived figures that
    divide aggregate placeholders (the energy totals of Fig. 21) may
    still raise — by then every ``cached_run`` request has already been
    recorded, so such errors are swallowed: the planner's output is the
    point list, never the figure.
    """
    with recording_points() as recorded:
        try:
            experiment(*args, **kwargs)
        except Exception:
            pass
    return dedupe_points(
        SweepPoint(app, scheme, scale) for app, scheme, scale in recorded
    )


def pending_points(points: "list[SweepPoint]") -> "list[SweepPoint]":
    """Filter ``points`` down to those the result cache does not hold."""
    return [point for point in points if not point.is_cached()]
