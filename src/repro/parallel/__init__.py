"""repro.parallel — process-based sweep execution with profiling hooks.

Every figure of the paper's evaluation is a sweep over independent
(application, scheme, scale) points; this package fans those points out
over a worker pool while keeping results **bit-identical** to the
serial path (seeds derive per point, never from scheduling order).

Typical use::

    from repro.parallel import SweepPoint, collect_points, run_sweep
    from repro.analysis import experiments

    points = collect_points(experiments.fig01_sparse_sizes, scale)
    report = run_sweep(points, jobs=4)
    print(report.summary().render())
    figure = experiments.fig01_sparse_sizes(scale)  # all cache hits

The CLI (``python -m repro --jobs N``) and the benchmark drivers use
exactly this plan/execute/render split. See ``docs/harness.md``.
"""

from repro.parallel.executor import SweepReport, resolve_jobs, run_sweep, run_tasks
from repro.parallel.journal import SweepJournal
from repro.parallel.planner import collect_points, pending_points
from repro.parallel.points import SweepPoint, dedupe_points
from repro.parallel.profiling import (
    RunProfile,
    SweepSummary,
    print_slowest_profile,
    render_profiles_table,
    summarize,
)
from repro.parallel.supervisor import SupervisorPolicy, supervisor_from_env

__all__ = [
    "RunProfile",
    "SupervisorPolicy",
    "SweepJournal",
    "SweepPoint",
    "SweepReport",
    "SweepSummary",
    "collect_points",
    "dedupe_points",
    "pending_points",
    "print_slowest_profile",
    "render_profiles_table",
    "resolve_jobs",
    "run_sweep",
    "run_tasks",
    "summarize",
    "supervisor_from_env",
]
