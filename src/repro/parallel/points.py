"""Sweep points: the unit of work the parallel executor fans out.

A :class:`SweepPoint` is one independent (application, scheme spec,
run scale) simulation — exactly the argument triple of
:func:`repro.analysis.cache.cached_run`. Every figure of the paper is a
grid of such points, and because each point derives its random seed from
its own ``scale.seed`` (never from scheduling order), points can run in
any order, on any worker, and still produce bit-identical statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.cache import has_entry, point_key
from repro.analysis.runner import RunScale


@dataclass(frozen=True)
class SweepPoint:
    """One independent (app, scheme, scale) simulation."""

    app: str
    scheme: object
    scale: RunScale

    @property
    def scheme_name(self) -> str:
        """Display name of the scheme spec (same convention as results)."""
        return getattr(self.scheme, "name", type(self.scheme).__name__)

    def key(self) -> str:
        """The point's stable result-cache key."""
        return point_key(self.app, self.scheme, self.scale)

    def is_cached(self) -> bool:
        """True when the result cache already holds this point."""
        return has_entry(self.app, self.scheme, self.scale)

    def __str__(self) -> str:
        return f"{self.app}/{self.scheme_name}"


def dedupe_points(points: "Iterable[SweepPoint]") -> "list[SweepPoint]":
    """Drop duplicate points (same cache key), preserving first-seen order.

    Figures overlap heavily — every normalized figure needs the same 2x
    sparse baselines — so deduplication is what keeps a multi-figure
    sweep from simulating shared points once per figure.
    """
    seen: "dict[str, None]" = {}
    unique: "list[SweepPoint]" = []
    for point in points:
        key = point.key()
        if key not in seen:
            seen[key] = None
            unique.append(point)
    return unique
