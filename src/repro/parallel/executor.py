"""Process-based sweep execution.

:func:`run_sweep` fans a list of independent :class:`SweepPoint`\\ s out
over a :class:`~concurrent.futures.ProcessPoolExecutor` and routes every
completed point through the crash-safe result cache
(:mod:`repro.analysis.cache`), so a figure rendered afterwards finds all
its runs precomputed. The harness semantics of
:func:`~repro.analysis.runner.run_app_guarded` are preserved per worker:

* **timeout** — enforced with the cooperative deadline of
  :mod:`repro.sim.deadline` (``SIGALRM`` would not survive in a pool
  worker, where tasks never run on a fresh main thread's signal state);
* **retries** — each worker retries its point up to
  ``policy.max_retries`` extra times before reporting a failure;
* **keep-going** — worker failures come back as data
  (:class:`~repro.analysis.runner.RunFailure`); under a ``keep_going``
  parent policy they are registered with
  :func:`repro.analysis.cache.mark_failed` so the render pass replays
  them without recomputing, and under a strict policy the first failure
  (in submission order, for determinism) is re-raised in the parent;
* **audit mode** — ``REPRO_*`` environment (audit, scale, cache
  location) is snapshotted at submission time and re-applied in each
  worker, so ``--audit`` sweeps audit every worker's runs.

Determinism: a parallel sweep produces **bit-identical** statistics to
the serial path. Every point's random seed derives from its own
``scale.seed``; nothing depends on pool scheduling, completion order, or
worker identity. The only thing parallelism changes is wall-clock time.
"""

from __future__ import annotations

import builtins
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro import errors as _errors
from repro.analysis import cache as result_cache
from repro.analysis.runner import (
    HarnessPolicy,
    RunFailure,
    active_policy,
    harness,
)
from repro.parallel.points import SweepPoint, dedupe_points
from repro.parallel.profiling import RunProfile, SweepSummary, summarize
from repro.sim.results import RunResult


def resolve_jobs(jobs: "int | None" = None) -> int:
    """Resolve the worker count: explicit > ``REPRO_JOBS`` > cpu count."""
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                jobs = None
    if jobs is None:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def run_tasks(fn, payloads: "list", jobs: "int | None" = None) -> "list":
    """Order-preserving process-pool map for independent tasks.

    A generic sibling of :func:`run_sweep` for work that is not a
    (app, scheme, scale) sweep point — e.g. the conformance fuzzer's
    seeded runs. ``fn`` must be a top-level (picklable-by-reference)
    callable; ``payloads`` and results must pickle. ``jobs <= 1`` (or a
    single payload) runs inline with identical semantics; the result
    list is aligned with ``payloads`` regardless of completion order.
    """
    jobs = min(resolve_jobs(jobs), max(1, len(payloads)))
    if jobs <= 1 or len(payloads) <= 1:
        return [fn(payload) for payload in payloads]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(fn, payloads))


@dataclass
class SweepReport:
    """Everything one :func:`run_sweep` call produced."""

    #: The deduplicated points, in submission order.
    points: "list[SweepPoint]"
    #: One result per point, aligned with :attr:`points`.
    results: "list[RunResult]"
    #: One profile per point, aligned with :attr:`points`.
    profiles: "list[RunProfile]"
    #: Failures collected across workers (submission order).
    failures: "list[RunFailure]" = field(default_factory=list)
    wall_s: float = 0.0
    jobs: int = 1

    def summary(self) -> SweepSummary:
        return summarize(self.profiles, self.jobs, self.wall_s)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Per-worker configuration installed by :func:`_init_worker`.
_WORKER: "dict[str, object]" = {}


def _init_worker(env: "dict[str, str]", timeout_s, max_retries, profile_dir):
    """Pool initializer: re-apply the parent's ``REPRO_*`` environment.

    With the default ``fork`` start method the environment is inherited
    anyway; re-applying it keeps spawn/forkserver children (and any env
    mutation racing pool creation) consistent with the submitting
    process.
    """
    for key in [k for k in os.environ if k.startswith("REPRO_")]:
        if key not in env:
            del os.environ[key]
    os.environ.update(env)
    _WORKER["timeout_s"] = timeout_s
    _WORKER["max_retries"] = max_retries
    _WORKER["profile_dir"] = profile_dir


def _execute_point(index: int, point: SweepPoint, policy: HarnessPolicy,
                   profile_dir: "str | None"):
    """Run one point under ``policy``; return (result, profile, profiled path)."""
    profiler = None
    stats_path = None
    start = time.perf_counter()
    with harness(policy):
        if profile_dir is not None and not point.is_cached():
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
            try:
                result = result_cache.cached_run(point.app, point.scheme,
                                                 point.scale)
            finally:
                profiler.disable()
        else:
            result = result_cache.cached_run(point.app, point.scheme,
                                             point.scale)
    wall = time.perf_counter() - start
    cache_hit = bool(result.meta.get("cached"))
    failed = bool(result.meta.get("failed"))
    if profiler is not None and not cache_hit and not failed:
        os.makedirs(profile_dir, exist_ok=True)
        stats_path = os.path.join(profile_dir, f"{point.key()}.prof")
        profiler.dump_stats(stats_path)
    rate = 0.0
    if not cache_hit and not failed and wall > 0:
        rate = point.scale.total_accesses / wall
    profile = RunProfile(
        app=point.app,
        scheme=point.scheme_name,
        index=index,
        wall_s=wall,
        accesses_per_s=rate,
        cache_hit=cache_hit,
        failed=failed,
        worker=os.getpid(),
        stats_path=stats_path,
    )
    return result, profile


def _run_point(index: int, point: SweepPoint):
    """Top-level pool task (must be picklable by reference)."""
    policy = HarnessPolicy(
        keep_going=True,  # failures travel back as data, never tracebacks
        timeout_s=_WORKER.get("timeout_s"),
        max_retries=int(_WORKER.get("max_retries") or 0),
    )
    result, profile = _execute_point(
        index, point, policy, _WORKER.get("profile_dir")
    )
    return index, result, profile, list(policy.failures)


def _rebuild_error(failure: RunFailure) -> Exception:
    """Turn a worker's ``"Type: message"`` failure back into an exception.

    Only exception types from :mod:`builtins` and :mod:`repro.errors`
    are reconstructed; anything else becomes a ``RuntimeError`` carrying
    the original text.
    """
    name, sep, message = failure.error.partition(": ")
    exc_type = getattr(_errors, name, None) or getattr(builtins, name, None)
    if sep and isinstance(exc_type, type) and issubclass(exc_type, Exception):
        return exc_type(message)
    return RuntimeError(str(failure))


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

def run_sweep(
    points: "list[SweepPoint]",
    jobs: "int | None" = None,
    policy: "HarnessPolicy | None" = None,
    profile_dir: "str | None" = None,
) -> SweepReport:
    """Execute ``points`` over a worker pool, through the result cache.

    Args:
        points: the sweep; duplicates (same cache key) run once.
        jobs: worker processes (default: ``REPRO_JOBS`` or cpu count);
            clamped to the number of unique points. ``jobs <= 1`` runs
            inline in this process with identical semantics.
        policy: harness policy applied per worker (timeout, retries,
            keep-going); defaults to the active policy.
        profile_dir: when given, each computed point runs under cProfile
            and dumps its stats there (the ``--profile`` machinery).

    Under a ``keep_going`` policy, worker failures end up in the
    report's ``failures`` and are registered via
    :func:`repro.analysis.cache.mark_failed`; the parent policy's own
    ``failures`` list is *not* extended here, so the figure-render pass
    that follows reports each failure exactly as the serial path would.
    Under a strict policy the first failure is re-raised.

    The returned report's ``results`` are bit-identical to what the same
    points produce serially (see the module docstring).
    """
    points = dedupe_points(points)
    policy = policy if policy is not None else active_policy()
    jobs = min(resolve_jobs(jobs), max(1, len(points)))
    results: "list[RunResult | None]" = [None] * len(points)
    profiles: "list[RunProfile | None]" = [None] * len(points)
    indexed_failures: "list[tuple[int, RunFailure]]" = []
    start = time.perf_counter()

    if jobs <= 1 or len(points) <= 1:
        for index, point in enumerate(points):
            seen = len(policy.failures)
            result, profile = _execute_point(index, point, policy,
                                             profile_dir)
            results[index] = result
            profiles[index] = profile
            # Hand new failures to the report/registry; the render pass
            # owns appending them to the policy (parity with the pool).
            indexed_failures.extend(
                (index, f) for f in policy.failures[seen:]
            )
            del policy.failures[seen:]
    else:
        env = {k: v for k, v in os.environ.items() if k.startswith("REPRO_")}
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_init_worker,
            initargs=(env, policy.timeout_s, policy.max_retries, profile_dir),
        ) as pool:
            futures = [
                pool.submit(_run_point, index, point)
                for index, point in enumerate(points)
            ]
            # Collect in submission order: failure reporting stays
            # deterministic no matter which worker finishes first.
            for future in futures:
                index, result, profile, point_failures = future.result()
                results[index] = result
                profiles[index] = profile
                indexed_failures.extend((index, f) for f in point_failures)

    failures = [failure for _, failure in indexed_failures]
    if failures:
        if not policy.keep_going:
            raise _rebuild_error(failures[0])
        for index, failure in indexed_failures:
            result_cache.mark_failed(points[index].key(), failure)

    return SweepReport(
        points=points,
        results=results,
        profiles=profiles,
        failures=failures,
        wall_s=time.perf_counter() - start,
        jobs=jobs,
    )
