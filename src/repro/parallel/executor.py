"""Process-based sweep execution.

:func:`run_sweep` fans a list of independent :class:`SweepPoint`\\ s out
over a :class:`~concurrent.futures.ProcessPoolExecutor` and routes every
completed point through the crash-safe result cache
(:mod:`repro.analysis.cache`), so a figure rendered afterwards finds all
its runs precomputed. The harness semantics of
:func:`~repro.analysis.runner.run_app_guarded` are preserved per worker:

* **timeout** — enforced with the cooperative deadline of
  :mod:`repro.sim.deadline` (``SIGALRM`` would not survive in a pool
  worker, where tasks never run on a fresh main thread's signal state);
* **retries** — each worker retries its point up to
  ``policy.max_retries`` extra times before reporting a failure;
* **keep-going** — worker failures come back as data
  (:class:`~repro.analysis.runner.RunFailure`); under a ``keep_going``
  parent policy they are registered with
  :func:`repro.analysis.cache.mark_failed` so the render pass replays
  them without recomputing, and under a strict policy the first failure
  (in submission order, for determinism) is re-raised in the parent;
* **audit mode** — ``REPRO_*`` environment (audit, scale, cache
  location) is snapshotted at submission time and re-applied in each
  worker, so ``--audit`` sweeps audit every worker's runs.

Determinism: a parallel sweep produces **bit-identical** statistics to
the serial path. Every point's random seed derives from its own
``scale.seed``; nothing depends on pool scheduling, completion order, or
worker identity. The only thing parallelism changes is wall-clock time.

The executor is *supervised*: a worker crash (``BrokenProcessPool``)
no longer kills the sweep. Finished futures are salvaged, the crashed
points are requeued, and the pool is respawned after an exponential
backoff with jitter; a :class:`~repro.parallel.supervisor.SupervisorPolicy`
heartbeat additionally catches workers that hang without progress. Once
the respawn budget is spent the executor degrades to *isolated serial*
execution — each remaining point runs alone in a fresh single-worker
pool, so a poison point that keeps killing its worker is blamed
precisely (and reported as a :class:`~repro.errors.WorkerCrashError`
failure) without taking healthy points, or the parent process, with it.
Completions can be journaled to a crash-safe
:class:`~repro.parallel.journal.SweepJournal`; ``resume=True`` skips
journaled points, so an interrupted sweep recomputes only what is
genuinely missing.

The executor is also *resource-governed* (see :mod:`repro.guard`): when
``REPRO_BUDGET_RSS`` or ``REPRO_DISK_QUOTA`` is set, a
:class:`~repro.guard.backpressure.PressureMonitor` bounds how many
points are concurrently in flight and shrinks that bound when aggregate
worker RSS or artifact-disk headroom crosses its high-water mark
(restoring it once pressure clears). Throttling changes only submission
timing — results stay bit-identical — and every decision lands in the
report's ``guard`` section. A SIGINT/SIGTERM arriving mid-sweep (see
:func:`repro.guard.shutdown.graceful_scope`) kills the pool without
waiting and propagates; everything already finished is in the fsynced
journal, so ``--resume`` picks up exactly where the interrupt landed.
A journal append that fails with a disk-full error degrades the sweep
to journal-less operation instead of aborting it.
"""

from __future__ import annotations

import builtins
import os
import sys
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro import errors as _errors
from repro.analysis import cache as result_cache
from repro.analysis.runner import (
    HarnessPolicy,
    RunFailure,
    active_policy,
    harness,
)
from repro.errors import ArtifactWriteError, ShutdownRequested
from repro.guard.backpressure import PressureMonitor, pressure_from_env
from repro.parallel.journal import SweepJournal
from repro.parallel.points import SweepPoint, dedupe_points
from repro.parallel.profiling import RunProfile, SweepSummary, summarize
from repro.parallel.supervisor import SupervisorPolicy, supervisor_from_env
from repro.sim.results import RunResult
from repro.sim.stats import SimStats
from repro.telemetry import (
    JsonlSink,
    Tracer,
    jsonl_trace_enabled,
    merge_snapshots,
    merge_worker_traces,
    trace_base_path,
)


def resolve_jobs(jobs: "int | None" = None) -> int:
    """Resolve the worker count: explicit > ``REPRO_JOBS`` > cpu count."""
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                jobs = None
    if jobs is None:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def run_tasks(fn, payloads: "list", jobs: "int | None" = None) -> "list":
    """Order-preserving process-pool map for independent tasks.

    A generic sibling of :func:`run_sweep` for work that is not a
    (app, scheme, scale) sweep point — e.g. the conformance fuzzer's
    seeded runs. ``fn`` must be a top-level (picklable-by-reference)
    callable; ``payloads`` and results must pickle. ``jobs <= 1`` (or a
    single payload) runs inline with identical semantics; the result
    list is aligned with ``payloads`` regardless of completion order.
    """
    jobs = min(resolve_jobs(jobs), max(1, len(payloads)))
    if jobs <= 1 or len(payloads) <= 1:
        return [fn(payload) for payload in payloads]
    env = {k: v for k, v in os.environ.items() if k.startswith("REPRO_")}
    with ProcessPoolExecutor(
        max_workers=jobs,
        # Same initializer as run_sweep: without it, spawn/forkserver
        # children would run with a default environment and silently
        # ignore the parent's REPRO_* settings (audit, scale, cache).
        initializer=_init_worker,
        initargs=(env, None, 0, None),
    ) as pool:
        results = list(pool.map(fn, payloads))
    if jsonl_trace_enabled():
        merge_worker_traces()
    return results


@dataclass
class SweepReport:
    """Everything one :func:`run_sweep` call produced."""

    #: The deduplicated points, in submission order.
    points: "list[SweepPoint]"
    #: One result per point, aligned with :attr:`points`.
    results: "list[RunResult]"
    #: One profile per point, aligned with :attr:`points`.
    profiles: "list[RunProfile]"
    #: Failures collected across workers (submission order).
    failures: "list[RunFailure]" = field(default_factory=list)
    wall_s: float = 0.0
    jobs: int = 1
    #: How many times a broken/hung pool was rebuilt.
    pool_respawns: int = 0
    #: True when the respawn budget ran out and the tail of the sweep
    #: executed in isolated serial mode.
    degraded_serial: bool = False
    #: Points that crashed their worker out of every retry.
    crashed_points: int = 0
    #: Points satisfied from the sweep journal under ``resume=True``.
    resumed_points: int = 0
    #: Resource-governance provenance: backpressure throttle decisions
    #: and journal degradation, published only when something happened
    #: (empty for clean sweeps, matching the ``stats.guard`` contract).
    guard: "dict[str, object]" = field(default_factory=dict)

    def summary(self) -> SweepSummary:
        return summarize(self.profiles, self.jobs, self.wall_s, self.guard)

    def telemetry(self) -> dict:
        """The merged telemetry snapshot across every result.

        Counters add, gauges keep the last value seen, histograms widen
        (see :func:`repro.telemetry.merge_snapshots`). Empty when no run
        collected metrics (``REPRO_METRICS`` off).
        """
        return merge_snapshots(
            [r.stats.telemetry for r in self.results if r is not None]
        )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Per-worker configuration installed by :func:`_init_worker`.
_WORKER: "dict[str, object]" = {}


def _init_worker(env: "dict[str, str]", timeout_s, max_retries, profile_dir):
    """Pool initializer: re-apply the parent's ``REPRO_*`` environment.

    With the default ``fork`` start method the environment is inherited
    anyway; re-applying it keeps spawn/forkserver children (and any env
    mutation racing pool creation) consistent with the submitting
    process.
    """
    for key in [k for k in os.environ if k.startswith("REPRO_")]:
        if key not in env:
            del os.environ[key]
    os.environ.update(env)
    # Traced workers write per-process <trace>.<pid>.part files; the
    # parent fans them into the base trace after the sweep (see
    # repro.telemetry.merge_worker_traces).
    os.environ["REPRO_TRACE_WORKER"] = "1"
    _WORKER["timeout_s"] = timeout_s
    _WORKER["max_retries"] = max_retries
    _WORKER["profile_dir"] = profile_dir


def _execute_point(index: int, point: SweepPoint, policy: HarnessPolicy,
                   profile_dir: "str | None"):
    """Run one point under ``policy``; return (result, profile, profiled path)."""
    profiler = None
    stats_path = None
    start = time.perf_counter()
    with harness(policy):
        if profile_dir is not None and not point.is_cached():
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
            try:
                result = result_cache.cached_run(point.app, point.scheme,
                                                 point.scale)
            finally:
                profiler.disable()
        else:
            result = result_cache.cached_run(point.app, point.scheme,
                                             point.scale)
    wall = time.perf_counter() - start
    cache_hit = bool(result.meta.get("cached"))
    failed = bool(result.meta.get("failed"))
    if profiler is not None and not cache_hit and not failed:
        os.makedirs(profile_dir, exist_ok=True)
        stats_path = os.path.join(profile_dir, f"{point.key()}.prof")
        profiler.dump_stats(stats_path)
    rate = 0.0
    if not cache_hit and not failed and wall > 0:
        rate = point.scale.total_accesses / wall
    profile = RunProfile(
        app=point.app,
        scheme=point.scheme_name,
        index=index,
        wall_s=wall,
        accesses_per_s=rate,
        cache_hit=cache_hit,
        failed=failed,
        worker=os.getpid(),
        stats_path=stats_path,
    )
    return result, profile


def _run_point(index: int, point: SweepPoint):
    """Top-level pool task (must be picklable by reference)."""
    policy = HarnessPolicy(
        keep_going=True,  # failures travel back as data, never tracebacks
        timeout_s=_WORKER.get("timeout_s"),
        max_retries=int(_WORKER.get("max_retries") or 0),
    )
    result, profile = _execute_point(
        index, point, policy, _WORKER.get("profile_dir")
    )
    return index, result, profile, list(policy.failures)


def _rebuild_error(failure: RunFailure) -> Exception:
    """Turn a worker's ``"Type: message"`` failure back into an exception.

    Only exception types from :mod:`builtins` and :mod:`repro.errors`
    are reconstructed; anything else becomes a ``RuntimeError`` carrying
    the original text.
    """
    name, sep, message = failure.error.partition(": ")
    exc_type = getattr(_errors, name, None) or getattr(builtins, name, None)
    if isinstance(exc_type, type) and issubclass(exc_type, Exception):
        # Bare-typed failures ("KeyError", no separator) reconstruct
        # with no message instead of collapsing to RuntimeError.
        return exc_type(message) if sep else exc_type()
    return RuntimeError(str(failure))


# ----------------------------------------------------------------------
# Parent side: supervision helpers
# ----------------------------------------------------------------------

def _failed_result(point: SweepPoint, error: str) -> RunResult:
    """Keep-going placeholder, same shape as run_app_guarded's."""
    return RunResult(
        app=point.app,
        scheme=point.scheme_name,
        stats=SimStats(),
        meta={"failed": True, "error": error},
    )


def _synthetic_profile(
    point: SweepPoint, index: int, failed: bool = False
) -> RunProfile:
    """Profile stand-in for a point that never produced one (crash/replay)."""
    return RunProfile(
        app=point.app,
        scheme=point.scheme_name,
        index=index,
        wall_s=0.0,
        accesses_per_s=0.0,
        cache_hit=False,
        failed=failed,
        worker=os.getpid(),
    )


def _kill_pool(pool) -> None:
    """Tear a (possibly hung) pool down without waiting on its workers."""
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.terminate()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


def _run_isolated(index, point, policy, profile_dir, supervisor, env):
    """Degraded-mode execution: one point, alone, in a fresh 1-worker pool.

    With nothing else in flight, a pool break (or heartbeat expiry) here
    blames this exact point — the property the gang pool cannot provide,
    since a crash there kills innocent in-flight siblings too. Retried
    with backoff up to ``supervisor.max_point_retries`` extra times;
    running the point in a child (never inline in the parent) means a
    poison point that aborts its process cannot take the sweep with it.

    Returns ``(result, profile, failures, crashed)`` with ``crashed=1``
    when every attempt lost its worker.
    """
    attempts = 0
    error = "WorkerCrashError: worker process died while computing this point"
    while attempts <= supervisor.max_point_retries:
        attempts += 1
        if attempts > 1:
            time.sleep(supervisor.backoff_delay(attempts - 1))
        pool = ProcessPoolExecutor(
            max_workers=1,
            initializer=_init_worker,
            initargs=(env, policy.timeout_s, policy.max_retries, profile_dir),
        )
        future = pool.submit(_run_point, index, point)
        done, _ = wait({future}, timeout=supervisor.heartbeat_s)
        if not done:
            _kill_pool(pool)
            error = (
                "WorkerCrashError: worker made no progress within the "
                f"{supervisor.heartbeat_s:g}s heartbeat"
            )
            continue
        try:
            _, result, profile, point_failures = future.result()
        except BrokenProcessPool:
            _kill_pool(pool)
            continue
        except Exception as exc:  # unpicklable result, executor bug, ...
            _kill_pool(pool)
            failure = RunFailure(
                app=point.app,
                scheme=point.scheme_name,
                error=f"{type(exc).__name__}: {exc}",
                attempts=attempts,
            )
            return (
                _failed_result(point, failure.error),
                _synthetic_profile(point, index, failed=True),
                [failure],
                0,
            )
        pool.shutdown(wait=True)
        return result, profile, point_failures, 0
    failure = RunFailure(
        app=point.app,
        scheme=point.scheme_name,
        error=error,
        attempts=attempts,
    )
    return (
        _failed_result(point, error),
        _synthetic_profile(point, index, failed=True),
        [failure],
        1,
    )


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

def run_sweep(
    points: "list[SweepPoint]",
    jobs: "int | None" = None,
    policy: "HarnessPolicy | None" = None,
    profile_dir: "str | None" = None,
    supervisor: "SupervisorPolicy | None" = None,
    journal: "SweepJournal | None" = None,
    resume: bool = False,
) -> SweepReport:
    """Execute ``points`` over a supervised worker pool, through the cache.

    Args:
        points: the sweep; duplicates (same cache key) run once.
        jobs: worker processes (default: ``REPRO_JOBS`` or cpu count);
            clamped to the number of unique points. ``jobs <= 1`` runs
            inline in this process with identical semantics.
        policy: harness policy applied per worker (timeout, retries,
            keep-going); defaults to the active policy.
        profile_dir: when given, each computed point runs under cProfile
            and dumps its stats there (the ``--profile`` machinery).
        supervisor: crash/hang handling bounds; defaults to
            :func:`~repro.parallel.supervisor.supervisor_from_env`.
        journal: when given, every completed point is appended to this
            crash-safe checkpoint. Without ``resume`` the journal is
            reset first (a fresh sweep).
        resume: skip points the journal already records — ``ok`` points
            load straight from the result cache, ``failed`` points
            replay their recorded failure — and compute only the rest.

    Under a ``keep_going`` policy, worker failures (including crashes,
    reported as :class:`~repro.errors.WorkerCrashError` text) end up in
    the report's ``failures`` and are registered via
    :func:`repro.analysis.cache.mark_failed`; the parent policy's own
    ``failures`` list is *not* extended here, so the figure-render pass
    that follows reports each failure exactly as the serial path would.
    Under a strict policy the first failure (submission order) is
    re-raised after the sweep drains.

    The returned report's ``results`` are bit-identical to what the same
    points produce serially (see the module docstring).
    """
    points = dedupe_points(points)
    policy = policy if policy is not None else active_policy()
    supervisor = supervisor if supervisor is not None else supervisor_from_env()
    jobs = min(resolve_jobs(jobs), max(1, len(points)))
    results: "list[RunResult | None]" = [None] * len(points)
    profiles: "list[RunProfile | None]" = [None] * len(points)
    indexed_failures: "list[tuple[int, RunFailure]]" = []
    start = time.perf_counter()
    pool_respawns = 0
    degraded = False
    crashed_points = 0
    resumed_points = 0
    guard_info: "dict[str, object]" = {}

    journaled: "dict[str, dict]" = {}
    if journal is not None:
        if resume:
            journaled = journal.load()
        else:
            journal.reset()

    def finish_point(index, point, result, profile, point_failures) -> None:
        """Record a newly computed point (and journal its completion)."""
        nonlocal journal
        results[index] = result
        profiles[index] = profile
        indexed_failures.extend((index, f) for f in point_failures)
        if journal is None:
            return
        try:
            if point_failures:
                last = point_failures[-1]
                journal.record_failed(
                    point.key(), last.app, last.scheme, last.error,
                    last.attempts,
                )
            else:
                journal.record_ok(point.key())
        except ArtifactWriteError as err:
            # A full disk must not abort a sweep that can still compute:
            # drop to journal-less operation (results keep flowing; only
            # --resume fidelity for *this* sweep is lost) and say so.
            print(
                f"repro: sweep journal disabled: {err}",
                file=sys.stderr,
            )
            guard_info["journal_disabled"] = str(err)
            journal = None

    # Resolve journaled points first; only the rest is (re)computed.
    pending: "list[tuple[int, SweepPoint]]" = []
    for index, point in enumerate(points):
        record = journaled.get(point.key())
        if record is not None and record["status"] == "failed":
            failure = RunFailure(
                app=record.get("app", point.app),
                scheme=record.get("scheme", point.scheme_name),
                error=record.get("error", "unknown error"),
                attempts=int(record.get("attempts", 1)),
            )
            results[index] = _failed_result(point, failure.error)
            profiles[index] = _synthetic_profile(point, index, failed=True)
            indexed_failures.append((index, failure))
            resumed_points += 1
        elif record is not None and record["status"] == "ok" and point.is_cached():
            # Journaled complete: a parent-side cache load, no worker.
            seen = len(policy.failures)
            result, profile = _execute_point(index, point, policy, None)
            results[index] = result
            profiles[index] = profile
            indexed_failures.extend((index, f) for f in policy.failures[seen:])
            del policy.failures[seen:]
            resumed_points += 1
        else:
            pending.append((index, point))

    monitor: "PressureMonitor | None" = None
    if jobs <= 1 or len(pending) <= 1:
        for index, point in pending:
            seen = len(policy.failures)
            result, profile = _execute_point(index, point, policy,
                                             profile_dir)
            # Hand new failures to the report/registry; the render pass
            # owns appending them to the policy (parity with the pool).
            point_failures = list(policy.failures[seen:])
            del policy.failures[seen:]
            finish_point(index, point, result, profile, point_failures)
    elif pending:
        env = {k: v for k, v in os.environ.items() if k.startswith("REPRO_")}
        initargs = (env, policy.timeout_s, policy.max_retries, profile_dir)
        queue: "deque[tuple[int, SweepPoint]]" = deque(pending)
        in_flight: "dict" = {}
        pool = None
        pressure = pressure_from_env(jobs)
        if pressure is not None:
            monitor = PressureMonitor(jobs, pressure)
        artifact_dir = result_cache.cache_dir()
        try:
            while queue or in_flight:
                if degraded:
                    # Respawn budget spent: run the tail one point at a
                    # time, each isolated in its own single-worker pool,
                    # so repeat offenders are blamed definitively.
                    while queue:
                        index, point = queue.popleft()
                        result, profile, point_failures, crashed = (
                            _run_isolated(index, point, policy, profile_dir,
                                          supervisor, env)
                        )
                        crashed_points += crashed
                        finish_point(index, point, result, profile,
                                     point_failures)
                    break
                if pool is None:
                    pool = ProcessPoolExecutor(
                        max_workers=jobs,
                        initializer=_init_worker,
                        initargs=initargs,
                    )
                # Backpressure: bound how many points are concurrently
                # submitted instead of resizing the pool. Results are
                # keyed by submission index, so throttling only changes
                # *when* points run, never *what* they compute — a
                # throttled sweep stays bit-identical to a clean one.
                effective = jobs
                if monitor is not None:
                    worker_pids = list(getattr(pool, "_processes", {}) or {})
                    effective = monitor.update(worker_pids, artifact_dir)
                while queue and len(in_flight) < effective:
                    index, point = queue.popleft()
                    future = pool.submit(_run_point, index, point)
                    in_flight[future] = (index, point)
                done, _ = wait(
                    list(in_flight),
                    timeout=supervisor.heartbeat_s,
                    return_when=FIRST_COMPLETED,
                )
                # No completion within the heartbeat means the whole
                # pool made no progress: treat it like a broken pool.
                broken = not done
                for future in done:
                    index, point = in_flight.pop(future)
                    try:
                        _, result, profile, point_failures = future.result()
                    except BrokenProcessPool:
                        broken = True
                        queue.append((index, point))
                    except Exception as exc:
                        failure = RunFailure(
                            app=point.app,
                            scheme=point.scheme_name,
                            error=f"{type(exc).__name__}: {exc}",
                            attempts=1,
                        )
                        finish_point(
                            index, point,
                            _failed_result(point, failure.error),
                            _synthetic_profile(point, index, failed=True),
                            [failure],
                        )
                    else:
                        finish_point(index, point, result, profile,
                                     point_failures)
                if not broken:
                    continue
                # Salvage whatever already finished, requeue the rest
                # (a requeued point that did complete in its worker
                # comes back as a cache hit), and rebuild the pool after
                # a backoff — or degrade once the budget is spent.
                _kill_pool(pool)
                pool = None
                for future, (index, point) in list(in_flight.items()):
                    salvaged = False
                    if future.done():
                        try:
                            _, result, profile, point_failures = future.result()
                            salvaged = True
                        except Exception:
                            salvaged = False
                    if salvaged:
                        finish_point(index, point, result, profile,
                                     point_failures)
                    else:
                        queue.append((index, point))
                in_flight = {}
                pool_respawns += 1
                if pool_respawns > supervisor.max_pool_respawns:
                    degraded = True
                else:
                    time.sleep(supervisor.backoff_delay(pool_respawns))
        except (KeyboardInterrupt, ShutdownRequested):
            # Operator interrupt: every finished point is already
            # journaled (each append is fsynced), so kill the pool
            # without waiting on in-flight work and let the interrupt
            # propagate — the CLI layer prints the --resume hint.
            if pool is not None:
                _kill_pool(pool)
                pool = None
            raise
        finally:
            # Broken pools were already killed (pool = None above); a
            # surviving pool is healthy, so a waiting shutdown is safe.
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)

    if monitor is not None:
        throttling = monitor.describe()
        if throttling:
            guard_info["backpressure"] = throttling

    if jsonl_trace_enabled():
        merge_worker_traces()
        if monitor is not None and monitor.events:
            # Throttle decisions join the structured trace, so a traced
            # sweep's timeline shows *why* it slowed down.
            tracer = Tracer(JsonlSink(trace_base_path()))
            for event in monitor.events:
                tracer.emit(
                    f"guard:{event.action}",
                    reason=event.reason,
                    jobs_from=event.jobs_from,
                    jobs_to=event.jobs_to,
                    observed=round(event.observed, 3),
                    limit=round(event.limit, 3),
                )
            tracer.close()

    # Failure reporting stays deterministic (submission order) no matter
    # which worker finished, crashed, or got salvaged first.
    indexed_failures.sort(key=lambda item: item[0])
    failures = [failure for _, failure in indexed_failures]
    if failures:
        if not policy.keep_going:
            raise _rebuild_error(failures[0])
        for index, failure in indexed_failures:
            result_cache.mark_failed(points[index].key(), failure)

    return SweepReport(
        points=points,
        results=results,
        profiles=profiles,
        failures=failures,
        wall_s=time.perf_counter() - start,
        jobs=jobs,
        pool_respawns=pool_respawns,
        degraded_serial=degraded,
        crashed_points=crashed_points,
        resumed_points=resumed_points,
        guard=guard_info,
    )
