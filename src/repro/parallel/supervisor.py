"""Supervision policy for the parallel sweep executor.

:class:`SupervisorPolicy` bounds how :func:`repro.parallel.executor.run_sweep`
reacts to worker failure: how many times a broken pool is respawned, how
crashed points are retried once the executor degrades to one-at-a-time
isolation, how long the executor waits without *any* point completing
before declaring the pool hung, and the exponential backoff (with
jitter) inserted between respawns so a struggling machine is not
hammered with immediate pool rebuilds.
"""

from __future__ import annotations

import os
import random
import sys
from dataclasses import dataclass


@dataclass(frozen=True)
class SupervisorPolicy:
    """Bounds for worker-crash and hang handling in a sweep.

    ``heartbeat_s`` is a *progress* deadline, not a per-point timeout:
    it only trips when no in-flight point completes for that long, which
    is what distinguishes a hung worker from a merely slow sweep. The
    default (None) never trips — per-run timeouts are the
    :class:`~repro.analysis.runner.HarnessPolicy`'s job; the heartbeat
    exists for workers stuck outside the cooperative deadline's reach.
    """

    #: Progress deadline in seconds; None disables hang detection.
    heartbeat_s: "float | None" = None
    #: How many times a broken (or hung) pool is rebuilt before the
    #: executor degrades to isolated serial execution.
    max_pool_respawns: int = 2
    #: Extra attempts per point in degraded (isolated) execution.
    max_point_retries: int = 1
    #: Exponential backoff between respawns: base * 2**n, capped.
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 8.0
    #: Uniform random jitter added on top of each backoff.
    jitter_s: float = 0.25

    def __post_init__(self) -> None:
        if self.heartbeat_s is not None and self.heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be positive (or None)")
        if self.max_pool_respawns < 0 or self.max_point_retries < 0:
            raise ValueError("respawn/retry bounds must be >= 0")

    def backoff_delay(self, attempt: int, rng: "random.Random | None" = None) -> float:
        """Delay before respawn number ``attempt`` (1-based)."""
        base = min(
            self.backoff_cap_s,
            self.backoff_base_s * (2 ** max(0, attempt - 1)),
        )
        jitter = (rng or random).uniform(0.0, self.jitter_s)
        return base + jitter


def supervisor_from_env() -> SupervisorPolicy:
    """A :class:`SupervisorPolicy` honouring ``REPRO_HEARTBEAT``.

    ``REPRO_HEARTBEAT`` (seconds, positive number) arms hang detection
    for sweeps launched through the CLI; unset or ``off`` leaves it
    disabled. Invalid values warn on stderr and are ignored — never a
    silent misconfiguration.
    """
    raw = os.environ.get("REPRO_HEARTBEAT", "").strip().lower()
    if not raw or raw in ("off", "0", "no", "false", "none"):
        return SupervisorPolicy()
    try:
        heartbeat = float(raw)
    except ValueError:
        heartbeat = -1.0
    if heartbeat <= 0:
        print(
            f"repro: ignoring invalid REPRO_HEARTBEAT={raw!r} (expected a "
            f"positive number of seconds); hang detection is DISABLED",
            file=sys.stderr,
        )
        return SupervisorPolicy()
    return SupervisorPolicy(heartbeat_s=heartbeat)
