"""repro — a from-scratch reproduction of "Tiny Directory: Efficient
Shared Memory in Many-core Systems with Ultra-low-overhead Coherence
Tracking" (Shukla & Chaudhuri, HPCA 2017).

Quickstart::

    from repro import SystemConfig, TinySpec, run_app

    result = run_app("barnes", TinySpec(ratio=1 / 32, policy="gnru", spill=True))
    print(result.cycles, result.stats.lengthened_fraction)

The package layers:

* ``repro.core`` — the paper's contribution: STRA estimation, the tiny
  directory (DSTRA / DSTRA+gNRU) and the dynamic LLC spill policy.
* ``repro.coherence`` / ``repro.cache`` / ``repro.directory`` — the MESI
  protocol engine, private hierarchies, the banked LLC with corrupted
  states, and the competing directory organizations.
* ``repro.interconnect`` / ``repro.memory`` — the 2D mesh and DRAM
  substrates.
* ``repro.sim`` — configuration, system assembly, trace engine, stats.
* ``repro.workloads`` — synthetic traces for the seventeen Table II
  applications, plus the versioned ``.rtrace`` capture format
  (``repro.workloads.capture``) for recording and bit-identical replay.
* ``repro.energy`` / ``repro.analysis`` — the energy model and the
  per-figure experiment harness.
* ``repro.parallel`` — the supervised process-based sweep executor with
  profiling hooks, crash recovery, and resumable checkpoints
  (``run_sweep``, ``collect_points``); see ``docs/harness.md``.
* ``repro.recovery`` — self-healing coherence: bounded
  detect/diagnose/repair/re-verify cycles driven by the protocol
  auditor (``RecoveryManager``); see ``docs/resilience.md``.
* ``repro.verify`` — the protocol conformance subsystem: litmus tests,
  the random-walk fuzzer with shrinking, transition coverage, the
  cross-scheme differential harness (``python -m repro diff``), and the
  ``python -m repro verify`` entry point; see ``docs/verification.md``.
* ``repro.telemetry`` — structured transaction tracing (``TraceEvent``,
  ring/JSONL sinks), the metrics registry with phase timers, and
  ``BENCH_*.json`` perf-baseline emission; see ``docs/telemetry.md``.
* ``repro.guard`` — resource governance: declarative run budgets with a
  sampling watchdog (``RunBudget``, ``guard_scope``), sweep
  backpressure (``PressureMonitor``), disk preflight/quota/retention,
  and graceful SIGINT/SIGTERM shutdown; see ``docs/resilience.md``.

The full documented public surface is re-exported here; see
``docs/architecture.md`` for the module map.
"""

from repro.analysis.cache import cached_run
from repro.analysis.runner import (
    HarnessPolicy,
    RunFailure,
    RunScale,
    harness,
    run_app,
    run_app_guarded,
    scale_from_env,
)
from repro.guard import (
    PressureMonitor,
    PressurePolicy,
    RunBudget,
    Watchdog,
    budget_from_env,
    check_watchdog,
    graceful_scope,
    guard_scope,
    resume_hint,
)
from repro.parallel import (
    RunProfile,
    SupervisorPolicy,
    SweepJournal,
    SweepPoint,
    SweepReport,
    collect_points,
    run_sweep,
    run_tasks,
)
from repro.recovery import RecoveryManager, RecoveryPolicy, recovery_from_env
from repro.sim.config import (
    InLLCSpec,
    MgdSpec,
    SparseSpec,
    StashSpec,
    SystemConfig,
    TinySpec,
)
from repro.sim.engine import TraceEngine, run_trace
from repro.sim.fastpath import fast_lane_from_env
from repro.sim.results import RunResult
from repro.sim.stats import SimStats
from repro.sim.system import System
from repro.telemetry import (
    JsonlSink,
    MetricsRegistry,
    RingBufferSink,
    TraceEvent,
    Tracer,
    install_tracer,
    merge_snapshots,
    merge_worker_traces,
    metrics_from_env,
    read_trace,
    tracer_from_env,
    write_bench_point,
)
from repro.types import Access, AccessKind
from repro.verify import (
    CoverageMap,
    ValueOracle,
    diff_trace,
    fuzz_run,
    replay_subtrace,
    run_litmus,
    run_schedule,
)
from repro.workloads.capture import (
    TraceReader,
    TraceWriter,
    load_capture,
    save_capture,
    trace_fingerprint,
)
from repro.workloads.generator import (
    SyntheticTraceGenerator,
    clear_trace_cache,
    generate_streams,
    load_streams,
    trace_cache_stats,
)
from repro.workloads.profiles import APPLICATIONS, PROFILES, WorkloadProfile, profile

__version__ = "1.0.0"

__all__ = [
    "Access",
    "AccessKind",
    "APPLICATIONS",
    "CoverageMap",
    "HarnessPolicy",
    "InLLCSpec",
    "JsonlSink",
    "MetricsRegistry",
    "MgdSpec",
    "PROFILES",
    "PressureMonitor",
    "PressurePolicy",
    "RecoveryManager",
    "RecoveryPolicy",
    "RingBufferSink",
    "RunBudget",
    "RunFailure",
    "RunProfile",
    "RunResult",
    "RunScale",
    "SimStats",
    "SparseSpec",
    "StashSpec",
    "SupervisorPolicy",
    "SweepJournal",
    "SweepPoint",
    "SweepReport",
    "SyntheticTraceGenerator",
    "System",
    "SystemConfig",
    "TinySpec",
    "TraceEngine",
    "TraceEvent",
    "TraceReader",
    "TraceWriter",
    "Tracer",
    "ValueOracle",
    "Watchdog",
    "WorkloadProfile",
    "budget_from_env",
    "cached_run",
    "check_watchdog",
    "clear_trace_cache",
    "collect_points",
    "diff_trace",
    "fast_lane_from_env",
    "fuzz_run",
    "generate_streams",
    "graceful_scope",
    "guard_scope",
    "harness",
    "install_tracer",
    "load_capture",
    "load_streams",
    "merge_snapshots",
    "merge_worker_traces",
    "metrics_from_env",
    "profile",
    "read_trace",
    "recovery_from_env",
    "replay_subtrace",
    "resume_hint",
    "run_app",
    "run_app_guarded",
    "run_litmus",
    "run_schedule",
    "run_sweep",
    "run_tasks",
    "run_trace",
    "save_capture",
    "scale_from_env",
    "trace_cache_stats",
    "trace_fingerprint",
    "tracer_from_env",
    "write_bench_point",
    "__version__",
]
