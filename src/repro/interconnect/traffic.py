"""Interconnect traffic accounting.

The paper's Figure 5 splits traffic into three message classes:

* **processor** — private-cache miss requests and their responses,
* **writeback** — eviction notices from the cores and their
  acknowledgements,
* **coherence** — requests forwarded by the home LLC bank (interventions,
  invalidations) and the busy-clear / acknowledgement messages they
  generate.

Message sizes follow the usual convention: a control message is one
8-byte flit; a data message carries the 64-byte block plus the header.
Partial-reconstruction messages (the ``4 + ceil(log2 C)`` borrowed bits an
E-state eviction carries back to the LLC, Section III-B) round up to the
header plus two bytes.
"""

from __future__ import annotations

import enum

#: Size in bytes of a header-only control message.
CONTROL_BYTES = 8

#: Size in bytes of a full data-carrying message (64-byte block + header).
DATA_BYTES = 72

#: Size of an eviction notice that carries the borrowed coherence bits.
PARTIAL_BYTES = 10


class MessageClass(enum.Enum):
    """Traffic class of an interconnect message (paper Fig. 5)."""

    PROCESSOR = "processor"
    WRITEBACK = "writeback"
    COHERENCE = "coherence"


class TrafficMeter:
    """Accumulates interconnect bytes per :class:`MessageClass`."""

    def __init__(self) -> None:
        self._bytes = {cls: 0 for cls in MessageClass}
        self._messages = {cls: 0 for cls in MessageClass}

    def clear(self) -> None:
        """Zero all counters in place (warmup boundary)."""
        for cls in MessageClass:
            self._bytes[cls] = 0
            self._messages[cls] = 0

    def record(self, message_class: MessageClass, size_bytes: int, count: int = 1) -> None:
        """Record ``count`` messages of ``size_bytes`` each."""
        self._bytes[message_class] += size_bytes * count
        self._messages[message_class] += count

    def control(self, message_class: MessageClass, count: int = 1) -> None:
        """Record control (header-only) messages."""
        self.record(message_class, CONTROL_BYTES, count)

    def data(self, message_class: MessageClass, count: int = 1) -> None:
        """Record full data messages."""
        self.record(message_class, DATA_BYTES, count)

    def partial(self, message_class: MessageClass, count: int = 1) -> None:
        """Record partial-block reconstruction messages."""
        self.record(message_class, PARTIAL_BYTES, count)

    def bytes_for(self, message_class: MessageClass) -> int:
        """Total bytes recorded for ``message_class``."""
        return self._bytes[message_class]

    def messages_for(self, message_class: MessageClass) -> int:
        """Total message count recorded for ``message_class``."""
        return self._messages[message_class]

    @property
    def total_bytes(self) -> int:
        """Total bytes across all classes."""
        return sum(self._bytes.values())

    def as_dict(self) -> "dict[str, int]":
        """Bytes per class keyed by the class value (for reports)."""
        return {cls.value: self._bytes[cls] for cls in MessageClass}

    def dump(self) -> "dict[str, dict[str, int]]":
        """Full serializable snapshot (bytes and message counts)."""
        return {
            "bytes": {cls.value: self._bytes[cls] for cls in MessageClass},
            "messages": {cls.value: self._messages[cls] for cls in MessageClass},
        }

    @classmethod
    def load(cls, payload: "dict[str, dict[str, int]]") -> "TrafficMeter":
        """Rebuild a meter from :meth:`dump` output."""
        meter = cls()
        for name, value in payload.get("bytes", {}).items():
            meter._bytes[MessageClass(name)] = value
        for name, value in payload.get("messages", {}).items():
            meter._messages[MessageClass(name)] = value
        return meter
