"""2D mesh topology and latency model.

The paper's system (Table I) places one core, its private caches, one LLC
bank, and one sparse-directory slice at each mesh tile. The routing
pipeline is four stages at 2 GHz plus one 1 ns link traversal, for an
overall hop latency of 3 ns (6 core cycles at 2 GHz). We model XY routing,
so the latency between two tiles is ``manhattan_distance * hop_cycles``.

Memory controllers are distributed evenly over the mesh edge; an LLC miss
pays the additional tile-to-controller distance.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError


#: Largest mesh for which full distance/latency tables are precomputed
#: (``num_tiles**2`` entries each; 2048 tiles -> 4M-entry tables). The
#: paper's largest machine is 128 tiles, so the fallback to computed
#: distances exists only for pathological configurations.
_TABLE_TILE_LIMIT = 2048


class Mesh2D:
    """A ``width x height`` mesh of tiles with XY-routing distances.

    Distances and latencies between all tile pairs are precomputed into
    flat tables at construction (the lookups are on the home-controller
    critical path of every LLC transaction).

    Args:
        num_tiles: total number of tiles; must form a rectangle no more
            than twice as wide as tall (a square when ``num_tiles`` is a
            perfect square).
        hop_cycles: core cycles per hop (router pipeline + link).
        num_memory_controllers: controllers placed round-robin along the
            top and bottom rows, matching the paper's "evenly distributed
            over the mesh" arrangement.
    """

    __slots__ = (
        "num_tiles",
        "width",
        "height",
        "hop_cycles",
        "num_memory_controllers",
        "_mc_tiles",
        "_mc_distance",
        "_mc_latency",
        "_distance_table",
        "_latency_table",
    )

    def __init__(
        self,
        num_tiles: int,
        hop_cycles: int = 6,
        num_memory_controllers: int = 8,
    ) -> None:
        if num_tiles <= 0:
            raise ConfigError(f"num_tiles must be positive, got {num_tiles}")
        if hop_cycles <= 0:
            raise ConfigError(f"hop_cycles must be positive, got {hop_cycles}")
        # Choose the most square factorization (width >= height), e.g.
        # 128 tiles -> 16x8, 64 -> 8x8, 32 -> 8x4.
        height = max(
            h for h in range(1, int(math.isqrt(num_tiles)) + 1)
            if num_tiles % h == 0
        )
        self.num_tiles = num_tiles
        self.width = num_tiles // height
        self.height = height
        self.hop_cycles = hop_cycles
        controllers = max(1, min(num_memory_controllers, num_tiles))
        self.num_memory_controllers = controllers
        self._mc_tiles = self._place_controllers(controllers)
        # Distance tables are tiny (num_tiles entries); precompute the
        # nearest-controller distance per tile.
        self._mc_distance = [
            min(self._computed_distance(tile, mc) for mc in self._mc_tiles)
            for tile in range(num_tiles)
        ]
        self._mc_latency = [d * hop_cycles for d in self._mc_distance]
        # Full pairwise tables, indexed [src * num_tiles + dst]. At the
        # paper's scales (<= 128 tiles) these are at most 16K entries.
        if num_tiles <= _TABLE_TILE_LIMIT:
            table = [
                self._computed_distance(src, dst)
                for src in range(num_tiles)
                for dst in range(num_tiles)
            ]
            self._distance_table = table
            self._latency_table = [d * hop_cycles for d in table]
        else:  # pragma: no cover - pathological configuration
            self._distance_table = None
            self._latency_table = None

    def _place_controllers(self, count: int) -> list:
        """Spread controllers across the top and bottom mesh rows."""
        tiles = []
        for index in range(count):
            row = 0 if index % 2 == 0 else self.height - 1
            col = (index // 2 * max(1, self.width // max(1, (count + 1) // 2))) % self.width
            tiles.append(row * self.width + col)
        return tiles

    def coordinates(self, tile: int) -> "tuple[int, int]":
        """Return the (x, y) coordinates of ``tile``."""
        return tile % self.width, tile // self.width

    def _computed_distance(self, src: int, dst: int) -> int:
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return abs(sx - dx) + abs(sy - dy)

    def distance(self, src: int, dst: int) -> int:
        """Manhattan (XY-routing) hop count between two tiles."""
        if self._distance_table is not None:
            return self._distance_table[src * self.num_tiles + dst]
        return self._computed_distance(src, dst)  # pragma: no cover

    def latency(self, src: int, dst: int) -> int:
        """One-way message latency in core cycles between two tiles."""
        if self._latency_table is not None:
            return self._latency_table[src * self.num_tiles + dst]
        return self._computed_distance(src, dst) * self.hop_cycles  # pragma: no cover

    def memory_latency(self, tile: int) -> int:
        """One-way latency from ``tile`` to its nearest memory controller."""
        return self._mc_latency[tile]

    @property
    def average_distance(self) -> float:
        """Mean hop count over all ordered tile pairs (used by tests)."""
        total = 0
        for src in range(self.num_tiles):
            for dst in range(self.num_tiles):
                total += self.distance(src, dst)
        return total / (self.num_tiles * self.num_tiles)
