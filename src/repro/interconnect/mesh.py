"""2D mesh topology and latency model.

The paper's system (Table I) places one core, its private caches, one LLC
bank, and one sparse-directory slice at each mesh tile. The routing
pipeline is four stages at 2 GHz plus one 1 ns link traversal, for an
overall hop latency of 3 ns (6 core cycles at 2 GHz). We model XY routing,
so the latency between two tiles is ``manhattan_distance * hop_cycles``.

Memory controllers are distributed evenly over the mesh edge; an LLC miss
pays the additional tile-to-controller distance.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError


class Mesh2D:
    """A ``width x height`` mesh of tiles with XY-routing distances.

    Args:
        num_tiles: total number of tiles; must form a rectangle no more
            than twice as wide as tall (a square when ``num_tiles`` is a
            perfect square).
        hop_cycles: core cycles per hop (router pipeline + link).
        num_memory_controllers: controllers placed round-robin along the
            top and bottom rows, matching the paper's "evenly distributed
            over the mesh" arrangement.
    """

    def __init__(
        self,
        num_tiles: int,
        hop_cycles: int = 6,
        num_memory_controllers: int = 8,
    ) -> None:
        if num_tiles <= 0:
            raise ConfigError(f"num_tiles must be positive, got {num_tiles}")
        if hop_cycles <= 0:
            raise ConfigError(f"hop_cycles must be positive, got {hop_cycles}")
        # Choose the most square factorization (width >= height), e.g.
        # 128 tiles -> 16x8, 64 -> 8x8, 32 -> 8x4.
        height = max(
            h for h in range(1, int(math.isqrt(num_tiles)) + 1)
            if num_tiles % h == 0
        )
        self.num_tiles = num_tiles
        self.width = num_tiles // height
        self.height = height
        self.hop_cycles = hop_cycles
        controllers = max(1, min(num_memory_controllers, num_tiles))
        self.num_memory_controllers = controllers
        self._mc_tiles = self._place_controllers(controllers)
        # Distance tables are tiny (num_tiles entries); precompute the
        # nearest-controller distance per tile.
        self._mc_distance = [
            min(self.distance(tile, mc) for mc in self._mc_tiles)
            for tile in range(num_tiles)
        ]

    def _place_controllers(self, count: int) -> list:
        """Spread controllers across the top and bottom mesh rows."""
        tiles = []
        for index in range(count):
            row = 0 if index % 2 == 0 else self.height - 1
            col = (index // 2 * max(1, self.width // max(1, (count + 1) // 2))) % self.width
            tiles.append(row * self.width + col)
        return tiles

    def coordinates(self, tile: int) -> "tuple[int, int]":
        """Return the (x, y) coordinates of ``tile``."""
        return tile % self.width, tile // self.width

    def distance(self, src: int, dst: int) -> int:
        """Manhattan (XY-routing) hop count between two tiles."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return abs(sx - dx) + abs(sy - dy)

    def latency(self, src: int, dst: int) -> int:
        """One-way message latency in core cycles between two tiles."""
        return self.distance(src, dst) * self.hop_cycles

    def memory_latency(self, tile: int) -> int:
        """One-way latency from ``tile`` to its nearest memory controller."""
        return self._mc_distance[tile] * self.hop_cycles

    @property
    def average_distance(self) -> float:
        """Mean hop count over all ordered tile pairs (used by tests)."""
        total = 0
        for src in range(self.num_tiles):
            for dst in range(self.num_tiles):
                total += self.distance(src, dst)
        return total / (self.num_tiles * self.num_tiles)
