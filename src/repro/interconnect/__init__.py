"""2D mesh interconnect model: hop distances, latencies, traffic metering."""

from repro.interconnect.mesh import Mesh2D
from repro.interconnect.traffic import MessageClass, TrafficMeter

__all__ = ["Mesh2D", "MessageClass", "TrafficMeter"]
