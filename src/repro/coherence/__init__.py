"""MESI coherence protocol: states, coherence info, home controllers."""

from repro.coherence.info import CohInfo
from repro.coherence.transaction import AccessOutcome

__all__ = ["CohInfo", "AccessOutcome"]
