"""Home controllers for the sparse-directory scheme family.

:class:`SparseHome` implements the baseline write-invalidate MESI home
node with a sparse directory (Section II / Fig. 1 of the paper). Three
small hook methods — :meth:`_find`, :meth:`_install`, :meth:`_drop` —
abstract where tracking information lives, so the competing organizations
are subclasses:

* :class:`SharedOnlyHome` — the Fig. 3 idealized design: only shared
  blocks occupy the limited directory; private/exclusive blocks live in a
  zero-cost unbounded structure.
* :class:`StashHome` — Stash directory [14]: private entries are dropped
  without invalidation and recovered by broadcast on later sharing.
* :class:`MgdHome` — multi-grain directory [47]: one entry per private
  1 KB region, block-grain entries for shared data.
"""

from __future__ import annotations

from repro.coherence.base import BaseHome
from repro.coherence.info import CohInfo
from repro.coherence.transaction import AccessOutcome
from repro.directory.mgd import BLOCKS_PER_REGION, MultiGrainDirectory, RegionEntry
from repro.directory.stash import StashState
from repro.errors import InvariantViolation, ProtocolError
from repro.interconnect.traffic import MessageClass
from repro.types import AccessKind, LLCState, PrivateState


class SparseHome(BaseHome):
    """Baseline MESI home node with a sparse directory."""

    __slots__ = ("directory",)

    def __init__(self, config, mesh, dram, cores, stats, directory) -> None:
        super().__init__(config, mesh, dram, cores, stats)
        self.directory = directory

    # ------------------------------------------------------------------
    # Tracking hooks (overridden by scheme variants)
    # ------------------------------------------------------------------

    def _find(self, addr: int, core: int, now: int, out: "AccessOutcome | None") -> "CohInfo | None":
        """Locate the tracking info for ``addr``, or None if untracked."""
        return self.directory.lookup(addr)

    def _install(self, addr: int, coh: CohInfo, now: int) -> None:
        """Start tracking ``addr``; back-invalidates any directory victim."""
        if self.coverage.enabled:
            self.coverage.note("dir:alloc")
        victim = self.directory.allocate(addr, coh)
        if victim is not None:
            if self.coverage.enabled:
                self.coverage.note("dir:evict")
            self._back_invalidate(*victim, now)

    def _drop(self, addr: int, coh: CohInfo) -> None:
        """Stop tracking ``addr`` (no private copies remain)."""
        if self.coverage.enabled:
            self.coverage.note("dir:drop")
        self.directory.remove(addr)

    def _after_update(self, addr: int, coh: CohInfo, now: int) -> None:
        """Hook called after mutating a tracked block's CohInfo."""
        if coh.is_idle:
            self._drop(addr, coh)

    def _back_invalidate(self, addr: int, coh: CohInfo, now: int) -> None:
        """Invalidate every private copy of an evicted tracking entry."""
        if self.recorder.enabled:
            self.recorder.record(addr, "back_invalidate", detail=f"holders={coh.holders()}")
        if self.coverage.enabled:
            self.coverage.note("dir:back_invalidate")
        if self.tracer.enabled:
            self.tracer.emit(
                "back_inval", cycle=now, addr=addr, holders=coh.holders()
            )
        self.stats.back_invalidations += len(coh.holders())
        self._invalidate_holders(addr, coh, now)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def rebuild_tracking(self, addr: int, truth: CohInfo, now: int = 0) -> str:
        """Repair the directory entry for ``addr`` against ``truth``."""
        coh = self.directory.peek(addr)
        if truth.is_idle:
            if coh is None:
                return "directory:already-absent"
            self.directory.remove(addr)
            return "directory:removed"
        if coh is not None:
            coh.owner = truth.owner
            coh.sharers = truth.sharers
            return "directory:rewritten"
        self._install(addr, truth.copy(), now)
        return "directory:reinstalled"

    # ------------------------------------------------------------------
    # LLC helpers
    # ------------------------------------------------------------------

    def _fill_llc(self, addr: int, state: LLCState, now: int):
        bank = self.banks[self.bank_of(addr)]
        line, victim = bank.insert_block(addr, state)
        if victim is not None:
            self._handle_llc_victim(victim, now)
        return line

    def _handle_llc_victim(self, victim, now: int) -> None:
        self._flush_residency(victim)
        if victim.state is LLCState.DIRTY:
            self._dram_write(victim.tag, now)

    def _ensure_llc_data(self, addr: int, dirty: bool, now: int) -> None:
        """Deposit written-back data into the LLC (allocate on absence)."""
        bank = self.banks[self.bank_of(addr)]
        line, _ = bank.lookup(addr, touch=False)
        if line is None:
            self._fill_llc(addr, LLCState.DIRTY if dirty else LLCState.CLEAN, now)
        else:
            if dirty:
                line.state = LLCState.DIRTY
            bank.data_writes += 1

    # ------------------------------------------------------------------
    # The protocol
    # ------------------------------------------------------------------

    def handle_access(
        self,
        core: int,
        addr: int,
        kind: AccessKind,
        now: int,
        upgrade: bool = False,
    ) -> AccessOutcome:
        out = AccessOutcome()
        home = self.bank_of(addr)
        bank = self.banks[home]
        if self.recorder.enabled:
            self.recorder.record(
                addr, "upgrade" if upgrade else kind.name.lower(), core=core
            )
        self.traffic.control(MessageClass.PROCESSOR)  # the request
        coh = self._find(addr, core, now, out)
        line, _ = bank.lookup(addr)

        if upgrade:
            self._serve_upgrade(core, addr, coh, home, now, out)
            return out

        shared_read = kind.is_read and coh is not None and coh.is_shared
        if line is not None:
            if kind.is_read:
                line.total_reads += 1
            if shared_read:
                line.fwd_reads += 1

        if coh is None or coh.is_idle:
            self._serve_untracked(core, addr, kind, line, home, now, out)
        elif coh.is_exclusive:
            self._serve_exclusive(core, addr, kind, coh, home, now, out)
        else:
            self._serve_shared(core, addr, kind, coh, line, home, now, out)
        return out

    # -- untracked: no private copies anywhere ---------------------------

    def _serve_untracked(self, core, addr, kind, line, home, now, out) -> None:
        latency = self._two_hop(core, home)
        if line is None or line.state is LLCState.INVALID:
            latency += self._dram_fetch(addr, now, out)
            line = self._fill_llc(addr, LLCState.CLEAN, now)
            if kind.is_read:
                line.total_reads += 1
        coh = CohInfo()
        if kind is AccessKind.WRITE:
            coh.set_owner(core)
            out.fill_state = PrivateState.MODIFIED
        elif kind is AccessKind.IFETCH:
            coh.add_sharer(core)
            out.fill_state = PrivateState.SHARED
        else:
            coh.set_owner(core)
            out.fill_state = PrivateState.EXCLUSIVE
        self._install(addr, coh, now)
        line.note_holders(coh)
        self.traffic.data(MessageClass.PROCESSOR)  # the data response
        out.latency = latency

    # -- exclusively owned by another core -------------------------------

    def _serve_exclusive(self, core, addr, kind, coh, home, now, out) -> None:
        owner = coh.owner
        if owner == core:
            raise ProtocolError(
                f"core {core} missed on block {addr:#x} it supposedly owns"
            )
        out.hops = 3
        out.latency = self._three_hop(core, home, owner)
        if self.coverage.enabled:
            self.coverage.note("dir:fwd_exclusive")
        self.traffic.control(MessageClass.COHERENCE)  # forwarded request
        self.traffic.data(MessageClass.PROCESSOR)  # owner -> requester data
        self.traffic.control(MessageClass.COHERENCE)  # busy-clear to home
        if kind is AccessKind.WRITE:
            prior = self.cores[owner].invalidate(addr)
            if prior is PrivateState.INVALID:
                raise ProtocolError(f"stale owner for block {addr:#x}")
            self.stats.invalidations += 1
            coh.set_owner(core)
            out.fill_state = PrivateState.MODIFIED
        else:
            prior = self.cores[owner].downgrade(addr)
            if prior is PrivateState.MODIFIED:
                # The downgrade deposits the dirty block at the home LLC.
                self.traffic.data(MessageClass.WRITEBACK)
                self._ensure_llc_data(addr, dirty=True, now=now)
            coh.add_sharer(core)
            out.fill_state = PrivateState.SHARED
        self._after_update(addr, coh, now)

    # -- shared by one or more cores --------------------------------------

    def _serve_shared(self, core, addr, kind, coh, line, home, now, out) -> None:
        line_valid = line is not None and line.state in (
            LLCState.CLEAN,
            LLCState.DIRTY,
        )
        if kind is AccessKind.WRITE:
            if self.coverage.enabled:
                self.coverage.note("dir:write_shared")
            holders = coh.sharer_list()
            inval_path = self._invalidation_latency(home, holders, core)
            if line_valid:
                base = self._two_hop(core, home)
            else:
                forwarder = self._closest_sharer(coh, home)
                base = self._three_hop(core, home, forwarder)
                out.hops = 3
                self.traffic.control(MessageClass.COHERENCE)
            self.traffic.data(MessageClass.PROCESSOR)
            self._invalidate_holders(addr, coh, now, data_to_requester=True)
            coh.set_owner(core)
            out.fill_state = PrivateState.MODIFIED
            out.latency = max(
                base, self.mesh.latency(core, home) + self.config.llc_tag_latency + inval_path
            )
        else:
            if line_valid:
                out.latency = self._two_hop(core, home)
                self.traffic.data(MessageClass.PROCESSOR)
            else:
                # Non-inclusive LLC lost the clean copy: forward to the
                # elected sharer and refill the LLC alongside.
                forwarder = self._closest_sharer(coh, home)
                out.hops = 3
                out.latency = self._three_hop(core, home, forwarder)
                self.traffic.control(MessageClass.COHERENCE)
                self.traffic.data(MessageClass.PROCESSOR)
                self.traffic.control(MessageClass.COHERENCE)
                self.traffic.data(MessageClass.WRITEBACK)  # LLC refill
                line = self._fill_llc(addr, LLCState.CLEAN, now)
            coh.add_sharer(core)
            out.fill_state = PrivateState.SHARED
        if line is not None:
            line.note_holders(coh)
        self._after_update(addr, coh, now)

    # -- S -> M upgrades ----------------------------------------------------

    def _serve_upgrade(self, core, addr, coh, home, now, out) -> None:
        out.is_upgrade = True
        if self.coverage.enabled:
            self.coverage.note("dir:upgrade")
        if coh is None or not coh.holds(core):
            raise ProtocolError(
                f"core {core} upgrades block {addr:#x} the tracker does not "
                f"record it sharing"
            )
        holders = [h for h in coh.sharer_list() if h != core]
        inval_path = self._invalidation_latency(home, holders, core)
        for holder in holders:
            prior = self.cores[holder].invalidate(addr)
            if prior is PrivateState.INVALID:
                raise ProtocolError(f"stale sharer for block {addr:#x}")
            self.traffic.control(MessageClass.COHERENCE)
            self.traffic.control(MessageClass.COHERENCE)
            self.stats.invalidations += 1
        coh.set_owner(core)
        self.traffic.control(MessageClass.PROCESSOR)  # grant
        request_leg = self.mesh.latency(core, home) + self.config.llc_tag_latency
        out.latency = request_leg + max(self.mesh.latency(home, core), inval_path)
        out.hops = 2 if not holders else 3
        self._after_update(addr, coh, now)

    # ------------------------------------------------------------------
    # Eviction notices
    # ------------------------------------------------------------------

    def handle_private_eviction(
        self, core: int, addr: int, state: PrivateState, now: int
    ) -> None:
        if self.recorder.enabled:
            self.recorder.record(addr, "evict_notice", core=core, detail=state.name)
        if state is PrivateState.MODIFIED:
            self.traffic.data(MessageClass.WRITEBACK)
            self._ensure_llc_data(addr, dirty=True, now=now)
        else:
            self.traffic.control(MessageClass.WRITEBACK)
        self.traffic.control(MessageClass.WRITEBACK)  # acknowledgement
        coh = self._find(addr, core, now, None)
        if coh is None:
            return
        coh.remove(core)
        self._after_update(addr, coh, now)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    def _tracks(self, addr: int, core: int) -> bool:
        """True when the tracking structures record ``core`` holding
        ``addr`` (used by the reverse invariant)."""
        coh = self.directory.peek(addr)
        return coh is not None and coh.holds(core)

    def check_invariants(self) -> None:
        """Tracking and private caches must exactly mirror each other."""
        if hasattr(self.directory, "iter_entries"):
            for addr, coh in self.directory.iter_entries():
                for holder in coh.holders():
                    state = self.cores[holder].state_of(addr)
                    if state is PrivateState.INVALID:
                        raise InvariantViolation(
                            f"directory records core {holder} holding "
                            f"{addr:#x} but its cache does not",
                            addr=addr,
                            cores=(holder,),
                        )
                    if coh.is_exclusive and not state.is_exclusive:
                        raise InvariantViolation(
                            f"directory says {addr:#x} exclusive at {holder}, "
                            f"cache says {state}",
                            addr=addr,
                            cores=(holder,),
                        )
        self._check_single_writer()
        for core in self.cores:
            for addr, _ in core.resident_blocks():
                if not self._tracks(addr, core.core_id):
                    raise InvariantViolation(
                        f"core {core.core_id} caches {addr:#x} but no "
                        f"tracking structure records it",
                        addr=addr,
                        cores=(core.core_id,),
                    )

    def _check_single_writer(self) -> None:
        exclusive_holder: "dict[int, int]" = {}
        holders: "dict[int, list[int]]" = {}
        for core in self.cores:
            for addr, state in core.resident_blocks():
                holders.setdefault(addr, []).append(core.core_id)
                if state.is_exclusive:
                    if addr in exclusive_holder:
                        raise InvariantViolation(
                            f"block {addr:#x} exclusively held by both "
                            f"{exclusive_holder[addr]} and {core.core_id}",
                            addr=addr,
                            cores=(exclusive_holder[addr], core.core_id),
                        )
                    exclusive_holder[addr] = core.core_id
        for addr, holder in exclusive_holder.items():
            if len(holders[addr]) > 1:
                raise InvariantViolation(
                    f"block {addr:#x} held exclusively by {holder} while "
                    f"also cached by {holders[addr]}",
                    addr=addr,
                    cores=tuple(holders[addr]),
                )


class SharedOnlyHome(SparseHome):
    """Idealized design tracking only shared blocks in the directory.

    Private and exclusively-owned blocks live in an unbounded zero-cost
    map (the paper's Fig. 3 experiment explicitly ignores its overhead).
    A block moves into the limited directory when it enters the S state
    with two distinct sharers, and back out when it becomes exclusively
    owned again.
    """

    __slots__ = ("_unbounded",)

    def __init__(self, config, mesh, dram, cores, stats, directory) -> None:
        super().__init__(config, mesh, dram, cores, stats, directory)
        self._unbounded: "dict[int, CohInfo]" = {}

    def _find(self, addr, core, now, out):
        coh = self._unbounded.get(addr)
        if coh is not None:
            return coh
        return self.directory.lookup(addr)

    def _install(self, addr, coh, now):
        if coh.sharer_count() >= 2:
            super()._install(addr, coh, now)
        else:
            if self.coverage.enabled:
                self.coverage.note("shared_only:private")
            self._unbounded[addr] = coh

    def _drop(self, addr, coh):
        if self._unbounded.pop(addr, None) is None:
            self.directory.remove(addr)

    def _after_update(self, addr, coh, now):
        if coh.is_idle:
            self._drop(addr, coh)
            return
        if addr in self._unbounded:
            if coh.sharer_count() >= 2:
                del self._unbounded[addr]
                if self.coverage.enabled:
                    self.coverage.note("shared_only:promote")
                super()._install(addr, coh, now)
        else:
            if coh.is_exclusive:
                # The limited directory only holds shared blocks.
                if self.directory.remove(addr) is not None:
                    if self.coverage.enabled:
                        self.coverage.note("shared_only:demote")
                    self._unbounded[addr] = coh

    def _tracks(self, addr, core):
        coh = self._unbounded.get(addr)
        if coh is not None and coh.holds(core):
            return True
        return super()._tracks(addr, core)

    def rebuild_tracking(self, addr, truth, now=0):
        # Purge both structures, then reinstall through _install so the
        # record lands on the side the shared-only split dictates.
        in_unbounded = self._unbounded.pop(addr, None) is not None
        in_directory = self.directory.peek(addr) is not None
        if in_directory:
            self.directory.remove(addr)
        if truth.is_idle:
            if in_unbounded or in_directory:
                return "shared-only:removed"
            return "shared-only:already-absent"
        self._install(addr, truth.copy(), now)
        return "shared-only:reinstalled"

    def check_invariants(self) -> None:
        super().check_invariants()
        for addr, coh in self._unbounded.items():
            if coh.sharer_count() >= 2:
                raise InvariantViolation(
                    f"block {addr:#x} with two sharers left in the "
                    f"unbounded private tracker",
                    addr=addr,
                    cores=tuple(coh.holders()),
                )
            for holder in coh.holders():
                if self.cores[holder].state_of(addr) is PrivateState.INVALID:
                    raise InvariantViolation(
                        f"unbounded tracker records core {holder} holding "
                        f"{addr:#x} but its cache does not",
                        addr=addr,
                        cores=(holder,),
                    )


class StashHome(SparseHome):
    """Stash directory: drop private entries, broadcast to recover."""

    __slots__ = ("stash",)

    def __init__(self, config, mesh, dram, cores, stats, directory) -> None:
        super().__init__(config, mesh, dram, cores, stats, directory)
        self.stash = StashState()

    def _install(self, addr, coh, now):
        if self.coverage.enabled:
            self.coverage.note("dir:alloc")
        victim = self.directory.allocate(addr, coh)
        if victim is None:
            return
        if self.coverage.enabled:
            self.coverage.note("dir:evict")
        vaddr, vcoh = victim
        if vcoh.is_exclusive:
            # Leave the private copy in place, untracked.
            if self.coverage.enabled:
                self.coverage.note("stash:stash")
            self.stash.stash(vaddr, vcoh.owner)
        else:
            self._back_invalidate(vaddr, vcoh, now)

    def _find(self, addr, core, now, out):
        coh = self.directory.lookup(addr)
        if coh is not None:
            return coh
        holder = self.stash.owner_of(addr)
        if holder is None:
            return None
        # Broadcast recovery: query every core, collect responses.
        if self.recorder.enabled:
            self.recorder.record(addr, "stash_recover", core=holder)
        if self.coverage.enabled:
            self.coverage.note("stash:recover")
        self.stash.unstash(addr)
        self.stats.broadcasts += 1
        num_cores = self.config.num_cores
        self.traffic.control(MessageClass.COHERENCE, count=num_cores)
        self.traffic.control(MessageClass.COHERENCE, count=num_cores)
        if out is not None:
            max_span = (
                (self.mesh.width - 1 + self.mesh.height - 1) * self.mesh.hop_cycles
            )
            out.latency += 2 * max_span
        if not self.cores[holder].holds(addr):
            # The stashed copy was silently gone (should not happen: all
            # evictions are notified); treat as untracked.
            return None
        coh = CohInfo(owner=holder)
        self._install(addr, coh, now)
        return self.directory.lookup(addr)

    def handle_private_eviction(self, core, addr, state, now):
        if self.stash.owner_of(addr) == core:
            if self.coverage.enabled:
                self.coverage.note("stash:unstash")
            self.stash.unstash(addr)
        super().handle_private_eviction(core, addr, state, now)

    def _tracks(self, addr, core):
        if self.stash.owner_of(addr) == core:
            return True
        return super()._tracks(addr, core)

    def rebuild_tracking(self, addr, truth, now=0):
        holder = self.stash.owner_of(addr)
        if holder is not None:
            if (
                truth.is_exclusive
                and truth.owner == holder
                and self.directory.peek(addr) is None
            ):
                # The stash record itself is the repaired ground truth.
                return "stash:confirmed"
            self.stash.unstash(addr)
            if truth.is_idle and self.directory.peek(addr) is None:
                return "stash:unstashed"
        return super().rebuild_tracking(addr, truth, now)

    def check_invariants(self) -> None:
        super().check_invariants()
        for addr in list(self.stash._stashed):
            holder = self.stash.owner_of(addr)
            if not self.cores[holder].holds(addr):
                raise InvariantViolation(
                    f"stashed block {addr:#x} is not cached by core {holder}",
                    addr=addr,
                    cores=(holder,),
                )


class MgdHome(SparseHome):
    """Multi-grain directory home: region entries for private data."""

    __slots__ = ("_region_hit",)

    def __init__(self, config, mesh, dram, cores, stats, directory) -> None:
        if not isinstance(directory, MultiGrainDirectory):
            raise ProtocolError("MgdHome requires a MultiGrainDirectory")
        super().__init__(config, mesh, dram, cores, stats, directory)
        self._region_hit: "RegionEntry | None" = None

    def _find(self, addr, core, now, out):
        self._region_hit = None
        coh = self.directory.lookup_block(addr)
        if coh is not None:
            return coh
        region_entry = self.directory.lookup_region(addr)
        if region_entry is None:
            return None
        if region_entry.owner == core:
            # The owner extends its own private region.
            self._region_hit = region_entry
            return None
        # Another core touches a privately tracked region: demote the
        # region to block-grain entries.
        self._demote_region(addr, region_entry, now, out)
        return self.directory.lookup_block(addr)

    def _demote_region(self, addr, region_entry, now, out) -> None:
        if self.recorder.enabled:
            self.recorder.record(addr, "region_demote", core=region_entry.owner)
        if self.coverage.enabled:
            self.coverage.note("mgd:region_demote")
        region = self.directory.region_of(addr)
        self.directory.remove_region(region)
        owner = region_entry.owner
        for baddr in region_entry.blocks(region):
            state = self.cores[owner].state_of(baddr)
            if state is PrivateState.INVALID:
                continue
            self.traffic.control(MessageClass.COHERENCE)
            victim = self.directory.allocate_block(baddr, CohInfo(owner=owner))
            self._handle_mgd_victim(victim, now)
        if out is not None:
            out.latency += self.config.llc_tag_latency

    def _install(self, addr, coh, now):
        if coh.is_exclusive:
            region = self.directory.region_of(addr)
            offset = addr % BLOCKS_PER_REGION
            if self._region_hit is not None and self._region_hit.owner == coh.owner:
                if self.coverage.enabled:
                    self.coverage.note("mgd:region_extend")
                self._region_hit.presence |= 1 << offset
                return
            entry = self.directory.lookup_region(addr)
            if entry is not None and entry.owner == coh.owner:
                if self.coverage.enabled:
                    self.coverage.note("mgd:region_extend")
                entry.presence |= 1 << offset
                return
            if entry is None:
                if self.coverage.enabled:
                    self.coverage.note("mgd:region_alloc")
                victim = self.directory.allocate_region(
                    region, RegionEntry(coh.owner, 1 << offset)
                )
                self._handle_mgd_victim(victim, now)
                return
        if self.coverage.enabled:
            self.coverage.note("mgd:block_alloc")
        victim = self.directory.allocate_block(addr, coh)
        self._handle_mgd_victim(victim, now)

    def _handle_mgd_victim(self, victim, now) -> None:
        if victim is None:
            return
        kind, key, payload = victim
        if kind == "block":
            self._back_invalidate(key, payload, now)
        else:
            if self.coverage.enabled:
                self.coverage.note("mgd:evict_region")
            owner = payload.owner
            for baddr in payload.blocks(key):
                state = self.cores[owner].invalidate(baddr)
                if state is PrivateState.INVALID:
                    continue
                self.stats.invalidations += 1
                self.stats.back_invalidations += 1
                self.traffic.control(MessageClass.COHERENCE)
                if state is PrivateState.MODIFIED:
                    self.traffic.data(MessageClass.COHERENCE)
                    self._store_dirty_data(baddr, now)
                else:
                    self.traffic.control(MessageClass.COHERENCE)

    def _drop(self, addr, coh):
        self.directory.remove_block(addr)

    def _after_update(self, addr, coh, now):
        if coh.is_idle:
            self._drop(addr, coh)

    def handle_private_eviction(self, core, addr, state, now):
        if self.recorder.enabled:
            self.recorder.record(addr, "evict_notice", core=core, detail=state.name)
        if state is PrivateState.MODIFIED:
            self.traffic.data(MessageClass.WRITEBACK)
            self._ensure_llc_data(addr, dirty=True, now=now)
        else:
            self.traffic.control(MessageClass.WRITEBACK)
        self.traffic.control(MessageClass.WRITEBACK)
        coh = self.directory.lookup_block(addr)
        if coh is not None:
            coh.remove(core)
            self._after_update(addr, coh, now)
            return
        region_entry = self.directory.lookup_region(addr)
        if region_entry is not None and region_entry.owner == core:
            if self.coverage.enabled:
                self.coverage.note("mgd:region_shrink")
            region_entry.presence &= ~(1 << (addr % BLOCKS_PER_REGION))
            if region_entry.presence == 0:
                self.directory.remove_region(self.directory.region_of(addr))

    def _tracks(self, addr, core):
        coh = self.directory.peek_block(addr)
        if coh is not None and coh.holds(core):
            return True
        entry = self.directory.peek_region(addr)
        return (
            entry is not None
            and entry.owner == core
            and bool(entry.presence >> (addr % BLOCKS_PER_REGION) & 1)
        )

    def rebuild_tracking(self, addr, truth, now=0):
        offset = addr % BLOCKS_PER_REGION
        coh = self.directory.peek_block(addr)
        entry = self.directory.peek_region(addr)
        if entry is not None and entry.presence >> offset & 1:
            if coh is None and truth.is_exclusive and truth.owner == entry.owner:
                # The region entry already expresses the probed truth.
                return "mgd:region-confirmed"
            # Shrink the region out of this block; the truth is recorded
            # at block grain (or nowhere) below.
            entry.presence &= ~(1 << offset)
            if entry.presence == 0:
                self.directory.remove_region(self.directory.region_of(addr))
        if truth.is_idle:
            if coh is None:
                return "mgd:already-absent"
            self.directory.remove_block(addr)
            return "mgd:removed"
        if coh is not None:
            coh.owner = truth.owner
            coh.sharers = truth.sharers
            return "mgd:block-rewritten"
        self._region_hit = None
        self._install(addr, truth.copy(), now)
        return "mgd:reinstalled"

    def check_invariants(self) -> None:
        self._check_single_writer()
        for addr, coh in self.directory.iter_blocks():
            for holder in coh.holders():
                if self.cores[holder].state_of(addr) is PrivateState.INVALID:
                    raise InvariantViolation(
                        f"MgD block entry records core {holder} holding "
                        f"{addr:#x} but its cache does not",
                        addr=addr,
                        cores=(holder,),
                    )
        for region, entry in self.directory.iter_regions():
            for baddr in entry.blocks(region):
                if self.cores[entry.owner].state_of(baddr) is PrivateState.INVALID:
                    raise InvariantViolation(
                        f"MgD region {region:#x} marks block {baddr:#x} "
                        f"present at core {entry.owner} but its cache "
                        f"does not hold it",
                        addr=baddr,
                        cores=(entry.owner,),
                    )
        for core in self.cores:
            for addr, _ in core.resident_blocks():
                if not self._tracks(addr, core.core_id):
                    raise InvariantViolation(
                        f"core {core.core_id} caches {addr:#x} but MgD "
                        f"does not track it",
                        addr=addr,
                        cores=(core.core_id,),
                    )
