"""Common machinery for home LLC-bank controllers.

A *home controller* implements the home-node side of the MESI protocol
for one coherence-tracking scheme. The :class:`System` routes every
private-cache miss, upgrade, and eviction notice to the controller, which
manipulates the LLC banks, the tracking structures, and the private
caches of remote cores, while accounting latency and traffic.

The simulation is functionally synchronous: a transaction completes
before the next one starts, so the transient/busy states of the real
protocol (and their NACK/retry traffic) are not modelled. The paper
reports that effect as a ~1% processor-traffic increase; everything else
the figures measure — hop counts, invalidations, miss rates, message
volumes — is captured.
"""

from __future__ import annotations

from repro.cache.llc import LLCBank, LLCLine
from repro.cache.private_cache import PrivateCore
from repro.coherence.info import CohInfo
from repro.coherence.transaction import AccessOutcome
from repro.errors import InvariantViolation, RecoveryError
from repro.interconnect.mesh import Mesh2D
from repro.interconnect.traffic import MessageClass, TrafficMeter
from repro.memory.dram import DramModel
from repro.core.stra import stra_category
from repro.resilience.recorder import NullRecorder
from repro.sim.config import SystemConfig
from repro.telemetry import NULL_TRACER
from repro.types import AccessKind, LLCState, PrivateState


class NullCoverage:
    """Disabled transition-coverage sink (the default).

    The verify subsystem (:mod:`repro.verify.coverage`) swaps in a real
    collector; everywhere else the ``coverage.enabled`` guard keeps the
    hooks free. Defined here rather than in ``repro.verify`` so the
    coherence layer never imports upward.
    """

    enabled = False

    def note(self, transition: str) -> None:  # pragma: no cover - never called
        pass


class BaseHome:
    """Shared state and helpers for all home controllers."""

    __slots__ = (
        "config",
        "mesh",
        "dram",
        "cores",
        "stats",
        "traffic",
        "recorder",
        "coverage",
        "tracer",
        "num_banks",
        "banks",
        "_hit_latency_data",
        "_hit_latency_tag",
    )

    def __init__(
        self,
        config: SystemConfig,
        mesh: Mesh2D,
        dram: DramModel,
        cores: "list[PrivateCore]",
        stats,
    ) -> None:
        self.config = config
        self.mesh = mesh
        self.dram = dram
        self.cores = cores
        self.stats = stats
        self.traffic: TrafficMeter = stats.traffic
        #: Transaction flight recorder; a no-op unless online auditing is
        #: enabled (the auditor swaps in a real FlightRecorder).
        self.recorder = NullRecorder()
        #: Transition-coverage sink; a no-op unless a conformance run
        #: installs a real CoverageMap (see repro.verify.coverage).
        self.coverage = NullCoverage()
        #: Structured trace sink; the shared disabled tracer unless a
        #: traced run installs a real one (see repro.telemetry).
        self.tracer = NULL_TRACER
        self.num_banks = config.num_banks
        # Precomputed LLC hit latencies; these feed every _two_hop /
        # _three_hop call on the transaction critical path.
        self._hit_latency_tag = config.llc_tag_latency
        self._hit_latency_data = config.llc_tag_latency + config.llc_data_latency
        self.banks = [
            LLCBank(
                config.llc_sets_per_bank,
                config.llc_assoc,
                bank_stride=self.num_banks,
                bank_index=index,
            )
            for index in range(self.num_banks)
        ]

    # ------------------------------------------------------------------
    # Geometry and latency helpers
    # ------------------------------------------------------------------

    def bank_of(self, addr: int) -> int:
        """Home bank (== home tile) of block ``addr``."""
        return addr % self.num_banks

    def _llc_hit_latency(self, with_data: bool = True) -> int:
        return self._hit_latency_data if with_data else self._hit_latency_tag

    def _two_hop(self, core: int, home: int, with_data: bool = True) -> int:
        """Requester -> home -> requester latency, including LLC lookup."""
        return 2 * self.mesh.latency(core, home) + (
            self._hit_latency_data if with_data else self._hit_latency_tag
        )

    def _three_hop(
        self, core: int, home: int, target: int, llc_extra: int = 0
    ) -> int:
        """Requester -> home -> target -> requester latency.

        ``llc_extra`` adds serialization beyond the tag lookup (e.g. the
        data read + decode of a corrupted block, Section IV-C).
        """
        return (
            self.mesh.latency(core, home)
            + self._hit_latency_tag
            + llc_extra
            + self.mesh.latency(home, target)
            + self.config.l2_latency
            + self.mesh.latency(target, core)
        )

    def _invalidation_latency(self, home: int, holders: "list[int]", requester: int) -> int:
        """Slowest home -> holder -> requester invalidation/ack path."""
        if not holders:
            return 0
        return max(
            self.mesh.latency(home, holder) + self.mesh.latency(holder, requester)
            for holder in holders
        )

    def _closest_sharer(self, coh: CohInfo, home: int) -> int:
        """Elect the sharer nearest to the home tile to forward data."""
        sharers = coh.sharer_list()
        return min(sharers, key=lambda core: self.mesh.distance(home, core))

    # ------------------------------------------------------------------
    # DRAM
    # ------------------------------------------------------------------

    def _dram_fetch(self, addr: int, now: int, out: AccessOutcome) -> int:
        """Fetch a block from memory; returns the added latency."""
        home = self.bank_of(addr)
        latency = (
            2 * self.mesh.memory_latency(home)
            + self.dram.access(addr, now, is_write=False)
        )
        out.dram_access = True
        out.llc_data_hit = False
        return latency

    def _dram_write(self, addr: int, now: int) -> None:
        """Write a block back to memory (off the critical path)."""
        self.dram.access(addr, now, is_write=True)

    # ------------------------------------------------------------------
    # Private-cache manipulation
    # ------------------------------------------------------------------

    def _invalidate_holders(
        self,
        addr: int,
        coh: CohInfo,
        now: int,
        except_core: "int | None" = None,
        data_to_requester: bool = False,
    ) -> bool:
        """Invalidate every private copy recorded in ``coh``.

        Returns True when a dirty (M) copy was found; the modified data
        is forwarded to the requester when ``data_to_requester``,
        otherwise written into the home LLC line (or memory when the line
        is absent). Traffic: one invalidation and one acknowledgement per
        holder, the ack carrying data for an M holder.
        """
        had_dirty = False
        for holder in coh.holders():
            if holder == except_core:
                continue
            if self.recorder.enabled:
                self.recorder.record(addr, "invalidate", core=holder)
            prior = self.cores[holder].invalidate(addr)
            if prior is PrivateState.INVALID:
                # A recorded holder without a copy: the tracking entry is
                # stale (lost notice, dropped copy, phantom sharer). Flag
                # it at the access that trips over it instead of silently
                # cleansing the record.
                raise InvariantViolation(
                    f"invalidation sent to core {holder} for block "
                    f"{addr:#x} it does not hold (stale tracking entry)",
                    addr=addr,
                    cores=(holder,),
                )
            if self.coverage.enabled:
                self.coverage.note(f"inval:{prior.value}->I")
            if self.tracer.enabled:
                self.tracer.emit(
                    "inval", cycle=now, core=holder, addr=addr,
                    prior=prior.value,
                )
            self.traffic.control(MessageClass.COHERENCE)  # invalidation
            if prior is PrivateState.MODIFIED:
                had_dirty = True
                self.traffic.data(MessageClass.COHERENCE)  # ack + data
                if not data_to_requester:
                    self._store_dirty_data(addr, now)
            else:
                self.traffic.control(MessageClass.COHERENCE)  # ack
            self.stats.invalidations += 1
        coh.clear()
        return had_dirty

    def _store_dirty_data(self, addr: int, now: int) -> None:
        """Deposit retrieved dirty data in the LLC line or in memory."""
        bank = self.banks[self.bank_of(addr)]
        line, _ = bank.lookup(addr, touch=False)
        if line is not None and not line.is_spill and line.state in (
            LLCState.CLEAN,
            LLCState.DIRTY,
        ):
            line.state = LLCState.DIRTY
            bank.data_writes += 1
        elif line is not None and not line.is_spill:
            # Corrupted line: the data portion is updated in place; the
            # borrowed bits stay authoritative for tracking.
            line.underlying_dirty = True
            bank.data_writes += 1
        else:
            self._dram_write(addr, now)

    # ------------------------------------------------------------------
    # Residency bookkeeping
    # ------------------------------------------------------------------

    def _flush_residency(self, line: LLCLine) -> None:
        if not line.is_spill:
            if self.tracer.enabled and line.fwd_reads > 0:
                ratio = (
                    line.fwd_reads / line.total_reads
                    if line.total_reads
                    else 1.0
                )
                self.tracer.emit(
                    "stra:classify",
                    addr=line.tag,
                    category=stra_category(ratio),
                    fwd_reads=line.fwd_reads,
                )
            self.stats.flush_residency(line)

    def finalize(self) -> None:
        """Flush residency statistics of still-resident LLC lines."""
        for bank in self.banks:
            for line in bank.iter_lines():
                self._flush_residency(line)

    # ------------------------------------------------------------------
    # Recovery support
    # ------------------------------------------------------------------

    def probe_truth(self, addr: int) -> CohInfo:
        """Reconstruct the ground-truth tracking record for ``addr``.

        Quiet-probes every private hierarchy (no replacement state is
        touched, no statistics are charged — the RecoveryManager charges
        the probe's traffic and latency to the recovery section) and
        rebuilds the sharer vector / exclusive owner exactly as scrubbing
        hardware would. Raises :class:`~repro.errors.RecoveryError` when
        the caches themselves are contradictory (two exclusive copies, or
        an exclusive copy coexisting with sharers) — that state cannot be
        expressed in a tracking record and is not repairable.
        """
        truth = CohInfo()
        exclusive: "list[int]" = []
        for core in self.cores:
            state = core.state_of(addr)
            if state is PrivateState.INVALID:
                continue
            if state.is_exclusive:
                exclusive.append(core.core_id)
            else:
                truth.sharers |= 1 << core.core_id
        if exclusive:
            if len(exclusive) > 1 or truth.sharers:
                raise RecoveryError(
                    f"private caches disagree on block {addr:#x}: exclusive "
                    f"in cores {exclusive} alongside sharer mask "
                    f"{truth.sharers:#x}"
                )
            truth.owner = exclusive[0]
        return truth

    def rebuild_tracking(self, addr: int, truth: CohInfo, now: int = 0) -> str:
        """Overwrite the tracking state for ``addr`` with ``truth``.

        Scheme controllers implement this as the repair half of the
        detect->diagnose->repair cycle: whatever structure (directory
        entry, tiny entry, spilled entry, corrupted LLC line, region
        entry) currently claims ``addr`` is rewritten in place or
        reinstalled so it matches the probed ground truth. Returns a
        short label describing the action taken, for the repair log.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Interface implemented by scheme controllers
    # ------------------------------------------------------------------

    def handle_access(
        self,
        core: int,
        addr: int,
        kind: AccessKind,
        now: int,
        upgrade: bool = False,
    ) -> AccessOutcome:
        """Serve a private miss (or S->M upgrade) for ``core``."""
        raise NotImplementedError

    def handle_private_eviction(
        self, core: int, addr: int, state: PrivateState, now: int
    ) -> None:
        """Process an eviction notice from ``core``'s private hierarchy."""
        raise NotImplementedError

    def check_invariants(self) -> None:
        """Verify tracker/private-cache agreement (tests only)."""
        raise NotImplementedError
