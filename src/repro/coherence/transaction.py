"""Outcome record of one LLC transaction.

The home controller returns an :class:`AccessOutcome` for every private
cache miss (or upgrade) it serves. The engine adds the outcome latency to
the issuing core's clock; the stats module aggregates the flags into the
quantities the paper reports (hop counts, lengthened accesses, LLC miss
rate, spill benefit).
"""

from __future__ import annotations

from repro.types import PrivateState


class AccessOutcome:
    """What happened while serving one request at the home LLC bank."""

    __slots__ = (
        "latency",
        "hops",
        "llc_data_hit",
        "dram_access",
        "lengthened",
        "spill_saved",
        "fill_state",
        "is_upgrade",
    )

    def __init__(self) -> None:
        #: Total cycles spent beyond the private hierarchy lookups.
        self.latency = 0
        #: Transactions in the critical path: 2 (requester-home-requester)
        #: or 3 (requester-home-target-requester).
        self.hops = 2
        #: True when the LLC supplied (or already held) the data block.
        self.llc_data_hit = True
        #: True when DRAM had to be accessed.
        self.dram_access = False
        #: True for a 3-hop access that a 2x sparse directory would have
        #: served in 2 hops (a read to a shared corrupted block).
        self.lengthened = False
        #: True when a spilled tracking entry avoided a lengthened access.
        self.spill_saved = False
        #: MESI state granted to the requester (None for upgrades).
        self.fill_state: "PrivateState | None" = None
        #: True when the request was an S->M upgrade (no data transfer).
        self.is_upgrade = False
