"""Home controllers for in-LLC tracking and the tiny directory.

:class:`InLLCHome` implements Section III of the paper: there is no
sparse directory, and a block's location/sharers are tracked by borrowing
a few bits of the block's LLC data way (the *corrupted* states of Tables
III/IV). Reads to corrupted-shared blocks must be forwarded to an elected
sharer, lengthening their critical path to three hops — the design's key
shortcoming. The ``tag_extended`` flag selects the storage-heavy variant
whose LLC tags carry the tracking state instead, leaving data intact
(left bars of Fig. 4).

:class:`TinyHome` implements Section IV: the in-LLC mechanism augmented
with a tiny directory that tracks the high-STRA subset of shared blocks,
and optionally with dynamic spilling of tracking entries into LLC ways.
"""

from __future__ import annotations

from repro.cache.llc import LLCLine
from repro.coherence.base import BaseHome
from repro.coherence.info import CohInfo
from repro.coherence.transaction import AccessOutcome
from repro.core.spill import DynamicSpillPolicy, SpillConfig
from repro.core.stra import StraCounters
from repro.core.tiny_directory import TinyDirectory
from repro.errors import InvariantViolation, ProtocolError
from repro.interconnect.traffic import MessageClass
from repro.types import AccessKind, LLCState, PrivateState


class InLLCHome(BaseHome):
    """Home node tracking coherence inside the LLC (no sparse directory)."""

    __slots__ = ("tag_extended", "stra_limit")

    def __init__(self, config, mesh, dram, cores, stats, tag_extended=False) -> None:
        super().__init__(config, mesh, dram, cores, stats)
        self.tag_extended = tag_extended
        #: Saturation value of freshly created STRA counters (six-bit in
        #: the paper; widened/narrowed by the ablation knob).
        self.stra_limit = 63

    # ------------------------------------------------------------------
    # State helpers
    # ------------------------------------------------------------------

    def _corrupted_extra(self, line: LLCLine) -> int:
        """Extra LLC serialization for decoding a corrupted block (§IV-C):
        the data read plus the state-decoder cycle."""
        if self.tag_extended or line.state is not LLCState.CORRUPTED:
            return 0
        return self.config.llc_data_latency + self.config.corrupted_decode_latency

    def _mark_tracked(self, line: LLCLine, bank) -> None:
        """Move a valid line into the corrupted (tracking) state."""
        if self.coverage.enabled:
            self.coverage.note("llc:mark_tracked")
        if self.tag_extended:
            return
        line.underlying_dirty = line.underlying_dirty or line.state is LLCState.DIRTY
        line.state = LLCState.CORRUPTED
        bank.data_writes += 1  # the borrowed bits are written in the data array

    def _restore_line(self, line: LLCLine, bank) -> None:
        """Return a line to the unowned valid state (last copy gone)."""
        if self.coverage.enabled:
            self.coverage.note("llc:restore")
        line.coh = None
        line.stra = None
        if self.tag_extended:
            return
        line.state = LLCState.DIRTY if line.underlying_dirty else LLCState.CLEAN
        line.underlying_dirty = False
        bank.data_writes += 1

    def _fill_llc(self, addr: int, now: int) -> LLCLine:
        bank = self.banks[self.bank_of(addr)]
        line, victim = bank.insert_block(addr, LLCState.CLEAN)
        if victim is not None:
            self._handle_llc_victim(victim, now)
        return line

    def _handle_llc_victim(self, victim: LLCLine, now: int) -> None:
        self._flush_residency(victim)
        if victim.coh is not None and not victim.coh.is_idle:
            if self.coverage.enabled:
                self.coverage.note("llc:evict_tracked")
            self._evict_tracked_victim(victim, now)
        elif victim.state is LLCState.DIRTY or victim.underlying_dirty:
            if self.coverage.enabled:
                self.coverage.note("llc:evict_dirty")
            self._dram_write(victim.tag, now)

    def _evict_tracked_victim(self, victim: LLCLine, now: int) -> None:
        """Reconstruct and back-invalidate an evicted corrupted block."""
        addr = victim.tag
        coh = victim.coh
        dirty = victim.underlying_dirty
        holders = coh.holders()
        if self.recorder.enabled:
            self.recorder.record(addr, "back_invalidate", detail=f"holders={holders}")
        had_modified = False
        for holder in holders:
            prior = self.cores[holder].invalidate(addr)
            self.traffic.control(MessageClass.COHERENCE)  # invalidation
            if prior is PrivateState.MODIFIED:
                had_modified = True
                self.traffic.data(MessageClass.COHERENCE)  # data response
            else:
                self.traffic.control(MessageClass.COHERENCE)  # ack
            self.stats.invalidations += 1
            self.stats.back_invalidations += 1
        if not self.tag_extended and not had_modified and holders:
            # One holder supplies the borrowed bits for reconstruction.
            self.traffic.partial(MessageClass.COHERENCE)
        if dirty or had_modified:
            self._dram_write(addr, now)
        coh.clear()

    # ------------------------------------------------------------------
    # The protocol
    # ------------------------------------------------------------------

    def handle_access(
        self,
        core: int,
        addr: int,
        kind: AccessKind,
        now: int,
        upgrade: bool = False,
    ) -> AccessOutcome:
        out = AccessOutcome()
        home = self.bank_of(addr)
        bank = self.banks[home]
        if self.recorder.enabled:
            self.recorder.record(
                addr, "upgrade" if upgrade else kind.name.lower(), core=core
            )
        self.traffic.control(MessageClass.PROCESSOR)
        line, _ = bank.lookup(addr)

        if upgrade:
            if line is None or line.coh is None:
                raise ProtocolError(f"upgrade for untracked block {addr:#x}")
            self._record_stra(line, shared_read=False)
            self._serve_upgrade(core, addr, line, bank, home, now, out)
            return out

        if line is None:
            out.latency = self._two_hop(core, home) + self._dram_fetch(addr, now, out)
            line = self._fill_llc(addr, now)
            self._take_ownership(core, kind, line, bank, out)
        elif line.coh is None:
            out.latency = self._two_hop(core, home)
            self._take_ownership(core, kind, line, bank, out)
        else:
            shared_read = kind.is_read and line.coh.is_shared
            self._record_stra(line, shared_read)
            if kind.is_read:
                line.total_reads += 1
                if shared_read:
                    line.fwd_reads += 1
            if line.coh.is_exclusive:
                self._serve_tracked_exclusive(core, addr, kind, line, bank, home, now, out)
            else:
                self._serve_tracked_shared(core, addr, kind, line, bank, home, now, out)
            line.note_holders(line.coh)
        return out

    @staticmethod
    def _record_stra(line: LLCLine, shared_read: bool) -> None:
        if line.stra is None:
            return
        if shared_read:
            line.stra.record_shared_read()
        else:
            line.stra.record_other()

    def _take_ownership(self, core, kind, line, bank, out) -> None:
        """A request to an unowned valid block: the requester takes it."""
        coh = CohInfo()
        if kind is AccessKind.WRITE:
            coh.set_owner(core)
            out.fill_state = PrivateState.MODIFIED
        elif kind is AccessKind.IFETCH:
            coh.add_sharer(core)
            out.fill_state = PrivateState.SHARED
        else:
            coh.set_owner(core)
            out.fill_state = PrivateState.EXCLUSIVE
        line.coh = coh
        line.stra = StraCounters(limit=self.stra_limit)
        line.stra.record_other()
        self._mark_tracked(line, bank)
        line.note_holders(coh)
        if kind.is_read:
            line.total_reads += 1
        self.traffic.data(MessageClass.PROCESSOR)

    def _serve_tracked_exclusive(self, core, addr, kind, line, bank, home, now, out) -> None:
        coh = line.coh
        owner = coh.owner
        if owner == core:
            raise ProtocolError(
                f"core {core} missed on block {addr:#x} it supposedly owns"
            )
        out.hops = 3
        out.latency = self._three_hop(core, home, owner, self._corrupted_extra(line))
        self.traffic.control(MessageClass.COHERENCE)  # forward
        self.traffic.data(MessageClass.PROCESSOR)  # owner -> requester
        self.traffic.control(MessageClass.COHERENCE)  # busy-clear
        if kind is AccessKind.WRITE:
            prior = self.cores[owner].invalidate(addr)
            if prior is PrivateState.INVALID:
                raise ProtocolError(f"stale owner for block {addr:#x}")
            self.stats.invalidations += 1
            coh.set_owner(core)
            out.fill_state = PrivateState.MODIFIED
        else:
            prior = self.cores[owner].downgrade(addr)
            if prior is PrivateState.MODIFIED:
                # Dirty data is deposited in the (corrupted) LLC line's
                # intact data portion.
                self.traffic.data(MessageClass.WRITEBACK)
                line.underlying_dirty = True
                bank.data_writes += 1
            coh.add_sharer(core)
            out.fill_state = PrivateState.SHARED

    def _serve_tracked_shared(self, core, addr, kind, line, bank, home, now, out) -> None:
        coh = line.coh
        extra = self._corrupted_extra(line)
        if kind is AccessKind.WRITE:
            holders = coh.sharer_list()
            forwarder = self._closest_sharer(coh, home)
            inval_path = self._invalidation_latency(home, holders, core)
            base = self._three_hop(core, home, forwarder, extra)
            out.hops = 3
            out.latency = max(
                base,
                self.mesh.latency(core, home)
                + self.config.llc_tag_latency
                + extra
                + inval_path,
            )
            for holder in holders:
                prior = self.cores[holder].invalidate(addr)
                if prior is PrivateState.INVALID:
                    raise ProtocolError(f"stale sharer for block {addr:#x}")
                self.stats.invalidations += 1
                self.traffic.control(MessageClass.COHERENCE)  # invalidation
                if holder == forwarder:
                    self.traffic.data(MessageClass.PROCESSOR)  # special ack
                else:
                    self.traffic.control(MessageClass.COHERENCE)  # ack
            coh.set_owner(core)
            out.fill_state = PrivateState.MODIFIED
        else:
            if self.tag_extended:
                # The LLC data is intact: serve in two hops.
                out.latency = self._two_hop(core, home)
                self.traffic.data(MessageClass.PROCESSOR)
            else:
                if self.coverage.enabled:
                    self.coverage.note("llc:lengthened_read")
                forwarder = self._closest_sharer(coh, home)
                out.hops = 3
                out.lengthened = True
                out.latency = self._three_hop(core, home, forwarder, extra)
                self.traffic.control(MessageClass.COHERENCE)
                self.traffic.data(MessageClass.PROCESSOR)
                self.traffic.control(MessageClass.COHERENCE)
            coh.add_sharer(core)
            out.fill_state = PrivateState.SHARED

    def _serve_upgrade(self, core, addr, line, bank, home, now, out) -> None:
        coh = line.coh
        if not coh.holds(core):
            raise ProtocolError(
                f"core {core} upgrades block {addr:#x} it is not recorded "
                f"sharing"
            )
        out.is_upgrade = True
        extra = self._corrupted_extra(line)
        holders = [h for h in coh.sharer_list() if h != core]
        inval_path = self._invalidation_latency(home, holders, core)
        for holder in holders:
            prior = self.cores[holder].invalidate(addr)
            if prior is PrivateState.INVALID:
                raise ProtocolError(f"stale sharer for block {addr:#x}")
            self.stats.invalidations += 1
            self.traffic.control(MessageClass.COHERENCE)
            self.traffic.control(MessageClass.COHERENCE)
        coh.set_owner(core)
        self.traffic.control(MessageClass.PROCESSOR)
        request_leg = (
            self.mesh.latency(core, home) + self.config.llc_tag_latency + extra
        )
        out.latency = request_leg + max(self.mesh.latency(home, core), inval_path)
        out.hops = 2 if not holders else 3
        self._mark_tracked(line, bank)

    # ------------------------------------------------------------------
    # Eviction notices
    # ------------------------------------------------------------------

    def handle_private_eviction(
        self, core: int, addr: int, state: PrivateState, now: int
    ) -> None:
        if self.recorder.enabled:
            self.recorder.record(addr, "evict_notice", core=core, detail=state.name)
        bank = self.banks[self.bank_of(addr)]
        line, _ = bank.lookup(addr, touch=False)
        if line is None or line.coh is None:
            # The line (and its tracking) was concurrently evicted and the
            # holders back-invalidated; nothing to update.
            self.traffic.control(MessageClass.WRITEBACK)
            self.traffic.control(MessageClass.WRITEBACK)
            return
        coh = line.coh
        if state is PrivateState.MODIFIED:
            self.traffic.data(MessageClass.WRITEBACK)
            line.underlying_dirty = True
            bank.data_writes += 1
        elif state is PrivateState.EXCLUSIVE and not self.tag_extended:
            # The notice carries the borrowed bits for reconstruction.
            self.traffic.partial(MessageClass.WRITEBACK)
        else:
            self.traffic.control(MessageClass.WRITEBACK)
        coh.remove(core)
        if coh.is_idle:
            if (
                state is PrivateState.SHARED
                and not self.tag_extended
            ):
                # Last sharer: the LLC requests the borrowed bits back.
                self.traffic.control(MessageClass.WRITEBACK)
                self.traffic.partial(MessageClass.WRITEBACK)
            self._restore_line(line, bank)
        self.traffic.control(MessageClass.WRITEBACK)  # acknowledgement

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def rebuild_tracking(self, addr: int, truth, now: int = 0) -> str:
        """Repair the LLC line's borrowed tracking bits against ``truth``."""
        bank = self.banks[self.bank_of(addr)]
        line, _ = bank.peek(addr)
        if line is None:
            if truth.is_idle:
                return "llc:already-absent"
            # Private copies exist but the home data line is gone:
            # refetch the block and re-mark it as tracking.
            line = self._fill_llc(addr, now)
        if truth.is_idle:
            if line.coh is not None:
                self._restore_line(line, bank)
                return "llc:restored"
            return "llc:already-untracked"
        if line.coh is None:
            line.coh = truth.copy()
            line.stra = StraCounters(limit=self.stra_limit)
            self._mark_tracked(line, bank)
        else:
            line.coh.owner = truth.owner
            line.coh.sharers = truth.sharers
        line.note_holders(line.coh)
        return "llc:rewritten"

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    def _tracks(self, addr: int, core: int) -> bool:
        """True when some structure records ``core`` holding ``addr``."""
        bank = self.banks[self.bank_of(addr)]
        line, spill = bank.peek(addr)
        if line is not None and line.coh is not None and line.coh.holds(core):
            return True
        return spill is not None and spill.coh.holds(core)

    def _check_single_writer(self) -> None:
        exclusive_holder: "dict[int, int]" = {}
        holders: "dict[int, list[int]]" = {}
        for core in self.cores:
            for addr, state in core.resident_blocks():
                holders.setdefault(addr, []).append(core.core_id)
                if state.is_exclusive:
                    if addr in exclusive_holder:
                        raise InvariantViolation(
                            f"block {addr:#x} exclusively held by both "
                            f"{exclusive_holder[addr]} and {core.core_id}",
                            addr=addr,
                            cores=(exclusive_holder[addr], core.core_id),
                        )
                    exclusive_holder[addr] = core.core_id
        for addr, holder in exclusive_holder.items():
            if len(holders[addr]) > 1:
                raise InvariantViolation(
                    f"block {addr:#x} held exclusively by {holder} while "
                    f"also cached by {holders[addr]}",
                    addr=addr,
                    cores=tuple(holders[addr]),
                )

    def check_invariants(self) -> None:
        for bank in self.banks:
            for line in bank.iter_lines():
                if line.is_spill or line.coh is None:
                    continue
                for holder in line.coh.holders():
                    state = self.cores[holder].state_of(line.tag)
                    if state is PrivateState.INVALID:
                        raise InvariantViolation(
                            f"LLC tracks core {holder} holding {line.tag:#x} "
                            f"but its cache does not",
                            addr=line.tag,
                            cores=(holder,),
                        )
        self._check_single_writer()
        for core in self.cores:
            for addr, _ in core.resident_blocks():
                if not self._tracks(addr, core.core_id):
                    raise InvariantViolation(
                        f"core {core.core_id} caches {addr:#x} but no LLC "
                        f"line tracks it",
                        addr=addr,
                        cores=(core.core_id,),
                    )


class TinyHome(InLLCHome):
    """In-LLC tracking plus the tiny directory (and optional spilling)."""

    __slots__ = ("tiny", "spill_enabled", "spill_policies")

    def __init__(
        self,
        config,
        mesh,
        dram,
        cores,
        stats,
        tiny: TinyDirectory,
        spill_enabled: bool = False,
        spill_config: "SpillConfig | None" = None,
        stra_limit: int = 63,
    ) -> None:
        super().__init__(config, mesh, dram, cores, stats, tag_extended=False)
        self.stra_limit = stra_limit
        self.tiny = tiny
        self.spill_enabled = spill_enabled
        self.spill_policies = [
            DynamicSpillPolicy(spill_config) for _ in range(self.num_banks)
        ]

    # ------------------------------------------------------------------
    # The protocol
    # ------------------------------------------------------------------

    def handle_access(
        self,
        core: int,
        addr: int,
        kind: AccessKind,
        now: int,
        upgrade: bool = False,
    ) -> AccessOutcome:
        out = AccessOutcome()
        home = self.bank_of(addr)
        bank = self.banks[home]
        if self.recorder.enabled:
            self.recorder.record(
                addr, "upgrade" if upgrade else kind.name.lower(), core=core
            )
        self.traffic.control(MessageClass.PROCESSOR)
        entry = self.tiny.lookup(addr, now)
        line, spill = bank.lookup(addr)
        shared_read = False

        if upgrade:
            if entry is not None:
                entry.stra.record_other()
                self._serve_tracked_upgrade(core, addr, entry.coh, home, now, out)
            elif spill is not None:
                spill.stra.record_other()
                self._serve_tracked_upgrade(core, addr, spill.coh, home, now, out)
                # A write transfers the spilled info back into the data
                # block, which switches to corrupted exclusive (§IV-B1).
                out.latency += self.config.llc_data_latency
                self._unspill_into_line(spill, line, bank)
            else:
                if line is None or line.coh is None:
                    raise ProtocolError(f"upgrade for untracked block {addr:#x}")
                self._record_stra(line, shared_read=False)
                self._serve_upgrade(core, addr, line, bank, home, now, out)
        elif entry is not None:
            if self.coverage.enabled:
                self.coverage.note("tiny:hit")
            shared_read = self._serve_via_tracker(
                core, addr, kind, entry.coh, entry.stra, line, bank, home, now, out,
                via_spill=False,
            )
            if entry.coh.is_idle:
                self.tiny.remove(addr)
        elif spill is not None:
            if self.coverage.enabled:
                self.coverage.note("tiny:spill_hit")
            shared_read = self._serve_via_tracker(
                core, addr, kind, spill.coh, spill.stra, line, bank, home, now, out,
                via_spill=True,
            )
            if kind is AccessKind.WRITE:
                out.latency += self.config.llc_data_latency
                self._unspill_into_line(spill, line, bank)
            elif spill.coh.is_idle:
                bank.remove(spill)
        elif line is None or line.coh is None:
            if line is None:
                out.latency = (
                    self._two_hop(core, home) + self._dram_fetch(addr, now, out)
                )
                line = self._fill_llc(addr, now)
            else:
                out.latency = self._two_hop(core, home)
            self._take_ownership(core, kind, line, bank, out)
            if kind is AccessKind.IFETCH:
                # Allocation situation (ii): an instruction read to an
                # unowned block (§IV).
                self._consider_tracking(addr, line, bank, home, now)
        else:
            shared_read = kind.is_read and line.coh.is_shared
            self._record_stra(line, shared_read)
            if kind.is_read:
                line.total_reads += 1
                if shared_read:
                    line.fwd_reads += 1
            if line.coh.is_exclusive:
                self._serve_tracked_exclusive(core, addr, kind, line, bank, home, now, out)
            else:
                self._serve_tracked_shared(core, addr, kind, line, bank, home, now, out)
            line.note_holders(line.coh)
            if kind.is_read:
                # Allocation situation (i): a read to a corrupted block.
                self._consider_tracking(addr, line, bank, home, now)

        if self.spill_enabled:
            self.spill_policies[home].record_access(
                in_sample_set=bank.is_no_spill_set(bank.set_index(addr)),
                is_miss=out.dram_access,
                is_shared_read=shared_read,
            )
        return out

    # ------------------------------------------------------------------
    # Serving accesses whose tracking lives in the tiny directory or a
    # spilled entry: the LLC data stays valid, so shared reads take two
    # hops — the whole point of the proposal.
    # ------------------------------------------------------------------

    def _serve_via_tracker(
        self, core, addr, kind, coh, stra, line, bank, home, now, out, via_spill
    ) -> bool:
        shared_read = kind.is_read and coh.is_shared
        if shared_read:
            stra.record_shared_read()
        else:
            stra.record_other()
        line_valid = line is not None
        if line is not None and kind.is_read:
            line.total_reads += 1
            if shared_read:
                line.fwd_reads += 1
        if kind is AccessKind.WRITE:
            if coh.is_exclusive:
                owner = coh.owner
                if owner == core:
                    raise ProtocolError(
                        f"core {core} missed on owned block {addr:#x}"
                    )
                out.hops = 3
                out.latency = self._three_hop(core, home, owner)
                self.traffic.control(MessageClass.COHERENCE)
                self.traffic.data(MessageClass.PROCESSOR)
                self.traffic.control(MessageClass.COHERENCE)
                prior = self.cores[owner].invalidate(addr)
                if prior is PrivateState.INVALID:
                    raise ProtocolError(f"stale owner for block {addr:#x}")
                self.stats.invalidations += 1
            else:
                holders = coh.sharer_list()
                inval_path = self._invalidation_latency(home, holders, core)
                base = (
                    self._two_hop(core, home)
                    if line_valid
                    else self._three_hop(core, home, self._closest_sharer(coh, home))
                )
                self.traffic.data(MessageClass.PROCESSOR)
                for holder in holders:
                    prior = self.cores[holder].invalidate(addr)
                    if prior is PrivateState.INVALID:
                        raise ProtocolError(f"stale sharer for block {addr:#x}")
                    self.stats.invalidations += 1
                    self.traffic.control(MessageClass.COHERENCE)
                    self.traffic.control(MessageClass.COHERENCE)
                out.latency = max(
                    base,
                    self.mesh.latency(core, home)
                    + self.config.llc_tag_latency
                    + inval_path,
                )
            coh.set_owner(core)
            out.fill_state = PrivateState.MODIFIED
        elif coh.is_exclusive:
            owner = coh.owner
            if owner == core:
                raise ProtocolError(f"core {core} missed on owned block {addr:#x}")
            out.hops = 3
            out.latency = self._three_hop(core, home, owner)
            self.traffic.control(MessageClass.COHERENCE)
            self.traffic.data(MessageClass.PROCESSOR)
            self.traffic.control(MessageClass.COHERENCE)
            prior = self.cores[owner].downgrade(addr)
            if prior is PrivateState.MODIFIED:
                self.traffic.data(MessageClass.WRITEBACK)
                if line is not None:
                    line.underlying_dirty = True
                    bank.data_writes += 1
                else:
                    self._dram_write(addr, now)
            coh.add_sharer(core)
            out.fill_state = PrivateState.SHARED
        else:
            if line_valid:
                out.latency = self._two_hop(core, home)
                self.traffic.data(MessageClass.PROCESSOR)
                if via_spill and shared_read:
                    out.spill_saved = True
            else:
                # Tracked in the tiny directory but the LLC data line was
                # evicted: forward to a sharer and refill.
                if self.coverage.enabled:
                    self.coverage.note("tiny:fwd_refill")
                forwarder = self._closest_sharer(coh, home)
                out.hops = 3
                out.latency = self._three_hop(core, home, forwarder)
                self.traffic.control(MessageClass.COHERENCE)
                self.traffic.data(MessageClass.PROCESSOR)
                self.traffic.control(MessageClass.COHERENCE)
            coh.add_sharer(core)
            out.fill_state = PrivateState.SHARED
        if line is not None:
            line.note_holders(coh)
        return shared_read

    def _serve_tracked_upgrade(self, core, addr, coh, home, now, out) -> None:
        if not coh.holds(core):
            raise ProtocolError(
                f"core {core} upgrades block {addr:#x} it is not recorded "
                f"sharing"
            )
        out.is_upgrade = True
        holders = [h for h in coh.sharer_list() if h != core]
        inval_path = self._invalidation_latency(home, holders, core)
        for holder in holders:
            prior = self.cores[holder].invalidate(addr)
            if prior is PrivateState.INVALID:
                raise ProtocolError(f"stale sharer for block {addr:#x}")
            self.stats.invalidations += 1
            self.traffic.control(MessageClass.COHERENCE)
            self.traffic.control(MessageClass.COHERENCE)
        coh.set_owner(core)
        self.traffic.control(MessageClass.PROCESSOR)
        request_leg = self.mesh.latency(core, home) + self.config.llc_tag_latency
        out.latency = request_leg + max(self.mesh.latency(home, core), inval_path)
        out.hops = 2 if not holders else 3

    def _unspill_into_line(self, spill, line, bank) -> None:
        """Invalidate a spilled entry, moving its info into the data block
        (which becomes corrupted exclusive)."""
        if self.coverage.enabled:
            self.coverage.note("tiny:unspill")
        if self.tracer.enabled:
            self.tracer.emit("tiny:unspill", addr=spill.tag)
        coh, stra = spill.coh, spill.stra
        bank.remove(spill)
        if line is None:
            return
        line.coh = coh
        line.stra = stra
        self._mark_tracked(line, bank)

    # ------------------------------------------------------------------
    # Tracking placement: tiny-directory allocation and spilling
    # ------------------------------------------------------------------

    def _consider_tracking(self, addr, line, bank, home, now) -> None:
        """Try to move ``line``'s tracking into the tiny directory or a
        spilled entry; on success the data block returns to a valid state
        (reconstructed along the forwarded request, §IV)."""
        coh, stra = line.coh, line.stra
        category = stra.category()
        entry, victim = self.tiny.try_allocate(addr, category, coh, stra, now)
        if entry is not None:
            if self.coverage.enabled:
                self.coverage.note("tiny:alloc")
            if self.tracer.enabled:
                self.tracer.emit("tiny:alloc", cycle=now, addr=addr)
            if victim is not None:
                if self.coverage.enabled:
                    self.coverage.note("tiny:evict")
                if self.tracer.enabled:
                    self.tracer.emit(
                        "tiny:evict", cycle=now, addr=victim.addr
                    )
                self._rehome_victim(victim, now)
            self._detach_tracking(line, bank)
            return
        if self.coverage.enabled:
            self.coverage.note("tiny:decline")
        if self.tracer.enabled:
            self.tracer.emit("tiny:decline", cycle=now, addr=addr)
        if not self.spill_enabled:
            return
        if not self.spill_policies[home].allows(category):
            return
        spill_line, svictim = bank.insert_spill(addr, coh, stra)
        if spill_line is None:
            return  # no-spill sample set
        if svictim is not None:
            if svictim is line:
                # Degenerate: spilling displaced the very block it tracks.
                bank.remove(spill_line)
                self._handle_llc_victim(svictim, now)
                return
            self._handle_llc_victim(svictim, now)
        if self.coverage.enabled:
            self.coverage.note("tiny:spill")
        if self.tracer.enabled:
            self.tracer.emit("tiny:spill", cycle=now, addr=addr)
        self.stats.spills += 1
        self._detach_tracking(line, bank)

    def _detach_tracking(self, line, bank) -> None:
        """Reconstruct the data block after its tracking moved elsewhere."""
        was_corrupted = line.state is LLCState.CORRUPTED
        line.coh = None
        line.stra = None
        line.state = LLCState.DIRTY if line.underlying_dirty else LLCState.CLEAN
        line.underlying_dirty = False
        if was_corrupted:
            # The forwarded target also ships the borrowed bits to the LLC.
            self.traffic.partial(MessageClass.COHERENCE)
            bank.data_writes += 1

    def _rehome_victim(self, victim_entry, now) -> None:
        """A tiny-directory victim: transfer its state to the LLC block
        (corrupting it), spill it, or — if the data block is gone —
        back-invalidate (§IV)."""
        vaddr = victim_entry.addr
        coh, stra = victim_entry.coh, victim_entry.stra
        if coh.is_idle:
            return
        if self.recorder.enabled:
            self.recorder.record(vaddr, "tiny_rehome", detail=f"holders={coh.holders()}")
        bank = self.banks[self.bank_of(vaddr)]
        vline, vspill = bank.lookup(vaddr, touch=False)
        if vspill is not None:
            raise ProtocolError(
                f"block {vaddr:#x} tracked in both tiny directory and spill"
            )
        if vline is None:
            self._back_invalidate_untracked(vaddr, coh, now)
            return
        if self.spill_enabled and coh.is_shared:
            home = self.bank_of(vaddr)
            if self.spill_policies[home].allows(stra.category()):
                spill_line, svictim = bank.insert_spill(vaddr, coh, stra)
                if spill_line is not None:
                    if svictim is vline:
                        bank.remove(spill_line)
                        self._back_invalidate_untracked(vaddr, coh, now)
                        self._handle_llc_victim(svictim, now)
                        return
                    if svictim is not None:
                        self._handle_llc_victim(svictim, now)
                    if self.coverage.enabled:
                        self.coverage.note("tiny:rehome_spill")
                    self.stats.spills += 1
                    return
        # Corrupt the victim's data line with the transferred state.
        if self.coverage.enabled:
            self.coverage.note("tiny:rehome_corrupt")
        vline.coh = coh
        vline.stra = stra
        self._mark_tracked(vline, bank)

    def _back_invalidate_untracked(self, addr, coh, now) -> None:
        if self.recorder.enabled:
            self.recorder.record(addr, "back_invalidate", detail=f"holders={coh.holders()}")
        if self.coverage.enabled:
            self.coverage.note("llc:back_invalidate")
        if self.tracer.enabled:
            self.tracer.emit(
                "back_inval", cycle=now, addr=addr, holders=coh.holders()
            )
        had_dirty = False
        for holder in coh.holders():
            prior = self.cores[holder].invalidate(addr)
            self.traffic.control(MessageClass.COHERENCE)
            if prior is PrivateState.MODIFIED:
                had_dirty = True
                self.traffic.data(MessageClass.COHERENCE)
            else:
                self.traffic.control(MessageClass.COHERENCE)
            self.stats.invalidations += 1
            self.stats.back_invalidations += 1
        if had_dirty:
            self._dram_write(addr, now)
        coh.clear()

    # ------------------------------------------------------------------
    # LLC victims: spilled entries and companions need special care
    # ------------------------------------------------------------------

    def _handle_llc_victim(self, victim: LLCLine, now: int) -> None:
        bank = self.banks[self.bank_of(victim.tag)]
        if victim.is_spill:
            # Transfer the tracking back into the companion data block.
            b_line, _ = bank.lookup(victim.tag, touch=False)
            if b_line is not None and b_line.coh is None:
                if self.coverage.enabled:
                    self.coverage.note("tiny:recall")
                b_line.coh = victim.coh
                b_line.stra = victim.stra
                self._mark_tracked(b_line, bank)
            else:
                self._back_invalidate_untracked(victim.tag, victim.coh, now)
            return
        # A data line: drop any spilled companion alongside it.
        _, spill = bank.lookup(victim.tag, touch=False)
        if spill is not None:
            bank.remove(spill)
            self._back_invalidate_untracked(victim.tag, spill.coh, now)
            self._flush_residency(victim)
            if victim.state is LLCState.DIRTY or victim.underlying_dirty:
                self._dram_write(victim.tag, now)
            return
        super()._handle_llc_victim(victim, now)

    # ------------------------------------------------------------------
    # Eviction notices
    # ------------------------------------------------------------------

    def handle_private_eviction(
        self, core: int, addr: int, state: PrivateState, now: int
    ) -> None:
        if self.recorder.enabled:
            self.recorder.record(addr, "evict_notice", core=core, detail=state.name)
        entry = self.tiny.find_quiet(addr)
        bank = self.banks[self.bank_of(addr)]
        if entry is not None:
            self._notice_traffic(state, partial=False)
            entry.coh.remove(core)
            if entry.coh.is_idle:
                self.tiny.remove(addr)
            if state is PrivateState.MODIFIED:
                self._deposit_dirty(addr, bank, now)
            return
        line, spill = bank.lookup(addr, touch=False)
        if spill is not None:
            self._notice_traffic(state, partial=False)
            spill.coh.remove(core)
            if spill.coh.is_idle:
                bank.remove(spill)
            if state is PrivateState.MODIFIED:
                self._deposit_dirty(addr, bank, now)
            return
        super().handle_private_eviction(core, addr, state, now)

    def _notice_traffic(self, state: PrivateState, partial: bool) -> None:
        if state is PrivateState.MODIFIED:
            self.traffic.data(MessageClass.WRITEBACK)
        elif partial:
            self.traffic.partial(MessageClass.WRITEBACK)
        else:
            self.traffic.control(MessageClass.WRITEBACK)
        self.traffic.control(MessageClass.WRITEBACK)  # acknowledgement

    def _deposit_dirty(self, addr, bank, now) -> None:
        line, _ = bank.lookup(addr, touch=False)
        if line is not None and not line.is_spill:
            if line.state is LLCState.CORRUPTED:
                line.underlying_dirty = True
            else:
                line.state = LLCState.DIRTY
            bank.data_writes += 1
        else:
            self._dram_write(addr, now)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def rebuild_tracking(self, addr, truth, now=0):
        entry = self.tiny.find_quiet(addr)
        if entry is not None:
            if truth.is_idle:
                self.tiny.remove(addr)
                return "tiny:removed"
            entry.coh.owner = truth.owner
            entry.coh.sharers = truth.sharers
            return "tiny:rewritten"
        bank = self.banks[self.bank_of(addr)]
        _, spill = bank.peek(addr)
        if spill is not None:
            if truth.is_idle:
                bank.remove(spill)
                return "spill:removed"
            spill.coh.owner = truth.owner
            spill.coh.sharers = truth.sharers
            return "spill:rewritten"
        return super().rebuild_tracking(addr, truth, now)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    def _tracks(self, addr: int, core: int) -> bool:
        entry = self.tiny.find_quiet(addr)
        if entry is not None and entry.coh.holds(core):
            return True
        return super()._tracks(addr, core)

    def check_invariants(self) -> None:
        super().check_invariants()
        for entry in self.tiny.iter_entries():
            for holder in entry.coh.holders():
                if not self.cores[holder].holds(entry.addr):
                    raise InvariantViolation(
                        f"tiny directory tracks core {holder} holding "
                        f"{entry.addr:#x} but its cache does not",
                        addr=entry.addr,
                        cores=(holder,),
                    )
        for bank in self.banks:
            for line in bank.iter_lines():
                if line.is_spill:
                    data_line, _ = bank.peek(line.tag)
                    if data_line is None:
                        raise InvariantViolation(
                            f"spilled entry {line.tag:#x} without its data block",
                            addr=line.tag,
                        )
                    for holder in line.coh.holders():
                        if not self.cores[holder].holds(line.tag):
                            raise InvariantViolation(
                                f"spilled entry tracks core {holder} holding "
                                f"{line.tag:#x} but its cache does not",
                                addr=line.tag,
                                cores=(holder,),
                            )
