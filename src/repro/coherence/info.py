"""Coherence tracking information for one block.

A :class:`CohInfo` records where the valid private copies of a block live:
either a single exclusive owner (MESI E or M at the owner) or a set of
sharers (MESI S). The same record is used wherever tracking information
can reside — a sparse-directory entry, a tiny-directory entry, a corrupted
LLC block, or a spilled LLC tracking entry — so the home controller can
move it between structures without translation (exactly what the paper's
state-transfer operations do).

Sharer sets are integer bitmasks, which keeps the full-map bitvector of
the paper cheap to store and manipulate for up to hundreds of cores.
"""

from __future__ import annotations

from repro.errors import ProtocolError


class CohInfo:
    """Location information for the private copies of one block."""

    __slots__ = ("owner", "sharers")

    def __init__(self, owner: "int | None" = None, sharers: int = 0) -> None:
        if owner is not None and sharers:
            raise ProtocolError("a block cannot have both an owner and sharers")
        #: Core id of the exclusive owner (E or M), or None.
        self.owner = owner
        #: Bitmask of cores holding the block in S.
        self.sharers = sharers

    # -- predicates ----------------------------------------------------

    @property
    def is_exclusive(self) -> bool:
        """True when one core holds the block in E or M."""
        return self.owner is not None

    @property
    def is_shared(self) -> bool:
        """True when at least one core holds the block in S."""
        return self.sharers != 0

    @property
    def is_idle(self) -> bool:
        """True when no private cache holds the block."""
        return self.owner is None and self.sharers == 0

    def sharer_count(self) -> int:
        """Number of cores in the sharer set."""
        return bin(self.sharers).count("1")

    def holds(self, core: int) -> bool:
        """True when ``core`` has a valid copy according to this record."""
        return self.owner == core or bool(self.sharers >> core & 1)

    # -- mutation ------------------------------------------------------

    def set_owner(self, core: int) -> None:
        """Record ``core`` as the exclusive owner (clears any sharers)."""
        self.owner = core
        self.sharers = 0

    def add_sharer(self, core: int) -> None:
        """Add ``core`` to the sharer set (clears any exclusive owner)."""
        if self.owner is not None:
            self.sharers = 1 << self.owner
            self.owner = None
        self.sharers |= 1 << core

    def remove(self, core: int) -> None:
        """Drop ``core``'s copy from the record (eviction notice)."""
        if self.owner == core:
            self.owner = None
        self.sharers &= ~(1 << core)

    def clear(self) -> None:
        """Forget all copies (after invalidation of every holder)."""
        self.owner = None
        self.sharers = 0

    # -- iteration -----------------------------------------------------

    def sharer_list(self) -> "list[int]":
        """The sharer set as a sorted list of core ids."""
        cores = []
        mask = self.sharers
        core = 0
        while mask:
            if mask & 1:
                cores.append(core)
            mask >>= 1
            core += 1
        return cores

    def holders(self) -> "list[int]":
        """All cores with a valid copy (owner or sharers)."""
        if self.owner is not None:
            return [self.owner]
        return self.sharer_list()

    def copy(self) -> "CohInfo":
        """An independent copy of this record."""
        fresh = CohInfo()
        fresh.owner = self.owner
        fresh.sharers = self.sharers
        return fresh

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_exclusive:
            return f"CohInfo(owner={self.owner})"
        return f"CohInfo(sharers={self.sharers:#x})"
