"""Sampling resource watchdog, armed per run like the harness deadline.

:func:`guard_scope` arms a :class:`Watchdog` over a
:class:`~repro.guard.budget.RunBudget` for its ``with`` body; the trace
engine calls :func:`check_watchdog` every
:data:`~repro.sim.deadline.CHECK_STRIDE` accesses, right next to its
deadline check. The mechanism is the same cooperative design as
:mod:`repro.sim.deadline` — no signals, no threads — so budgets work on
every platform and inside process-pool workers, and an unarmed check
costs one global read.

Each check compares wall clock against the budget every time (one
``monotonic()`` call) and samples RSS at most every
:data:`RSS_SAMPLE_INTERVAL_S` seconds (reading ``/proc/self/status``
is three orders of magnitude costlier than a clock read). Crossing a
limit raises :class:`~repro.errors.BudgetExceeded`; crossing
:data:`PRESSURE_FRACTION` of a limit without exceeding it records a
*pressure event*, which :meth:`Watchdog.publish` turns into the
``stats.guard`` degraded-mode provenance section — published only when
non-empty, so unpressured runs stay bit-identical to unguarded ones.
"""

from __future__ import annotations

import contextlib
import os
import time

from repro.errors import BudgetExceeded
from repro.guard.budget import RunBudget

#: Minimum wall-clock seconds between two RSS samples.
RSS_SAMPLE_INTERVAL_S = 0.25

#: Fraction of a budget at which a (non-fatal) pressure event is
#: recorded for degraded-mode provenance.
PRESSURE_FRACTION = 0.8


def process_rss_mb(pid: "int | str" = "self") -> "float | None":
    """Current resident-set size of ``pid`` in megabytes.

    Reads ``/proc/<pid>/status`` (Linux); falls back to
    ``resource.getrusage`` peak RSS for the own process elsewhere.
    Returns None when neither source is available (the watchdog then
    skips RSS enforcement rather than guessing).
    """
    try:
        with open(f"/proc/{pid}/status", "rb") as handle:
            for line in handle:
                if line.startswith(b"VmRSS:"):
                    return int(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        pass
    if pid in ("self", os.getpid()):
        try:
            import resource

            peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            # ru_maxrss is KB on Linux, bytes on macOS.
            if os.uname().sysname == "Darwin":  # pragma: no cover
                return peak_kb / (1024.0 * 1024.0)
            return peak_kb / 1024.0
        except Exception:  # pragma: no cover - platform without resource
            pass
    return None


class Watchdog:
    """Samples wall clock and RSS against one :class:`RunBudget`."""

    def __init__(self, budget: RunBudget, now: "float | None" = None) -> None:
        self.budget = budget
        self.started = time.monotonic() if now is None else now
        self.checks = 0
        self.rss_samples = 0
        self.rss_peak_mb = 0.0
        #: Pressure events: (resource, observed, limit) tuples recorded
        #: when a sample crossed PRESSURE_FRACTION of its budget.
        self.pressure_events: "list[tuple[str, float, float]]" = []
        self._next_rss_sample = self.started
        self._pressured: "set[str]" = set()

    # ------------------------------------------------------------------

    def _pressure(self, resource: str, observed: float, limit: float) -> None:
        self.pressure_events.append((resource, observed, limit))
        self._pressured.add(resource)

    def check(self) -> None:
        """One cooperative sample; raises :class:`BudgetExceeded`."""
        self.checks += 1
        now = time.monotonic()
        budget = self.budget
        if budget.wall_s is not None:
            elapsed = now - self.started
            if elapsed > budget.wall_s:
                raise BudgetExceeded(
                    f"run exceeded its {budget.wall_s:g}s wall-clock budget "
                    f"(elapsed {elapsed:.1f}s)",
                    resource="wall",
                    observed=elapsed,
                    limit=budget.wall_s,
                )
            if (
                elapsed > budget.wall_s * PRESSURE_FRACTION
                and "wall" not in self._pressured
            ):
                self._pressure("wall", elapsed, budget.wall_s)
        if budget.rss_mb is not None and now >= self._next_rss_sample:
            self._next_rss_sample = now + RSS_SAMPLE_INTERVAL_S
            rss = process_rss_mb()
            if rss is None:
                return
            self.rss_samples += 1
            if rss > self.rss_peak_mb:
                self.rss_peak_mb = rss
            if rss > budget.rss_mb:
                raise BudgetExceeded(
                    f"run exceeded its {budget.rss_mb:g} MB RSS budget "
                    f"(observed {rss:.1f} MB)",
                    resource="rss",
                    observed=rss,
                    limit=budget.rss_mb,
                )
            if (
                rss > budget.rss_mb * PRESSURE_FRACTION
                and "rss" not in self._pressured
            ):
                self._pressure("rss", rss, budget.rss_mb)

    # ------------------------------------------------------------------

    def publish(self, stats) -> None:
        """Attach degraded-mode provenance to ``stats.guard``.

        Published **only** when at least one pressure event was
        recorded: a guarded run that never came near its budgets dumps
        statistics bit-identical to an unguarded run, so degraded
        numbers can never be silently mixed with clean ones.
        """
        if not self.pressure_events:
            return
        stats.guard = {
            "budget": self.budget.describe(),
            "pressure_events": [
                {
                    "resource": resource,
                    "observed": round(observed, 3),
                    "limit": limit,
                }
                for resource, observed, limit in self.pressure_events
            ],
            "rss_peak_mb": round(self.rss_peak_mb, 3),
            "checks": self.checks,
        }


#: The armed watchdog consulted by :func:`check_watchdog`; one per
#: process, mirroring the single armed deadline of
#: :mod:`repro.sim.deadline`.
_ACTIVE: "Watchdog | None" = None


@contextlib.contextmanager
def guard_scope(budget: "RunBudget | None"):
    """Arm a :class:`Watchdog` over ``budget`` for the ``with`` body.

    A None or unarmed budget (no wall/RSS limit) arms nothing and
    yields None; :func:`check_watchdog` stays a single global read.
    Scopes restore the previous watchdog on exit, so they nest — the
    innermost armed budget wins, which is what a soak harness wrapping
    an already-budgeted run expects.
    """
    global _ACTIVE
    if budget is None or not budget.armed:
        yield None
        return
    previous = _ACTIVE
    watchdog = Watchdog(budget)
    _ACTIVE = watchdog
    try:
        yield watchdog
    finally:
        _ACTIVE = previous


def check_watchdog() -> None:
    """Sample the armed watchdog, if any (engine-loop hook)."""
    if _ACTIVE is not None:
        _ACTIVE.check()


def active_watchdog() -> "Watchdog | None":
    """The currently armed watchdog (tests and provenance hooks)."""
    return _ACTIVE
