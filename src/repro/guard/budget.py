"""Declarative resource budgets for simulation runs.

A :class:`RunBudget` states how much wall clock, process RSS, and
artifact-disk space a run is allowed to consume. The budget itself is
inert data; enforcement is split by resource:

* wall clock and RSS are sampled by the :mod:`repro.guard.watchdog`
  from inside the trace-engine loop (cooperative, like the harness
  deadline), raising :class:`~repro.errors.BudgetExceeded` within one
  check stride of the limit being crossed;
* artifact-disk bytes are enforced at write time by
  :mod:`repro.guard.quota` (retention pruning, skip-on-overflow), so a
  full artifact directory degrades the run instead of crashing it.

Budgets come from the environment (``REPRO_BUDGET_WALL`` seconds,
``REPRO_BUDGET_RSS`` megabytes, ``REPRO_DISK_QUOTA`` megabytes);
invalid values warn on stderr and are ignored — never a silent
misconfiguration.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass


@dataclass(frozen=True)
class RunBudget:
    """Resource limits for one run (``None`` = unlimited).

    ``wall_s`` differs from the harness timeout
    (:class:`~repro.analysis.runner.HarnessPolicy.timeout_s`) in intent
    and error type: the timeout asks "has this run hung?", the budget
    asks "is this run worth its resources?" — a budget trip raises
    :class:`~repro.errors.BudgetExceeded`, which degraded-mode
    provenance tracks separately from timeouts.
    """

    #: Wall-clock seconds the run may take.
    wall_s: "float | None" = None
    #: Peak resident-set size in megabytes the process may reach.
    rss_mb: "float | None" = None
    #: Artifact-directory quota in megabytes (cache, traces, journals).
    disk_mb: "float | None" = None

    def __post_init__(self) -> None:
        for name in ("wall_s", "rss_mb", "disk_mb"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive (or None)")

    @property
    def armed(self) -> bool:
        """True when at least one watchdog-sampled limit is set."""
        return self.wall_s is not None or self.rss_mb is not None

    @property
    def empty(self) -> bool:
        """True when no limit of any kind is set."""
        return not self.armed and self.disk_mb is None

    def describe(self) -> "dict[str, float]":
        """The set limits as a plain dict (for ``stats.guard``)."""
        described: "dict[str, float]" = {}
        if self.wall_s is not None:
            described["wall_s"] = self.wall_s
        if self.rss_mb is not None:
            described["rss_mb"] = self.rss_mb
        if self.disk_mb is not None:
            described["disk_mb"] = self.disk_mb
        return described


def _parse_positive(name: str, unit: str) -> "float | None":
    """Parse one positive-number env var; warn loudly when invalid."""
    raw = os.environ.get(name, "").strip()
    if not raw or raw.lower() in ("off", "none", "no", "false"):
        return None
    try:
        value = float(raw)
    except ValueError:
        value = -1.0
    if value <= 0:
        print(
            f"repro: ignoring invalid {name}={raw!r} (expected a positive "
            f"number of {unit}); this budget is DISABLED",
            file=sys.stderr,
        )
        return None
    return value


def budget_from_env() -> RunBudget:
    """The :class:`RunBudget` declared by the budget environment knobs.

    ``REPRO_BUDGET_WALL`` is seconds, ``REPRO_BUDGET_RSS`` and
    ``REPRO_DISK_QUOTA`` are megabytes. Unset (or explicitly ``off``)
    leaves that resource unlimited.
    """
    return RunBudget(
        wall_s=_parse_positive("REPRO_BUDGET_WALL", "seconds"),
        rss_mb=_parse_positive("REPRO_BUDGET_RSS", "megabytes"),
        disk_mb=_parse_positive("REPRO_DISK_QUOTA", "megabytes"),
    )
