"""Adaptive worker-count backpressure for the sweep executor.

:func:`repro.parallel.executor.run_sweep` keeps at most ``jobs`` points
in flight. A :class:`PressureMonitor` between scheduling rounds watches
two aggregate signals — the summed RSS of the live pool workers and the
free headroom of the artifact volume — and adaptively shrinks the
*effective* job count when either crosses its high-water mark, then
restores it one step at a time once pressure clears. The pool itself is
never rebuilt; throttling only bounds how many points are submitted
concurrently, so results (which are keyed by submission index) stay
bit-identical to an unthrottled sweep.

Every decision is recorded as a :class:`ThrottleEvent` and surfaces in
the :class:`~repro.parallel.profiling.SweepSummary` and the sweep
report's ``guard`` section; a throttled sweep can therefore never pass
itself off as a clean one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.guard.quota import DEFAULT_MIN_FREE_MB, free_mb
from repro.guard.watchdog import process_rss_mb


@dataclass(frozen=True)
class ThrottleEvent:
    """One backpressure decision of a sweep."""

    #: Seconds since the sweep started.
    at_s: float
    #: ``"throttle"`` (shrink) or ``"restore"`` (grow).
    action: str
    #: Which signal drove it: ``"rss"``, ``"disk"`` (throttle only),
    #: or ``"clear"`` (restore).
    reason: str
    jobs_from: int
    jobs_to: int
    #: The observed aggregate value (MB of RSS, or MB free disk).
    observed: float
    #: The limit the observation was compared against.
    limit: float

    def to_dict(self) -> dict:
        return {
            "at_s": round(self.at_s, 3),
            "action": self.action,
            "reason": self.reason,
            "jobs_from": self.jobs_from,
            "jobs_to": self.jobs_to,
            "observed": round(self.observed, 3),
            "limit": round(self.limit, 3),
        }


@dataclass(frozen=True)
class PressurePolicy:
    """Thresholds for sweep backpressure.

    ``rss_mb`` is the *aggregate* budget across all pool workers —
    :func:`pressure_from_env` derives it as the per-worker
    ``REPRO_BUDGET_RSS`` times the worker count, so one knob governs
    both the per-run watchdog and the sweep-level throttle.
    """

    #: Aggregate worker-RSS budget in MB; None disables the RSS signal.
    rss_mb: "float | None" = None
    #: Free-disk floor (MB) on the artifact volume; None disables.
    disk_floor_mb: "float | None" = None
    #: Fraction of ``rss_mb`` above which the sweep throttles.
    high_water: float = 0.85
    #: Fraction of ``rss_mb`` below which the sweep restores.
    low_water: float = 0.60
    #: Throttling never goes below this many in-flight points.
    min_jobs: int = 1
    #: Minimum seconds between two pressure samples.
    sample_interval_s: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.low_water < self.high_water <= 1.0:
            raise ValueError("need 0 < low_water < high_water <= 1")
        if self.min_jobs < 1:
            raise ValueError("min_jobs must be >= 1")

    @property
    def armed(self) -> bool:
        return self.rss_mb is not None or self.disk_floor_mb is not None


def pressure_from_env(jobs: int) -> "PressurePolicy | None":
    """The sweep's :class:`PressurePolicy`, derived from the budgets.

    Armed when ``REPRO_BUDGET_RSS`` (aggregate = per-worker value ×
    ``jobs``) or ``REPRO_DISK_QUOTA`` (disk floor =
    :data:`~repro.guard.quota.DEFAULT_MIN_FREE_MB`) is set; None
    otherwise, which keeps the executor's scheduling loop free of any
    sampling cost.
    """
    from repro.guard.budget import budget_from_env

    budget = budget_from_env()
    rss_mb = None if budget.rss_mb is None else budget.rss_mb * max(1, jobs)
    disk_floor = None if budget.disk_mb is None else DEFAULT_MIN_FREE_MB
    if rss_mb is None and disk_floor is None:
        return None
    return PressurePolicy(rss_mb=rss_mb, disk_floor_mb=disk_floor)


class PressureMonitor:
    """Tracks pressure and adapts the effective job count of one sweep."""

    def __init__(
        self,
        jobs: int,
        policy: PressurePolicy,
        *,
        rss_reader=process_rss_mb,
        free_reader=free_mb,
        clock=time.monotonic,
    ) -> None:
        self.jobs = max(1, jobs)
        self.policy = policy
        self.effective_jobs = self.jobs
        self.min_effective_jobs = self.jobs
        self.events: "list[ThrottleEvent]" = []
        self.samples = 0
        self._rss_reader = rss_reader
        self._free_reader = free_reader
        self._clock = clock
        self._started = clock()
        self._next_sample = self._started

    # ------------------------------------------------------------------

    def aggregate_rss_mb(self, worker_pids) -> float:
        """Summed RSS of the live pool workers (missing pids skipped)."""
        total = 0.0
        for pid in worker_pids:
            rss = self._rss_reader(pid)
            if rss is not None:
                total += rss
        return total

    def _record(self, action, reason, jobs_to, observed, limit) -> None:
        self.events.append(
            ThrottleEvent(
                at_s=self._clock() - self._started,
                action=action,
                reason=reason,
                jobs_from=self.effective_jobs,
                jobs_to=jobs_to,
                observed=observed,
                limit=limit,
            )
        )
        self.effective_jobs = jobs_to
        if jobs_to < self.min_effective_jobs:
            self.min_effective_jobs = jobs_to

    def update(self, worker_pids, artifact_dir) -> int:
        """One scheduling-round sample; returns the effective job count.

        Throttling halves the effective count (never below
        ``min_jobs``); once both signals are back under the low-water
        mark the count is restored one step per sample, so a recovered
        machine ramps back up without oscillating.
        """
        now = self._clock()
        if now < self._next_sample:
            return self.effective_jobs
        self._next_sample = now + self.policy.sample_interval_s
        self.samples += 1
        policy = self.policy
        rss = None
        if policy.rss_mb is not None:
            rss = self.aggregate_rss_mb(worker_pids)
            if rss > policy.rss_mb * policy.high_water:
                shrunk = max(policy.min_jobs, self.effective_jobs // 2)
                if shrunk < self.effective_jobs:
                    self._record("throttle", "rss", shrunk, rss, policy.rss_mb)
                return self.effective_jobs
        headroom = None
        if policy.disk_floor_mb is not None:
            headroom = self._free_reader(artifact_dir)
            if headroom is not None and headroom < policy.disk_floor_mb:
                shrunk = max(policy.min_jobs, self.effective_jobs // 2)
                if shrunk < self.effective_jobs:
                    self._record(
                        "throttle", "disk", shrunk, headroom,
                        policy.disk_floor_mb,
                    )
                return self.effective_jobs
        if self.effective_jobs < self.jobs:
            rss_clear = (
                policy.rss_mb is None
                or (rss is not None and rss < policy.rss_mb * policy.low_water)
            )
            disk_clear = (
                policy.disk_floor_mb is None
                or headroom is None
                or headroom >= policy.disk_floor_mb
            )
            if rss_clear and disk_clear:
                self._record(
                    "restore", "clear", self.effective_jobs + 1,
                    rss if rss is not None else (headroom or 0.0),
                    policy.rss_mb or policy.disk_floor_mb or 0.0,
                )
        return self.effective_jobs

    # ------------------------------------------------------------------

    def describe(self) -> dict:
        """The sweep-level ``guard`` provenance (empty when untouched)."""
        if not self.events:
            return {}
        return {
            "throttle_events": [event.to_dict() for event in self.events],
            "min_effective_jobs": self.min_effective_jobs,
            "jobs": self.jobs,
            "samples": self.samples,
        }
