"""repro.guard — resource governance: budgets, backpressure, shutdown.

The resilience stack (``repro.resilience``, ``repro.recovery``,
``repro.parallel``) defends against *logical* faults — corrupted
coherence state, crashed workers. This package defends against
*resource* failures, the other way long campaigns die:

* **Budgets** (:mod:`~repro.guard.budget`,
  :mod:`~repro.guard.watchdog`): a declarative :class:`RunBudget`
  (wall clock, peak RSS, artifact-disk bytes) sampled cooperatively
  from the trace-engine loop; a blown budget raises a structured
  :class:`~repro.errors.BudgetExceeded` that flows through the
  existing keep-going/journal semantics, and near-miss pressure is
  published as the ``stats.guard`` degraded-mode provenance section.
* **Backpressure** (:mod:`~repro.guard.backpressure`): the sweep
  executor adaptively shrinks its effective worker count when
  aggregate worker RSS or disk headroom crosses a high-water mark,
  restoring it when pressure clears; every decision is recorded in the
  sweep summary.
* **Disk quotas** (:mod:`~repro.guard.quota`): preflight warnings,
  ``REPRO_DISK_QUOTA`` retention pruning, and skip-on-overflow so a
  full artifact directory degrades a run instead of crashing it.
* **Graceful shutdown** (:mod:`~repro.guard.shutdown`): SIGINT/SIGTERM
  become :class:`~repro.errors.ShutdownRequested`; the CLI prints a
  ``--resume`` hint and exits :data:`EXIT_INTERRUPTED`.
* **Soak harness** (:mod:`~repro.guard.soak`, ``python -m repro
  soak``): randomized long sweeps under injected resource pressure
  asserting the recovery invariants end to end.

See ``docs/resilience.md`` (Resource governance) for the operator
guide.
"""

from repro.guard.backpressure import (
    PressureMonitor,
    PressurePolicy,
    ThrottleEvent,
    pressure_from_env,
)
from repro.guard.budget import RunBudget, budget_from_env
from repro.guard.quota import (
    DEFAULT_MIN_FREE_MB,
    dir_usage_bytes,
    disk_quota_mb,
    free_mb,
    make_room,
    preflight,
    prune_matching,
)
from repro.guard.shutdown import (
    EXIT_INTERRUPTED,
    graceful_scope,
    resume_hint,
)
from repro.guard.watchdog import (
    Watchdog,
    active_watchdog,
    check_watchdog,
    guard_scope,
    process_rss_mb,
)

__all__ = [
    "DEFAULT_MIN_FREE_MB",
    "EXIT_INTERRUPTED",
    "PressureMonitor",
    "PressurePolicy",
    "RunBudget",
    "ThrottleEvent",
    "Watchdog",
    "active_watchdog",
    "budget_from_env",
    "check_watchdog",
    "dir_usage_bytes",
    "disk_quota_mb",
    "free_mb",
    "graceful_scope",
    "guard_scope",
    "make_room",
    "preflight",
    "pressure_from_env",
    "process_rss_mb",
    "prune_matching",
    "resume_hint",
]
