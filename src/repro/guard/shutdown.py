"""Graceful SIGINT/SIGTERM shutdown for long-running sweeps.

A sweep killed by Ctrl-C used to die with a raw ``KeyboardInterrupt``
traceback (and SIGTERM, the signal every CI system and container
runtime actually sends, with no cleanup at all). :func:`graceful_scope`
installs handlers that convert both into a structured
:class:`~repro.errors.ShutdownRequested`, which unwinds through the
executor — every already-completed point is safe in the fsync'd
:class:`~repro.parallel.journal.SweepJournal` — and is caught at the
CLI boundary, which prints a ``--resume`` hint and exits with the
distinct :data:`EXIT_INTERRUPTED` code so wrappers can tell "operator
stopped it, resumable" apart from "it failed".
"""

from __future__ import annotations

import contextlib
import signal
import threading

from repro.errors import ShutdownRequested

#: Exit code for an operator-interrupted (and resumable) run: BSD's
#: ``EX_TEMPFAIL`` — "try again later", which is exactly what
#: ``--resume`` offers. Distinct from 1 (runs failed) and 2 (usage).
EXIT_INTERRUPTED = 75

#: Signals converted into :class:`ShutdownRequested`.
SHUTDOWN_SIGNALS = (signal.SIGINT, signal.SIGTERM)


@contextlib.contextmanager
def graceful_scope(signals: "tuple" = SHUTDOWN_SIGNALS):
    """Convert ``signals`` into :class:`ShutdownRequested` for the body.

    Python delivers signal handlers on the main thread, so the raise
    lands wherever the sweep currently is — typically inside the
    executor's ``wait()`` — and unwinds normally, running every
    ``finally`` on the way out. Previous handlers are restored on exit.
    Outside the main thread (or on platforms without the signal) the
    scope degrades to a no-op rather than failing: worker processes and
    test threads can share code paths with the CLI.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous = {}

    def _handler(signum, frame):  # noqa: ARG001 - signal handler shape
        raise ShutdownRequested(signum)

    for sig in signals:
        try:
            previous[sig] = signal.signal(sig, _handler)
        except (ValueError, OSError):  # pragma: no cover - exotic platform
            continue
    try:
        yield
    finally:
        for sig, handler in previous.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass


def resume_hint(journal_path, argv: "list[str] | None" = None) -> str:
    """The operator-facing hint printed after a graceful shutdown."""
    rerun = "--resume"
    if argv:
        seen = list(argv)
        if "--resume" not in seen:
            seen.append("--resume")
        rerun = " ".join(["python -m repro"] + seen)
    return (
        f"interrupted: completed points are journaled in {journal_path}; "
        f"rerun with {rerun} to compute only the rest"
    )
