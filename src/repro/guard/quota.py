"""Disk preflight, artifact-directory quotas, and retention pruning.

Every artifact directory the harness writes — the result cache,
``.rtrace`` captures, sweep journals, ``REPRO_BENCH_DIR`` perf points —
shares one failure mode: the disk fills up mid-sweep and a raw
``OSError`` kills hours of work. This module gives the writers three
defenses:

* :func:`preflight` — warn (loudly, once per directory) before a sweep
  when the volume holding an artifact directory is low on space, so
  the operator hears about pressure before the first ``ENOSPC``;
* :func:`make_room` — enforce the ``REPRO_DISK_QUOTA`` budget by
  retention: oldest prunable artifacts are deleted until the incoming
  write fits, and when even an empty directory could not hold it the
  caller is told to skip the write (degrade, never crash);
* :func:`prune_matching` — the shared newest-N retention primitive
  (also used by the ``.bad`` quarantine cap in
  :mod:`repro.analysis.cache`).

Quota accounting is per artifact directory, not per volume: the quota
bounds what *this harness* writes, so a shared CI disk filling up with
someone else's bytes still surfaces through :func:`preflight` rather
than through surprise pruning.
"""

from __future__ import annotations

import os
import pathlib
import shutil
import sys

#: Free-space floor (MB) below which :func:`preflight` warns.
DEFAULT_MIN_FREE_MB = 64.0

#: Directories already warned about this process (avoid log spam).
_WARNED: "set[str]" = set()


def dir_usage_bytes(path: "pathlib.Path | str") -> int:
    """Total bytes of regular files under ``path`` (0 when absent)."""
    total = 0
    for root, _dirs, files in os.walk(path):
        for name in files:
            try:
                total += os.lstat(os.path.join(root, name)).st_size
            except OSError:
                continue
    return total


def free_mb(path: "pathlib.Path | str") -> "float | None":
    """Free megabytes on the volume holding ``path`` (None if unknown)."""
    probe = pathlib.Path(path)
    while not probe.exists():
        parent = probe.parent
        if parent == probe:
            return None
        probe = parent
    try:
        return shutil.disk_usage(probe).free / (1024.0 * 1024.0)
    except OSError:
        return None


def preflight(
    paths, min_free_mb: float = DEFAULT_MIN_FREE_MB, stream=None
) -> "list[str]":
    """Warn when any artifact path's volume is low on space.

    Returns the warning lines (also printed to ``stream``, default
    stderr, once per directory per process). Never raises: a low disk
    is the operator's decision to act on, and the quota machinery keeps
    the harness itself from making it worse.
    """
    stream = stream if stream is not None else sys.stderr
    warnings = []
    for path in paths:
        key = os.fspath(path)
        headroom = free_mb(path)
        if headroom is not None and headroom < min_free_mb:
            line = (
                f"repro: low disk for artifact dir {key}: "
                f"{headroom:.0f} MB free (< {min_free_mb:g} MB); sweeps "
                f"will degrade (skipped cache writes) when the disk fills"
            )
            warnings.append(line)
            if key not in _WARNED:
                _WARNED.add(key)
                print(line, file=stream)
    return warnings


def prune_matching(
    directory: "pathlib.Path | str",
    patterns: "tuple[str, ...]",
    keep: "int | None" = None,
    budget_bytes: "int | None" = None,
) -> "list[pathlib.Path]":
    """Delete oldest files matching ``patterns`` beyond the retention.

    Files are ranked newest-first by mtime; everything past ``keep``
    entries (when given) or past ``budget_bytes`` cumulative size (when
    given) is unlinked. Returns the pruned paths. Racing deleters are
    tolerated — a file that vanished mid-prune counts as pruned.
    """
    directory = pathlib.Path(directory)
    candidates = []
    for pattern in patterns:
        candidates.extend(directory.glob(pattern))
    ranked = []
    for path in set(candidates):
        try:
            stat = path.lstat()
        except OSError:
            continue
        ranked.append((stat.st_mtime, stat.st_size, path))
    ranked.sort(key=lambda item: item[0], reverse=True)
    pruned = []
    running = 0
    for index, (_mtime, size, path) in enumerate(ranked):
        running += size
        over_count = keep is not None and index >= keep
        over_bytes = budget_bytes is not None and running > budget_bytes
        if not over_count and not over_bytes:
            continue
        try:
            path.unlink()
        except OSError:
            pass
        pruned.append(path)
    return pruned


def make_room(
    directory: "pathlib.Path | str",
    incoming_bytes: int,
    quota_mb: "float | None",
    patterns: "tuple[str, ...]" = ("*.json.bad", "*.json"),
) -> bool:
    """Fit an ``incoming_bytes`` write under the directory quota.

    With no quota this is a no-op returning True. Otherwise oldest
    artifacts matching ``patterns`` are pruned until the directory plus
    the incoming write fits; returns False when even an empty directory
    could not hold it (the caller skips the write — degraded, not
    dead). Non-matching files (journals, foreign artifacts) are never
    touched.
    """
    if quota_mb is None:
        return True
    quota_bytes = int(quota_mb * 1024 * 1024)
    if incoming_bytes > quota_bytes:
        return False
    used = dir_usage_bytes(directory)
    if used + incoming_bytes <= quota_bytes:
        return True
    prune_matching(
        directory, patterns, budget_bytes=quota_bytes - incoming_bytes
    )
    return dir_usage_bytes(directory) + incoming_bytes <= quota_bytes


def disk_quota_mb() -> "float | None":
    """The armed artifact-directory quota (``REPRO_DISK_QUOTA``), or None."""
    from repro.guard.budget import budget_from_env

    return budget_from_env().disk_mb
