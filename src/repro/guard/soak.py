"""Resource-governance soak harness (``python -m repro soak``).

The unit tests pin each guard mechanism in isolation with monkeypatched
pressure; this harness exercises them *together*, the way a long
overnight sweep on a loaded machine would: randomized small sweeps run
under injected resource pressure — starvation wall-clock budgets, tiny
disk quotas, aggregate-RSS throttling, mid-sweep SIGTERM — and after
every round the harness asserts the recovery invariants documented in
``docs/resilience.md``:

* **no crash** — a pressured sweep completes degraded (keep-going
  failures, skipped cache writes, throttled jobs) or exits with the
  resumable :data:`~repro.guard.shutdown.EXIT_INTERRUPTED` code; it
  never dies with a raw traceback;
* **no litter** — no stray ``*.tmp`` files survive in any artifact
  directory, whatever the pressure did;
* **no contamination** — after the pressure is lifted, recomputing the
  same points in a fresh cache produces statistics bit-identical to an
  unpressured baseline (pressure may cost work, never correctness);
* **resumability** — a sweep interrupted mid-flight leaves a loadable
  journal, and ``resume=True`` recomputes only the missing points.

Rounds are seeded (``--seed``) so a failing soak reproduces exactly;
``--quick`` is the CI configuration (fewer rounds, smallest scale).
"""

from __future__ import annotations

import argparse
import contextlib
import os
import random
import sys
import tempfile
import time
from pathlib import Path

#: Pressure scenarios a round can draw (``interrupt`` needs fork).
SCENARIOS = ("wall_budget", "disk_quota", "rss_throttle", "interrupt")

#: Environment keys every round starts from a clean slate on.
_PRESSURE_KEYS = (
    "REPRO_BUDGET_WALL",
    "REPRO_BUDGET_RSS",
    "REPRO_DISK_QUOTA",
    "REPRO_CACHE_DIR",
    "REPRO_CACHE",
    "REPRO_TRACE",
    "REPRO_METRICS",
    "REPRO_JOBS",
)


@contextlib.contextmanager
def _scoped_env(overrides: "dict[str, str | None]"):
    """Apply ``overrides`` (None deletes) and restore on exit."""
    saved = {key: os.environ.get(key) for key in overrides}
    try:
        for key, value in overrides.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _round_points(rng: "random.Random", quick: bool):
    """A small randomized sweep: 2-3 apps, two tiny-directory schemes."""
    from repro.analysis.runner import RunScale
    from repro.parallel.points import SweepPoint
    from repro.workloads.profiles import APPLICATIONS

    scale = RunScale(
        num_cores=8,
        total_accesses=2_000 if quick else 4_000,
        seed=rng.randrange(1, 1 << 16),
        l1_kb=8,
        l2_kb=32,
        spill_window=64,
    )
    apps = rng.sample(sorted(APPLICATIONS), 2 if quick else 3)
    schemes = [scale.tiny_spec(1 / 32), scale.tiny_spec(1 / 64, spill=True)]
    return [
        SweepPoint(app=app, scheme=scheme, scale=scale)
        for app in apps
        for scheme in schemes
    ]


def _run_points(points, cache_dir: Path, *, resume: bool = False):
    """One serial sweep of ``points`` journaled under ``cache_dir``."""
    from repro.analysis.runner import HarnessPolicy
    from repro.parallel.executor import run_sweep
    from repro.parallel.journal import SweepJournal

    journal = SweepJournal(cache_dir / SweepJournal.FILENAME)
    policy = HarnessPolicy(keep_going=True)
    with _scoped_env({"REPRO_CACHE_DIR": str(cache_dir), "REPRO_CACHE": "on"}):
        return run_sweep(
            points, jobs=1, policy=policy, journal=journal, resume=resume
        )


def _baseline_dumps(points, sandbox: Path) -> "list[dict]":
    """Unpressured reference statistics for ``points`` (fresh cache)."""
    report = _run_points(points, sandbox / "baseline")
    return [result.stats.dump() for result in report.results]


def _find_litter(root: Path) -> "list[str]":
    """Stray temp files anywhere under ``root`` (should always be [])."""
    return sorted(
        str(path) for path in root.rglob("*.tmp") if path.is_file()
    )


# ----------------------------------------------------------------------
# Scenarios — each returns a list of invariant-violation strings
# ----------------------------------------------------------------------

def _check_recovery(points, sandbox: Path, baseline: "list[dict]",
                    label: str) -> "list[str]":
    """Pressure lifted: a fresh-cache recompute must match the baseline."""
    report = _run_points(points, sandbox / f"{label}-recovered")
    problems = []
    if report.failures:
        problems.append(
            f"{label}: recovery sweep still failing: {report.failures[0]}"
        )
    dumps = [result.stats.dump() for result in report.results]
    if dumps != baseline:
        problems.append(
            f"{label}: post-pressure statistics diverge from the "
            f"unpressured baseline (contamination)"
        )
    return problems


def _scenario_wall_budget(points, sandbox, baseline, rng) -> "list[str]":
    """A starvation wall budget: runs must fail structurally, not crash."""
    problems = []
    with _scoped_env({"REPRO_BUDGET_WALL": "0.002"}):
        report = _run_points(points, sandbox / "wall-pressed")
    if not report.failures:
        problems.append(
            "wall_budget: no run tripped a 2ms wall budget (watchdog dead?)"
        )
    for failure in report.failures:
        if "BudgetExceeded" not in failure.error:
            problems.append(
                f"wall_budget: expected BudgetExceeded, got: {failure.error}"
            )
            break
    problems += _check_recovery(points, sandbox, baseline, "wall_budget")
    return problems


def _scenario_disk_quota(points, sandbox, baseline, rng) -> "list[str]":
    """A tiny artifact quota: writes degrade (prune/skip), never crash."""
    problems = []
    pressed = sandbox / "disk-pressed"
    with _scoped_env({"REPRO_DISK_QUOTA": "0.02"}):  # 20 KB: ~0-1 entries
        report = _run_points(points, pressed)
    if report.failures:
        problems.append(
            f"disk_quota: quota-pressed sweep failed: {report.failures[0]}"
        )
    quota_bytes = int(0.02 * 1024 * 1024)
    cached = list(pressed.glob("*.json"))
    used = sum(path.stat().st_size for path in cached)
    if used > quota_bytes:
        problems.append(
            f"disk_quota: cache dir holds {used} bytes of entries, over "
            f"the {quota_bytes}-byte quota"
        )
    problems += _check_recovery(points, sandbox, baseline, "disk_quota")
    return problems


def _scenario_rss_throttle(points, sandbox, baseline, rng) -> "list[str]":
    """An RSS budget straddling the live footprint: degrade, never die.

    The budget is pinned just above the current interpreter RSS, so the
    run lands in the pressure window (recorded provenance) or trips the
    budget (structured failure) depending on the machine — both are
    acceptable degraded outcomes; a crash or contamination is not.
    """
    from repro.guard.watchdog import process_rss_mb

    problems = []
    rss = process_rss_mb()
    if rss is None:
        return problems  # platform without RSS introspection: skip
    with _scoped_env({"REPRO_BUDGET_RSS": f"{rss * 1.05:.1f}"}):
        report = _run_points(points, sandbox / "rss-pressed")
    for failure in report.failures:
        if "BudgetExceeded" not in failure.error:
            problems.append(
                f"rss_throttle: expected BudgetExceeded, got: {failure.error}"
            )
            break
    problems += _check_recovery(points, sandbox, baseline, "rss_throttle")
    return problems


def _interrupt_child(points, cache_dir: str) -> None:
    """Child body for the interrupt scenario (SIGTERMed by the parent)."""
    from repro.errors import ShutdownRequested
    from repro.guard.shutdown import EXIT_INTERRUPTED, graceful_scope

    try:
        with graceful_scope():
            _run_points(points, Path(cache_dir))
    except ShutdownRequested:
        os._exit(EXIT_INTERRUPTED)
    os._exit(0)


def _scenario_interrupt(points, sandbox, baseline, rng) -> "list[str]":
    """SIGTERM mid-sweep: distinct exit code, flushed journal, resume."""
    import multiprocessing
    import signal

    from repro.guard.shutdown import EXIT_INTERRUPTED
    from repro.parallel.journal import SweepJournal

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        return []
    problems = []
    pressed = sandbox / "interrupted"
    journal_path = pressed / SweepJournal.FILENAME
    child = ctx.Process(target=_interrupt_child, args=(points, str(pressed)))
    child.start()
    # Interrupt as soon as the first point lands in the journal, so the
    # sweep is genuinely mid-flight (not before it started, not after
    # it finished).
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        if journal_path.exists() and journal_path.stat().st_size > 0:
            break
        if not child.is_alive():
            break
        time.sleep(0.02)
    if child.is_alive():
        os.kill(child.pid, signal.SIGTERM)
    child.join(timeout=60.0)
    if child.is_alive():  # pragma: no cover - hung child
        child.kill()
        child.join()
        return ["interrupt: child never exited after SIGTERM"]
    raced_to_completion = child.exitcode == 0
    if not raced_to_completion and child.exitcode != EXIT_INTERRUPTED:
        problems.append(
            f"interrupt: expected exit code {EXIT_INTERRUPTED} "
            f"(or 0 if the sweep won the race), got {child.exitcode}"
        )
    journaled = SweepJournal(journal_path).load()
    if not journaled:
        problems.append("interrupt: journal is empty after SIGTERM")
    resumed = _run_points(points, pressed, resume=True)
    if not raced_to_completion and resumed.resumed_points == 0:
        problems.append(
            "interrupt: --resume recomputed every point despite the journal"
        )
    if resumed.failures:
        problems.append(
            f"interrupt: resumed sweep failed: {resumed.failures[0]}"
        )
    dumps = [result.stats.dump() for result in resumed.results]
    if dumps != baseline:
        problems.append(
            "interrupt: resumed statistics diverge from the baseline"
        )
    return problems


_SCENARIO_FNS = {
    "wall_budget": _scenario_wall_budget,
    "disk_quota": _scenario_disk_quota,
    "rss_throttle": _scenario_rss_throttle,
    "interrupt": _scenario_interrupt,
}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro soak",
        description="Randomized resource-pressure soak for the guard "
        "subsystem (budgets, quotas, throttling, graceful shutdown).",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=4,
        metavar="N",
        help="pressure rounds to run (default 4; each draws one scenario)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="RNG seed for scenario/workload draws (default 0)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI configuration: 2 rounds at the smallest scale",
    )
    parser.add_argument(
        "--scenario",
        choices=SCENARIOS,
        action="append",
        metavar="NAME",
        help="restrict rounds to these scenarios (repeatable; "
        "default: all of " + ", ".join(SCENARIOS) + ")",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        help="sandbox directory to keep (default: a temp dir, removed "
        "on success, kept and named on failure)",
    )
    return parser


def run_soak(args) -> int:
    rng = random.Random(args.seed)
    rounds = 2 if args.quick else max(1, args.rounds)
    pool = list(args.scenario or SCENARIOS)
    if args.out:
        root = Path(args.out)
        root.mkdir(parents=True, exist_ok=True)
        ephemeral = False
    else:
        root = Path(tempfile.mkdtemp(prefix="repro-soak-"))
        ephemeral = True
    clean_env = {key: None for key in _PRESSURE_KEYS}
    violations: "list[str]" = []
    try:
        with _scoped_env(clean_env):
            for round_no in range(1, rounds + 1):
                scenario = pool[(round_no - 1) % len(pool)] if args.quick \
                    else rng.choice(pool)
                sandbox = root / f"round{round_no:02d}-{scenario}"
                sandbox.mkdir(parents=True, exist_ok=True)
                points = _round_points(rng, args.quick)
                started = time.monotonic()
                baseline = _baseline_dumps(points, sandbox)
                problems = _SCENARIO_FNS[scenario](
                    points, sandbox, baseline, rng
                )
                problems += [
                    f"{scenario}: stray temp file left behind: {path}"
                    for path in _find_litter(sandbox)
                ]
                status = "ok" if not problems else "FAILED"
                print(
                    f"soak round {round_no}/{rounds}: {scenario} "
                    f"({len(points)} points, "
                    f"{time.monotonic() - started:.1f}s) {status}"
                )
                for problem in problems:
                    print(f"  {problem}", file=sys.stderr)
                violations += problems
    finally:
        if ephemeral and not violations:
            import shutil

            shutil.rmtree(root, ignore_errors=True)
        elif ephemeral:
            print(f"soak sandbox kept for inspection: {root}",
                  file=sys.stderr)
    if violations:
        print(
            f"soak: {len(violations)} invariant violation(s) across "
            f"{rounds} round(s)",
            file=sys.stderr,
        )
        return 1
    print(f"soak: {rounds} round(s), all recovery invariants held")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return run_soak(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
