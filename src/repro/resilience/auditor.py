"""Online protocol auditing.

A :class:`ProtocolAuditor` periodically re-verifies every protocol
invariant *while the simulation runs*, so a corruption (an injected
fault, or a genuine simulator bug) is caught within one audit window of
its occurrence instead of thousands of accesses later at end-of-run.

The auditor owns a :class:`~repro.resilience.recorder.FlightRecorder`
that it installs into the system's home controller; when an invariant
trips, the raised :class:`~repro.errors.InvariantViolation` is enriched
with the corrupted block's home bank and the last few transactions the
recorder captured for it.

Auditing is opt-in (``--audit`` on the CLI, or ``REPRO_AUDIT=on`` /
``REPRO_AUDIT=<interval>`` in the environment). All audit-time state
inspection uses quiet lookups, so enabling it does not change any
simulated statistic: a clean run produces bit-identical results with
auditing on or off.
"""

from __future__ import annotations

import os
import sys

from repro.errors import InvariantViolation, ProtocolError
from repro.resilience.recorder import FlightRecorder

#: Audit every this-many accesses unless overridden.
DEFAULT_AUDIT_INTERVAL = 1000


class ProtocolAuditor:
    """Runs the invariant checkers every ``interval`` accesses."""

    def __init__(
        self,
        interval: int = DEFAULT_AUDIT_INTERVAL,
        history_depth: int = 8,
    ) -> None:
        self.interval = max(1, int(interval))
        self.recorder = FlightRecorder(depth=history_depth)
        self.audits = 0
        self.violations = 0

    def install(self, system) -> None:
        """Attach the flight recorder to the system's home controller."""
        system.home.recorder = self.recorder

    def maybe_audit(self, system, processed: int) -> None:
        """Audit when ``processed`` falls on an audit boundary."""
        if processed % self.interval == 0:
            self.audit(system)

    def audit(self, system) -> None:
        """Verify every invariant now; raise an enriched violation."""
        self.audits += 1
        try:
            system.check_invariants()
        except InvariantViolation as err:
            self.violations += 1
            raise self._enrich(system, err)
        except ProtocolError as err:
            self.violations += 1
            raise self._enrich(
                system, InvariantViolation(str(err))
            ) from err

    def _enrich(self, system, err: InvariantViolation) -> InvariantViolation:
        if err.addr is not None:
            if err.bank is None:
                err.bank = system.home.bank_of(err.addr)
            if not err.history:
                err.history = self.recorder.history(err.addr)
        return err


def auditor_from_env() -> "ProtocolAuditor | None":
    """Build an auditor from ``REPRO_AUDIT``, or None when disabled.

    ``REPRO_AUDIT`` accepts ``on``/``1``/``yes``/``true`` (default
    interval), a positive integer audit interval, or
    ``off``/``0``/``no``/``false``/unset to disable. Anything else —
    a typo like ``ture``, a negative interval — disables auditing too,
    but *loudly*: a warning on stderr, never a silent None, so a
    misconfigured environment cannot masquerade as a clean audit.
    """
    raw = os.environ.get("REPRO_AUDIT", "").strip().lower()
    if not raw or raw in ("off", "0", "no", "false"):
        return None
    if raw in ("on", "1", "yes", "true"):
        return ProtocolAuditor()
    try:
        interval = int(raw)
    except ValueError:
        interval = -1
    if interval <= 0:
        print(
            f"repro: ignoring invalid REPRO_AUDIT={raw!r} (expected "
            f"on/off or a positive audit interval); auditing is DISABLED",
            file=sys.stderr,
        )
        return None
    return ProtocolAuditor(interval=interval)
