"""Deterministic, seeded fault injection for the coherence protocols.

A :class:`FaultPlan` declares *what* to break and *when* ("after access
N, drop core C's copy of block A / flip a sharer bit / lose an eviction
notice / corrupt a tracking entry"); a :class:`FaultInjector` built from
the plan plugs into :class:`~repro.sim.system.System` and applies each
fault at the declared point in the access stream, whatever
coherence-tracking scheme the system runs (sparse, in-LLC, tiny,
MGD, Stash). Faults with an unspecified address or core resolve their
target deterministically from the plan's seed, so a failing run can
always be replayed exactly.

The injector corrupts state the same way a real hardware fault (or a
protocol bug) would: behind the protocol's back, without adjusting any
other structure. The online :class:`~repro.resilience.auditor.
ProtocolAuditor` — or a post-hoc ``System.check_invariants()`` — is what
must notice.
"""

from __future__ import annotations

import enum
import os
import random
import sys
from dataclasses import dataclass

from repro.errors import FaultInjectionError


class FaultKind(enum.Enum):
    """What kind of corruption to inject."""

    #: A core silently loses its private copy (no eviction notice), so
    #: every tracking structure that records the copy goes stale.
    DROP_PRIVATE_COPY = "drop_private_copy"
    #: Toggle one core's bit in the block's tracking record: a real
    #: holder becomes untracked, or a phantom sharer appears.
    FLIP_SHARER_BIT = "flip_sharer_bit"
    #: Swallow the next matching eviction notice before the home
    #: controller sees it, leaving a stale tracking entry behind.
    LOSE_EVICTION_NOTICE = "lose_eviction_notice"
    #: Clear the block's tracking record wherever it lives (directory
    #: entry, corrupted LLC line, spilled entry, ...), orphaning every
    #: private copy.
    CORRUPT_DIRECTORY_ENTRY = "corrupt_directory_entry"
    #: Mangle the block's tiny-directory entry specifically (rotate the
    #: recorded owner / flip a phantom sharer in).
    CORRUPT_TINY_ENTRY = "corrupt_tiny_entry"


@dataclass(frozen=True)
class Fault:
    """One declarative fault.

    ``after_access`` is the global access count at which the fault
    fires (it applies once the system has completed that many accesses).
    ``addr``/``core`` may be None, in which case the injector picks a
    live target with the plan's seeded RNG.
    """

    kind: FaultKind
    after_access: int = 1
    addr: "int | None" = None
    core: "int | None" = None


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, replayable set of faults."""

    faults: "tuple[Fault, ...]" = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))


@dataclass
class InjectedFault:
    """Record of one fault that was actually applied."""

    kind: FaultKind
    addr: int
    core: "int | None"
    access_index: int
    location: str = ""


def tracking_location(home, addr: int):
    """Where ``addr``'s tracking info currently lives: ``(label, coh)``.

    Returns ``(None, None)`` when no structure holds a
    :class:`~repro.coherence.info.CohInfo` for the block (untracked, or
    tracked only by an MGD region entry). Uses only quiet lookups, so
    probing never perturbs simulation statistics.
    """
    tiny = getattr(home, "tiny", None)
    if tiny is not None:
        entry = tiny.find_quiet(addr)
        if entry is not None and not entry.coh.is_idle:
            return "tiny", entry.coh
    directory = getattr(home, "directory", None)
    if directory is not None:
        if hasattr(directory, "peek"):
            coh = directory.peek(addr)
            if coh is not None and not coh.is_idle:
                return "directory", coh
        elif hasattr(directory, "lookup_block"):
            coh = directory.lookup_block(addr, touch=False)
            if coh is not None and not coh.is_idle:
                return "mgd-block", coh
    unbounded = getattr(home, "_unbounded", None)
    if unbounded is not None:
        coh = unbounded.get(addr)
        if coh is not None and not coh.is_idle:
            return "unbounded", coh
    bank = home.banks[home.bank_of(addr)]
    line, spill = bank.peek(addr)
    if spill is not None and spill.coh is not None and not spill.coh.is_idle:
        return "spill", spill.coh
    if line is not None and line.coh is not None and not line.coh.is_idle:
        return "llc-line", line.coh
    return None, None


class FaultInjector:
    """Applies a :class:`FaultPlan` to a running :class:`System`.

    Construct one and pass it to ``System(config,
    fault_injector=injector)``; the system calls :meth:`on_access` after
    every completed access and :meth:`intercept_eviction` for every
    eviction notice. Applied faults accumulate in :attr:`injected`.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self._pending = sorted(plan.faults, key=lambda f: f.after_access)
        #: Armed LOSE_EVICTION_NOTICE faults waiting for a matching notice.
        self._armed_notices: "list[Fault]" = []
        self.injected: "list[InjectedFault]" = []
        self.system = None

    # ------------------------------------------------------------------
    # System hooks
    # ------------------------------------------------------------------

    def attach(self, system) -> None:
        self.system = system

    def on_access(self, system) -> None:
        """Apply every fault whose firing point has been reached."""
        n = system.access_index
        while self._pending and self._pending[0].after_access <= n:
            self._apply(system, self._pending.pop(0))

    def flush(self, system) -> None:
        """Apply all remaining scheduled faults immediately (tests)."""
        while self._pending:
            self._apply(system, self._pending.pop(0))

    def apply_now(self, system, fault: Fault) -> None:
        """Apply one fault immediately, outside the plan's schedule.

        This is how the verify harness fires fault *pseudo-steps*
        embedded in a schedule: the fault's ``after_access`` is ignored
        and it goes through the same application (and, for
        LOSE_EVICTION_NOTICE, arming) path as planned faults.
        """
        self._apply(system, fault)

    def intercept_eviction(self, core: int, addr: int) -> bool:
        """True when an armed fault swallows this eviction notice."""
        for index, fault in enumerate(self._armed_notices):
            if fault.core is not None and fault.core != core:
                continue
            if fault.addr is not None and fault.addr != addr:
                continue
            del self._armed_notices[index]
            self._note(FaultKind.LOSE_EVICTION_NOTICE, addr, core, "notice-swallowed")
            return True
        return False

    # ------------------------------------------------------------------
    # Fault application
    # ------------------------------------------------------------------

    def _apply(self, system, fault: Fault) -> None:
        if fault.kind is FaultKind.LOSE_EVICTION_NOTICE:
            self._armed_notices.append(fault)
            return
        addr = (
            fault.addr
            if fault.addr is not None
            else self._pick_addr(system, fault.kind)
        )
        home = system.home
        if fault.kind is FaultKind.DROP_PRIVATE_COPY:
            self._drop_private_copy(system, fault, addr)
        elif fault.kind is FaultKind.FLIP_SHARER_BIT:
            self._flip_sharer_bit(system, fault, addr)
        elif fault.kind is FaultKind.CORRUPT_DIRECTORY_ENTRY:
            self._corrupt_directory_entry(system, fault, addr)
        elif fault.kind is FaultKind.CORRUPT_TINY_ENTRY:
            self._corrupt_tiny_entry(system, fault, addr)
        else:  # pragma: no cover - exhaustive enum
            raise FaultInjectionError(f"unknown fault kind {fault.kind!r}")

    def _drop_private_copy(self, system, fault: Fault, addr: int) -> None:
        from repro.types import PrivateState

        core = fault.core
        if core is None:
            holders = [c.core_id for c in system.cores if c.holds(addr)]
            if not holders:
                raise FaultInjectionError(
                    f"no core holds block {addr:#x}; cannot drop a copy"
                )
            core = self.rng.choice(sorted(holders))
        prior = system.cores[core].invalidate(addr)
        if prior is PrivateState.INVALID:
            raise FaultInjectionError(
                f"core {core} does not hold block {addr:#x}; cannot drop it"
            )
        self._note(fault.kind, addr, core, f"was={prior.name}")

    def _flip_sharer_bit(self, system, fault: Fault, addr: int) -> None:
        label, coh = tracking_location(system.home, addr)
        if coh is None:
            raise FaultInjectionError(
                f"block {addr:#x} has no tracking entry; cannot flip a bit"
            )
        core = fault.core
        if core is None:
            outsiders = sorted(
                set(range(system.config.num_cores)) - set(coh.holders())
            )
            if not outsiders:
                raise FaultInjectionError(
                    f"every core already holds {addr:#x}; no bit to flip in"
                )
            core = self.rng.choice(outsiders)
        if coh.holds(core):
            coh.remove(core)
            action = "cleared"
        else:
            coh.add_sharer(core)
            action = "set"
        self._note(fault.kind, addr, core, f"{label}:{action}")

    def _corrupt_directory_entry(self, system, fault: Fault, addr: int) -> None:
        label, coh = tracking_location(system.home, addr)
        if coh is None:
            raise FaultInjectionError(
                f"block {addr:#x} has no tracking entry to corrupt"
            )
        if label in ("directory", "mgd-block", "unbounded"):
            # Dedicated tracking structure: wipe the record, orphaning
            # every private copy (the reverse audit check notices).
            coh.clear()
            phantom = None
            detail = label
        else:
            # Fused tracking (tiny entry, corrupted LLC line, spilled
            # entry): the record doubles as the line's protocol state, so
            # mangle it into a phantom instead of emptying it — exactly
            # what a bit flip in the borrowed tracking bits would do.
            phantom, detail = self._mangle(system, fault, coh)
            detail = f"{label}:{detail}"
        self._note(fault.kind, addr, phantom, detail)

    def _corrupt_tiny_entry(self, system, fault: Fault, addr: int) -> None:
        tiny = getattr(system.home, "tiny", None)
        if tiny is None:
            raise FaultInjectionError("the selected scheme has no tiny directory")
        entry = tiny.find_quiet(addr)
        if entry is None:
            raise FaultInjectionError(
                f"block {addr:#x} is not tracked by the tiny directory"
            )
        phantom, detail = self._mangle(system, fault, entry.coh)
        self._note(fault.kind, addr, phantom, detail)

    def _mangle(self, system, fault: Fault, coh):
        """Corrupt ``coh`` into a phantom owner/sharer; returns (core, detail)."""
        num_cores = system.config.num_cores
        if coh.is_exclusive:
            phantom = (coh.owner + 1) % num_cores
            coh.set_owner(phantom)
            return phantom, f"owner-rotated-to-{phantom}"
        phantom = fault.core
        if phantom is None:
            outsiders = sorted(set(range(num_cores)) - set(coh.holders()))
            phantom = self.rng.choice(outsiders) if outsiders else 0
        coh.sharers ^= 1 << phantom
        return phantom, f"sharer-bit-{phantom}-flipped"

    # ------------------------------------------------------------------
    # Target resolution and bookkeeping
    # ------------------------------------------------------------------

    def _pick_addr(self, system, kind: FaultKind) -> int:
        """Pick a live target address for ``kind``, seeded.

        Candidates are the privately cached blocks; kinds that mutate a
        tracking record are further restricted to blocks that actually
        have one (under Stash or a tiny directory most resident blocks
        are legitimately untracked).
        """
        candidates = sorted(
            {addr for core in system.cores for addr, _ in core.resident_blocks()}
        )
        if kind in (FaultKind.FLIP_SHARER_BIT, FaultKind.CORRUPT_DIRECTORY_ENTRY):
            candidates = [
                addr
                for addr in candidates
                if tracking_location(system.home, addr)[1] is not None
            ]
        elif kind is FaultKind.CORRUPT_TINY_ENTRY:
            tiny = getattr(system.home, "tiny", None)
            if tiny is None:
                raise FaultInjectionError(
                    "the selected scheme has no tiny directory"
                )
            candidates = [
                addr for addr in candidates if tiny.find_quiet(addr) is not None
            ]
        if not candidates:
            raise FaultInjectionError(
                f"no live target block for fault kind {kind.value!r}"
            )
        return self.rng.choice(candidates)

    def _note(self, kind: FaultKind, addr: int, core: "int | None", location: str) -> None:
        index = self.system.access_index if self.system is not None else 0
        self.injected.append(InjectedFault(kind, addr, core, index, location))
        if self.system is not None:
            recorder = self.system.home.recorder
            if recorder.enabled:
                recorder.record(addr, f"fault:{kind.value}", core=core, detail=location)


def plan_from_env() -> "FaultPlan | None":
    """Build a :class:`FaultPlan` from ``REPRO_FAULTS``, or None.

    ``REPRO_FAULTS`` is a comma-separated list of ``kind@after_access``
    entries (e.g. ``corrupt_directory_entry@8000,flip_sharer_bit@12000``;
    ``@after_access`` defaults to 1), with the target address/core left
    to the plan's seeded RNG. ``REPRO_FAULT_SEED`` (integer, default 0)
    seeds target resolution. Malformed entries warn on stderr and
    disable injection entirely — a chaos run must never silently turn
    into a clean run.
    """
    raw = os.environ.get("REPRO_FAULTS", "").strip()
    if not raw or raw.lower() in ("off", "0", "no", "false", "none"):
        return None

    def _reject(reason: str) -> None:
        print(
            f"repro: ignoring invalid REPRO_FAULTS={raw!r} ({reason}); "
            f"fault injection is DISABLED",
            file=sys.stderr,
        )

    faults = []
    for item in raw.split(","):
        item = item.strip().lower()
        if not item:
            continue
        name, _, position = item.partition("@")
        try:
            kind = FaultKind(name)
        except ValueError:
            _reject(f"unknown fault kind {name!r}")
            return None
        after_access = 1
        if position:
            try:
                after_access = int(position)
            except ValueError:
                after_access = -1
            if after_access < 0:
                _reject(f"bad access position {position!r}")
                return None
        faults.append(Fault(kind, after_access=after_access))
    if not faults:
        _reject("no faults listed")
        return None
    seed_raw = os.environ.get("REPRO_FAULT_SEED", "").strip()
    seed = 0
    if seed_raw:
        try:
            seed = int(seed_raw)
        except ValueError:
            _reject(f"bad REPRO_FAULT_SEED {seed_raw!r}")
            return None
    return FaultPlan(faults=tuple(faults), seed=seed)


def injector_from_env() -> "FaultInjector | None":
    """A :class:`FaultInjector` over :func:`plan_from_env`, or None."""
    plan = plan_from_env()
    if plan is None:
        return None
    return FaultInjector(plan)
