"""Resilience subsystem: fault injection, online protocol auditing, and
the transaction flight recorder.

Three cooperating layers keep the simulator trustworthy:

* :mod:`repro.resilience.faults` — a deterministic, seeded
  :class:`FaultInjector` driven by a declarative :class:`FaultPlan`,
  pluggable into any scheme's :class:`~repro.sim.system.System`.
* :mod:`repro.resilience.auditor` — a :class:`ProtocolAuditor` that the
  trace engine invokes every ``audit_interval`` accesses, raising an
  :class:`~repro.errors.InvariantViolation` with a structured diagnostic
  within one window of a corruption.
* :mod:`repro.resilience.recorder` — the bounded per-address
  :class:`FlightRecorder` backing those diagnostics.

See ``docs/resilience.md`` for the fault model and knobs.
"""

from repro.resilience.auditor import (
    DEFAULT_AUDIT_INTERVAL,
    ProtocolAuditor,
    auditor_from_env,
)
from repro.resilience.faults import (
    Fault,
    FaultInjector,
    FaultKind,
    FaultPlan,
    InjectedFault,
    injector_from_env,
    plan_from_env,
    tracking_location,
)
from repro.resilience.recorder import FlightRecorder, NullRecorder, TransactionRecord

__all__ = [
    "DEFAULT_AUDIT_INTERVAL",
    "Fault",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FlightRecorder",
    "InjectedFault",
    "NullRecorder",
    "ProtocolAuditor",
    "TransactionRecord",
    "auditor_from_env",
    "injector_from_env",
    "plan_from_env",
    "tracking_location",
]
