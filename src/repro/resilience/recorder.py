"""Bounded per-address transaction flight recorder.

The home controllers call :meth:`record` at every interesting protocol
event (access, eviction notice, invalidation, back-invalidation, state
transfer). When a protocol invariant trips, the auditor attaches the last
few records for the corrupted address to the raised
:class:`~repro.errors.InvariantViolation`, so the diagnostic shows *how*
the block got into the bad state — not just that it is bad.

By default every controller carries a :class:`NullRecorder` whose
``enabled`` flag is False, and the hot paths guard on that flag, so a run
without auditing records nothing and behaves bit-identically to a build
without the recorder at all.
"""

from __future__ import annotations

from collections import OrderedDict, deque


class TransactionRecord:
    """One captured protocol event for one block address."""

    __slots__ = ("seq", "event", "addr", "core", "detail")

    def __init__(self, seq: int, event: str, addr: int, core: "int | None", detail: str) -> None:
        self.seq = seq
        self.event = event
        self.addr = addr
        self.core = core
        self.detail = detail

    def __str__(self) -> str:
        core = f" core={self.core}" if self.core is not None else ""
        detail = f" {self.detail}" if self.detail else ""
        return f"#{self.seq} {self.event}{core}{detail}"

    __repr__ = __str__


class NullRecorder:
    """Recording disabled: every hook is a no-op."""

    enabled = False

    def record(
        self,
        addr: int,
        event: str,
        core: "int | None" = None,
        detail: str = "",
    ) -> None:
        pass

    def history(self, addr: int) -> "tuple[TransactionRecord, ...]":
        return ()


class FlightRecorder(NullRecorder):
    """Keeps the last ``depth`` transactions of each recently-seen address.

    Bounded on both axes: each address keeps a ``depth``-deep ring, and at
    most ``max_addresses`` addresses are retained (least recently recorded
    are forgotten first), so arbitrarily long runs cannot grow the
    recorder without bound.
    """

    enabled = True

    def __init__(self, depth: int = 8, max_addresses: int = 4096) -> None:
        self.depth = max(1, depth)
        self.max_addresses = max(1, max_addresses)
        self.seq = 0
        self._per_addr: "OrderedDict[int, deque[TransactionRecord]]" = OrderedDict()

    def record(
        self,
        addr: int,
        event: str,
        core: "int | None" = None,
        detail: str = "",
    ) -> None:
        self.seq += 1
        ring = self._per_addr.get(addr)
        if ring is None:
            ring = deque(maxlen=self.depth)
            self._per_addr[addr] = ring
            if len(self._per_addr) > self.max_addresses:
                self._per_addr.popitem(last=False)
        else:
            self._per_addr.move_to_end(addr)
        ring.append(TransactionRecord(self.seq, event, addr, core, detail))

    def history(self, addr: int) -> "tuple[TransactionRecord, ...]":
        ring = self._per_addr.get(addr)
        return tuple(ring) if ring else ()
