"""Stash directory bookkeeping, after Demetriades and Cho [14].

The Stash directory is an ordinary sparse directory with one twist: when
the directory evicts the entry of a *private* block, the private copy is
left in place ("stashed") instead of being back-invalidated. If such an
untracked block is later requested by another core, the home resorts to a
broadcast over all cores to rediscover the copy and rebuild the entry.

:class:`StashState` records which blocks are currently cached privately
but untracked. In hardware this knowledge is implicit (the broadcast
itself discovers the copies); keeping it explicitly here is a simulator
convenience that does not change protocol behaviour — the home still pays
the full broadcast latency and traffic whenever it touches a stashed
block.
"""

from __future__ import annotations


class StashState:
    """The set of privately cached blocks whose entries were dropped."""

    __slots__ = ("_stashed", "stashed_total", "broadcasts")

    def __init__(self) -> None:
        self._stashed: "dict[int, int]" = {}
        self.stashed_total = 0
        self.broadcasts = 0

    def stash(self, addr: int, owner: int) -> None:
        """Mark ``addr`` as cached by ``owner`` but untracked."""
        self._stashed[addr] = owner
        self.stashed_total += 1

    def is_stashed(self, addr: int) -> bool:
        """True when ``addr`` is privately cached but untracked."""
        return addr in self._stashed

    def owner_of(self, addr: int) -> "int | None":
        """The stashed copy's holder, or None."""
        return self._stashed.get(addr)

    def unstash(self, addr: int) -> "int | None":
        """Remove ``addr`` from the stash (broadcast recovery or eviction
        notice); returns the holder core, or None if it was not stashed."""
        return self._stashed.pop(addr, None)

    def count(self) -> int:
        """Number of currently stashed blocks."""
        return len(self._stashed)
