"""Skew-associative directory with a Z-cache style organization.

The paper's Figure 3 experiment includes a four-way skew-associative
sparse directory using H3 hash functions and a Z-cache organization [36].
Each way has its own hash function; on insertion, if every candidate way
is occupied, one level of Z-cache relocation is attempted (moving a
candidate to one of *its* alternative locations) before falling back to an
NRU-style victim among the candidates.

The H3 hash family XORs together per-bit random words selected by the set
bits of the key, giving pairwise-independent indices per way.
"""

from __future__ import annotations

import random

from repro.coherence.info import CohInfo
from repro.errors import ConfigError
from repro.telemetry import NULL_TRACER


class _Entry:
    __slots__ = ("addr", "coh", "ref")

    def __init__(self, addr: int, coh: CohInfo) -> None:
        self.addr = addr
        self.coh = coh
        self.ref = True


class _Slice:
    """One per-bank slice: ``ways`` arrays of ``rows`` entries each."""

    __slots__ = ("ways", "rows", "hashes", "arrays")

    def __init__(self, ways: int, rows: int, hashes: "list[list[int]]") -> None:
        self.ways = ways
        self.rows = rows
        self.hashes = hashes
        self.arrays: "list[list[_Entry | None]]" = [
            [None] * rows for _ in range(ways)
        ]

    def _index(self, way: int, key: int) -> int:
        value = 0
        words = self.hashes[way]
        bit = 0
        while key:
            if key & 1:
                value ^= words[bit % len(words)]
            key >>= 1
            bit += 1
        return value % self.rows

    def candidates(self, key: int) -> "list[tuple[int, int]]":
        """The (way, row) candidate positions for ``key``."""
        return [(way, self._index(way, key)) for way in range(self.ways)]

    def find(self, key: int) -> "_Entry | None":
        for way, row in self.candidates(key):
            entry = self.arrays[way][row]
            if entry is not None and entry.addr == key:
                entry.ref = True
                return entry
        return None

    def remove(self, key: int) -> "_Entry | None":
        for way, row in self.candidates(key):
            entry = self.arrays[way][row]
            if entry is not None and entry.addr == key:
                self.arrays[way][row] = None
                return entry
        return None

    def insert(self, key: int, coh: CohInfo) -> "_Entry | None":
        """Insert an entry; returns the displaced entry, if any."""
        positions = self.candidates(key)
        for way, row in positions:
            if self.arrays[way][row] is None:
                self.arrays[way][row] = _Entry(key, coh)
                return None
        # One level of Z-cache relocation: try to move a candidate into
        # one of its own free alternative positions.
        for way, row in positions:
            occupant = self.arrays[way][row]
            for alt_way, alt_row in self.candidates(occupant.addr):
                if alt_way == way:
                    continue
                if self.arrays[alt_way][alt_row] is None:
                    self.arrays[alt_way][alt_row] = occupant
                    self.arrays[way][row] = _Entry(key, coh)
                    return None
        # Fall back to an NRU victim among the direct candidates.
        victim_pos = None
        for way, row in positions:
            if not self.arrays[way][row].ref:
                victim_pos = (way, row)
                break
        if victim_pos is None:
            for way, row in positions:
                self.arrays[way][row].ref = False
            victim_pos = positions[0]
        way, row = victim_pos
        victim = self.arrays[way][row]
        self.arrays[way][row] = _Entry(key, coh)
        return victim

    def occupancy(self) -> int:
        return sum(
            1 for array in self.arrays for entry in array if entry is not None
        )


class ZCacheDirectory:
    """A banked four-way skew-associative directory.

    Exposes the same interface as
    :class:`~repro.directory.sparse.SparseDirectory` so home controllers
    can use either interchangeably.
    """

    __slots__ = (
        "tracer",
        "total_entries",
        "num_banks",
        "_slices",
        "hits",
        "misses",
        "allocations",
        "evictions",
    )

    def __init__(
        self,
        total_entries: int,
        num_banks: int,
        ways: int = 4,
        seed: int = 0x5EED,
    ) -> None:
        if total_entries < num_banks * ways:
            raise ConfigError(
                f"Z-cache directory of {total_entries} entries is too small "
                f"for {num_banks} banks x {ways} ways"
            )
        #: Structured trace sink; install_tracer swaps in a live tracer.
        self.tracer = NULL_TRACER
        self.total_entries = total_entries
        self.num_banks = num_banks
        rows = max(1, total_entries // (num_banks * ways))
        rng = random.Random(seed)
        hashes = [
            [rng.getrandbits(30) for _ in range(32)] for _ in range(ways)
        ]
        self._slices = [_Slice(ways, rows, hashes) for _ in range(num_banks)]
        self.hits = 0
        self.misses = 0
        self.allocations = 0
        self.evictions = 0

    def _slice(self, addr: int) -> _Slice:
        return self._slices[addr % self.num_banks]

    def lookup(self, addr: int, touch: bool = True) -> "CohInfo | None":
        """Return the tracking info for ``addr``, or None when untracked."""
        entry = self._slice(addr).find(addr // self.num_banks)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry.coh

    def peek(self, addr: int) -> "CohInfo | None":
        """Quiet :meth:`lookup`: no counters, no reference-bit update.

        Used by the invariant checkers and the fault injector so that
        auditing a run never perturbs its statistics or replacement state.
        """
        slice_ = self._slice(addr)
        key = addr // self.num_banks
        for way, row in slice_.candidates(key):
            entry = slice_.arrays[way][row]
            if entry is not None and entry.addr == key:
                return entry.coh
        return None

    def allocate(self, addr: int, coh: CohInfo) -> "tuple[int, CohInfo] | None":
        """Install an entry; returns the evicted (addr, CohInfo), if any."""
        slice_index = addr % self.num_banks
        victim = self._slices[slice_index].insert(addr // self.num_banks, coh)
        self.allocations += 1
        if self.tracer.enabled:
            self.tracer.emit("dir:alloc", addr=addr)
        if victim is None:
            return None
        self.evictions += 1
        victim_addr = victim.addr * self.num_banks + slice_index
        if self.tracer.enabled:
            self.tracer.emit("dir:evict", addr=victim_addr)
        return victim_addr, victim.coh

    def remove(self, addr: int) -> "CohInfo | None":
        """Drop the entry for ``addr``."""
        entry = self._slice(addr).remove(addr // self.num_banks)
        return None if entry is None else entry.coh

    def occupancy(self) -> int:
        """Number of live tracking entries."""
        return sum(slice_.occupancy() for slice_ in self._slices)
