"""The baseline sparse directory (duplicate-tag coherence cache).

A sparse directory of size ``R x`` holds ``R * N`` entries, where ``N`` is
the aggregate block capacity of the private L2 caches. Entries are
full-map bitvectors (one :class:`~repro.coherence.info.CohInfo` each).
The directory is distributed into one slice per LLC bank; each slice is
eight-way set-associative with 1-bit NRU replacement, or fully associative
when it is small enough (Table I: the 1/128x and 1/256x sizes).

A replacement from the sparse directory forces the home controller to
invalidate (or retrieve, if dirty) every private copy of the victim block.
"""

from __future__ import annotations

from repro.cache.sets import SetAssocArray
from repro.coherence.info import CohInfo
from repro.errors import ConfigError
from repro.telemetry import NULL_TRACER

#: Slices at or below this many entries become fully associative.
FULLY_ASSOC_THRESHOLD = 16


class SparseDirectory:
    """A banked sparse directory with NRU replacement."""

    __slots__ = (
        "tracer",
        "total_entries",
        "num_banks",
        "entries_per_slice",
        "slice_assoc",
        "_slices",
        "hits",
        "misses",
        "allocations",
        "evictions",
    )

    def __init__(
        self,
        total_entries: int,
        num_banks: int,
        assoc: int = 8,
        replacement: str = "nru",
    ) -> None:
        if total_entries < num_banks:
            raise ConfigError(
                f"directory of {total_entries} entries cannot be split into "
                f"{num_banks} slices"
            )
        #: Structured trace sink; install_tracer swaps in a live tracer.
        self.tracer = NULL_TRACER
        self.total_entries = total_entries
        self.num_banks = num_banks
        entries_per_slice = total_entries // num_banks
        self.entries_per_slice = entries_per_slice
        if entries_per_slice <= FULLY_ASSOC_THRESHOLD:
            num_sets, slice_assoc = 1, entries_per_slice
        else:
            slice_assoc = min(assoc, entries_per_slice)
            num_sets = max(1, entries_per_slice // slice_assoc)
        self.slice_assoc = slice_assoc
        self._slices = [
            SetAssocArray(num_sets, slice_assoc, replacement)
            for _ in range(num_banks)
        ]
        self.hits = 0
        self.misses = 0
        self.allocations = 0
        self.evictions = 0

    def _locate(self, addr: int) -> "tuple[SetAssocArray, int]":
        slice_ = self._slices[addr % self.num_banks]
        return slice_, slice_.set_index(addr // self.num_banks)

    def lookup(self, addr: int, touch: bool = True) -> "CohInfo | None":
        """Return the tracking info for ``addr``, or None when untracked."""
        slice_, set_index = self._locate(addr)
        line = slice_.lookup(set_index, addr, touch=touch)
        if line is None:
            self.misses += 1
            return None
        self.hits += 1
        return line.payload

    def peek(self, addr: int) -> "CohInfo | None":
        """Quiet :meth:`lookup`: no hit/miss counting, no recency touch.

        Used by the invariant checkers and the fault injector so that
        auditing a run never perturbs its statistics.
        """
        slice_, set_index = self._locate(addr)
        line = slice_.lookup(set_index, addr, touch=False)
        return None if line is None else line.payload

    def allocate(self, addr: int, coh: CohInfo) -> "tuple[int, CohInfo] | None":
        """Install a tracking entry for ``addr``.

        Returns the evicted ``(addr, CohInfo)`` pair when a victim entry
        had to be replaced; the caller must invalidate its private copies.
        """
        slice_, set_index = self._locate(addr)
        evicted = slice_.insert(set_index, addr, coh)
        self.allocations += 1
        if self.tracer.enabled:
            self.tracer.emit("dir:alloc", addr=addr)
        if evicted is None:
            return None
        self.evictions += 1
        if self.tracer.enabled:
            self.tracer.emit("dir:evict", addr=evicted.tag)
        return evicted.tag, evicted.payload

    def remove(self, addr: int) -> "CohInfo | None":
        """Drop the entry for ``addr`` (block has no private copies left)."""
        slice_, set_index = self._locate(addr)
        line = slice_.remove(set_index, addr)
        return None if line is None else line.payload

    def occupancy(self) -> int:
        """Number of live tracking entries."""
        return sum(slice_.occupancy() for slice_ in self._slices)

    def iter_entries(self):
        """Yield (addr, CohInfo) for every live entry (for invariants)."""
        for slice_ in self._slices:
            for _, line in slice_.iter_lines():
                yield line.tag, line.payload
