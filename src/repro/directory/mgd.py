"""Multi-grain directory (MgD) container, after Zebchuk et al. [47].

MgD tracks *private regions* with a single directory entry each: a region
entry records the owning core and a presence bitmap of the region's blocks
cached by that core. Blocks touched by more than one core fall back to
ordinary block-grain entries. This makes each entry cover up to a 1 KB
region (sixteen 64-byte blocks) of private data, which is where MgD's
entry savings come from — and why sharing-heavy workloads degrade once
the directory gets small (paper Fig. 22).

Region and block entries live in the same set-associative NRU array; keys
are tagged with a grain bit so the two kinds never alias.
"""

from __future__ import annotations

from repro.cache.sets import SetAssocArray
from repro.coherence.info import CohInfo
from repro.errors import ConfigError
from repro.telemetry import NULL_TRACER

#: Blocks per tracked region (1 KB regions of 64-byte blocks).
BLOCKS_PER_REGION = 16


class RegionEntry:
    """Tracking entry for a region privately cached by one core."""

    __slots__ = ("owner", "presence")

    def __init__(self, owner: int, presence: int = 0) -> None:
        self.owner = owner
        #: Bitmask over the region's BLOCKS_PER_REGION blocks.
        self.presence = presence

    def blocks(self, region: int) -> "list[int]":
        """Block addresses of the region marked present."""
        base = region * BLOCKS_PER_REGION
        return [
            base + offset
            for offset in range(BLOCKS_PER_REGION)
            if self.presence >> offset & 1
        ]


class MultiGrainDirectory:
    """A banked multi-grain (region + block) directory."""

    _BLOCK = 0
    _REGION = 1

    __slots__ = (
        "tracer",
        "total_entries",
        "num_banks",
        "_slices",
        "hits",
        "misses",
        "allocations",
        "evictions",
    )

    def __init__(
        self,
        total_entries: int,
        num_banks: int,
        assoc: int = 8,
    ) -> None:
        if total_entries < num_banks:
            raise ConfigError(
                f"MgD of {total_entries} entries cannot be split into "
                f"{num_banks} slices"
            )
        #: Structured trace sink; install_tracer swaps in a live tracer.
        self.tracer = NULL_TRACER
        self.total_entries = total_entries
        self.num_banks = num_banks
        entries_per_slice = total_entries // num_banks
        slice_assoc = min(assoc, entries_per_slice)
        num_sets = max(1, entries_per_slice // slice_assoc)
        self._slices = [
            SetAssocArray(num_sets, slice_assoc, "nru")
            for _ in range(num_banks)
        ]
        self.hits = 0
        self.misses = 0
        self.allocations = 0
        self.evictions = 0

    # Regions and blocks are homed by their *block* bank so that a region
    # entry lives in the slice of its first block's bank; the grain bit
    # keeps the keys disjoint.

    def _locate(self, key: int, bank: int) -> "tuple[SetAssocArray, int]":
        slice_ = self._slices[bank]
        return slice_, slice_.set_index(key)

    @staticmethod
    def region_of(addr: int) -> int:
        """Region id of block address ``addr``."""
        return addr // BLOCKS_PER_REGION

    def _block_key(self, addr: int) -> int:
        return (addr // self.num_banks) << 1 | self._BLOCK

    def _region_key(self, region: int) -> int:
        return region << 1 | self._REGION

    def _bank_of_block(self, addr: int) -> int:
        return addr % self.num_banks

    def _bank_of_region(self, region: int) -> int:
        return (region * BLOCKS_PER_REGION) % self.num_banks

    # -- block-grain entries -------------------------------------------

    def lookup_block(self, addr: int, touch: bool = True) -> "CohInfo | None":
        """Find a block-grain entry for ``addr``."""
        slice_, set_index = self._locate(
            self._block_key(addr), self._bank_of_block(addr)
        )
        line = slice_.lookup(set_index, self._block_key(addr), touch=touch)
        return None if line is None else line.payload

    def lookup_region(self, addr: int, touch: bool = True) -> "RegionEntry | None":
        """Find the region entry covering ``addr``."""
        region = self.region_of(addr)
        slice_, set_index = self._locate(
            self._region_key(region), self._bank_of_region(region)
        )
        line = slice_.lookup(set_index, self._region_key(region), touch=touch)
        return None if line is None else line.payload

    def peek_block(self, addr: int) -> "CohInfo | None":
        """Quiet :meth:`lookup_block` (invariant checks, fault injection)."""
        return self.lookup_block(addr, touch=False)

    def peek_region(self, addr: int) -> "RegionEntry | None":
        """Quiet :meth:`lookup_region` (invariant checks, fault injection)."""
        return self.lookup_region(addr, touch=False)

    def iter_blocks(self):
        """Yield ``(addr, CohInfo)`` for every live block-grain entry."""
        for bank, slice_ in enumerate(self._slices):
            for _, line in slice_.iter_lines():
                if line.tag & 1 == self._BLOCK:
                    yield (line.tag >> 1) * self.num_banks + bank, line.payload

    def iter_regions(self):
        """Yield ``(region, RegionEntry)`` for every live region entry."""
        for slice_ in self._slices:
            for _, line in slice_.iter_lines():
                if line.tag & 1 == self._REGION:
                    yield line.tag >> 1, line.payload

    def allocate_block(self, addr: int, coh: CohInfo):
        """Install a block entry; returns the victim, see :meth:`_victim`."""
        slice_, set_index = self._locate(
            self._block_key(addr), self._bank_of_block(addr)
        )
        self.allocations += 1
        if self.tracer.enabled:
            self.tracer.emit("dir:alloc", addr=addr, grain="block")
        evicted = slice_.insert(set_index, self._block_key(addr), coh)
        return self._victim(evicted, self._bank_of_block(addr))

    def allocate_region(self, region: int, entry: RegionEntry):
        """Install a region entry; returns the victim, see :meth:`_victim`."""
        slice_, set_index = self._locate(
            self._region_key(region), self._bank_of_region(region)
        )
        self.allocations += 1
        if self.tracer.enabled:
            self.tracer.emit("dir:alloc", addr=region, grain="region")
        evicted = slice_.insert(set_index, self._region_key(region), entry)
        return self._victim(evicted, self._bank_of_region(region))

    def _victim(self, evicted, bank: int):
        """Decode an evicted line to ('block', addr, CohInfo) or
        ('region', region, RegionEntry)."""
        if evicted is None:
            return None
        self.evictions += 1
        if evicted.tag & 1 == self._REGION:
            if self.tracer.enabled:
                self.tracer.emit(
                    "dir:evict", addr=evicted.tag >> 1, grain="region"
                )
            return "region", evicted.tag >> 1, evicted.payload
        victim_addr = (evicted.tag >> 1) * self.num_banks + bank
        if self.tracer.enabled:
            self.tracer.emit("dir:evict", addr=victim_addr, grain="block")
        return "block", victim_addr, evicted.payload

    def remove_block(self, addr: int) -> "CohInfo | None":
        """Drop the block entry for ``addr``."""
        slice_, set_index = self._locate(
            self._block_key(addr), self._bank_of_block(addr)
        )
        line = slice_.remove(set_index, self._block_key(addr))
        return None if line is None else line.payload

    def remove_region(self, region: int) -> "RegionEntry | None":
        """Drop the region entry for ``region``."""
        slice_, set_index = self._locate(
            self._region_key(region), self._bank_of_region(region)
        )
        line = slice_.remove(set_index, self._region_key(region))
        return None if line is None else line.payload

    def occupancy(self) -> int:
        """Number of live entries (regions count once)."""
        return sum(slice_.occupancy() for slice_ in self._slices)
