"""Coherence directory organizations.

The baseline :class:`SparseDirectory` and the competing organizations the
paper evaluates against (shared-only tracking, skew-associative Z-cache,
multi-grain MgD, Stash). The tiny directory itself lives in
:mod:`repro.core`, since it is the paper's contribution.
"""

from repro.directory.sparse import SparseDirectory
from repro.directory.zcache import ZCacheDirectory
from repro.directory.mgd import MultiGrainDirectory, BLOCKS_PER_REGION
from repro.directory.stash import StashState

__all__ = [
    "SparseDirectory",
    "ZCacheDirectory",
    "MultiGrainDirectory",
    "BLOCKS_PER_REGION",
    "StashState",
]
