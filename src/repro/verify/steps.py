"""Schedule steps: the unit the litmus engine, fuzzer, and shrinker share.

A *schedule* is a flat list of steps. Most steps are accesses; a
:class:`FaultStep` embeds a :class:`~repro.resilience.faults.Fault`
application directly into the schedule as a pseudo-step. Embedding
faults as steps (instead of anchoring them to a global access count)
is what lets delta-debugging shrink a failing schedule *and* the fault
position together: removing access steps never shifts the fault
relative to the accesses that remain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TraceError
from repro.resilience.faults import Fault, FaultKind, FaultPlan
from repro.types import AccessKind


@dataclass(frozen=True)
class AccessStep:
    """One memory access in a schedule."""

    core: int
    addr: int
    kind: str  # "read" | "write" | "ifetch"

    def access_kind(self) -> AccessKind:
        return AccessKind(self.kind)


@dataclass(frozen=True)
class FaultStep:
    """Apply one fault at this point in the schedule.

    ``addr``/``core`` may be None (the injector resolves a live target
    with its seeded RNG); minimized reproducers pin them to the
    concrete target the failing run resolved, so replays are stable
    under further shrinking.
    """

    kind: str
    addr: "int | None" = None
    core: "int | None" = None

    def to_fault(self) -> Fault:
        return Fault(FaultKind(self.kind), after_access=0, addr=self.addr, core=self.core)


#: Any schedule step.
Step = object


def R(core: int, addr: int) -> AccessStep:
    return AccessStep(core, addr, "read")


def W(core: int, addr: int) -> AccessStep:
    return AccessStep(core, addr, "write")


def F(core: int, addr: int) -> AccessStep:
    return AccessStep(core, addr, "ifetch")


def merge_plan(steps: "list[Step]", plan: FaultPlan) -> "list[Step]":
    """Embed a :class:`FaultPlan`'s faults into an access schedule.

    Each fault becomes a :class:`FaultStep` inserted after the
    ``after_access``-th access step (clamped to the schedule length),
    preserving the plan's firing semantics in step form.
    """
    inserts: "dict[int, list[FaultStep]]" = {}
    for fault in plan.faults:
        at = min(max(0, fault.after_access), len(steps))
        inserts.setdefault(at, []).append(
            FaultStep(fault.kind.value, fault.addr, fault.core)
        )
    merged: "list[Step]" = []
    for index, step in enumerate(steps):
        merged.extend(inserts.get(index, ()))
        merged.append(step)
    merged.extend(inserts.get(len(steps), ()))
    return merged


def step_to_dict(step: Step) -> dict:
    if isinstance(step, AccessStep):
        return {"type": "access", "core": step.core, "addr": step.addr,
                "kind": step.kind}
    if isinstance(step, FaultStep):
        return {"type": "fault", "kind": step.kind, "addr": step.addr,
                "core": step.core}
    raise TraceError(f"unknown schedule step {step!r}")


def step_from_dict(payload: dict) -> Step:
    kind = payload.get("type")
    if kind == "access":
        access = payload.get("kind")
        if access not in ("read", "write", "ifetch"):
            raise TraceError(f"unknown access kind {access!r} in step")
        return AccessStep(int(payload["core"]), int(payload["addr"]), access)
    if kind == "fault":
        name = payload.get("kind")
        try:
            FaultKind(name)
        except ValueError:
            raise TraceError(f"unknown fault kind {name!r} in step") from None
        addr = payload.get("addr")
        core = payload.get("core")
        return FaultStep(
            name,
            None if addr is None else int(addr),
            None if core is None else int(core),
        )
    raise TraceError(f"unknown step type {kind!r}")
