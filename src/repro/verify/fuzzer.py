"""Seeded random-walk fuzzer with delta-debugging shrinking.

The fuzzer generates adversarial concurrent schedules in *rounds*,
each round drawn from one bias profile (contended hot blocks,
one-bank tracker pressure, capacity streaming, code sharing, shared
reads that drive tiny-directory spilling, ...). When transition
coverage is being collected, the profile for the next round is chosen
by which profile targets the most still-uncovered transitions, so long
runs steer themselves toward the protocol corners they have not
exercised yet.

Runs execute under the full verify harness — value oracle, auditor
forced on — and a failing schedule is shrunk with ddmin
(delta debugging) to a 1-minimal reproducer. Faults travel *inside*
the schedule as :class:`~repro.verify.steps.FaultStep` pseudo-steps, so
the shrinker reduces the fault position and its setup together; before
shrinking, fault steps are pinned to the concrete target the failing
run resolved (from the injector's :class:`InjectedFault` records).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.resilience.faults import FaultKind, FaultPlan
from repro.verify.coverage import KNOWN_TRANSITIONS, CoverageMap
from repro.verify.harness import (
    DEFAULT_VERIFY_AUDIT_INTERVAL,
    ScheduleResult,
    run_schedule,
)
from repro.verify.steps import AccessStep, FaultStep, merge_plan

#: Steps per steering round.
ROUND_STEPS = 400


@dataclass(frozen=True)
class BiasProfile:
    """One schedule-generation bias."""

    name: str
    #: (pool builder, write fraction, ifetch fraction). The pool builder
    #: receives (config, rng) and returns candidate block addresses.
    pool: "callable"
    write_frac: float
    ifetch_frac: float
    #: Transition-label prefixes this profile is good at reaching.
    targets: "tuple[str, ...]"
    #: Optional structured generator ``(config, rng, steps, round_index)
    #: -> list[AccessStep]`` replacing the uniform pool draw, for
    #: profiles whose target transitions need phased pressure rather
    #: than a stationary access mix.
    gen: "callable | None" = None


def _pool_contended(config, rng):
    return list(range(1, 9))


def _pool_shared(config, rng):
    return list(range(1, 65))


def _pool_bank_pressure(config, rng):
    # Every address homed at bank 0: tracker sets there overflow fast.
    return [config.num_banks * k for k in range(1, 49)]


def _pool_capacity(config, rng):
    return list(range(1, 4 * config.llc_blocks))


def _pool_code(config, rng):
    return list(range(256, 256 + 24))


def _gen_spill(config, rng, steps, round_index):
    """Phased spill pressure (tiny scheme; harmless bank churn elsewhere).

    Spilling needs blocks whose STRA category clears the admission
    threshold *while* their tiny-directory set is overflowing: the first
    ~5/8 of the round pumps shared reads over a 200-block one-bank pool
    (bank-0 blocks collide into a handful of private-L2 sets, so copies
    keep getting evicted and re-read — each LLC re-read finding the
    block shared drives STRAC up). The tail aims a conflict stream at a
    single LLC set, evicting freshly-spilled entries and the data lines
    under tiny-tracked blocks while their sharers are still live — the
    only way to reach spill recall, back-invalidation of untracked
    blocks, and forwarded refills.
    """
    banks = config.num_banks
    llc_sets = config.llc_sets_per_bank
    stride = banks * llc_sets
    cores = config.num_cores
    hot = [banks * k for k in range(1, 201)]
    out = []
    split = (steps * 5) // 8
    for _ in range(split):
        kind = "write" if rng.random() < 0.05 else "read"
        out.append(AccessStep(rng.randrange(cores), rng.choice(hot), kind))
    target_set = 1 + (round_index % (llc_sets - 1)) if llc_sets > 1 else 0
    conflict = [banks * target_set + stride * j for j in range(24)]
    for _ in range(steps - split):
        kind = "write" if rng.random() < 0.08 else "read"
        out.append(AccessStep(rng.randrange(cores), rng.choice(conflict), kind))
    return out


PROFILES: "tuple[BiasProfile, ...]" = (
    BiasProfile(
        "contended", _pool_contended, 0.45, 0.05,
        ("mesi:", "inval:", "dir:upgrade", "dir:write_shared", "dir:fwd_exclusive"),
    ),
    BiasProfile(
        "shared", _pool_shared, 0.10, 0.05,
        ("dir:alloc", "dir:drop", "tiny:hit", "tiny:alloc", "llc:mark_tracked",
         "llc:lengthened_read", "llc:restore"),
    ),
    BiasProfile(
        "bank_pressure", _pool_bank_pressure, 0.25, 0.05,
        ("dir:evict", "dir:back_invalidate", "tiny:evict", "tiny:decline",
         "tiny:rehome_corrupt", "tiny:rehome_spill", "mgd:", "stash:"),
    ),
    BiasProfile(
        "capacity", _pool_capacity, 0.30, 0.00,
        ("llc:evict_tracked", "llc:evict_dirty",
         "mgd:evict_region", "mgd:region_shrink", "stash:unstash"),
    ),
    BiasProfile(
        "code", _pool_code, 0.02, 0.70,
        ("mesi:I->S:ifetch", "mesi:S->S:ifetch"),
    ),
    BiasProfile(
        "spill", _pool_bank_pressure, 0.06, 0.02,
        ("tiny:spill", "tiny:spill_hit", "tiny:unspill", "tiny:rehome_spill",
         "tiny:fwd_refill", "tiny:recall", "llc:back_invalidate"),
        gen=_gen_spill,
    ),
)


def _profile_score(profile: BiasProfile, uncovered: "set[str]") -> int:
    return sum(
        1
        for transition in uncovered
        if any(transition.startswith(prefix) for prefix in profile.targets)
    )


def _pick_profile(rng, scheme: str, covered: "set[str]", round_index: int) -> BiasProfile:
    uncovered = set(KNOWN_TRANSITIONS.get(scheme, ())) - covered
    if not uncovered or round_index == 0:
        return PROFILES[round_index % len(PROFILES)]
    best = max(PROFILES, key=lambda p: (_profile_score(p, uncovered), p.name))
    if _profile_score(best, uncovered) == 0:
        return PROFILES[round_index % len(PROFILES)]
    return best


def generate_round(
    config, rng, profile: BiasProfile, steps: int, round_index: int = 0
) -> "list[AccessStep]":
    if profile.gen is not None:
        return profile.gen(config, rng, steps, round_index)
    pool = profile.pool(config, rng)
    cores = config.num_cores
    out = []
    for _ in range(steps):
        roll = rng.random()
        if roll < profile.write_frac:
            kind = "write"
        elif roll < profile.write_frac + profile.ifetch_frac:
            kind = "ifetch"
        else:
            kind = "read"
        out.append(AccessStep(rng.randrange(cores), rng.choice(pool), kind))
    return out


# ----------------------------------------------------------------------
# Fault-plan mutation source
# ----------------------------------------------------------------------

def fault_plan_for(scheme: str, seed: int, index: int) -> FaultPlan:
    """A deterministic single-fault plan for mutation run ``index``.

    Kinds cycle over everything applicable to the scheme; the firing
    point lands early in the schedule (detection and shrinking stay
    fast) and just before an audit-window boundary, so a corruption
    that nothing trips over inline is still caught by the next audit
    before the access stream can coincidentally repair it (e.g. a
    phantom sharer turning real because that core happens to read the
    block). Targets are left unresolved — the injector picks a live
    block when the fault fires, and the fuzzer pins the resolved target
    before shrinking.
    """
    # LOSE_EVICTION_NOTICE is deliberately absent: it only *arms* a trap
    # that fires on the next private eviction, and at fuzz geometry the
    # private hierarchies are roomy enough that the trap frequently
    # never springs — a mutated run whose fault never materialized
    # proves nothing. The three kinds below corrupt state immediately.
    kinds = [
        FaultKind.DROP_PRIVATE_COPY,
        FaultKind.FLIP_SHARER_BIT,
        FaultKind.CORRUPT_DIRECTORY_ENTRY,
    ]
    if scheme == "tiny":
        kinds.append(FaultKind.CORRUPT_TINY_ENTRY)
    rng = random.Random(f"fault:{scheme}:{seed}:{index}")
    kind = kinds[index % len(kinds)]
    window = DEFAULT_VERIFY_AUDIT_INTERVAL
    position = window * rng.randrange(1, 6) - 1
    from repro.resilience.faults import Fault

    return FaultPlan((Fault(kind, after_access=position),), seed=seed * 1000 + index)


# ----------------------------------------------------------------------
# Fuzz runs
# ----------------------------------------------------------------------

@dataclass
class FuzzResult:
    """Everything one fuzz run produced."""

    scheme: str
    seed: int
    steps: int
    violation: "str | None" = None
    fail_step: "int | None" = None
    #: The 1-minimal failing schedule (empty for clean runs).
    reproducer: "list" = field(default_factory=list)
    coverage_counts: "dict[str, int]" = field(default_factory=dict)
    injected: "list[str]" = field(default_factory=list)
    shrink_replays: int = 0

    @property
    def failed(self) -> bool:
        return self.violation is not None

    @property
    def detected(self) -> bool:
        """For fault-mutated runs: the corruption was caught."""
        return self.failed


def _pin_faults(steps, injected) -> "list":
    """Replace unresolved fault steps with the concrete targets the
    failing run resolved, so shrink replays stay deterministic."""
    records = list(injected)
    pinned = []
    for step in steps:
        if isinstance(step, FaultStep) and (step.addr is None or step.core is None):
            if records:
                record = records.pop(0)
                step = FaultStep(step.kind, record.addr, record.core)
        pinned.append(step)
    return pinned


def ddmin(failing_steps: "list", test, max_replays: int = 1200) -> "tuple[list, int]":
    """Classic ddmin: reduce ``failing_steps`` to a 1-minimal failing
    subsequence. ``test(steps) -> bool`` is True while still failing.
    Returns (minimal steps, replays used)."""
    steps = list(failing_steps)
    replays = 0
    granularity = 2
    while len(steps) >= 2 and replays < max_replays:
        chunk = max(1, len(steps) // granularity)
        reduced = False
        for start in range(0, len(steps), chunk):
            candidate = steps[:start] + steps[start + chunk:]
            if not candidate:
                continue
            replays += 1
            if test(candidate):
                steps = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                break
            if replays >= max_replays:
                break
        if not reduced:
            if granularity >= len(steps):
                break
            granularity = min(len(steps), 2 * granularity)
    # Polish to 1-minimality: drop single steps while any drop still fails.
    polished = True
    while polished and replays < max_replays:
        polished = False
        for index in range(len(steps) - 1, -1, -1):
            candidate = steps[:index] + steps[index + 1:]
            if not candidate:
                continue
            replays += 1
            if test(candidate):
                steps = candidate
                polished = True
            if replays >= max_replays:
                break
    return steps, replays


def fuzz_run(
    scheme: str,
    spec,
    *,
    steps: int = 2000,
    seed: int = 7,
    num_cores: int = 16,
    l1_kb: int = 8,
    l2_kb: int = 32,
    audit_interval: int = DEFAULT_VERIFY_AUDIT_INTERVAL,
    plan: "FaultPlan | None" = None,
    collect_coverage: bool = True,
    shrink: bool = True,
) -> FuzzResult:
    """One seeded fuzz run (optionally fault-mutated), with shrinking.

    The schedule is generated round by round; with coverage on, each
    round's bias profile is steered toward uncovered transitions by
    running the growing schedule incrementally. On failure the
    triggering prefix is shrunk to a minimal reproducer.
    """
    from repro.sim.config import SystemConfig

    config = SystemConfig(num_cores=num_cores, l1_kb=l1_kb, l2_kb=l2_kb, scheme=spec)
    rng = random.Random(f"fuzz:{scheme}:{seed}")
    schedule: "list" = []
    coverage = CoverageMap() if collect_coverage else None
    covered: "set[str]" = set()
    round_index = 0
    generated = 0
    while generated < steps:
        profile = _pick_profile(rng, scheme, covered, round_index)
        size = min(ROUND_STEPS, steps - generated)
        schedule.extend(generate_round(config, rng, profile, size, round_index))
        generated += size
        round_index += 1
        if coverage is not None and generated < steps:
            # Steering probe: run the schedule so far on a throwaway
            # system to learn what is covered. Deterministic and cheap
            # relative to the protocol work it saves the long tail.
            probe = CoverageMap()
            probe_result = run_schedule(
                merge_plan(schedule, plan) if plan is not None else schedule,
                spec=spec, num_cores=num_cores, l1_kb=l1_kb, l2_kb=l2_kb,
                seed=seed, audit_interval=audit_interval, coverage=probe,
            )
            covered = probe.covered()
            if probe_result.failed:
                break

    full = merge_plan(schedule, plan) if plan is not None else list(schedule)
    result = run_schedule(
        full,
        spec=spec, num_cores=num_cores, l1_kb=l1_kb, l2_kb=l2_kb,
        seed=seed, audit_interval=audit_interval, coverage=coverage,
    )
    out = FuzzResult(
        scheme=scheme,
        seed=seed,
        steps=len(full),
        violation=result.violation,
        fail_step=result.fail_step,
        coverage_counts=dict(coverage.counts) if coverage is not None else {},
        injected=[
            f"{record.kind.value}@{record.addr:#x}" for record in result.injected
        ],
    )
    if not result.failed or not shrink:
        return out

    prefix = _pin_faults(full[: result.fail_step + 1], result.injected)

    def still_fails(candidate) -> bool:
        replay = run_schedule(
            candidate,
            spec=spec, num_cores=num_cores, l1_kb=l1_kb, l2_kb=l2_kb,
            seed=seed, audit_interval=audit_interval, oracle=True,
        )
        return replay.failed

    minimal, replays = ddmin(prefix, still_fails)
    out.reproducer = minimal
    out.shrink_replays = replays
    return out


def fuzz_task(payload: dict) -> dict:
    """Top-level pool task for :func:`repro.parallel.run_tasks`.

    ``payload`` carries the :func:`fuzz_run` arguments (spec and plan
    as picklable objects); the result is a plain dict so the parent
    can aggregate without importing worker state.
    """
    result = fuzz_run(
        payload["scheme"],
        payload["spec"],
        steps=payload.get("steps", 2000),
        seed=payload.get("seed", 7),
        num_cores=payload.get("num_cores", 16),
        l1_kb=payload.get("l1_kb", 8),
        l2_kb=payload.get("l2_kb", 32),
        audit_interval=payload.get("audit_interval", DEFAULT_VERIFY_AUDIT_INTERVAL),
        plan=payload.get("plan"),
        collect_coverage=payload.get("collect_coverage", True),
    )
    from repro.verify.steps import step_to_dict

    return {
        "scheme": result.scheme,
        "seed": result.seed,
        "steps": result.steps,
        "violation": result.violation,
        "fail_step": result.fail_step,
        "reproducer": [step_to_dict(step) for step in result.reproducer],
        "coverage_counts": result.coverage_counts,
        "injected": result.injected,
        "shrink_replays": result.shrink_replays,
    }
