"""Command-line driver: ``python -m repro verify``.

Runs the litmus library and/or the random-walk fuzzer against the
selected schemes, optionally with fault-mutated runs that must be
*detected* (the injected corruption caught by the auditor or oracle and
shrunk to a minimized reproducer). Exit status is 0 only when every
clean run is clean, every mutated run is detected, and — if a floor is
given — transition coverage clears it.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path

from repro.verify.coverage import (
    CoverageMap,
    coverage_fraction,
    render_coverage_table,
)
from repro.verify.fuzzer import fault_plan_for, fuzz_task
from repro.verify.harness import DEFAULT_VERIFY_AUDIT_INTERVAL
from repro.verify.litmus import run_litmus
from repro.verify.reproducer import (
    SCHEME_SPECS,
    default_verify_spec,
    load_reproducer,
    replay,
    reproducer_dict,
    save_reproducer,
)

#: Geometry for fuzz runs (matches the quick analysis scale).
FUZZ_CORES = 16
FUZZ_L1_KB = 8
FUZZ_L2_KB = 32


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro verify",
        description="Protocol conformance runner: litmus tests, fuzzing, "
        "fault-detection checks, and transition coverage.",
    )
    parser.add_argument(
        "--scheme",
        action="append",
        choices=sorted(SCHEME_SPECS),
        help="scheme(s) to verify (repeatable; default: all five)",
    )
    parser.add_argument(
        "--litmus",
        action="store_true",
        help="run only the curated litmus library",
    )
    parser.add_argument(
        "--fuzz",
        action="store_true",
        help="run only the random-walk fuzzer",
    )
    parser.add_argument(
        "--steps",
        type=int,
        default=2000,
        help="fuzz schedule length per run (default: 2000)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=7,
        help="base seed for fuzz schedules and fault plans (default: 7)",
    )
    parser.add_argument(
        "--faults",
        type=int,
        default=0,
        help="fault-mutated fuzz runs per scheme; each injected fault "
        "must be detected and shrunk (default: 0)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for fuzz runs (default: auto)",
    )
    parser.add_argument(
        "--audit-interval",
        type=int,
        default=DEFAULT_VERIFY_AUDIT_INTERVAL,
        help="steps between full protocol audits during fuzzing "
        f"(default: {DEFAULT_VERIFY_AUDIT_INTERVAL})",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(".repro_verify"),
        help="directory for minimized reproducer files "
        "(default: .repro_verify)",
    )
    parser.add_argument(
        "--coverage-report",
        action="store_true",
        help="print the per-scheme transition coverage table",
    )
    parser.add_argument(
        "--min-coverage",
        type=float,
        default=None,
        help="fail unless every scheme covers at least this fraction of "
        "its known transitions (0..1)",
    )
    parser.add_argument(
        "--replay",
        type=Path,
        default=None,
        help="replay a minimized reproducer JSON file and exit "
        "(0 if the violation still fires)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="write a structured JSONL trace of every verify schedule "
        "(same as REPRO_TRACE=jsonl; see docs/telemetry.md)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="trace destination (default trace.jsonl; same as "
        "REPRO_TRACE_OUT=PATH; implies --trace)",
    )
    return parser


def _selected_schemes(args) -> "dict[str, object]":
    names = args.scheme or sorted(SCHEME_SPECS)
    return {name: default_verify_spec(name) for name in names}


def _run_replay(path: Path) -> int:
    payload = load_reproducer(path)
    result = replay(payload)
    expected = payload.get("violation", "")
    if result.failed:
        print(f"reproduced: {result.violation}")
        if expected and result.violation != expected:
            print(f"  (original run reported: {expected})")
        return 0
    print("did NOT reproduce: the schedule ran clean")
    return 1


def _run_litmus_phase(schemes, coverage) -> int:
    failures = 0
    outcomes = run_litmus(schemes, coverage=coverage)
    by_scheme: "Counter[str]" = Counter()
    for outcome in outcomes:
        by_scheme[outcome.scheme] += 1
        if not outcome.passed:
            failures += 1
            print(
                f"LITMUS FAIL {outcome.scheme}/{outcome.test}: "
                f"{outcome.violation}"
            )
    for scheme in sorted(by_scheme):
        print(f"litmus {scheme}: {by_scheme[scheme]} tests")
    print(f"litmus: {len(outcomes)} runs, {failures} failures")
    return failures


def _fuzz_payloads(args, schemes) -> "list[dict]":
    payloads = []
    for name, spec in schemes.items():
        payloads.append(
            {
                "scheme": name,
                "spec": spec,
                "steps": args.steps,
                "seed": args.seed,
                "num_cores": FUZZ_CORES,
                "l1_kb": FUZZ_L1_KB,
                "l2_kb": FUZZ_L2_KB,
                "audit_interval": args.audit_interval,
                "plan": None,
            }
        )
        for index in range(args.faults):
            payloads.append(
                {
                    "scheme": name,
                    "spec": spec,
                    "steps": args.steps,
                    "seed": args.seed + 1 + index,
                    "num_cores": FUZZ_CORES,
                    "l1_kb": FUZZ_L1_KB,
                    "l2_kb": FUZZ_L2_KB,
                    "audit_interval": args.audit_interval,
                    "plan": fault_plan_for(name, args.seed, index),
                }
            )
    return payloads


def _run_fuzz_phase(args, schemes, coverage) -> int:
    from repro.parallel import run_tasks

    payloads = _fuzz_payloads(args, schemes)
    results = run_tasks(fuzz_task, payloads, jobs=args.jobs)
    failures = 0
    for payload, result in zip(payloads, results):
        scheme = result["scheme"]
        mutated = payload["plan"] is not None
        for label, count in result["coverage_counts"].items():
            coverage.setdefault(scheme, CoverageMap()).counts[label] += count
        if mutated:
            if result["violation"] is None:
                failures += 1
                print(
                    f"FAULT MISSED {scheme} seed={result['seed']}: injected "
                    f"{result['injected'] or payload['plan'].faults} ran clean"
                )
                continue
            size = len(result["reproducer"])
            out = save_reproducer(
                args.out / f"{scheme}-fault-seed{result['seed']}.json",
                reproducer_dict_from_task(payload, result),
            )
            print(
                f"fault detected {scheme} seed={result['seed']}: "
                f"{result['violation'].splitlines()[0][:100]} "
                f"(reproducer: {size} steps -> {out})"
            )
        elif result["violation"] is not None:
            failures += 1
            out = save_reproducer(
                args.out / f"{scheme}-seed{result['seed']}.json",
                reproducer_dict_from_task(payload, result),
            )
            print(
                f"FUZZ FAIL {scheme} seed={result['seed']}: "
                f"{result['violation']} (reproducer: {out})"
            )
        else:
            print(
                f"fuzz clean {scheme} seed={result['seed']}: "
                f"{result['steps']} steps"
            )
    return failures


def reproducer_dict_from_task(payload: dict, result: dict) -> dict:
    from repro.verify.steps import step_from_dict

    return reproducer_dict(
        result["scheme"],
        payload["spec"],
        [step_from_dict(entry) for entry in result["reproducer"]],
        result["violation"] or "",
        seed=result["seed"],
        num_cores=payload["num_cores"],
        l1_kb=payload["l1_kb"],
        l2_kb=payload["l2_kb"],
        audit_interval=payload["audit_interval"],
    )


def _coverage_gate(args, coverage) -> int:
    per_scheme = {
        scheme: cmap.covered() for scheme, cmap in sorted(coverage.items())
    }
    if args.coverage_report and per_scheme:
        print(render_coverage_table(per_scheme))
    if args.min_coverage is None:
        return 0
    failures = 0
    for scheme, covered in per_scheme.items():
        fraction = coverage_fraction(scheme, covered)
        if fraction < args.min_coverage:
            failures += 1
            print(
                f"COVERAGE LOW {scheme}: {fraction:.0%} < "
                f"{args.min_coverage:.0%} floor"
            )
    return failures


def main(argv: "list[str] | None" = None) -> int:
    import os

    args = build_parser().parse_args(argv)
    if args.trace or args.trace_out:
        # Via the environment so fuzz pool workers trace too; setdefault
        # keeps an explicit REPRO_TRACE=ring (etc.) in force.
        os.environ.setdefault("REPRO_TRACE", "jsonl")
    if args.trace_out:
        os.environ["REPRO_TRACE_OUT"] = args.trace_out
    if args.replay is not None:
        return _run_replay(args.replay)
    schemes = _selected_schemes(args)
    run_litmus_phase = args.litmus or not args.fuzz
    run_fuzz_phase = args.fuzz or not args.litmus
    coverage: "dict[str, CoverageMap]" = {
        name: CoverageMap() for name in schemes
    }
    failures = 0
    if run_litmus_phase:
        failures += _run_litmus_phase(schemes, coverage)
    if run_fuzz_phase:
        failures += _run_fuzz_phase(args, schemes, coverage)
    failures += _coverage_gate(args, coverage)
    if failures:
        print(f"verify: {failures} failure(s)")
        return 1
    print("verify: OK")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
