"""Cross-scheme differential regression over recorded traces.

The paper's claims are relative — tiny directory vs. sparse / in-LLC /
MGD / stash on the *same* access stream — so the strongest correctness
check we have is to replay one durable trace through every scheme and
prove they agree architecturally while their statistics diverge only
where the designs differ:

* **Architectural agreement.** Each scheme runs under the SC
  :class:`~repro.verify.oracle.ValueOracle` plus the
  :class:`~repro.resilience.auditor.ProtocolAuditor`, ends with a
  closing audit, and must pass a **final-image check**: every block
  still resident in a private cache carries the oracle's last-writer
  token for its address (per-address last-writer agreement). Any
  violation marks the scheme divergent.
* **Issued-access identity.** With no warmup cut, the issued access
  counts (:data:`EXACT_KEYS`) are scheme-independent by construction
  and must match *exactly* across all schemes.
* **Stat-delta tolerances.** Performance statistics legitimately
  differ between schemes; each scheme pair is held to a relative-delta
  tolerance spec (:func:`tolerance_for`), tuned against the committed
  scenario corpus, so a regression that blows a scheme's miss rate or
  cycle count out of its historical envelope trips the diff even when
  every protocol invariant still holds.

On divergence the harness reports the first-divergence point and — with
``bisect`` — prefix-bisects the trace down to a **minimal replayable
sub-trace**: monitored runs are *bounded* (stop after ``limit`` global
engine steps, then run the closing audit + final-image check), which
makes "prefix of length L fails" monotone in L for the corrupted-state
faults the injector produces; binary search then finds the shortest
failing prefix, and per-core truncation at the executed counts yields a
sub-trace whose min-clock replay reproduces that exact prefix (the
truncated entries could only have been popped after step L). The
sub-trace is saved as a normal ``.rtrace`` capture whose header ``meta``
carries the scheme, spec, fault plan, and parent-trace provenance, so
``python -m repro diff --trace sub.rtrace`` re-triggers the violation.

Entry point: ``python -m repro diff`` (:mod:`repro.verify.diff_cli`).
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import (
    FaultInjectionError,
    OracleViolation,
    ProtocolError,
    TraceError,
)
from repro.parallel import run_tasks
from repro.resilience.auditor import ProtocolAuditor
from repro.resilience.faults import Fault, FaultInjector, FaultKind, FaultPlan
from repro.sim.config import SystemConfig
from repro.sim.deadline import CHECK_STRIDE, check_deadline
from repro.sim.engine import run_trace
from repro.sim.system import System
from repro.verify.oracle import ValueOracle
from repro.verify.reproducer import (
    default_verify_spec,
    spec_from_dict,
    spec_to_dict,
)
from repro.workloads.capture import load_capture, save_capture

#: The five schemes a differential run covers by default.
ALL_SCHEMES = ("sparse", "in_llc", "tiny", "mgd", "stash")

#: Audit cadence for monitored differential runs. Small, because the
#: corpus traces are tiny and a tight cadence keeps the first-divergence
#: report close to the actual corruption.
DEFAULT_DIFF_AUDIT_INTERVAL = 64

#: Default private-hierarchy geometry for differential runs
#: (verification scale; overridden by the trace header when recorded).
DIFF_L1_KB = 1
DIFF_L2_KB = 4

#: Statistics that must be *exactly* equal across schemes: with no
#: warmup cut, every scheme issues the identical access stream, so the
#: issued-access counters are scheme-independent by construction.
EXACT_KEYS = ("accesses", "reads", "writes", "ifetches")

#: Relative stat-delta tolerances applied to every scheme pair unless
#: a pair override says otherwise: ``|a - b| / max(a, b, 1)`` must stay
#: below the listed value. Calibrated against the committed scenario
#: corpus (see ``tools/rebuild_corpus.py``) with ~2x headroom over the
#: worst observed pairwise delta.
DEFAULT_TOLERANCES = {
    "cycles": 0.20,
    "llc_misses": 0.10,
}

#: Per-pair overrides, keyed by ``frozenset({scheme_a, scheme_b})``.
#: The verification-scale sparse directory (ratio 0.125, so every
#: private block contends for a scarce entry) and MGD (block-grain
#: entries per tracked private block) pay ~25% more cycles than the
#: in-LLC family and stash on private-dominated traces, where those
#: schemes track essentially for free; the corpus worst case is 0.256
#: (mgd-stash on private-heavy).
PAIR_TOLERANCES = {
    frozenset({"sparse", "in_llc"}): {"cycles": 0.40},
    frozenset({"sparse", "tiny"}): {"cycles": 0.40},
    frozenset({"sparse", "stash"}): {"cycles": 0.40},
    frozenset({"mgd", "in_llc"}): {"cycles": 0.40},
    frozenset({"mgd", "tiny"}): {"cycles": 0.40},
    frozenset({"mgd", "stash"}): {"cycles": 0.40},
}


def tolerance_for(scheme_a: str, scheme_b: str) -> "dict[str, float]":
    """The stat-delta tolerance spec for one scheme pair."""
    merged = dict(DEFAULT_TOLERANCES)
    merged.update(PAIR_TOLERANCES.get(frozenset({scheme_a, scheme_b}), {}))
    return merged


# ----------------------------------------------------------------------
# Fault-plan serialization (for sub-trace headers and worker payloads)
# ----------------------------------------------------------------------

def plan_to_dict(plan: FaultPlan) -> dict:
    """JSON-ready form of a :class:`FaultPlan`."""
    return {
        "seed": plan.seed,
        "faults": [
            {
                "kind": fault.kind.value,
                "after_access": fault.after_access,
                "addr": fault.addr,
                "core": fault.core,
            }
            for fault in plan.faults
        ],
    }


def plan_from_dict(payload: dict) -> FaultPlan:
    """Inverse of :func:`plan_to_dict`."""
    try:
        faults = tuple(
            Fault(
                FaultKind(entry["kind"]),
                after_access=int(entry.get("after_access", 1)),
                addr=entry.get("addr"),
                core=entry.get("core"),
            )
            for entry in payload.get("faults", ())
        )
    except (KeyError, TypeError, ValueError) as err:
        raise TraceError(f"malformed fault plan payload: {err}") from err
    return FaultPlan(faults=faults, seed=int(payload.get("seed", 0)))


# ----------------------------------------------------------------------
# Bounded monitored runs
# ----------------------------------------------------------------------

@dataclass
class MonitoredRun:
    """Outcome of one (possibly bounded) fully monitored run."""

    scheme: str
    ok: bool
    #: Stringified violation when not ok.
    violation: "str | None" = None
    #: Exception class name of the violation (OracleViolation, ...).
    violation_kind: "str | None" = None
    #: Global engine steps completed when the run ended or diverged.
    processed: int = 0
    #: Per-core executed access counts at that point.
    executed: "list[int]" = field(default_factory=list)
    #: Faults the injector actually applied, as dicts.
    injected: "list[dict]" = field(default_factory=list)


def _check_final_image(system, oracle: ValueOracle) -> None:
    """Per-address last-writer agreement over the final memory image.

    Every block still valid in a private cache must carry the oracle's
    current last-writer token for its address; a stale stamp means an
    invalidation was lost even though no load happened to observe it.
    """
    for core in system.cores:
        for addr, _state in core.resident_blocks():
            current = oracle.token.get(addr, 0)
            observed = oracle.copy.get((core.core_id, addr), current)
            if observed != current:
                raise OracleViolation(
                    f"final image: core {core.core_id} holds version "
                    f"{observed} of {addr:#x} but the last writer produced "
                    f"version {current}",
                    addr=addr,
                    cores=(core.core_id,),
                )


def run_monitored(
    scheme: str,
    spec,
    streams,
    *,
    limit: "int | None" = None,
    fault_plan: "FaultPlan | None" = None,
    audit_interval: int = DEFAULT_DIFF_AUDIT_INTERVAL,
    l1_kb: int = DIFF_L1_KB,
    l2_kb: int = DIFF_L2_KB,
) -> MonitoredRun:
    """One oracle+audit monitored run, optionally bounded.

    Replicates the reference engine's min-clock interleaving exactly,
    but stops after ``limit`` global steps (when given) and always ends
    with a closing audit plus the final-image check — that closing
    sweep is what makes bounded prefixes a monotone divergence probe:
    once a corruption has been injected, every longer prefix still
    fails. Tracks per-core executed counts so a failing run can be
    truncated into a replayable sub-trace.
    """
    config = SystemConfig(
        num_cores=len(streams), l1_kb=l1_kb, l2_kb=l2_kb, scheme=spec
    )
    injector = FaultInjector(fault_plan) if fault_plan is not None else None
    system = System(config, fault_injector=injector)
    auditor = ProtocolAuditor(interval=audit_interval)
    auditor.install(system)
    oracle = ValueOracle()
    heap = [(0, core, 0) for core, stream in enumerate(streams) if stream]
    heapq.heapify(heap)
    executed = [0] * len(streams)
    processed = 0
    violation: "ProtocolError | None" = None
    try:
        while heap and (limit is None or processed < limit):
            clock, core, index = heapq.heappop(heap)
            acc = streams[core][index]
            issue_time = clock + acc.gap
            pre_state = oracle.pre_state(system, acc.core, acc.addr)
            latency = system.access(acc, issue_time)
            processed += 1
            executed[core] += 1
            oracle.observe(system, acc.core, acc.addr, acc.kind, pre_state)
            if processed % CHECK_STRIDE == 0:
                check_deadline()
            if processed % auditor.interval == 0:
                auditor.audit(system)
            index += 1
            if index < len(streams[core]):
                heapq.heappush(heap, (issue_time + latency, core, index))
        auditor.audit(system)
        _check_final_image(system, oracle)
    except ProtocolError as err:
        violation = err
    except FaultInjectionError as err:
        raise TraceError(
            f"fault plan is not applicable to scheme {scheme!r}: {err} "
            f"(drop_private_copy applies under every scheme; tracking-entry "
            f"kinds need a scheme and firing point where the target block "
            f"actually has a tracking record)"
        ) from err
    return MonitoredRun(
        scheme=scheme,
        ok=violation is None,
        violation=str(violation) if violation is not None else None,
        violation_kind=type(violation).__name__ if violation is not None else None,
        processed=processed,
        executed=executed,
        injected=[
            {
                "kind": rec.kind.value,
                "addr": rec.addr,
                "core": rec.core,
                "access_index": rec.access_index,
                "location": rec.location,
            }
            for rec in (injector.injected if injector is not None else [])
        ],
    )


def run_stats(
    spec,
    streams,
    *,
    l1_kb: int = DIFF_L1_KB,
    l2_kb: int = DIFF_L2_KB,
    fast_path: "bool | None" = None,
):
    """One clean, unobserved run; returns the finalized stats dump.

    No warmup cut (``warmup_fraction=0``): the measured window must be
    the whole trace for the :data:`EXACT_KEYS` identity to hold across
    schemes.
    """
    config = SystemConfig(
        num_cores=len(streams), l1_kb=l1_kb, l2_kb=l2_kb, scheme=spec
    )
    stats = run_trace(
        System(config), streams, warmup_fraction=0.0, fast_path=fast_path
    )
    return stats.dump()


# ----------------------------------------------------------------------
# Prefix bisection
# ----------------------------------------------------------------------

def truncate_streams(streams, executed: "list[int]"):
    """Per-core truncation at the executed counts of a bounded run.

    The min-clock schedule pops the same first ``sum(executed)`` entries
    from the truncated streams as from the full trace — a dropped entry
    could only be popped after every kept entry of its core — so
    replaying the truncation reproduces the bounded run exactly.
    """
    return [stream[:count] for stream, count in zip(streams, executed)]


def bisect_divergence(
    scheme: str,
    spec,
    streams,
    *,
    fault_plan: "FaultPlan | None",
    fail_processed: int,
    audit_interval: int = DEFAULT_DIFF_AUDIT_INTERVAL,
    l1_kb: int = DIFF_L1_KB,
    l2_kb: int = DIFF_L2_KB,
) -> "tuple[int, MonitoredRun]":
    """Find the minimal failing prefix length by binary search.

    ``fail_processed`` is a known-failing bound (the step count of the
    divergent run). Returns ``(limit, run)`` where ``run`` is the
    bounded run at the minimal failing ``limit`` — its ``executed``
    counts are what :func:`truncate_streams` needs.
    """

    def attempt(limit: int) -> MonitoredRun:
        return run_monitored(
            scheme,
            spec,
            streams,
            limit=limit,
            fault_plan=fault_plan,
            audit_interval=audit_interval,
            l1_kb=l1_kb,
            l2_kb=l2_kb,
        )

    lo, hi = 1, max(1, fail_processed)
    best = attempt(hi)
    if best.ok:
        # The bound unexpectedly passes (non-monotone divergence, e.g. a
        # transient raced with the audit cadence); fall back to the full
        # run, which is known to fail.
        best = attempt(fail_processed)
        if best.ok:
            raise TraceError(
                f"bisection lost the divergence: scheme {scheme!r} passed "
                f"at its own failure bound {fail_processed}"
            )
    while lo < hi:
        mid = (lo + hi) // 2
        run = attempt(mid)
        if not run.ok:
            best = run
            hi = mid
        else:
            lo = mid + 1
    return hi, best


def save_subtrace(
    path,
    streams,
    run: MonitoredRun,
    *,
    spec,
    fault_plan: "FaultPlan | None",
    parent: "str | None",
    l1_kb: int = DIFF_L1_KB,
    l2_kb: int = DIFF_L2_KB,
) -> Path:
    """Write a minimal failing sub-trace as a replayable capture."""
    sub = truncate_streams(streams, run.executed)
    meta = {
        "differential": {
            "scheme": run.scheme,
            "spec": spec_to_dict(spec),
            "fault_plan": plan_to_dict(fault_plan) if fault_plan else None,
            "parent": parent,
            "violation": run.violation,
            "violation_kind": run.violation_kind,
            "limit": run.processed,
        }
    }
    return save_capture(
        path,
        sub,
        geometry={"num_cores": len(sub), "l1_kb": l1_kb, "l2_kb": l2_kb},
        meta=meta,
    )


def replay_subtrace(path) -> MonitoredRun:
    """Re-run a saved sub-trace under its recorded scheme and faults."""
    streams, header = load_capture(path)
    info = (header.get("meta") or {}).get("differential")
    if not info:
        raise TraceError(
            f"{path} is not a differential sub-trace (no meta.differential)"
        )
    spec = spec_from_dict(info["scheme"], dict(info["spec"]))
    plan = (
        plan_from_dict(info["fault_plan"]) if info.get("fault_plan") else None
    )
    geometry = header.get("geometry") or {}
    return run_monitored(
        info["scheme"],
        spec,
        streams,
        fault_plan=plan,
        l1_kb=int(geometry.get("l1_kb", DIFF_L1_KB)),
        l2_kb=int(geometry.get("l2_kb", DIFF_L2_KB)),
    )


# ----------------------------------------------------------------------
# Per-scheme worker (fanned through repro.parallel)
# ----------------------------------------------------------------------

def diff_task(payload: dict) -> dict:
    """Run one scheme over one trace: stats + monitored (+ bisection).

    Top-level and dict-in/dict-out so :func:`repro.parallel.run_tasks`
    can ship it to pool workers.
    """
    trace = payload["trace"]
    scheme = payload["scheme"]
    spec = spec_from_dict(scheme, dict(payload["spec"]))
    l1_kb = int(payload.get("l1_kb", DIFF_L1_KB))
    l2_kb = int(payload.get("l2_kb", DIFF_L2_KB))
    audit_interval = int(
        payload.get("audit_interval", DEFAULT_DIFF_AUDIT_INTERVAL)
    )
    plan = (
        plan_from_dict(payload["fault_plan"])
        if payload.get("fault_plan")
        else None
    )
    streams, _header = load_capture(trace)
    run = run_monitored(
        scheme,
        spec,
        streams,
        fault_plan=plan,
        audit_interval=audit_interval,
        l1_kb=l1_kb,
        l2_kb=l2_kb,
    )
    result = {
        "scheme": scheme,
        "ok": run.ok,
        "violation": run.violation,
        "violation_kind": run.violation_kind,
        "processed": run.processed,
        "injected": run.injected,
        "stats": None,
        "reproducer": None,
        "reproducer_accesses": None,
    }
    if run.ok:
        result["stats"] = run_stats(
            spec, streams, l1_kb=l1_kb, l2_kb=l2_kb
        )
    elif payload.get("bisect") and payload.get("out"):
        limit, minimal = bisect_divergence(
            scheme,
            spec,
            streams,
            fault_plan=plan,
            fail_processed=run.processed,
            audit_interval=audit_interval,
            l1_kb=l1_kb,
            l2_kb=l2_kb,
        )
        stem = Path(trace).stem
        out_path = Path(payload["out"]) / f"repro-{stem}-{scheme}.rtrace"
        save_subtrace(
            out_path,
            streams,
            minimal,
            spec=spec,
            fault_plan=plan,
            parent=str(trace),
            l1_kb=l1_kb,
            l2_kb=l2_kb,
        )
        result["reproducer"] = str(out_path)
        result["reproducer_accesses"] = sum(minimal.executed)
    return result


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------

def _relative_delta(a: float, b: float) -> float:
    return abs(a - b) / max(abs(a), abs(b), 1)


def diff_trace(
    trace,
    schemes: "tuple[str, ...] | list[str] | None" = None,
    *,
    fault_plan: "FaultPlan | None" = None,
    bisect: bool = False,
    out_dir=None,
    jobs: "int | None" = None,
    audit_interval: int = DEFAULT_DIFF_AUDIT_INTERVAL,
) -> dict:
    """Differential run of one trace across ``schemes``; returns a report.

    A sub-trace produced by an earlier bisection carries its own scheme,
    spec, and fault plan in the header and is re-run in detection mode
    for that scheme only. With ``fault_plan`` (or a sub-trace plan) the
    expectation *inverts*: every scheme must detect the corruption, and
    a scheme that stays clean is reported as a miss. Without faults, all
    schemes must stay clean, agree exactly on :data:`EXACT_KEYS`, and
    stay within the pairwise stat tolerances.
    """
    trace = Path(trace)
    _streams, header = load_capture(trace)
    geometry = header.get("geometry") or {}
    l1_kb = int(geometry.get("l1_kb", DIFF_L1_KB))
    l2_kb = int(geometry.get("l2_kb", DIFF_L2_KB))
    sub_info = (header.get("meta") or {}).get("differential")
    if sub_info:
        schemes = (sub_info["scheme"],)
        specs = {
            sub_info["scheme"]: spec_from_dict(
                sub_info["scheme"], dict(sub_info["spec"])
            )
        }
        if fault_plan is None and sub_info.get("fault_plan"):
            fault_plan = plan_from_dict(sub_info["fault_plan"])
    else:
        schemes = tuple(schemes) if schemes else ALL_SCHEMES
        specs = {name: default_verify_spec(name) for name in schemes}
    if out_dir is not None:
        Path(out_dir).mkdir(parents=True, exist_ok=True)
    payloads = [
        {
            "trace": str(trace),
            "scheme": name,
            "spec": spec_to_dict(specs[name]),
            "l1_kb": l1_kb,
            "l2_kb": l2_kb,
            "audit_interval": audit_interval,
            "fault_plan": plan_to_dict(fault_plan) if fault_plan else None,
            "bisect": bisect,
            "out": str(out_dir) if out_dir is not None else None,
        }
        for name in schemes
    ]
    results = run_tasks(diff_task, payloads, jobs=jobs)
    by_scheme = {result["scheme"]: result for result in results}

    report = {
        "trace": str(trace),
        "schemes": by_scheme,
        "fault_plan": plan_to_dict(fault_plan) if fault_plan else None,
        "failures": [],
    }
    failures = report["failures"]
    if fault_plan is not None:
        detected = [name for name in schemes if not by_scheme[name]["ok"]]
        missed = [name for name in schemes if by_scheme[name]["ok"]]
        report["detection"] = {"detected": detected, "missed": missed}
        for name in missed:
            failures.append(
                f"FAULT MISSED: scheme {name} stayed clean under the "
                f"seeded fault plan"
            )
    else:
        clean = [name for name in schemes if by_scheme[name]["ok"]]
        for name in schemes:
            result = by_scheme[name]
            if not result["ok"]:
                failures.append(
                    f"DIVERGED: scheme {name} at step {result['processed']}: "
                    f"{result['violation']}"
                )
        # Issued-access identity across the clean schemes.
        for key in EXACT_KEYS:
            values = {
                name: by_scheme[name]["stats"]["scalars"][key]
                for name in clean
            }
            if len(set(values.values())) > 1:
                failures.append(f"EXACT MISMATCH: {key} differs: {values}")
        # Pairwise stat-delta tolerances.
        for i, name_a in enumerate(clean):
            for name_b in clean[i + 1 :]:
                spec_tol = tolerance_for(name_a, name_b)
                for key, bound in spec_tol.items():
                    value_a = by_scheme[name_a]["stats"]["scalars"][key]
                    value_b = by_scheme[name_b]["stats"]["scalars"][key]
                    delta = _relative_delta(value_a, value_b)
                    if delta > bound:
                        failures.append(
                            f"TOLERANCE: {key} delta {delta:.3f} between "
                            f"{name_a} ({value_a}) and {name_b} ({value_b}) "
                            f"exceeds {bound}"
                        )
    report["ok"] = not failures
    if out_dir is not None:
        report_path = Path(out_dir) / f"diff-{trace.stem}.json"
        report_path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        report["report_path"] = str(report_path)
    return report
