"""Protocol transition-coverage accounting.

The home controllers carry a ``coverage`` attribute (a
:class:`NullCoverage` by default) and call ``coverage.note(label)`` at
every interesting state-machine decision point, guarded by
``coverage.enabled`` exactly like the flight-recorder hooks — so runs
without coverage collection execute the same instructions they always
did and stay bit-identical.

Labels are short ``group:event`` strings:

* ``mesi:<pre>-><post>:<kind>`` — requester-side MESI transitions,
  derived by the verify harness from quiet pre/post ``state_of`` probes
  (the controllers never pay for them);
* ``inval:<prior>->I`` — remote invalidations through the shared
  :meth:`~repro.coherence.base.BaseHome._invalidate_holders` path;
* ``dir:*`` — sparse-directory-side events (allocation, eviction,
  forwarding, upgrade);
* ``llc:*`` — in-LLC tracking events (corrupting/restoring lines,
  lengthened reads, tracked-victim back-invalidation);
* ``tiny:*`` — tiny-directory allocation decisions (DSTRA/gNRU
  allocate/decline/evict), spills, unspills and recalls;
* ``mgd:*`` / ``stash:*`` / ``shared_only:*`` — scheme-variant events.

:data:`KNOWN_TRANSITIONS` enumerates, per scheme name, the transitions
the conformance subsystem expects to be reachable; the fuzzer steers
its bias profiles toward uncovered entries and the CLI can assert a
coverage floor against the same universe.
"""

from __future__ import annotations

from collections import Counter

from repro.coherence.base import NullCoverage

__all__ = [
    "NullCoverage",
    "CoverageMap",
    "MESI_TRANSITIONS",
    "KNOWN_TRANSITIONS",
    "coverage_fraction",
    "render_coverage_table",
]


class CoverageMap:
    """Counts protocol transitions seen during a run."""

    enabled = True

    def __init__(self) -> None:
        self.counts: "Counter[str]" = Counter()

    def note(self, transition: str) -> None:
        self.counts[transition] += 1

    def merge(self, other: "CoverageMap | dict | Counter") -> None:
        counts = other.counts if isinstance(other, CoverageMap) else other
        self.counts.update(counts)

    def covered(self) -> "set[str]":
        return set(self.counts)

    def install(self, system) -> None:
        """Attach this map to ``system``'s home controller."""
        system.home.coverage = self


#: MESI transitions observable from the requesting core's perspective.
MESI_TRANSITIONS = (
    "mesi:I->E:read",
    "mesi:I->S:read",
    "mesi:I->S:ifetch",
    "mesi:I->M:write",
    "mesi:S->M:write",
    "mesi:E->M:write",
    "mesi:S->S:read",
    "mesi:S->S:ifetch",
    "mesi:E->E:read",
    "mesi:M->M:read",
    "mesi:M->M:write",
)

#: Remote-invalidation transitions through the shared helper used by
#: the sparse-directory scheme family.
_INVAL = ("inval:M->I", "inval:E->I", "inval:S->I")

_SPARSE_DIR = (
    "dir:alloc",
    "dir:evict",
    "dir:drop",
    "dir:back_invalidate",
    "dir:fwd_exclusive",
    "dir:write_shared",
    "dir:upgrade",
)

_LLC = (
    "llc:mark_tracked",
    "llc:restore",
    "llc:evict_tracked",
    "llc:evict_dirty",
    "llc:lengthened_read",
)

_TINY = (
    "tiny:hit",
    "tiny:spill_hit",
    "tiny:fwd_refill",
    "tiny:unspill",
    "tiny:alloc",
    "tiny:evict",
    "tiny:decline",
    "tiny:spill",
    "tiny:rehome_spill",
    "tiny:rehome_corrupt",
    "tiny:recall",
    "llc:back_invalidate",
)

_MGD = (
    "mgd:region_alloc",
    "mgd:region_extend",
    "mgd:region_demote",
    "mgd:region_shrink",
    "mgd:block_alloc",
    "mgd:evict_region",
)

_STASH = ("stash:stash", "stash:recover", "stash:unstash")

#: Per-scheme transition universe the fuzzer steers toward and the CLI
#: reports coverage fractions against. Entries are kept to transitions
#: reachable at verification scale; rare corner events still get
#: counted when they fire, they just do not gate the floor.
KNOWN_TRANSITIONS: "dict[str, tuple[str, ...]]" = {
    "sparse": MESI_TRANSITIONS + _INVAL + _SPARSE_DIR,
    "in_llc": MESI_TRANSITIONS + _LLC,
    "tiny": MESI_TRANSITIONS + _LLC + _TINY,
    "mgd": MESI_TRANSITIONS
    + _INVAL
    + ("dir:back_invalidate", "dir:fwd_exclusive", "dir:write_shared", "dir:upgrade")
    + _MGD,
    "stash": MESI_TRANSITIONS + _INVAL + _SPARSE_DIR + _STASH,
}


def coverage_fraction(scheme: str, covered: "set[str]") -> float:
    """Fraction of the scheme's known universe present in ``covered``."""
    universe = KNOWN_TRANSITIONS.get(scheme, ())
    if not universe:
        return 1.0
    return sum(1 for t in universe if t in covered) / len(universe)


def render_coverage_table(per_scheme: "dict[str, set[str]]") -> str:
    """Text table: per scheme, covered/total and the uncovered tail."""
    lines = ["transition coverage", "-" * 66]
    lines.append(f"{'scheme':<10} {'covered':>9} {'fraction':>9}  uncovered")
    for scheme in sorted(per_scheme):
        covered = per_scheme[scheme]
        universe = KNOWN_TRANSITIONS.get(scheme, ())
        hit = [t for t in universe if t in covered]
        missing = [t for t in universe if t not in covered]
        shown = ", ".join(missing[:4]) + (" ..." if len(missing) > 4 else "")
        lines.append(
            f"{scheme:<10} {len(hit):>4}/{len(universe):<4} "
            f"{coverage_fraction(scheme, covered):>8.0%}  {shown or '-'}"
        )
    return "\n".join(lines)
