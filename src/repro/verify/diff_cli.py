"""Command-line driver: ``python -m repro diff``.

Record durable ``.rtrace`` captures and run them through every
coherence-tracking scheme differentially (see
:mod:`repro.verify.differential`):

* ``--record out.rtrace --app barnes`` generates one seeded trace and
  saves it with full provenance;
* ``--trace FILE`` (or a directory of ``.rtrace`` files, e.g. the
  committed ``tests/corpus/``) replays each trace through the selected
  schemes — fanned through :mod:`repro.parallel` — and checks
  architectural agreement plus pairwise stat tolerances;
* ``--fault kind@after`` seeds a corruption into every scheme's run;
  the expectation inverts and a scheme that *misses* the fault fails
  the diff;
* ``--bisect`` shrinks any divergence to a minimal replayable
  sub-trace under ``--out``; pointing ``--trace`` at such a sub-trace
  replays it under its recorded scheme and fault plan.

Exit status is 0 only when every report is clean (or, under faults,
every scheme detected the corruption).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.resilience.faults import Fault, FaultKind, FaultPlan
from repro.verify.differential import (
    ALL_SCHEMES,
    DEFAULT_DIFF_AUDIT_INTERVAL,
    DIFF_L1_KB,
    DIFF_L2_KB,
    diff_trace,
)

#: Record-mode defaults: the scenario-corpus scale (tiny but with every
#: structure under pressure; see tools/rebuild_corpus.py).
RECORD_CORES = 8
RECORD_ACCESSES = 3000


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro diff",
        description="Cross-scheme differential regression over recorded "
        "traces: record, replay, agree, bisect.",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        action="append",
        help="trace file or directory of .rtrace files to diff "
        "(repeatable)",
    )
    parser.add_argument(
        "--record",
        type=Path,
        metavar="PATH",
        help="record a fresh seeded trace to PATH and exit",
    )
    parser.add_argument(
        "--schemes",
        default=None,
        help="comma-separated scheme subset (default: all five: "
        + ",".join(ALL_SCHEMES)
        + ")",
    )
    parser.add_argument(
        "--bisect",
        action="store_true",
        help="on divergence, bisect to a minimal replayable sub-trace "
        "under --out",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("diff-reports"),
        help="directory for diff reports and sub-trace reproducers "
        "(default: diff-reports)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the per-scheme fan-out (default: auto)",
    )
    parser.add_argument(
        "--fault",
        action="append",
        metavar="KIND[@AFTER]",
        help="seed a fault (e.g. corrupt_directory_entry@40) into every "
        "scheme's run; schemes must then DETECT it (repeatable)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for fault target resolution (default: 0)",
    )
    parser.add_argument(
        "--audit-interval",
        type=int,
        default=DEFAULT_DIFF_AUDIT_INTERVAL,
        help="accesses between protocol audits in monitored runs "
        f"(default: {DEFAULT_DIFF_AUDIT_INTERVAL})",
    )
    # -- record-mode knobs ------------------------------------------------
    parser.add_argument(
        "--app",
        default="barnes",
        help="workload profile for --record (default: barnes)",
    )
    parser.add_argument(
        "--cores",
        type=int,
        default=RECORD_CORES,
        help=f"cores for --record (default: {RECORD_CORES})",
    )
    parser.add_argument(
        "--accesses",
        type=int,
        default=RECORD_ACCESSES,
        help="steady-state accesses for --record "
        f"(default: {RECORD_ACCESSES})",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="generator seed for --record (default: 0)",
    )
    return parser


def _parse_faults(args) -> "FaultPlan | None":
    if not args.fault:
        return None
    faults = []
    for item in args.fault:
        name, _, position = item.strip().lower().partition("@")
        try:
            kind = FaultKind(name)
        except ValueError:
            raise ReproError(
                f"unknown fault kind {name!r} (choose from "
                f"{', '.join(k.value for k in FaultKind)})"
            ) from None
        try:
            after = int(position) if position else 1
        except ValueError:
            raise ReproError(f"bad fault position {position!r}") from None
        faults.append(Fault(kind, after_access=after))
    return FaultPlan(faults=tuple(faults), seed=args.fault_seed)


def _parse_schemes(args) -> "tuple[str, ...] | None":
    if not args.schemes:
        return None
    names = tuple(
        name.strip() for name in args.schemes.split(",") if name.strip()
    )
    for name in names:
        if name not in ALL_SCHEMES:
            raise ReproError(
                f"unknown scheme {name!r} (choose from "
                f"{', '.join(ALL_SCHEMES)})"
            )
    return names or None


def _record(args) -> int:
    from repro.sim.config import SystemConfig
    from repro.workloads.capture import save_capture
    from repro.workloads.generator import generate_streams
    from repro.workloads.profiles import profile

    app = profile(args.app)
    config = SystemConfig(
        num_cores=args.cores, l1_kb=DIFF_L1_KB, l2_kb=DIFF_L2_KB
    )
    streams = generate_streams(app, config, args.accesses, seed=args.seed)
    save_capture(
        args.record,
        streams,
        profile=app,
        seed=args.seed,
        total_accesses=args.accesses,
        geometry={
            "num_cores": config.num_cores,
            "l1_kb": config.l1_kb,
            "l2_kb": config.l2_kb,
        },
    )
    total = sum(len(stream) for stream in streams)
    print(f"recorded {args.record}: {total} accesses on {args.cores} cores")
    return 0


def _collect_traces(entries: "list[Path]") -> "list[Path]":
    traces: "list[Path]" = []
    for entry in entries:
        if entry.is_dir():
            found = sorted(entry.glob("*.rtrace"))
            if not found:
                raise ReproError(f"no .rtrace files under {entry}")
            traces.extend(found)
        elif entry.exists():
            traces.append(entry)
        else:
            raise ReproError(f"trace {entry} does not exist")
    return traces


def _print_report(report: dict) -> None:
    trace = report["trace"]
    for name, result in sorted(report["schemes"].items()):
        if result["ok"]:
            line = f"clean ({result['processed']} accesses)"
        else:
            first = (result["violation"] or "").splitlines()[0][:110]
            line = f"DIVERGED at access {result['processed']}: {first}"
            if result.get("reproducer"):
                line += (
                    f" [reproducer: {result['reproducer_accesses']} "
                    f"accesses -> {result['reproducer']}]"
                )
        print(f"  {name}: {line}")
    for failure in report["failures"]:
        print(f"  {failure}")
    status = "OK" if report["ok"] else "FAIL"
    print(f"diff {trace}: {status}")


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.record is not None:
            return _record(args)
        if not args.trace:
            print(
                "python -m repro diff: need --trace (file or directory) "
                "or --record",
                file=sys.stderr,
            )
            return 2
        plan = _parse_faults(args)
        schemes = _parse_schemes(args)
        traces = _collect_traces(args.trace)
        failures = 0
        for trace in traces:
            report = diff_trace(
                trace,
                schemes,
                fault_plan=plan,
                bisect=args.bisect,
                out_dir=args.out,
                jobs=args.jobs,
                audit_interval=args.audit_interval,
            )
            _print_report(report)
            if not report["ok"]:
                failures += 1
        if failures:
            print(f"diff: {failures} of {len(traces)} trace(s) FAILED")
            return 1
        print(f"diff: OK ({len(traces)} trace(s))")
        return 0
    except ReproError as err:
        print(f"python -m repro diff: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
