"""Curated litmus tests: small adversarial multi-core access patterns.

Each test is a short schedule built from the machine's actual geometry
(set-conflict addresses are derived from the configured number of L2
sets, LLC banks, and LLC sets — never hard-coded), run against every
applicable scheme with the value oracle on and the protocol auditor
checking invariants after *every* step. A test passes when no protocol,
invariant, or oracle violation fires; the interesting outcomes (stale
reads, missed invalidations, tracking lost across evictions) are
exactly what the oracle and auditor encode, so the tests carry no
per-test expected-value tables.

The library leans on the schemes' pressure points: writeback and
invalidation crossings, private- and LLC-eviction under sharing,
directory eviction with live sharers, tiny-directory spill/recall, MGD
region demotion, and Stash broadcast recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.verify.coverage import CoverageMap
from repro.verify.harness import build_system, run_schedule
from repro.verify.steps import F, R, W

#: All litmus tests run on the same miniature machine so set-conflict
#: construction is deterministic and cheap.
LITMUS_CORES = 4
LITMUS_L1_KB = 1
LITMUS_L2_KB = 4


@dataclass(frozen=True)
class Geometry:
    """The address-mapping facts litmus builders need."""

    l2_sets: int
    l2_assoc: int
    num_banks: int
    llc_sets: int
    llc_assoc: int

    def l2_conflicts(self, addr: int, count: int) -> "list[int]":
        """``count`` distinct blocks mapping to ``addr``'s L2 set."""
        return [addr + self.l2_sets * (k + 1) for k in range(count)]

    def llc_conflicts(self, addr: int, count: int) -> "list[int]":
        """``count`` distinct blocks mapping to ``addr``'s LLC bank+set."""
        stride = self.num_banks * self.llc_sets
        return [addr + stride * (k + 1) for k in range(count)]

    def bank_pool(self, bank: int, count: int) -> "list[int]":
        """``count`` blocks homed at ``bank``, spread over its sets."""
        return [bank + self.num_banks * k for k in range(count)]


def geometry_of(system) -> Geometry:
    config = system.config
    return Geometry(
        l2_sets=config.l2_sets,
        l2_assoc=config.l2_assoc,
        num_banks=config.num_banks,
        llc_sets=config.llc_sets_per_bank,
        llc_assoc=config.llc_assoc,
    )


@dataclass(frozen=True)
class LitmusTest:
    """One named access pattern; ``build(geom)`` yields the schedule."""

    name: str
    description: str
    build: "callable"
    #: Scheme names the test applies to (None = every scheme).
    schemes: "tuple[str, ...] | None" = None

    def applies_to(self, scheme: str) -> bool:
        return self.schemes is None or scheme in self.schemes


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------

def _store_buffering(geom: Geometry):
    a, b = 1, 2
    return [W(0, a), W(1, b), R(0, b), R(1, a), R(2, a), R(2, b), W(2, a), R(3, a)]


def _message_passing(geom: Geometry):
    data, flag = 5, 6
    return [
        W(0, data), W(0, flag), R(1, flag), R(1, data),
        W(1, data), R(0, data), R(2, flag), R(3, data),
    ]


def _ownership_ping_pong(geom: Geometry):
    a = 3
    return [W(0, a), W(1, a), W(0, a), W(1, a), R(2, a), W(3, a), R(0, a), R(3, a)]


def _upgrade_race(geom: Geometry):
    a = 9
    return [R(0, a), R(1, a), R(2, a), W(1, a), R(0, a), W(2, a), R(3, a), W(3, a)]


def _ifetch_sharing(geom: Geometry):
    code = 7
    return [F(0, code), F(1, code), F(2, code), F(3, code), W(0, code), F(1, code), F(3, code)]


def _writeback_crossing(geom: Geometry):
    a = 4
    steps = [W(0, a)]
    # Conflict-evict A from core 0's L2 (dirty writeback crosses the
    # interconnect), then have another core read and write it.
    steps += [R(0, x) for x in geom.l2_conflicts(a, geom.l2_assoc)]
    steps += [R(1, a), W(1, a), R(0, a)]
    return steps


def _eviction_under_sharing(geom: Geometry):
    a = 8
    steps = [R(0, a), R(1, a), R(2, a)]
    # Evict the shared copy from core 0 only; the tracker must drop
    # core 0 without disturbing cores 1 and 2.
    steps += [R(0, x) for x in geom.l2_conflicts(a, geom.l2_assoc)]
    steps += [W(1, a), R(2, a), R(0, a)]
    return steps


def _directory_pressure(geom: Geometry):
    # Many shared blocks homed at one bank force tracking-structure
    # evictions (back-invalidation / rehoming) with live sharers.
    pool = geom.bank_pool(0, 12)
    steps = []
    for addr in pool:
        steps += [R(0, addr), R(1, addr)]
    steps += [W(2, pool[0]), R(3, pool[1]), W(0, pool[2]), R(1, pool[0])]
    return steps


def _llc_eviction_of_tracked(geom: Geometry):
    a = 10
    steps = [R(0, a), R(1, a)]  # shared -> tracked (corrupted line / tiny)
    # Overflow A's LLC set from core 2: the tracked line is evicted and
    # its holders must be back-invalidated.
    steps += [R(2, x) for x in geom.llc_conflicts(a, geom.llc_assoc + 1)]
    steps += [W(0, a), R(1, a)]
    return steps


def _spill_recall(geom: Geometry):
    # More shared blocks in one bank than the tiny directory holds:
    # allocation declines/evictions push entries toward spilled LLC
    # ways; a write to a spilled block must unspill it.
    pool = geom.bank_pool(0, 8)
    steps = []
    for _ in range(3):
        for addr in pool:
            steps += [R(0, addr), R(1, addr), R(2, addr)]
    steps += [W(3, pool[0]), R(0, pool[0]), W(0, pool[1]), R(2, pool[1])]
    return steps


def _stash_recovery(geom: Geometry):
    # Exclusive blocks overflowing one bank's directory are stashed
    # (dropped without invalidation); a later read by another core must
    # recover the owner by broadcast.
    pool = geom.bank_pool(0, 12)
    steps = [W(0, addr) for addr in pool]
    steps += [R(1, pool[0]), R(2, pool[1]), W(1, pool[2]), R(0, pool[0])]
    return steps


def _mgd_region_demotion(geom: Geometry):
    # One core privately owns a whole region (one region entry); a
    # second core touching it demotes the region to block entries.
    region = [16 * 4 + k for k in range(6)]  # blocks of one 1 KB region
    steps = [W(0, addr) for addr in region]
    steps += [R(1, region[2]), R(1, region[3]), W(1, region[0]), R(0, region[2])]
    return steps


def _capacity_churn(geom: Geometry):
    # Stream far past LLC capacity from two cores while two others
    # pin shared hot blocks: exercises eviction/writeback interleaving
    # with live sharers across every scheme.
    hot = [11, 12]
    steps = [R(2, hot[0]), R(3, hot[0]), R(2, hot[1]), R(3, hot[1])]
    stride = geom.num_banks * geom.llc_sets
    for k in range(geom.llc_assoc + 2):
        steps += [W(0, 13 + stride * k), R(1, 14 + stride * k)]
    steps += [W(2, hot[0]), R(3, hot[1]), R(2, hot[1]), W(3, hot[1])]
    return steps


#: The curated library.
LITMUS_TESTS: "tuple[LitmusTest, ...]" = (
    LitmusTest("store_buffering", "SB-shaped write/read race", _store_buffering),
    LitmusTest("message_passing", "MP handoff through a flag", _message_passing),
    LitmusTest("ownership_ping_pong", "M-state migration between writers", _ownership_ping_pong),
    LitmusTest("upgrade_race", "S->M upgrades against readers", _upgrade_race),
    LitmusTest("ifetch_sharing", "instruction-read sharing then write", _ifetch_sharing),
    LitmusTest("writeback_crossing", "dirty L2 eviction crossing a remote read", _writeback_crossing),
    LitmusTest("eviction_under_sharing", "silent S eviction with live sharers", _eviction_under_sharing),
    LitmusTest("directory_pressure", "tracker evictions with live sharers", _directory_pressure),
    LitmusTest("llc_eviction_of_tracked", "LLC eviction of a tracked line", _llc_eviction_of_tracked),
    LitmusTest("capacity_churn", "capacity streaming around pinned shared blocks", _capacity_churn),
    LitmusTest("spill_recall", "tiny-directory spill then unspill under pressure",
               _spill_recall, schemes=("tiny",)),
    LitmusTest("stash_recovery", "stash drop and broadcast recovery",
               _stash_recovery, schemes=("stash",)),
    LitmusTest("mgd_region_demotion", "private region demoted by a second core",
               _mgd_region_demotion, schemes=("mgd",)),
)


@dataclass
class LitmusOutcome:
    """Result of one (test, scheme) litmus run."""

    test: str
    scheme: str
    passed: bool
    violation: "str | None" = None
    steps: int = 0


def run_litmus(
    schemes: "dict[str, object]",
    coverage: "dict[str, CoverageMap] | None" = None,
    tests: "tuple[LitmusTest, ...]" = LITMUS_TESTS,
) -> "list[LitmusOutcome]":
    """Run every applicable (test, scheme) pair; returns all outcomes.

    ``coverage`` maps scheme name to a :class:`CoverageMap` that
    accumulates transitions across the scheme's tests.
    """
    outcomes = []
    for scheme_name, spec in schemes.items():
        for test in tests:
            if not test.applies_to(scheme_name):
                continue
            system = build_system(spec, LITMUS_CORES, LITMUS_L1_KB, LITMUS_L2_KB)
            steps = test.build(geometry_of(system))
            cmap = coverage.get(scheme_name) if coverage is not None else None
            result = run_schedule(
                steps,
                system=system,
                audit_interval=1,  # invariants after every step
                oracle=True,
                coverage=cmap,
            )
            outcomes.append(
                LitmusOutcome(
                    test=test.name,
                    scheme=scheme_name,
                    passed=not result.failed,
                    violation=result.violation,
                    steps=len(steps),
                )
            )
    return outcomes
