"""Sequentially-consistent reference memory oracle.

The simulator is functionally synchronous — one transaction completes
before the next starts — so the reference memory model is plain
sequential consistency: a load must observe the value of the most
recent store to its address, and a completed store must leave the
writer as the only core with a valid private copy.

The oracle models values as per-address *last-writer tokens* (a
monotone sequence number) plus a per-``(core, addr)`` record of which
token the core's cached copy carries:

* a **store** advances the address's token, stamps the writer's copy,
  and asserts no other core still holds the block (the write-serialized
  single-writer property, checked at the exact access);
* a **load or ifetch** that hit a pre-existing private copy must find
  that copy stamped with the address's current token — a mismatch means
  an invalidation was lost and the core read a stale value;
* a **load miss** stamps the freshly filled copy with the current
  token (the home node supplies up-to-date data by construction; a
  holder whose copy was left stale is caught at *its* next read).

All probes use quiet lookups (``state_of`` / ``holds``), so an
oracle-monitored run produces bit-identical statistics to an
unmonitored one.
"""

from __future__ import annotations

from repro.errors import OracleViolation
from repro.types import AccessKind, PrivateState


class ValueOracle:
    """Differential value checker threaded through the access stream."""

    def __init__(self) -> None:
        #: addr -> token of the last completed store.
        self.token: "dict[int, int]" = {}
        #: (core, addr) -> token the core's private copy carries.
        self.copy: "dict[tuple[int, int], int]" = {}
        self._seq = 0
        self.loads_checked = 0
        self.stores_checked = 0

    def pre_state(self, system, core: int, addr: int) -> PrivateState:
        """Quiet MESI state of ``addr`` at ``core`` (capture before access)."""
        return system.cores[core].state_of(addr)

    def observe(
        self,
        system,
        core: int,
        addr: int,
        kind: AccessKind,
        pre_state: PrivateState,
    ) -> None:
        """Validate one completed access against the reference model."""
        if kind is AccessKind.WRITE:
            self._seq += 1
            self.token[addr] = self._seq
            self.copy[(core, addr)] = self._seq
            self.stores_checked += 1
            for other in system.cores:
                if other.core_id != core and other.holds(addr):
                    raise OracleViolation(
                        f"store by core {core} to {addr:#x} completed while "
                        f"core {other.core_id} still holds a copy",
                        addr=addr,
                        cores=(core, other.core_id),
                    )
            return
        current = self.token.get(addr, 0)
        if pre_state is not PrivateState.INVALID:
            observed = self.copy.get((core, addr), current)
            self.loads_checked += 1
            if observed != current:
                raise OracleViolation(
                    f"core {core} read version {observed} of {addr:#x} but "
                    f"the last writer produced version {current} (stale "
                    f"copy; an invalidation was lost)",
                    addr=addr,
                    cores=(core,),
                )
        else:
            # Miss fill: the home delivers the authoritative data.
            self.copy[(core, addr)] = current
