"""Step-driven execution harness for conformance runs.

Wraps one :class:`~repro.sim.system.System` with everything a
conformance run needs: the value oracle, the online auditor (forced
on), an attached :class:`~repro.resilience.faults.FaultInjector` for
fault pseudo-steps, and optional transition-coverage collection. The
litmus engine, the fuzzer, the shrinker, and reproducer replay all
drive schedules through :func:`run_schedule`.

Every inspection the harness performs (oracle pre-probes, MESI
transition derivation) uses quiet lookups, so a clean harnessed run is
bit-identical to driving the same accesses directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FaultInjectionError, ProtocolError
from repro.recovery import RecoveryManager
from repro.resilience.auditor import ProtocolAuditor
from repro.resilience.faults import FaultInjector, FaultPlan, InjectedFault
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.telemetry import install_tracer, tracer_from_env
from repro.types import Access
from repro.verify.coverage import CoverageMap
from repro.verify.oracle import ValueOracle
from repro.verify.steps import AccessStep, FaultStep

#: Default audit cadence for conformance runs: tight enough that a
#: corruption is caught within a few dozen steps, loose enough that a
#: 10k-step fuzz run stays fast.
DEFAULT_VERIFY_AUDIT_INTERVAL = 64


def build_system(
    spec,
    num_cores: int = 4,
    l1_kb: int = 1,
    l2_kb: int = 4,
    seed: int = 0,
) -> System:
    """A small system with an (initially idle) fault injector attached."""
    config = SystemConfig(num_cores=num_cores, l1_kb=l1_kb, l2_kb=l2_kb, scheme=spec)
    injector = FaultInjector(FaultPlan(seed=seed))
    return System(config, fault_injector=injector)


class VerifyHarness:
    """Drives schedule steps against a system under full monitoring."""

    def __init__(
        self,
        system: System,
        *,
        audit_interval: int = DEFAULT_VERIFY_AUDIT_INTERVAL,
        oracle: bool = True,
        coverage: "CoverageMap | None" = None,
        fault_seed: int = 0,
        recovery: "RecoveryManager | None" = None,
    ) -> None:
        self.system = system
        self.injector = system.fault_injector
        if self.injector is None:
            self.injector = FaultInjector(FaultPlan(seed=fault_seed))
            self.injector.attach(system)
            system.fault_injector = self.injector
        self.oracle = ValueOracle() if oracle else None
        self.coverage = coverage
        if coverage is not None:
            coverage.install(system)
        self.auditor = ProtocolAuditor(interval=max(1, audit_interval))
        self.auditor.install(system)
        self.recovery = recovery
        self.now = 0
        self.executed = 0

    def _audit(self) -> None:
        if self.recovery is not None:
            self.recovery.audit(self.auditor, self.system)
        else:
            self.auditor.audit(self.system)

    @property
    def injected(self) -> "list[InjectedFault]":
        return self.injector.injected

    def run_step(self, step) -> None:
        """Execute one step; raises on a protocol or oracle violation."""
        if isinstance(step, FaultStep):
            self.injector.apply_now(self.system, step.to_fault())
            return
        core, addr = step.core, step.addr
        kind = step.access_kind()
        pre = None
        if self.oracle is not None or self.coverage is not None:
            pre = self.system.cores[core].state_of(addr)
        latency = self.system.access(Access(core, addr, kind), self.now)
        self.now += max(1, latency)
        if self.coverage is not None:
            post = self.system.cores[core].state_of(addr)
            self.coverage.note(f"mesi:{pre.value}->{post.value}:{step.kind}")
        if self.oracle is not None:
            self.oracle.observe(self.system, core, addr, kind, pre)
        self.executed += 1
        if self.executed % self.auditor.interval == 0:
            self._audit()

    def finish(self) -> None:
        """Close the run with a final full audit."""
        self._audit()


@dataclass
class ScheduleResult:
    """Outcome of one schedule execution."""

    violation: "str | None" = None
    #: Index of the step whose execution raised, None for clean runs.
    fail_step: "int | None" = None
    #: Access steps actually executed (fault steps excluded).
    executed: int = 0
    coverage: "CoverageMap | None" = None
    injected: "list[InjectedFault]" = field(default_factory=list)
    #: True when a fault pseudo-step could not be applied (its target
    #: was not live); the shrinker treats such schedules as non-failing.
    fault_unapplied: bool = False
    #: Successful repairs performed by an attached recovery manager.
    repairs: int = 0

    @property
    def failed(self) -> bool:
        return self.violation is not None


def run_schedule(
    steps,
    *,
    system: "System | None" = None,
    spec=None,
    num_cores: int = 4,
    l1_kb: int = 1,
    l2_kb: int = 4,
    seed: int = 0,
    audit_interval: int = DEFAULT_VERIFY_AUDIT_INTERVAL,
    oracle: bool = True,
    coverage: "CoverageMap | None" = None,
    recovery: "RecoveryManager | None" = None,
) -> ScheduleResult:
    """Run ``steps`` on a fresh (or supplied) system under monitoring.

    Protocol errors, invariant violations, and oracle violations all
    end the run and are reported as the result's ``violation``; a
    :class:`~repro.errors.FaultInjectionError` (the fault pseudo-step's
    target is gone — typical while shrinking away its setup) ends the
    run cleanly with ``fault_unapplied`` set. With a ``recovery``
    manager attached, audit-window invariant violations are repaired
    in place (the result stays clean and counts the ``repairs``)
    instead of failing the schedule; oracle violations and escalations
    still fail it.
    """
    if system is None:
        if spec is None:
            raise ValueError("run_schedule needs a system or a scheme spec")
        system = build_system(spec, num_cores, l1_kb, l2_kb, seed=seed)
    tracer = tracer_from_env()
    if tracer is not None:
        install_tracer(system, tracer)
    harness = VerifyHarness(
        system,
        audit_interval=audit_interval,
        oracle=oracle,
        coverage=coverage,
        fault_seed=seed,
        recovery=recovery,
    )
    result = ScheduleResult(coverage=coverage)
    try:
        for index, step in enumerate(steps):
            try:
                harness.run_step(step)
            except ProtocolError as err:
                result.violation = f"{type(err).__name__}: {err}"
                result.fail_step = index
                break
        else:
            harness.finish()
    except FaultInjectionError:
        result.fault_unapplied = True
    except ProtocolError as err:
        # The closing audit tripped: blame the last step.
        result.violation = f"{type(err).__name__}: {err}"
        result.fail_step = max(0, len(list(steps)) - 1) if steps else None
    finally:
        if tracer is not None:
            tracer.close()
    result.executed = harness.executed
    result.injected = list(harness.injected)
    if recovery is not None:
        result.repairs = recovery.repairs
    return result
