"""Protocol conformance subsystem.

Three cooperating parts, all opt-in and bit-identity-preserving when
idle:

* :mod:`repro.verify.litmus` — a curated library of small adversarial
  multi-core access patterns run against every scheme with the value
  oracle and per-step auditing;
* :mod:`repro.verify.fuzzer` — a seeded random-walk fuzzer biased
  toward directory-eviction, corrupted-state, and spill/recall hot
  spots, with ddmin shrinking of failures to minimal replayable
  reproducers (:mod:`repro.verify.reproducer`);
* :mod:`repro.verify.coverage` — transition-coverage accounting over
  the home controllers, used both to steer the fuzzer and to assert a
  coverage floor in CI.

A fourth part, :mod:`repro.verify.differential`, replays durable
``.rtrace`` captures (see :mod:`repro.workloads.capture`) through every
scheme, checks cross-scheme architectural agreement and stat-delta
tolerances, and prefix-bisects divergences to minimal replayable
sub-traces; entry point ``python -m repro diff``
(:mod:`repro.verify.diff_cli`).

Entry point: ``python -m repro verify`` (:mod:`repro.verify.cli`).
"""

from repro.verify.coverage import (
    KNOWN_TRANSITIONS,
    CoverageMap,
    NullCoverage,
    coverage_fraction,
    render_coverage_table,
)
from repro.verify.differential import (
    ALL_SCHEMES,
    MonitoredRun,
    bisect_divergence,
    diff_trace,
    replay_subtrace,
    run_monitored,
    tolerance_for,
    truncate_streams,
)
from repro.verify.fuzzer import FuzzResult, ddmin, fault_plan_for, fuzz_run, fuzz_task
from repro.verify.harness import (
    DEFAULT_VERIFY_AUDIT_INTERVAL,
    ScheduleResult,
    VerifyHarness,
    build_system,
    run_schedule,
)
from repro.verify.litmus import (
    LITMUS_TESTS,
    Geometry,
    LitmusOutcome,
    LitmusTest,
    geometry_of,
    run_litmus,
)
from repro.verify.oracle import ValueOracle
from repro.verify.reproducer import (
    REPRODUCER_VERSION,
    SCHEME_SPECS,
    default_verify_spec,
    load_reproducer,
    replay,
    reproducer_dict,
    save_reproducer,
)
from repro.verify.steps import (
    AccessStep,
    F,
    FaultStep,
    R,
    W,
    merge_plan,
    step_from_dict,
    step_to_dict,
)

__all__ = [
    "ALL_SCHEMES",
    "MonitoredRun",
    "bisect_divergence",
    "diff_trace",
    "replay_subtrace",
    "run_monitored",
    "tolerance_for",
    "truncate_streams",
    "KNOWN_TRANSITIONS",
    "CoverageMap",
    "NullCoverage",
    "coverage_fraction",
    "render_coverage_table",
    "FuzzResult",
    "ddmin",
    "fault_plan_for",
    "fuzz_run",
    "fuzz_task",
    "DEFAULT_VERIFY_AUDIT_INTERVAL",
    "ScheduleResult",
    "VerifyHarness",
    "build_system",
    "run_schedule",
    "LITMUS_TESTS",
    "Geometry",
    "LitmusOutcome",
    "LitmusTest",
    "geometry_of",
    "run_litmus",
    "ValueOracle",
    "REPRODUCER_VERSION",
    "SCHEME_SPECS",
    "default_verify_spec",
    "load_reproducer",
    "replay",
    "reproducer_dict",
    "save_reproducer",
    "AccessStep",
    "F",
    "FaultStep",
    "R",
    "W",
    "merge_plan",
    "step_from_dict",
    "step_to_dict",
]
