"""Replayable reproducer files for minimized failing schedules.

A reproducer is a small JSON document carrying everything a later
process needs to re-trigger a violation exactly: the scheme spec, the
machine geometry, the harness seed and audit cadence, the minimized
step list (accesses and pinned fault pseudo-steps), and the violation
the original run observed. ``python -m repro verify --replay FILE``
re-runs it and reports whether the violation still fires.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.errors import TraceError
from repro.sim.config import InLLCSpec, MgdSpec, SparseSpec, StashSpec, TinySpec
from repro.verify.harness import DEFAULT_VERIFY_AUDIT_INTERVAL, run_schedule
from repro.verify.steps import step_from_dict, step_to_dict

REPRODUCER_VERSION = 1

#: Scheme name -> spec class, for round-tripping specs through JSON.
SCHEME_SPECS = {
    "sparse": SparseSpec,
    "in_llc": InLLCSpec,
    "tiny": TinySpec,
    "mgd": MgdSpec,
    "stash": StashSpec,
}


def default_verify_spec(scheme: str):
    """The spec verification runs a scheme under by default.

    Mostly the paper defaults, nudged where the default would leave
    tracking machinery idle at verification scale: the tiny directory
    runs with spilling on (spill/recall is half its state machine), and
    the sparse directory is shrunk from the conservative 2x-LLC sizing
    so directory evictions and back-invalidations are actually
    reachable.
    """
    if scheme == "tiny":
        return TinySpec(spill=True)
    if scheme == "sparse":
        return SparseSpec(ratio=0.125)
    cls = SCHEME_SPECS.get(scheme)
    if cls is None:
        raise TraceError(f"unknown scheme {scheme!r}")
    return cls()


def spec_to_dict(spec) -> dict:
    payload = dataclasses.asdict(spec)
    payload.pop("name", None)  # frozen init=False field
    return payload


def spec_from_dict(scheme: str, payload: dict):
    cls = SCHEME_SPECS.get(scheme)
    if cls is None:
        raise TraceError(f"unknown scheme {scheme!r} in reproducer")
    return cls(**payload)


def reproducer_dict(
    scheme: str,
    spec,
    steps,
    violation: str,
    *,
    seed: int = 0,
    num_cores: int = 4,
    l1_kb: int = 1,
    l2_kb: int = 4,
    audit_interval: int = DEFAULT_VERIFY_AUDIT_INTERVAL,
) -> dict:
    return {
        "format_version": REPRODUCER_VERSION,
        "scheme": scheme,
        "spec": spec_to_dict(spec),
        "geometry": {"num_cores": num_cores, "l1_kb": l1_kb, "l2_kb": l2_kb},
        "seed": seed,
        "audit_interval": audit_interval,
        "steps": [step_to_dict(step) for step in steps],
        "violation": violation,
    }


def save_reproducer(path, payload: dict) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_reproducer(path) -> dict:
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        raise TraceError(f"cannot read reproducer {path}: {err}") from None
    version = payload.get("format_version")
    if version != REPRODUCER_VERSION:
        raise TraceError(
            f"reproducer {path} has format_version {version!r}; "
            f"this build reads version {REPRODUCER_VERSION}"
        )
    for key in ("scheme", "spec", "geometry", "steps"):
        if key not in payload:
            raise TraceError(f"reproducer {path} is missing {key!r}")
    return payload


def replay(payload: dict):
    """Re-run a loaded reproducer; returns the :class:`ScheduleResult`."""
    spec = spec_from_dict(payload["scheme"], dict(payload["spec"]))
    geometry = payload["geometry"]
    steps = [step_from_dict(entry) for entry in payload["steps"]]
    return run_schedule(
        steps,
        spec=spec,
        num_cores=int(geometry.get("num_cores", 4)),
        l1_kb=int(geometry.get("l1_kb", 1)),
        l2_kb=int(geometry.get("l2_kb", 4)),
        seed=int(payload.get("seed", 0)),
        audit_interval=int(
            payload.get("audit_interval", DEFAULT_VERIFY_AUDIT_INTERVAL)
        ),
        oracle=True,
    )
