"""Command-line interface: regenerate the paper's figures.

Usage::

    python -m repro --list
    python -m repro fig01 fig10
    python -m repro --all --scale quick --jobs 4
    python -m repro fig13 --apps barnes TPC-C
    python -m repro --all --keep-going --timeout 600
    python -m repro fig10 --audit
    python -m repro fig10 --recovery repair
    python -m repro --all --resume
    python -m repro fig13 --profile
    python -m repro fig10 --trace --metrics
    python -m repro verify --fuzz --steps 2000 --seed 7
    python -m repro diff --trace tests/corpus --bisect
    python -m repro soak --quick

``verify`` dispatches to the protocol conformance runner (litmus
tests, random-walk fuzzing with shrinking, fault-detection checks,
transition coverage); see ``docs/verification.md`` and
``python -m repro verify --help``.

``diff`` dispatches to the cross-scheme differential harness: record
``.rtrace`` captures, replay them through every scheme, check
architectural agreement and stat tolerances, and bisect divergences to
minimal replayable sub-traces; see ``docs/verification.md`` and
``python -m repro diff --help``.

``soak`` dispatches to the resource-governance soak harness: randomized
sweeps under injected resource pressure (tight budgets, tiny disk
quotas, mid-sweep interrupts) asserting the recovery invariants of
``docs/resilience.md``; see ``python -m repro soak --help``.

Each figure is printed as a text table (the same output the benchmark
harness produces). Results are cached under ``.repro_cache/``.

``--jobs N`` (or ``REPRO_JOBS``) fans the figures' independent
(app, scheme, scale) points out over N worker processes before
rendering; results are bit-identical to a serial run. ``--profile``
prints a per-sweep summary plus cProfile stats of the slowest computed
point. ``--audit`` enables the online protocol auditor (equivalent to
setting ``REPRO_AUDIT=on``); ``--keep-going`` records per-run failures
and keeps sweeping instead of aborting on the first crash.

``--recovery repair`` arms self-healing coherence (equivalent to
``REPRO_RECOVERY=repair``): a tripped invariant is repaired in place
and the run resumes instead of aborting; see ``docs/resilience.md``.
Sweeps journal per-point completion next to the result cache, and
``--resume`` skips the journaled points of an interrupted sweep; see
``docs/harness.md``.

``--trace`` writes a structured JSONL event trace of every *computed*
run (cache hits re-run nothing, so trace a cold cache or set
``REPRO_CACHE=off``), ``--metrics`` snapshots counters and phase timers
into the stats telemetry section; render traces with
``python tools/trace_report.py``. See ``docs/telemetry.md``.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis import experiments
from repro.analysis.cache import cache_dir, cache_enabled
from repro.analysis.runner import HarnessPolicy, RunScale, harness
from repro.errors import ShutdownRequested
from repro.guard import (
    EXIT_INTERRUPTED,
    graceful_scope,
    preflight,
    resume_hint,
)
from repro.parallel import (
    SweepJournal,
    collect_points,
    dedupe_points,
    pending_points,
    print_slowest_profile,
    render_profiles_table,
    resolve_jobs,
    run_sweep,
)

#: CLI name -> (experiment callable, positional args).
FIGURES = {
    "fig01": (experiments.fig01_sparse_sizes, ()),
    "fig02": (experiments.fig02_sharer_distribution, ()),
    "fig03": (experiments.fig03_shared_only, ()),
    "fig03z": (experiments.fig03_shared_only, ()),  # zcache handled below
    "fig04": (experiments.fig04_in_llc_performance, ()),
    "fig05": (experiments.fig05_in_llc_traffic, ()),
    "fig06": (experiments.fig06_lengthened_accesses, ()),
    "fig07": (experiments.fig07_lengthened_blocks, ()),
    "fig08": (experiments.fig08_stra_blocks, ()),
    "fig09": (experiments.fig09_stra_accesses, ()),
    "fig10": (experiments.tiny_directory_performance, (1 / 32,)),
    "fig11": (experiments.tiny_directory_performance, (1 / 64,)),
    "fig12": (experiments.tiny_directory_performance, (1 / 128,)),
    "fig13": (experiments.tiny_directory_performance, (1 / 256,)),
    "fig14": (experiments.tiny_residual_lengthened, (1 / 32,)),
    "fig15": (experiments.tiny_residual_lengthened, (1 / 256,)),
    "fig16": (experiments.tiny_structure_metric, ("hits",)),
    "fig17": (experiments.tiny_structure_metric, ("allocations",)),
    "fig18": (experiments.tiny_structure_metric, ("hits_per_alloc",)),
    "fig19": (experiments.fig19_spill_benefit, ()),
    "fig20": (experiments.fig20_miss_rate_increase, ()),
    "fig21": (experiments.fig21_energy, ()),
    "fig22": (experiments.fig22_mgd_stash, ()),
    "halved": (experiments.halved_hierarchy, ()),
    "ablation-gnru": (experiments.ablation_gnru_generation, ()),
    "ablation-delta": (experiments.ablation_spill_delta, ()),
    "ablation-stra": (experiments.ablation_stra_width, ()),
}

_SCALES = {
    "quick": RunScale.quick,
    "default": RunScale.default,
    "full": RunScale.full,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate figures of the Tiny Directory paper (HPCA 2017).",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        metavar="FIGURE",
        help="figure ids to run (see --list)",
    )
    parser.add_argument("--list", action="store_true", help="list figure ids")
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="default",
        help="simulation scale preset",
    )
    parser.add_argument(
        "--apps",
        nargs="+",
        metavar="APP",
        help="restrict to these applications (default: all seventeen)",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="run the online protocol auditor (same as REPRO_AUDIT=on)",
    )
    parser.add_argument(
        "--recovery",
        choices=("abort", "repair", "repair-strict"),
        metavar="MODE",
        help="self-healing mode for tripped invariants: abort (default), "
        "repair, or repair-strict (same as REPRO_RECOVERY=MODE; implies "
        "auditing)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip sweep points already journaled by a previous "
        "(interrupted) run and recompute only the rest",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="collect per-run failures instead of aborting the sweep",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="per-run wall-clock limit (cooperative deadline; works on "
        "every platform and in worker processes)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry each failing run up to N extra times",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the sweep (default: REPRO_JOBS, else "
        "all cores); results are bit-identical to a serial run",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="per-point profiles plus cProfile stats of the slowest "
        "computed point",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="write a structured JSONL trace of every computed run "
        "(same as REPRO_TRACE=jsonl; see docs/telemetry.md)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="trace destination (default trace.jsonl; same as "
        "REPRO_TRACE_OUT=PATH; implies --trace)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect counters/gauges/phase timers into the stats "
        "telemetry section (same as REPRO_METRICS=on)",
    )
    return parser


def _prewarm(names, scale, args, policy, jobs: int) -> None:
    """Plan the figures' point lists and fan them out over the pool.

    Collects every (app, scheme, scale) point the requested figures
    will ask the result cache for, drops the already-cached ones, and
    executes the rest through :func:`repro.parallel.run_sweep`. The
    figure-render pass that follows then runs entirely from cache, so
    figure output (and failure reporting) is identical to a serial run.
    """
    points = []
    for name in names:
        fn, extra = FIGURES[name]
        kwargs = {"apps": args.apps} if args.apps else {}
        if name == "fig03z":
            kwargs["zcache"] = True
        points.extend(collect_points(fn, *extra, scale, **kwargs))
    points = pending_points(dedupe_points(points))
    if not points and not args.profile:
        return
    profile_dir = str(cache_dir() / "profiles") if args.profile else None
    journal = SweepJournal.default() if cache_enabled() else None
    report = run_sweep(points, jobs=jobs, policy=policy,
                       profile_dir=profile_dir,
                       journal=journal, resume=args.resume)
    print(report.summary().render(), file=sys.stderr)
    if args.resume and report.resumed_points:
        print(
            f"resumed: {report.resumed_points} journaled point(s) skipped",
            file=sys.stderr,
        )
    if args.profile:
        if report.profiles:
            print(render_profiles_table(report.profiles))
        print_slowest_profile(report.profiles)


def main(argv: "list[str] | None" = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "verify":
        from repro.verify.cli import main as verify_main

        return verify_main(argv[1:])
    if argv and argv[0] == "diff":
        from repro.verify.diff_cli import main as diff_main

        return diff_main(argv[1:])
    if argv and argv[0] == "soak":
        from repro.guard.soak import main as soak_main

        return soak_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.list:
        for name, (fn, extra) in FIGURES.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:15} {doc}")
        return 0
    names = list(FIGURES) if args.all else args.figures
    if not names:
        build_parser().print_usage()
        return 2
    unknown = [name for name in names if name not in FIGURES]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)} (try --list)", file=sys.stderr)
        return 2
    if args.audit:
        os.environ["REPRO_AUDIT"] = "on"
    if args.recovery:
        # Via the environment so pool workers (and cache keys) see it.
        os.environ["REPRO_RECOVERY"] = args.recovery
    if args.trace or args.trace_out:
        # setdefault keeps an explicit REPRO_TRACE=ring (etc.) in force.
        os.environ.setdefault("REPRO_TRACE", "jsonl")
    if args.trace_out:
        os.environ["REPRO_TRACE_OUT"] = args.trace_out
    if args.metrics:
        os.environ["REPRO_METRICS"] = "on"
    scale = _SCALES[args.scale]()
    policy = HarnessPolicy(
        keep_going=args.keep_going,
        timeout_s=args.timeout,
        max_retries=max(0, args.retries),
    )
    jobs = resolve_jobs(args.jobs)
    failed_figures = []
    artifact_dirs = [cache_dir()] if cache_enabled() else []
    bench_dir = os.environ.get("REPRO_BENCH_DIR", "").strip()
    if bench_dir:
        artifact_dirs.append(bench_dir)
    preflight(artifact_dirs)
    try:
        with graceful_scope(), harness(policy):
            if (jobs > 1 or args.profile or args.resume) and cache_enabled():
                _prewarm(names, scale, args, policy, jobs)
            for name in names:
                fn, extra = FIGURES[name]
                kwargs = {"apps": args.apps} if args.apps else {}
                if name == "fig03z":
                    kwargs["zcache"] = True
                seen = len(policy.failures)
                try:
                    figure = fn(*extra, scale, **kwargs)
                except Exception as err:  # noqa: BLE001 - sweep boundary
                    if not args.keep_going:
                        raise
                    failed_figures.append(name)
                    print(f"{name}: FAILED ({type(err).__name__}: {err})")
                    print()
                    continue
                figure.failures.extend(policy.failures[seen:])
                print(figure.render())
                print()
    except ShutdownRequested as shutdown:
        # Everything already computed is journaled (and cached); tell
        # the operator how to pick the sweep back up, and exit with the
        # distinct "interrupted, resumable" code.
        print(f"\nrepro: {shutdown}", file=sys.stderr)
        if cache_enabled():
            journal_path = cache_dir() / SweepJournal.FILENAME
            print(resume_hint(journal_path, argv), file=sys.stderr)
        return EXIT_INTERRUPTED
    if policy.failures or failed_figures:
        print(
            f"{len(policy.failures)} run(s) failed"
            + (f"; figures aborted: {', '.join(failed_figures)}"
               if failed_figures else ""),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (e.g. head).
        raise SystemExit(0)
