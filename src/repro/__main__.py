"""Command-line interface: regenerate the paper's figures.

Usage::

    python -m repro --list
    python -m repro fig01 fig10
    python -m repro --all --scale quick
    python -m repro fig13 --apps barnes TPC-C
    python -m repro --all --keep-going --timeout 600
    python -m repro fig10 --audit

Each figure is printed as a text table (the same output the benchmark
harness produces). Results are cached under ``.repro_cache/``.

``--audit`` enables the online protocol auditor (equivalent to setting
``REPRO_AUDIT=on``); ``--keep-going`` records per-run failures and keeps
sweeping instead of aborting on the first crash.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis import experiments
from repro.analysis.runner import HarnessPolicy, RunScale, harness

#: CLI name -> (experiment callable, positional args).
FIGURES = {
    "fig01": (experiments.fig01_sparse_sizes, ()),
    "fig02": (experiments.fig02_sharer_distribution, ()),
    "fig03": (experiments.fig03_shared_only, ()),
    "fig03z": (experiments.fig03_shared_only, ()),  # zcache handled below
    "fig04": (experiments.fig04_in_llc_performance, ()),
    "fig05": (experiments.fig05_in_llc_traffic, ()),
    "fig06": (experiments.fig06_lengthened_accesses, ()),
    "fig07": (experiments.fig07_lengthened_blocks, ()),
    "fig08": (experiments.fig08_stra_blocks, ()),
    "fig09": (experiments.fig09_stra_accesses, ()),
    "fig10": (experiments.tiny_directory_performance, (1 / 32,)),
    "fig11": (experiments.tiny_directory_performance, (1 / 64,)),
    "fig12": (experiments.tiny_directory_performance, (1 / 128,)),
    "fig13": (experiments.tiny_directory_performance, (1 / 256,)),
    "fig14": (experiments.tiny_residual_lengthened, (1 / 32,)),
    "fig15": (experiments.tiny_residual_lengthened, (1 / 256,)),
    "fig16": (experiments.tiny_structure_metric, ("hits",)),
    "fig17": (experiments.tiny_structure_metric, ("allocations",)),
    "fig18": (experiments.tiny_structure_metric, ("hits_per_alloc",)),
    "fig19": (experiments.fig19_spill_benefit, ()),
    "fig20": (experiments.fig20_miss_rate_increase, ()),
    "fig21": (experiments.fig21_energy, ()),
    "fig22": (experiments.fig22_mgd_stash, ()),
    "halved": (experiments.halved_hierarchy, ()),
    "ablation-gnru": (experiments.ablation_gnru_generation, ()),
    "ablation-delta": (experiments.ablation_spill_delta, ()),
    "ablation-stra": (experiments.ablation_stra_width, ()),
}

_SCALES = {
    "quick": RunScale.quick,
    "default": RunScale.default,
    "full": RunScale.full,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate figures of the Tiny Directory paper (HPCA 2017).",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        metavar="FIGURE",
        help="figure ids to run (see --list)",
    )
    parser.add_argument("--list", action="store_true", help="list figure ids")
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="default",
        help="simulation scale preset",
    )
    parser.add_argument(
        "--apps",
        nargs="+",
        metavar="APP",
        help="restrict to these applications (default: all seventeen)",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="run the online protocol auditor (same as REPRO_AUDIT=on)",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="collect per-run failures instead of aborting the sweep",
    )
    parser.add_argument(
        "--timeout",
        type=int,
        metavar="SECONDS",
        help="per-run wall-clock limit (requires POSIX signals)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry each failing run up to N extra times",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name, (fn, extra) in FIGURES.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:15} {doc}")
        return 0
    names = list(FIGURES) if args.all else args.figures
    if not names:
        build_parser().print_usage()
        return 2
    unknown = [name for name in names if name not in FIGURES]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)} (try --list)", file=sys.stderr)
        return 2
    if args.audit:
        os.environ["REPRO_AUDIT"] = "on"
    scale = _SCALES[args.scale]()
    policy = HarnessPolicy(
        keep_going=args.keep_going,
        timeout_s=args.timeout,
        max_retries=max(0, args.retries),
    )
    failed_figures = []
    with harness(policy):
        for name in names:
            fn, extra = FIGURES[name]
            kwargs = {"apps": args.apps} if args.apps else {}
            if name == "fig03z":
                kwargs["zcache"] = True
            seen = len(policy.failures)
            try:
                figure = fn(*extra, scale, **kwargs)
            except Exception as err:  # noqa: BLE001 - sweep boundary
                if not args.keep_going:
                    raise
                failed_figures.append(name)
                print(f"{name}: FAILED ({type(err).__name__}: {err})")
                print()
                continue
            figure.failures.extend(policy.failures[seen:])
            print(figure.render())
            print()
    if policy.failures or failed_figures:
        print(
            f"{len(policy.failures)} run(s) failed"
            + (f"; figures aborted: {', '.join(failed_figures)}"
               if failed_figures else ""),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (e.g. head).
        raise SystemExit(0)
