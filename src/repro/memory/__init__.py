"""Main-memory timing model."""

from repro.memory.dram import DramModel

__all__ = ["DramModel"]
