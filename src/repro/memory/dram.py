"""Simplified DDR3 open-page DRAM timing model.

The paper models memory with DRAMSim2 (eight single-channel DDR3-2133
controllers, 12-12-12, eight banks per rank, 1 KB rows, open-page policy,
FR-FCFS scheduling). A full cycle-accurate DRAM model is unnecessary for
reproducing the paper's results — DRAM latency is an additive term on LLC
misses that is identical across coherence-tracking schemes — so this model
keeps the pieces that shape that term:

* channel/bank address interleaving,
* per-bank open-row state (row hit vs. row conflict latency),
* a per-channel "next free" clock approximating queueing delay under the
  channel's service rate.

All latencies are expressed in 2 GHz core cycles. With tCK = 0.9375 ns and
12-12-12 timings: CAS = 11.25 ns (~23 cycles), RCD+CAS = 22.5 ns
(~45 cycles), RP+RCD+CAS = 33.75 ns (~68 cycles), plus 3.75 ns (~8 cycles)
of BL8 data transfer.
"""

from __future__ import annotations

from repro.errors import ConfigError

#: Row-buffer hit latency in core cycles (CAS + burst).
ROW_HIT_CYCLES = 31

#: Closed-row (first access after precharge) latency in core cycles.
ROW_CLOSED_CYCLES = 53

#: Row-buffer conflict latency in core cycles (precharge + activate + CAS).
ROW_CONFLICT_CYCLES = 76

#: Minimum service interval per request per channel, in core cycles.
#: A 64-byte burst occupies the DDR3-2133 data bus for ~3.75 ns.
CHANNEL_SERVICE_CYCLES = 8

#: Blocks per 1 KB DRAM row.
BLOCKS_PER_ROW = 16


class DramModel:
    """Multi-channel open-page DRAM with per-bank row-buffer tracking."""

    def __init__(self, num_channels: int = 8, banks_per_channel: int = 8) -> None:
        if num_channels <= 0 or banks_per_channel <= 0:
            raise ConfigError("DRAM channels and banks must be positive")
        self.num_channels = num_channels
        self.banks_per_channel = banks_per_channel
        self._open_row = {}
        self._channel_free_at = [0] * num_channels
        self.reads = 0
        self.writes = 0
        self.row_hits = 0

    def _map(self, block_addr: int) -> "tuple[int, int, int]":
        """Map a block address to (channel, bank, row)."""
        row_id = block_addr // BLOCKS_PER_ROW
        channel = row_id % self.num_channels
        bank = (row_id // self.num_channels) % self.banks_per_channel
        row = row_id // (self.num_channels * self.banks_per_channel)
        return channel, bank, row

    def access(self, block_addr: int, now: int, is_write: bool = False) -> int:
        """Serve one block request issued at cycle ``now``.

        Returns the access latency in core cycles, including any queueing
        delay behind earlier requests on the same channel.
        """
        channel, bank, row = self._map(block_addr)
        key = (channel, bank)
        open_row = self._open_row.get(key)
        if open_row is None:
            core_latency = ROW_CLOSED_CYCLES
        elif open_row == row:
            core_latency = ROW_HIT_CYCLES
            self.row_hits += 1
        else:
            core_latency = ROW_CONFLICT_CYCLES
        self._open_row[key] = row

        start = max(now, self._channel_free_at[channel])
        queue_delay = start - now
        self._channel_free_at[channel] = start + CHANNEL_SERVICE_CYCLES

        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        return queue_delay + core_latency

    @property
    def accesses(self) -> int:
        """Total read + write requests served."""
        return self.reads + self.writes

    def row_hit_rate(self) -> float:
        """Fraction of accesses that hit in an open row buffer."""
        if self.accesses == 0:
            return 0.0
        return self.row_hits / self.accesses
