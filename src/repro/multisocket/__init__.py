"""Inter-socket coherence tracking (the paper's §VI future direction)."""

from repro.multisocket.system import MultiSocketConfig, build_multisocket_system
from repro.multisocket.experiment import intersocket_directory_study

__all__ = [
    "MultiSocketConfig",
    "build_multisocket_system",
    "intersocket_directory_study",
]
