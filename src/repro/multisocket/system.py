"""Multi-socket coherence model.

The paper closes (§VI) by proposing the tiny directory for *inter-socket*
coherence tracking: in a multi-socket server, a socket-level coherence
directory tracks which sockets cache each memory block, and its size is a
major cost — a natural target for the same
in-memory-tracking + tiny-directory + spilling treatment.

This module models that setting by a level shift of the existing
machinery: each *socket* plays the role a core plays on-chip. A socket's
aggregate cache hierarchy becomes the "private cache" (one coherence
agent per socket — standard for inter-socket protocols, which track at
socket grain), the socket interconnect becomes the mesh (with much
longer hops), and the memory-side home agents play the LLC's role:
in-memory tracking borrows bits of the memory block (the directory-in-
memory-ECC trick used by real multi-socket systems), the tiny directory
caches the hot shared subset, and spilling writes tracking entries into
the home agent's block store.

The level shift preserves exactly what §VI speculates about — the ratio
of tracking-structure size to tracked-cache capacity, and the
2-hop/3-hop distinction (memory-direct vs socket-forwarded reads) — so
the experiment in :mod:`repro.multisocket.experiment` quantifies the
paper's claim that the tiny directory shrinks the inter-socket directory
by one to two orders of magnitude at a small performance cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.sim.config import SparseSpec, SystemConfig
from repro.sim.system import System

#: Inter-socket link latency in core cycles (~20 ns at 2 GHz, a QPI/UPI
#: class link), replacing the on-chip mesh's 3 ns hop.
INTER_SOCKET_HOP_CYCLES = 40


@dataclass
class MultiSocketConfig:
    """Configuration of a multi-socket shared-memory machine."""

    num_sockets: int = 4
    #: Per-socket cache capacity tracked by the inter-socket directory,
    #: in KB. (Scaled default; servers carry tens of MB per socket.)
    socket_cache_kb: int = 256
    socket_cache_assoc: int = 16
    #: Socket-cache hit latency in cycles.
    socket_cache_latency: int = 30
    #: Memory-side home-agent block store as a multiple of aggregate
    #: socket cache capacity (the in-memory tracking pool).
    home_capacity_factor: float = 2.0
    #: Coherence-tracking scheme for the inter-socket directory.
    scheme: object = field(default_factory=lambda: SparseSpec(ratio=2.0))

    def __post_init__(self) -> None:
        if self.num_sockets < 2 or self.num_sockets & (self.num_sockets - 1):
            raise ConfigError("num_sockets must be a power of two >= 2")

    def to_system_config(self) -> SystemConfig:
        """Lower to a :class:`SystemConfig` at socket granularity."""
        return SystemConfig(
            num_cores=self.num_sockets,
            # The "L1" models the socket's upper cache levels that filter
            # traffic before the coherence agent; keep it small.
            l1_kb=max(1, self.socket_cache_kb // 16),
            l1_latency=4,
            l2_kb=self.socket_cache_kb,
            l2_assoc=self.socket_cache_assoc,
            l2_latency=self.socket_cache_latency,
            llc_capacity_factor=self.home_capacity_factor,
            llc_tag_latency=8,
            llc_data_latency=4,
            hop_cycles=INTER_SOCKET_HOP_CYCLES,
            dram_channels=self.num_sockets,
            scheme=self.scheme,
        )


def build_multisocket_system(config: MultiSocketConfig) -> System:
    """Build the socket-granularity :class:`System` for ``config``."""
    return System(config.to_system_config())
