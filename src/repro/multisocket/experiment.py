"""The §VI experiment: tiny directories for inter-socket tracking.

Compares, for each application, the conventional 2x socket-grain sparse
directory against (a) undersized sparse directories and (b) tiny
directories with gNRU and dynamic spilling, at socket granularity.
The quantity of interest is the same trade the paper's Fig. 21 shows
on-chip: how much tracking state survives removal before performance
moves.
"""

from __future__ import annotations

from repro.analysis.experiments import Figure, _apps, _with_average
from repro.analysis.runner import RunScale, scale_from_env
from repro.multisocket.system import MultiSocketConfig, build_multisocket_system
from repro.sim.config import SparseSpec, TinySpec
from repro.sim.engine import run_trace
from repro.sim.results import RunResult
from repro.workloads.generator import generate_streams
from repro.workloads.profiles import profile


def _run(app: str, scheme, config: MultiSocketConfig, scale: RunScale) -> RunResult:
    ms_config = MultiSocketConfig(
        num_sockets=config.num_sockets,
        socket_cache_kb=config.socket_cache_kb,
        scheme=scheme,
    )
    system_config = ms_config.to_system_config()
    streams = generate_streams(
        profile(app), system_config, scale.total_accesses, seed=scale.seed
    )
    system = build_multisocket_system(ms_config)
    stats = run_trace(system, streams)
    return RunResult(app=app, scheme=getattr(scheme, "name", "?"), stats=stats)


def intersocket_directory_study(
    scale: "RunScale | None" = None,
    apps=None,
    num_sockets: int = 8,
) -> Figure:
    """Normalized time of inter-socket tracking schemes vs a 2x socket
    directory (the paper's §VI proposal, quantified)."""
    scale = scale or scale_from_env()
    # Socket-granularity runs have few agents; shorten traces to match.
    scale = RunScale(
        num_cores=num_sockets,
        total_accesses=min(scale.total_accesses, 24_000),
        seed=scale.seed,
        spill_window=scale.spill_window,
    )
    apps = _apps(apps)
    base_config = MultiSocketConfig(num_sockets=num_sockets)
    schemes = [
        (SparseSpec(ratio=1 / 8), "sparse 1/8x"),
        (SparseSpec(ratio=1 / 32), "sparse 1/32x"),
        (
            TinySpec(ratio=1 / 32, policy="gnru", spill=True,
                     spill_window=scale.spill_window),
            "tiny 1/32x",
        ),
        (
            TinySpec(ratio=1 / 128, policy="gnru", spill=True,
                     spill_window=scale.spill_window),
            "tiny 1/128x",
        ),
    ]
    values = {}
    for app in apps:
        baseline = _run(app, SparseSpec(ratio=2.0), base_config, scale)
        values[app] = [
            _run(app, scheme, base_config, scale).normalized_cycles(baseline)
            for scheme, _ in schemes
        ]
    _with_average(values, len(schemes))
    return Figure(
        "§VI multi-socket",
        f"inter-socket coherence tracking on {num_sockets} sockets, "
        "normalized to a 2x socket-grain sparse directory (the paper's "
        "proposed future direction)",
        [label for _, label in schemes],
        apps + ["Average"],
        values,
    )
