"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid or inconsistent :class:`~repro.sim.config.SystemConfig`."""


class ProtocolError(ReproError):
    """A coherence-protocol invariant was violated.

    This indicates a bug in the simulator (or a deliberately corrupted
    state in a test), never a property of the simulated workload.
    """


class TraceError(ReproError):
    """A malformed trace record or an access outside the configured system."""
