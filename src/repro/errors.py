"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid or inconsistent :class:`~repro.sim.config.SystemConfig`."""


class ProtocolError(ReproError):
    """A coherence-protocol invariant was violated.

    This indicates a bug in the simulator (or a deliberately corrupted
    state in a test), never a property of the simulated workload.
    """


class InvariantViolation(ProtocolError):
    """A protocol invariant failed, with structured diagnostic context.

    Raised by the invariant checkers and by the online
    :class:`~repro.resilience.auditor.ProtocolAuditor`. Beyond the plain
    message it carries the corrupted address, the cores involved, the
    home bank, and (when auditing is enabled) the last few transactions
    the flight recorder captured for that address.
    """

    def __init__(
        self,
        message: str,
        *,
        addr: "int | None" = None,
        cores: "tuple[int, ...] | list[int]" = (),
        bank: "int | None" = None,
        history: "tuple | list" = (),
    ) -> None:
        super().__init__(message)
        self.message = message
        self.addr = addr
        self.cores = tuple(cores)
        self.bank = bank
        self.history = tuple(history)

    def __str__(self) -> str:
        parts = [self.message]
        if self.addr is not None:
            parts.append(f"addr={self.addr:#x}")
        if self.cores:
            parts.append(f"cores={list(self.cores)}")
        if self.bank is not None:
            parts.append(f"home_bank={self.bank}")
        if self.history:
            trace = "; ".join(str(record) for record in self.history)
            parts.append(f"last_transactions=[{trace}]")
        return " | ".join(parts)


class OracleViolation(InvariantViolation):
    """The sequentially-consistent reference memory oracle disagreed.

    Raised by :class:`~repro.verify.oracle.ValueOracle` when a load
    observes a value version older than the address's last writer, or
    when a completed store leaves another core holding a copy. Unlike
    the structural invariant checks this validates the *data* the
    protocol delivers, so it catches lost invalidations at the exact
    access that reads the stale copy.
    """


class RecoveryError(ReproError):
    """A repair step could not reconstruct a consistent tracking state
    (e.g. the private caches themselves disagree about ownership)."""


class RecoveryEscalation(InvariantViolation):
    """Recovery escalated to abort.

    Raised by :class:`~repro.recovery.manager.RecoveryManager` when a
    violation cannot be repaired within the
    :class:`~repro.recovery.manager.RecoveryPolicy` bounds: the repair
    budget is exhausted, the violation carries no diagnosable address,
    the probe found contradictory ground truth, or (under
    ``repair-strict``) a previously repaired address trips again.
    The original violation is chained as ``__cause__``.
    """


class FaultInjectionError(ReproError):
    """A :class:`~repro.resilience.faults.FaultPlan` could not be applied
    (e.g. the targeted address is not currently tracked anywhere)."""


class TraceError(ReproError):
    """A malformed trace record or an access outside the configured system."""


class RunTimeoutError(ReproError):
    """A single simulation exceeded the harness per-run timeout."""


class BudgetExceeded(ReproError):
    """A run blew through a declared resource budget.

    Raised by the :mod:`repro.guard` watchdog when a sampled resource
    (wall clock, process RSS, artifact-disk bytes) crosses its
    :class:`~repro.guard.budget.RunBudget` limit. Carries the resource
    kind plus the observed and budgeted values, so a sweep report can
    say exactly *which* budget a failed point hit. Flows through the
    harness like any run failure: under ``keep_going`` it becomes a
    :class:`~repro.analysis.runner.RunFailure` record instead of a
    traceback.
    """

    def __init__(
        self,
        message: str,
        *,
        resource: str = "unknown",
        observed: "float | None" = None,
        limit: "float | None" = None,
    ) -> None:
        super().__init__(message)
        self.resource = resource
        self.observed = observed
        self.limit = limit


class ArtifactWriteError(ReproError):
    """An artifact (cache entry, journal record, trace capture) could
    not be durably written — most commonly ``ENOSPC``.

    Raised instead of a raw :class:`OSError` by the artifact writers in
    :mod:`repro.analysis.cache`, :mod:`repro.parallel.journal`, and
    :mod:`repro.workloads.capture` after cleaning up their partial
    temporary files, so a full disk degrades a run (skipped cache
    entry, disabled journaling) instead of littering ``*.tmp`` files
    and killing the sweep with an opaque traceback.
    """

    def __init__(self, message: str, *, path: "str | None" = None) -> None:
        super().__init__(message)
        self.path = path


class ShutdownRequested(BaseException):
    """The operator asked the process to stop (SIGINT/SIGTERM).

    Deliberately a :class:`BaseException` — like ``KeyboardInterrupt``
    — so the harness's ``keep_going`` machinery can never swallow an
    operator interrupt as just another failed run. Raised by the signal
    handlers :func:`repro.guard.shutdown.graceful_scope` installs; the
    sweep executor unwinds cleanly (journal already holds every
    completed point) and the CLIs exit with
    :data:`repro.guard.shutdown.EXIT_INTERRUPTED` after printing a
    ``--resume`` hint.
    """

    def __init__(self, signum: "int | None" = None) -> None:
        super().__init__(f"shutdown requested (signal {signum})")
        self.signum = signum


class WorkerCrashError(ReproError):
    """A sweep worker process died (or hung) while computing a point.

    Used by the supervised :func:`~repro.parallel.executor.run_sweep`
    to report points whose worker crashed out of every retry, so the
    failure survives round-trips through the string-serialized
    :class:`~repro.analysis.runner.RunFailure` record.
    """
