"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid or inconsistent :class:`~repro.sim.config.SystemConfig`."""


class ProtocolError(ReproError):
    """A coherence-protocol invariant was violated.

    This indicates a bug in the simulator (or a deliberately corrupted
    state in a test), never a property of the simulated workload.
    """


class InvariantViolation(ProtocolError):
    """A protocol invariant failed, with structured diagnostic context.

    Raised by the invariant checkers and by the online
    :class:`~repro.resilience.auditor.ProtocolAuditor`. Beyond the plain
    message it carries the corrupted address, the cores involved, the
    home bank, and (when auditing is enabled) the last few transactions
    the flight recorder captured for that address.
    """

    def __init__(
        self,
        message: str,
        *,
        addr: "int | None" = None,
        cores: "tuple[int, ...] | list[int]" = (),
        bank: "int | None" = None,
        history: "tuple | list" = (),
    ) -> None:
        super().__init__(message)
        self.message = message
        self.addr = addr
        self.cores = tuple(cores)
        self.bank = bank
        self.history = tuple(history)

    def __str__(self) -> str:
        parts = [self.message]
        if self.addr is not None:
            parts.append(f"addr={self.addr:#x}")
        if self.cores:
            parts.append(f"cores={list(self.cores)}")
        if self.bank is not None:
            parts.append(f"home_bank={self.bank}")
        if self.history:
            trace = "; ".join(str(record) for record in self.history)
            parts.append(f"last_transactions=[{trace}]")
        return " | ".join(parts)


class OracleViolation(InvariantViolation):
    """The sequentially-consistent reference memory oracle disagreed.

    Raised by :class:`~repro.verify.oracle.ValueOracle` when a load
    observes a value version older than the address's last writer, or
    when a completed store leaves another core holding a copy. Unlike
    the structural invariant checks this validates the *data* the
    protocol delivers, so it catches lost invalidations at the exact
    access that reads the stale copy.
    """


class RecoveryError(ReproError):
    """A repair step could not reconstruct a consistent tracking state
    (e.g. the private caches themselves disagree about ownership)."""


class RecoveryEscalation(InvariantViolation):
    """Recovery escalated to abort.

    Raised by :class:`~repro.recovery.manager.RecoveryManager` when a
    violation cannot be repaired within the
    :class:`~repro.recovery.manager.RecoveryPolicy` bounds: the repair
    budget is exhausted, the violation carries no diagnosable address,
    the probe found contradictory ground truth, or (under
    ``repair-strict``) a previously repaired address trips again.
    The original violation is chained as ``__cause__``.
    """


class FaultInjectionError(ReproError):
    """A :class:`~repro.resilience.faults.FaultPlan` could not be applied
    (e.g. the targeted address is not currently tracked anywhere)."""


class TraceError(ReproError):
    """A malformed trace record or an access outside the configured system."""


class RunTimeoutError(ReproError):
    """A single simulation exceeded the harness per-run timeout."""


class WorkerCrashError(ReproError):
    """A sweep worker process died (or hung) while computing a point.

    Used by the supervised :func:`~repro.parallel.executor.run_sweep`
    to report points whose worker crashed out of every retry, so the
    failure survives round-trips through the string-serialized
    :class:`~repro.analysis.runner.RunFailure` record.
    """
