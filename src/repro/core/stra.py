"""Shared Three-hop Read Access (STRA) ratio estimation (paper §IV-A).

The STRA ratio of a block is the fraction of its LLC read accesses that
would need forwarding to a sharer under in-LLC tracking (i.e. reads that
find the block in the shared state). It is estimated with two six-bit
saturating counters per tracked block:

* **STRAC** — incremented on LLC reads that find the block shared,
* **OAC** — incremented on every other LLC access to the block except
  writebacks.

Both counters are halved whenever either saturates, giving an exponential
moving estimate. The ratio ``STRAC / (STRAC + OAC)`` maps to categories
C0..C7: C0 is a zero ratio, Ci for i in [1, 6] covers
``(1 - 1/2^(i-1), 1 - 1/2^i]``, and C7 covers ``(1 - 1/64, 1]``.
"""

from __future__ import annotations

#: Saturation value of the six-bit STRAC/OAC counters.
STRA_COUNTER_MAX = 63

#: Number of STRA categories (C0 through C7).
NUM_CATEGORIES = 8

# Upper bounds of categories C1..C6; precomputed for the hot path.
_CATEGORY_BOUNDS = tuple(1.0 - 1.0 / (1 << i) for i in range(1, 7))


def stra_category(ratio: float) -> int:
    """Map a STRA ratio in [0, 1] to its category index 0..7."""
    if ratio <= 0.0:
        return 0
    for index, bound in enumerate(_CATEGORY_BOUNDS):
        if ratio <= bound:
            return index + 1
    return 7


class StraCounters:
    """The per-block STRAC/OAC counter pair.

    These twelve bits live with the block's tracking information: borrowed
    from the LLC data block while the block is in a corrupted state, or
    stored in the (extended) tiny-directory entry while tracked there
    (paper §IV-A). The record is transferred verbatim between the two.

    ``limit`` is the saturation value; the paper's counters are six bits
    wide (limit 63). Narrower/wider counters are an ablation knob.
    """

    __slots__ = ("strac", "oac", "limit")

    def __init__(self, strac: int = 0, oac: int = 0, limit: int = STRA_COUNTER_MAX) -> None:
        self.strac = strac
        self.oac = oac
        self.limit = limit

    def record_shared_read(self) -> None:
        """Count an LLC read that found the block in the shared state."""
        self.strac += 1
        if self.strac >= self.limit:
            self._halve()

    def record_other(self) -> None:
        """Count any other (non-writeback) LLC access to the block."""
        self.oac += 1
        if self.oac >= self.limit:
            self._halve()

    def _halve(self) -> None:
        self.strac //= 2
        self.oac //= 2

    def reset(self) -> None:
        """Clear both counters (block returned to the unowned state)."""
        self.strac = 0
        self.oac = 0

    def ratio(self) -> float:
        """The current STRA ratio estimate."""
        total = self.strac + self.oac
        if total == 0:
            return 0.0
        return self.strac / total

    def category(self) -> int:
        """The current STRA category index (0..7)."""
        return stra_category(self.ratio())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StraCounters(strac={self.strac}, oac={self.oac})"
