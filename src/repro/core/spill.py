"""The dynamic selective spill policy (paper §IV-B2).

Each LLC bank independently decides which STRA categories may spill their
coherence tracking entries into the LLC. The bank maintains a *STRA spill
threshold category index* ``i``: blocks of category ``Cj`` with ``j >= i``
may spill. Sixteen sampled sets never admit spills and estimate the
bank's no-spill miss rate; at the end of each observation window of 8K
(non-writeback) accesses the bank compares the spilling sets' miss rate
``MR_spill`` against ``MR_no_spill + delta`` and moves ``i`` down (more
spilling) when the guarantee holds, up otherwise.

The tolerance ``delta`` adapts to the application phase observed in the
previous window (miss rate >= 10%? overall STRA ratio >= 0.4?):
``delta_A = 1/4`` (high MR, high STRA), ``delta_B = 1/32`` (high MR, low
STRA), ``delta_C = 1/16`` (low MR, high STRA), ``delta_D = 1/32``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stra import NUM_CATEGORIES


@dataclass(frozen=True)
class SpillConfig:
    """Tunables of the dynamic spill policy (paper defaults)."""

    window_accesses: int = 8192
    miss_rate_threshold: float = 0.10
    stra_ratio_threshold: float = 0.4
    delta_a: float = 1 / 4
    delta_b: float = 1 / 32
    delta_c: float = 1 / 16
    delta_d: float = 1 / 32
    #: Starting threshold index. The paper does not specify the reset
    #: value; starting mid-range lets the per-bank controller adapt in
    #: either direction within a few windows.
    initial_threshold: int = 4
    #: When False, ``delta`` stays fixed at ``delta_b`` regardless of the
    #: observed phase (the fixed-delta ablation).
    adaptive_delta: bool = True


class DynamicSpillPolicy:
    """Per-bank spill admission control."""

    def __init__(self, config: "SpillConfig | None" = None) -> None:
        self.config = config or SpillConfig()
        self.threshold_index = self.config.initial_threshold
        self.delta = self.config.delta_d
        # -- window counters ---------------------------------------------
        self._accesses = 0
        self._misses = 0
        self._shared_reads = 0
        self._sample_accesses = 0
        self._sample_misses = 0
        self._spill_accesses = 0
        self._spill_misses = 0
        # -- lifetime statistics ------------------------------------------
        self.windows = 0
        self.threshold_decreases = 0
        self.threshold_increases = 0

    def allows(self, category: int) -> bool:
        """True when a block of STRA ``category`` may spill right now."""
        return category >= self.threshold_index

    def record_access(
        self,
        in_sample_set: bool,
        is_miss: bool,
        is_shared_read: bool,
    ) -> None:
        """Account one non-writeback LLC access to this bank."""
        self._accesses += 1
        if is_miss:
            self._misses += 1
        if is_shared_read:
            self._shared_reads += 1
        if in_sample_set:
            self._sample_accesses += 1
            if is_miss:
                self._sample_misses += 1
        else:
            self._spill_accesses += 1
            if is_miss:
                self._spill_misses += 1
        if self._accesses >= self.config.window_accesses:
            self._end_window()

    def _end_window(self) -> None:
        config = self.config
        mr_no_spill = (
            self._sample_misses / self._sample_accesses
            if self._sample_accesses
            else 0.0
        )
        mr_spill = (
            self._spill_misses / self._spill_accesses
            if self._spill_accesses
            else 0.0
        )
        if mr_spill <= mr_no_spill + self.delta:
            if self.threshold_index > 0:
                self.threshold_index -= 1
                self.threshold_decreases += 1
        else:
            if self.threshold_index < NUM_CATEGORIES - 1:
                self.threshold_index += 1
                self.threshold_increases += 1
        # Classify the application phase for the next window's delta.
        bank_miss_rate = self._misses / self._accesses if self._accesses else 0.0
        stra_ratio = self._shared_reads / self._accesses if self._accesses else 0.0
        if config.adaptive_delta:
            high_mr = bank_miss_rate >= config.miss_rate_threshold
            high_stra = stra_ratio >= config.stra_ratio_threshold
            if high_mr and high_stra:
                self.delta = config.delta_a
            elif high_mr:
                self.delta = config.delta_b
            elif high_stra:
                self.delta = config.delta_c
            else:
                self.delta = config.delta_d
        else:
            self.delta = config.delta_b
        self.windows += 1
        self._accesses = 0
        self._misses = 0
        self._shared_reads = 0
        self._sample_accesses = 0
        self._sample_misses = 0
        self._spill_accesses = 0
        self._spill_misses = 0
