"""The tiny directory and its selective allocation policies (paper §IV).

The tiny directory is a very small sparse directory (1/32x .. 1/256x)
that dynamically identifies and tracks the subset of blocks responsible
for most shared accesses, so their reads complete in two hops while every
other block is tracked in-LLC. Entry selection is driven by the STRA
category of the competing blocks:

* **DSTRA** — victimize the entry with the lowest STRA category in the
  target set (lowest physical way id on ties), but only when the incoming
  block's category is strictly higher.
* **DSTRA+gNRU** — additionally maintain per-entry reuse (R) and
  eviction-priority (EP) bits over generations (see
  :mod:`repro.core.gnru`); entries untouched for a whole generation get
  EP set and may also be replaced by a block of *equal* category.

Each entry is 155 bits in hardware (full-map sharer vector, the STRAC/OAC
pair, the ten-bit timestamp, R/EP, and state bits); here it is a
:class:`TinyEntry` carrying the same information.
"""

from __future__ import annotations

import enum

from repro.coherence.info import CohInfo
from repro.core.gnru import GenerationEstimator
from repro.core.stra import StraCounters
from repro.errors import ConfigError

#: Slices at or below this many entries become fully associative
#: (Table I / Section V: the 1/128x and 1/256x sizes).
FULLY_ASSOC_THRESHOLD = 16


class AllocationPolicy(enum.Enum):
    """Tiny-directory allocation/eviction policy."""

    DSTRA = "dstra"
    DSTRA_GNRU = "gnru"


class TinyEntry:
    """One tiny-directory entry."""

    __slots__ = ("addr", "coh", "stra", "r_bit", "ep_bit", "tlast")

    def __init__(self, addr: int, coh: CohInfo, stra: StraCounters) -> None:
        self.addr = addr
        self.coh = coh
        self.stra = stra
        self.r_bit = True
        self.ep_bit = False
        self.tlast = 0


class _TinySlice:
    """One per-LLC-bank slice: way-indexed sets plus gNRU state."""

    __slots__ = ("num_sets", "assoc", "sets", "estimator")

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        estimator: "GenerationEstimator | None",
    ) -> None:
        self.num_sets = num_sets
        self.assoc = assoc
        self.sets: "list[list[TinyEntry | None]]" = [
            [None] * assoc for _ in range(num_sets)
        ]
        self.estimator = estimator

    def advance(self, now: int) -> None:
        """Advance the generation clock; apply boundary work if crossed."""
        if self.estimator is None:
            return
        boundaries = self.estimator.advance(now)
        for _ in range(min(boundaries, 2)):
            self._generation_boundary()

    def _generation_boundary(self) -> None:
        for ways in self.sets:
            for entry in ways:
                if entry is None:
                    continue
                if not entry.r_bit:
                    entry.ep_bit = True
                entry.r_bit = False

    def touch(self, entry: TinyEntry) -> None:
        """Mark an entry accessed: R set, EP cleared, timestamp updated."""
        entry.r_bit = True
        entry.ep_bit = False
        if self.estimator is not None:
            entry.tlast = self.estimator.observe_access(entry.tlast)

    def find(self, set_index: int, addr: int) -> "TinyEntry | None":
        for entry in self.sets[set_index]:
            if entry is not None and entry.addr == addr:
                return entry
        return None

    def choose_victim_way(self, set_index: int, gnru: bool) -> "tuple[int, TinyEntry | None]":
        """Pick the allocation way per the DSTRA(+gNRU) rules.

        Returns ``(way, entry)``; ``entry`` is None when a free way
        exists (allocation is then unconditional).
        """
        ways = self.sets[set_index]
        for way, entry in enumerate(ways):
            if entry is None:
                return way, None
        lowest = min(entry.stra.category() for entry in ways)
        candidates = [
            way for way, entry in enumerate(ways)
            if entry.stra.category() == lowest
        ]
        if gnru:
            with_ep = [way for way in candidates if ways[way].ep_bit]
            if with_ep:
                candidates = with_ep
        way = candidates[0]
        return way, ways[way]


class TinyDirectory:
    """The banked tiny directory."""

    __slots__ = (
        "policy",
        "num_banks",
        "entries_per_slice",
        "_slices",
        "hits",
        "misses",
        "allocations",
        "evictions",
        "declined",
    )

    def __init__(
        self,
        total_entries: int,
        num_banks: int,
        policy: AllocationPolicy,
        assoc: int = 8,
        default_generation_ticks: int = 16,
        gnru_adaptive: bool = True,
    ) -> None:
        if total_entries < num_banks:
            raise ConfigError(
                f"tiny directory of {total_entries} entries cannot be split "
                f"into {num_banks} slices"
            )
        self.policy = policy
        self.num_banks = num_banks
        entries_per_slice = total_entries // num_banks
        self.entries_per_slice = entries_per_slice
        if entries_per_slice <= FULLY_ASSOC_THRESHOLD:
            num_sets, slice_assoc = 1, entries_per_slice
        else:
            slice_assoc = min(assoc, entries_per_slice)
            num_sets = max(1, entries_per_slice // slice_assoc)
        gnru = policy is AllocationPolicy.DSTRA_GNRU
        self._slices = [
            _TinySlice(
                num_sets,
                slice_assoc,
                GenerationEstimator(default_generation_ticks, gnru_adaptive)
                if gnru
                else None,
            )
            for _ in range(num_banks)
        ]
        # -- statistics (Figs. 16-18) ------------------------------------
        self.hits = 0
        self.misses = 0
        self.allocations = 0
        self.evictions = 0
        self.declined = 0

    def _locate(self, addr: int) -> "tuple[_TinySlice, int]":
        slice_ = self._slices[addr % self.num_banks]
        return slice_, (addr // self.num_banks) % slice_.num_sets

    def lookup(self, addr: int, now: int) -> "TinyEntry | None":
        """Find the entry tracking ``addr``; updates gNRU reuse state."""
        slice_, set_index = self._locate(addr)
        slice_.advance(now)
        entry = slice_.find(set_index, addr)
        if entry is None:
            self.misses += 1
            return None
        slice_.touch(entry)
        self.hits += 1
        return entry

    def try_allocate(
        self,
        addr: int,
        category: int,
        coh: CohInfo,
        stra: StraCounters,
        now: int,
    ) -> "tuple[TinyEntry | None, TinyEntry | None]":
        """Attempt to allocate an entry for ``addr`` of STRA ``category``.

        Returns ``(entry, victim)``: both None when the policy declines;
        ``victim`` carries the displaced entry's tracking state, which the
        caller must transfer to the victim block's LLC line (or spill, or
        back-invalidate).
        """
        slice_, set_index = self._locate(addr)
        slice_.advance(now)
        gnru = self.policy is AllocationPolicy.DSTRA_GNRU
        way, incumbent = slice_.choose_victim_way(set_index, gnru)
        if incumbent is not None:
            incumbent_category = incumbent.stra.category()
            allowed = incumbent_category < category or (
                gnru and incumbent_category == category and incumbent.ep_bit
            )
            if not allowed:
                self.declined += 1
                return None, None
            self.evictions += 1
        entry = TinyEntry(addr, coh, stra)
        if slice_.estimator is not None:
            entry.tlast = slice_.estimator.t
        slice_.sets[set_index][way] = entry
        self.allocations += 1
        return entry, incumbent

    def find_quiet(self, addr: int) -> "TinyEntry | None":
        """Find an entry without touching reuse state or hit counters.

        Used for eviction-notice processing, which must not refresh the
        gNRU reuse bit of a dying block.
        """
        slice_, set_index = self._locate(addr)
        return slice_.find(set_index, addr)

    def remove(self, addr: int) -> "TinyEntry | None":
        """Drop the entry for ``addr`` (block lost its last holder, or its
        state moved elsewhere)."""
        slice_, set_index = self._locate(addr)
        ways = slice_.sets[set_index]
        for way, entry in enumerate(ways):
            if entry is not None and entry.addr == addr:
                ways[way] = None
                return entry
        return None

    def occupancy(self) -> int:
        """Number of live entries."""
        return sum(
            1
            for slice_ in self._slices
            for ways in slice_.sets
            for entry in ways
            if entry is not None
        )

    def iter_entries(self):
        """Yield every live entry (for invariants and tests)."""
        for slice_ in self._slices:
            for ways in slice_.sets:
                for entry in ways:
                    if entry is not None:
                        yield entry
