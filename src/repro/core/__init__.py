"""The paper's contribution: STRA estimation, the tiny directory with its
DSTRA / DSTRA+gNRU allocation policies, and the dynamic LLC spill policy.
"""

from repro.core.stra import StraCounters, stra_category, STRA_COUNTER_MAX
from repro.core.tiny_directory import TinyDirectory, TinyEntry, AllocationPolicy
from repro.core.gnru import GenerationEstimator
from repro.core.spill import DynamicSpillPolicy, SpillConfig

__all__ = [
    "StraCounters",
    "stra_category",
    "STRA_COUNTER_MAX",
    "TinyDirectory",
    "TinyEntry",
    "AllocationPolicy",
    "GenerationEstimator",
    "DynamicSpillPolicy",
    "SpillConfig",
]
