"""Generation-length estimation for the gNRU policy (paper §IV-A2).

The DSTRA+gNRU policy divides execution into *generations*. The length of
a generation is set to the average interval between two consecutive
reuses of a tiny-directory entry, estimated per slice:

* a ten-bit counter ``T`` ticks every 4K cycles (4M-cycle range),
* each entry records the ``T`` value of its last access (``Tlast``),
* on an entry access with ``Tlast < T``, the difference is added to an
  accumulator ``A`` and a counter ``B`` is incremented,
* the generation length is ``A / B`` ticks; ``A`` and ``B`` are halved
  when either saturates, and ``T`` wraps to zero on saturation.

A generation-length countdown decrements every tick; when it reaches
zero, the slice performs its generation-boundary work (EP promotion and
R gang-clear) and reloads the countdown from the current estimate.
"""

from __future__ import annotations

#: Cycles per tick of the ``T`` counter.
TICK_CYCLES = 4096

#: Wrap-around value of the ten-bit ``T`` counter.
T_MAX = 1024

#: Saturation limits for the A (accumulated gap) and B (sample count)
#: counters; both are halved together when either saturates.
A_MAX = 1 << 20
B_MAX = 1024


class GenerationEstimator:
    """Per-slice generation clock and reuse-interval estimator."""

    def __init__(self, default_generation_ticks: int = 16, adaptive: bool = True) -> None:
        if default_generation_ticks < 1:
            default_generation_ticks = 1
        #: Bootstrap generation length used before any reuse is observed.
        self.default_generation_ticks = default_generation_ticks
        #: When False the generation length stays fixed at the default
        #: (the fixed-generation ablation; the paper's design adapts).
        self.adaptive = adaptive
        self.t = 0
        self.acc = 0  # counter A
        self.samples = 0  # counter B
        self._ticks_seen = 0
        self._gen_remaining = default_generation_ticks
        self.generations = 0

    def generation_length(self) -> int:
        """Current generation length estimate, in ticks (at least 1)."""
        if not self.adaptive or self.samples == 0:
            return self.default_generation_ticks
        return max(1, self.acc // self.samples)

    def advance(self, now: int) -> int:
        """Advance the tick clock to cycle ``now``.

        Returns the number of generation boundaries crossed since the last
        call (callers treat anything above 2 as 2 — a second boundary
        already promotes every untouched entry).
        """
        total_ticks = now // TICK_CYCLES
        elapsed = total_ticks - self._ticks_seen
        if elapsed <= 0:
            return 0
        self._ticks_seen = total_ticks
        self.t = (self.t + elapsed) % T_MAX
        boundaries = 0
        if elapsed >= self._gen_remaining:
            length = self.generation_length()
            overshoot = elapsed - self._gen_remaining
            boundaries = 1 + overshoot // length
            self._gen_remaining = length - overshoot % length
        else:
            self._gen_remaining -= elapsed
        self.generations += boundaries
        return boundaries

    def observe_access(self, tlast: int) -> int:
        """Record an entry access whose previous access stamped ``tlast``.

        Updates the reuse-interval estimate when ``tlast < T`` (the paper
        skips wrapped intervals) and returns the new stamp for the entry.
        """
        if tlast < self.t:
            self.acc += self.t - tlast
            self.samples += 1
            if self.acc >= A_MAX or self.samples >= B_MAX:
                self.acc //= 2
                self.samples //= 2
        return self.t
