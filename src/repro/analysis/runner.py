"""Single-run driver used by examples, tests, and benchmarks.

Besides :func:`run_app` (one application under one scheme), this module
hosts the hardened harness policy: :func:`run_app_guarded` wraps a run
with a per-run timeout, bounded retry, and — under ``keep_going`` — the
collection of per-app failures instead of aborting a whole figure sweep
on the first crash. Timeouts are enforced with the cooperative deadline
of :mod:`repro.sim.deadline`, so they work in any thread and inside
:mod:`repro.parallel` pool workers. See ``docs/harness.md`` and
``docs/resilience.md``.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, field

from repro.guard.budget import budget_from_env
from repro.guard.watchdog import guard_scope
from repro.recovery import recovery_from_env
from repro.resilience.auditor import ProtocolAuditor, auditor_from_env
from repro.resilience.faults import injector_from_env
from repro.sim.deadline import deadline_scope
from repro.sim.config import SystemConfig
from repro.sim.engine import run_trace
from repro.sim.results import RunResult
from repro.sim.stats import SimStats
from repro.sim.system import System
from repro.telemetry import metrics_from_env, phase, tracer_from_env
from repro.workloads.generator import generate_streams
from repro.workloads.profiles import WorkloadProfile, profile


@dataclass(frozen=True)
class RunScale:
    """How big a simulation to run.

    The paper simulates 128 cores for billions of instructions; the
    benchmark harness defaults to a proportionally scaled machine that
    preserves every capacity ratio (see DESIGN.md §1). Set the
    ``REPRO_SCALE`` environment variable to ``quick`` / ``default`` /
    ``full`` to pick a preset.
    """

    num_cores: int = 32
    total_accesses: int = 48_000
    seed: int = 1
    #: Private cache sizes. Shrunk from Table I so that working sets warm
    #: up within short traces; every capacity *ratio* (L1:L2:LLC and the
    #: directory-to-private ratios) is identical to the paper's.
    l1_kb: int = 8
    l2_kb: int = 32
    #: Spill-policy observation window, scaled with the trace length so
    #: the per-bank controllers see enough windows to adapt (the paper's
    #: 8192-access windows assume billions of simulated instructions).
    spill_window: int = 128

    @classmethod
    def quick(cls) -> "RunScale":
        """Small runs for CI-style smoke benchmarks."""
        return cls(num_cores=16, total_accesses=20_000, spill_window=96)

    @classmethod
    def default(cls) -> "RunScale":
        """The standard benchmark scale."""
        return cls()

    @classmethod
    def full(cls) -> "RunScale":
        """Closer to paper scale (slow in pure Python)."""
        return cls(
            num_cores=64,
            total_accesses=250_000,
            l1_kb=16,
            l2_kb=64,
            spill_window=512,
        )

    def tiny_spec(self, ratio: float, policy: str = "gnru", spill: bool = False):
        """A :class:`~repro.sim.config.TinySpec` with this scale's window."""
        from repro.sim.config import TinySpec

        return TinySpec(
            ratio=ratio, policy=policy, spill=spill, spill_window=self.spill_window
        )

    def make_config(self, scheme) -> "SystemConfig":
        """Build the :class:`SystemConfig` for this scale."""
        return SystemConfig(
            num_cores=self.num_cores,
            l1_kb=self.l1_kb,
            l2_kb=self.l2_kb,
            scheme=scheme,
        )


def scale_from_env() -> RunScale:
    """Resolve the run scale from ``REPRO_SCALE`` (default: ``default``)."""
    name = os.environ.get("REPRO_SCALE", "default").lower()
    if name == "quick":
        return RunScale.quick()
    if name == "full":
        return RunScale.full()
    return RunScale.default()


def run_app(
    app: "str | WorkloadProfile",
    scheme,
    scale: "RunScale | None" = None,
    config: "SystemConfig | None" = None,
) -> RunResult:
    """Simulate one application under one coherence-tracking scheme.

    Args:
        app: application name (Table II) or a custom profile.
        scheme: a scheme spec (``SparseSpec``, ``TinySpec``, ...).
        scale: run size; defaults to :func:`scale_from_env`.
        config: full config override; when given, ``scale.num_cores`` is
            ignored and only the trace length/seed are used.
    """
    scale = scale or scale_from_env()
    if isinstance(app, str):
        app = profile(app)
    if config is None:
        config = scale.make_config(scheme)
    metrics = metrics_from_env()
    tracer = tracer_from_env()
    with guard_scope(budget_from_env()) as watchdog:
        with phase(metrics, "generate"):
            streams = generate_streams(
                app, config, scale.total_accesses, seed=scale.seed
            )
        injector = injector_from_env()
        system = System(config, fault_injector=injector)
        auditor = auditor_from_env()
        recovery = recovery_from_env()
        if recovery is not None and auditor is None:
            # Recovery can only act at audit windows; turn detection on.
            auditor = ProtocolAuditor()
        try:
            with phase(metrics, "simulate"):
                stats = run_trace(
                    system,
                    streams,
                    auditor=auditor,
                    recovery=recovery,
                    tracer=tracer,
                )
        finally:
            if tracer is not None:
                if watchdog is not None:
                    for resource, observed, limit in watchdog.pressure_events:
                        tracer.emit(
                            "guard:pressure",
                            resource=resource,
                            observed=round(observed, 3),
                            limit=limit,
                        )
                tracer.close()
    if watchdog is not None:
        # Degraded-mode provenance: published only when the run came
        # under pressure, so unpressured guarded runs stay bit-identical.
        watchdog.publish(stats)
    if metrics is not None:
        _harvest_metrics(metrics, stats, scheme, tracer)
        metrics.publish(stats)
    meta = {"scheme_spec": scheme, "num_cores": config.num_cores}
    if injector is not None:
        meta["injected_faults"] = len(injector.injected)
    if recovery is not None and recovery.events:
        meta["repairs"] = recovery.repairs
    return RunResult(
        app=app.name,
        scheme=getattr(scheme, "name", type(scheme).__name__),
        stats=stats,
        meta=meta,
    )


def _harvest_metrics(metrics, stats, scheme, tracer) -> None:
    """Fold a finished run's statistics into the metrics registry.

    Transaction counters and per-scheme structure gauges come from the
    deterministic simulation state; ``trace:events`` counts what the
    tracer emitted (when one was on). The ``phase:*`` timers recorded
    around this call are the only wall-clock (nondeterministic) part of
    the snapshot.
    """
    for name in (
        "accesses",
        "reads",
        "writes",
        "llc_transactions",
        "llc_misses",
        "invalidations",
        "back_invalidations",
        "spills",
    ):
        value = getattr(stats, name)
        if value:
            metrics.count(f"txn:{name}", value)
    metrics.gauge("llc_miss_rate", stats.llc_miss_rate)
    metrics.gauge("lengthened_fraction", stats.lengthened_fraction)
    scheme_name = getattr(scheme, "name", type(scheme).__name__)
    for name, value in stats.structures.items():
        metrics.gauge(f"{scheme_name}:{name}", value)
    if tracer is not None:
        metrics.count("trace:events", tracer.emitted)


# ----------------------------------------------------------------------
# Hardened harness: keep-going, per-run timeout, bounded retry
# ----------------------------------------------------------------------

@dataclass
class RunFailure:
    """One (app, scheme) run that exhausted its attempts."""

    app: str
    scheme: str
    error: str
    attempts: int

    def __str__(self) -> str:
        return (
            f"{self.app}/{self.scheme}: {self.error} "
            f"(after {self.attempts} attempt{'s' if self.attempts != 1 else ''})"
        )


@dataclass
class HarnessPolicy:
    """How :func:`run_app_guarded` reacts to failing runs.

    With the default policy a failing run raises immediately — exactly
    the pre-hardening behaviour. Under ``keep_going`` the failure is
    recorded in :attr:`failures` and a placeholder result (empty stats,
    ``meta["failed"]``) is returned so a sweep can finish and report all
    broken (app, scheme) cells at once.
    """

    keep_going: bool = False
    #: Per-attempt wall-clock limit in seconds (None = unlimited). The
    #: limit is a cooperative deadline checked inside the trace engine
    #: and the stream generator (see :mod:`repro.sim.deadline`), so it
    #: works on every platform, in any thread, and in pool workers.
    timeout_s: "float | None" = None
    #: Additional attempts after the first failure.
    max_retries: int = 0
    failures: "list[RunFailure]" = field(default_factory=list)


#: Policy consulted by :func:`run_app_guarded`; swapped via :func:`harness`.
_POLICY = HarnessPolicy()


@contextlib.contextmanager
def harness(policy: HarnessPolicy):
    """Install ``policy`` as the active harness policy for a ``with`` body."""
    global _POLICY
    previous = _POLICY
    _POLICY = policy
    try:
        yield policy
    finally:
        _POLICY = previous


def active_policy() -> HarnessPolicy:
    """The harness policy currently in force."""
    return _POLICY


def run_app_guarded(
    app: "str | WorkloadProfile",
    scheme,
    scale: "RunScale | None" = None,
    config: "SystemConfig | None" = None,
    policy: "HarnessPolicy | None" = None,
) -> RunResult:
    """:func:`run_app` under the active :class:`HarnessPolicy`.

    Retries up to ``policy.max_retries`` extra times; each attempt is
    bounded by ``policy.timeout_s`` (a cooperative wall-clock deadline
    raising :class:`~repro.errors.RunTimeoutError`). When every attempt
    fails: under ``keep_going`` the failure is appended to
    ``policy.failures`` and a placeholder :class:`RunResult` is
    returned, otherwise the last error propagates.
    """
    policy = policy if policy is not None else _POLICY
    app_name = app if isinstance(app, str) else app.name
    scheme_name = getattr(scheme, "name", type(scheme).__name__)
    attempts = 1 + max(0, policy.max_retries)
    last_error: "BaseException | None" = None
    for _attempt in range(attempts):
        try:
            with deadline_scope(policy.timeout_s):
                return run_app(app, scheme, scale, config)
        except KeyboardInterrupt:
            raise
        except Exception as err:  # noqa: BLE001 - harness boundary
            last_error = err
    assert last_error is not None
    if not policy.keep_going:
        raise last_error
    policy.failures.append(
        RunFailure(
            app=app_name,
            scheme=scheme_name,
            error=f"{type(last_error).__name__}: {last_error}",
            attempts=attempts,
        )
    )
    return RunResult(
        app=app_name,
        scheme=scheme_name,
        stats=SimStats(),
        meta={"failed": True, "error": str(last_error)},
    )
