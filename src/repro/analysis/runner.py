"""Single-run driver used by examples, tests, and benchmarks."""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.sim.config import SystemConfig
from repro.sim.engine import run_trace
from repro.sim.results import RunResult
from repro.sim.system import System
from repro.workloads.generator import generate_streams
from repro.workloads.profiles import WorkloadProfile, profile


@dataclass(frozen=True)
class RunScale:
    """How big a simulation to run.

    The paper simulates 128 cores for billions of instructions; the
    benchmark harness defaults to a proportionally scaled machine that
    preserves every capacity ratio (see DESIGN.md §1). Set the
    ``REPRO_SCALE`` environment variable to ``quick`` / ``default`` /
    ``full`` to pick a preset.
    """

    num_cores: int = 32
    total_accesses: int = 48_000
    seed: int = 1
    #: Private cache sizes. Shrunk from Table I so that working sets warm
    #: up within short traces; every capacity *ratio* (L1:L2:LLC and the
    #: directory-to-private ratios) is identical to the paper's.
    l1_kb: int = 8
    l2_kb: int = 32
    #: Spill-policy observation window, scaled with the trace length so
    #: the per-bank controllers see enough windows to adapt (the paper's
    #: 8192-access windows assume billions of simulated instructions).
    spill_window: int = 128

    @classmethod
    def quick(cls) -> "RunScale":
        """Small runs for CI-style smoke benchmarks."""
        return cls(num_cores=16, total_accesses=20_000, spill_window=96)

    @classmethod
    def default(cls) -> "RunScale":
        """The standard benchmark scale."""
        return cls()

    @classmethod
    def full(cls) -> "RunScale":
        """Closer to paper scale (slow in pure Python)."""
        return cls(
            num_cores=64,
            total_accesses=250_000,
            l1_kb=16,
            l2_kb=64,
            spill_window=512,
        )

    def tiny_spec(self, ratio: float, policy: str = "gnru", spill: bool = False):
        """A :class:`~repro.sim.config.TinySpec` with this scale's window."""
        from repro.sim.config import TinySpec

        return TinySpec(
            ratio=ratio, policy=policy, spill=spill, spill_window=self.spill_window
        )

    def make_config(self, scheme) -> "SystemConfig":
        """Build the :class:`SystemConfig` for this scale."""
        return SystemConfig(
            num_cores=self.num_cores,
            l1_kb=self.l1_kb,
            l2_kb=self.l2_kb,
            scheme=scheme,
        )


def scale_from_env() -> RunScale:
    """Resolve the run scale from ``REPRO_SCALE`` (default: ``default``)."""
    name = os.environ.get("REPRO_SCALE", "default").lower()
    if name == "quick":
        return RunScale.quick()
    if name == "full":
        return RunScale.full()
    return RunScale.default()


def run_app(
    app: "str | WorkloadProfile",
    scheme,
    scale: "RunScale | None" = None,
    config: "SystemConfig | None" = None,
) -> RunResult:
    """Simulate one application under one coherence-tracking scheme.

    Args:
        app: application name (Table II) or a custom profile.
        scheme: a scheme spec (``SparseSpec``, ``TinySpec``, ...).
        scale: run size; defaults to :func:`scale_from_env`.
        config: full config override; when given, ``scale.num_cores`` is
            ignored and only the trace length/seed are used.
    """
    scale = scale or scale_from_env()
    if isinstance(app, str):
        app = profile(app)
    if config is None:
        config = scale.make_config(scheme)
    streams = generate_streams(app, config, scale.total_accesses, seed=scale.seed)
    system = System(config)
    stats = run_trace(system, streams)
    return RunResult(
        app=app.name,
        scheme=getattr(scheme, "name", type(scheme).__name__),
        stats=stats,
        meta={"scheme_spec": scheme, "num_cores": config.num_cores},
    )
