"""Plain-text table formatting for experiment output.

The benchmark harness prints each figure as a table whose rows are the
paper's applications and whose columns are the figure's series, so the
reproduction can be compared against the paper by eye (EXPERIMENTS.md
records that comparison).
"""

from __future__ import annotations


def format_table(
    title: str,
    rows: "list[str]",
    columns: "list[str]",
    values: "dict[str, list[float]]",
    fmt: str = "{:.3f}",
    row_header: str = "application",
) -> str:
    """Render a figure's data as an aligned text table.

    Args:
        title: table caption (figure id + description).
        rows: row labels, usually application names.
        columns: series labels.
        values: row label -> list of per-column values.
        fmt: format spec applied to each value.
    """
    header = [row_header] + columns
    body = []
    for row in rows:
        cells = [row]
        for value in values[row]:
            cells.append(fmt.format(value) if value is not None else "-")
        body.append(cells)
    widths = [
        max(len(line[i]) for line in [header] + body)
        for i in range(len(header))
    ]
    divider = "-+-".join("-" * w for w in widths)

    def render(cells: "list[str]") -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = [title, render(header), divider]
    lines.extend(render(cells) for cells in body)
    return "\n".join(lines)


def geomean(values: "list[float]") -> float:
    """Geometric mean (the paper's 'Average' bars for normalized times)."""
    cleaned = [v for v in values if v > 0]
    if not cleaned:
        return 0.0
    product = 1.0
    for value in cleaned:
        product *= value
    return product ** (1.0 / len(cleaned))


def mean(values: "list[float]") -> float:
    """Arithmetic mean (used for percentage-style figures)."""
    if not values:
        return 0.0
    return sum(values) / len(values)
