"""Experiment harness: per-figure runners and text-table reporting."""

from repro.analysis.cache import cached_run
from repro.analysis.runner import RunScale, run_app, scale_from_env
from repro.analysis.tables import format_table, geomean, mean
from repro.analysis import experiments

__all__ = [
    "RunScale",
    "cached_run",
    "experiments",
    "format_table",
    "geomean",
    "mean",
    "run_app",
    "scale_from_env",
]
