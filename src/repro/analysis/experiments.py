"""One experiment per paper table/figure.

Each ``fig*`` function runs the required (application x scheme) grid —
through the disk cache — and returns a :class:`Figure` whose rows/columns
mirror the series the paper plots. ``Figure.render()`` produces the text
table the benchmark harness prints; EXPERIMENTS.md records the
paper-vs-measured comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cache import cached_run
from repro.analysis.runner import RunScale, scale_from_env
from repro.analysis.tables import format_table, geomean, mean
from repro.energy.model import EnergyModel, directory_kilobytes
from repro.sim.config import InLLCSpec, MgdSpec, SparseSpec, StashSpec
from repro.workloads.profiles import APPLICATIONS


@dataclass
class Figure:
    """One reproduced table/figure."""

    figure_id: str
    title: str
    columns: "list[str]"
    rows: "list[str]"
    values: "dict[str, list[float]]"
    fmt: str = "{:.3f}"
    notes: str = ""
    raw: dict = field(default_factory=dict)
    #: Per-run failures collected under a ``keep_going`` harness policy
    #: (:class:`repro.analysis.runner.RunFailure`); rendered as a footer.
    failures: list = field(default_factory=list)

    def render(self) -> str:
        """The text table for this figure."""
        table = format_table(
            f"{self.figure_id}: {self.title}",
            self.rows,
            self.columns,
            self.values,
            fmt=self.fmt,
        )
        if self.notes:
            table += f"\n  note: {self.notes}"
        for failure in self.failures:
            table += f"\n  FAILED {failure}"
        return table

    def column(self, name: str) -> "list[float]":
        """Values of one column over the application rows."""
        index = self.columns.index(name)
        return [self.values[row][index] for row in self.rows if row != "Average"]

    def average(self, name: str) -> float:
        """The Average-row value of one column."""
        index = self.columns.index(name)
        return self.values["Average"][index]


def _with_average(values: "dict[str, list[float]]", columns: int, agg=geomean) -> None:
    values["Average"] = [
        agg([values[app][i] for app in values]) for i in range(columns)
    ]


def _apps(apps) -> "list[str]":
    return list(apps) if apps is not None else list(APPLICATIONS)


def _baseline(app: str, scale: RunScale):
    return cached_run(app, SparseSpec(ratio=2.0), scale)


# ----------------------------------------------------------------------
# Motivation figures
# ----------------------------------------------------------------------

def fig01_sparse_sizes(scale: "RunScale | None" = None, apps=None) -> Figure:
    """Fig. 1: baseline sparse directory sizes vs the 2x directory."""
    scale = scale or scale_from_env()
    apps = _apps(apps)
    ratios = [(1 / 4, "1/4x"), (1 / 8, "1/8x"), (1 / 16, "1/16x")]
    values = {}
    for app in apps:
        base = _baseline(app, scale)
        values[app] = [
            cached_run(app, SparseSpec(ratio=ratio), scale).normalized_cycles(base)
            for ratio, _ in ratios
        ]
    _with_average(values, len(ratios))
    return Figure(
        "Fig. 1",
        "normalized execution time of undersized sparse directories "
        "(paper avg: 1.03 / 1.11 / 1.28)",
        [label for _, label in ratios],
        apps + ["Average"],
        values,
    )


def fig02_sharer_distribution(scale: "RunScale | None" = None, apps=None) -> Figure:
    """Fig. 2: max-sharer-count distribution of allocated LLC blocks."""
    scale = scale or scale_from_env()
    apps = _apps(apps)
    columns = ["[2,4]%", "[5,8]%", "[9,16]%", "[17,C]%", "shared%"]
    values = {}
    for app in apps:
        stats = _baseline(app, scale).stats
        total = max(1, stats.blocks_allocated)
        bins = [100.0 * count / total for count in stats.sharer_bins[1:]]
        values[app] = bins + [100.0 * stats.shared_block_fraction]
    _with_average(values, len(columns), agg=mean)
    return Figure(
        "Fig. 2",
        "percentage of allocated LLC blocks by maximum sharer count "
        "(paper avg shared: 21%)",
        columns,
        apps + ["Average"],
        values,
        fmt="{:.1f}",
    )


def fig03_shared_only(
    scale: "RunScale | None" = None, apps=None, zcache: bool = False
) -> Figure:
    """Fig. 3: directories dedicated to shared blocks only."""
    scale = scale or scale_from_env()
    apps = _apps(apps)
    ratios = [(1 / 16, "1/16x"), (1 / 32, "1/32x"), (1 / 64, "1/64x"), (1 / 128, "1/128x")]
    values = {}
    for app in apps:
        base = _baseline(app, scale)
        values[app] = [
            cached_run(
                app, SparseSpec(ratio=ratio, shared_only=True, zcache=zcache), scale
            ).normalized_cycles(base)
            for ratio, _ in ratios
        ]
    _with_average(values, len(ratios))
    kind = "skew-associative (Z-cache)" if zcache else "set-associative"
    return Figure(
        "Fig. 3",
        f"shared-only {kind} directories vs 2x "
        "(paper avg set-assoc: 1.01 / 1.04 / 1.13 / 1.28)",
        [label for _, label in ratios],
        apps + ["Average"],
        values,
    )


# ----------------------------------------------------------------------
# In-LLC tracking (Section III)
# ----------------------------------------------------------------------

def fig04_in_llc_performance(scale: "RunScale | None" = None, apps=None) -> Figure:
    """Fig. 4: in-LLC coherence tracking, both variants, vs 2x."""
    scale = scale or scale_from_env()
    apps = _apps(apps)
    values = {}
    for app in apps:
        base = _baseline(app, scale)
        tag = cached_run(app, InLLCSpec(tag_extended=True), scale)
        borrow = cached_run(app, InLLCSpec(tag_extended=False), scale)
        values[app] = [tag.normalized_cycles(base), borrow.normalized_cycles(base)]
    _with_average(values, 2)
    return Figure(
        "Fig. 4",
        "in-LLC tracking vs 2x sparse (paper avg: ~1.00 tag-extended, "
        "1.11 data-bits-borrowed)",
        ["tag-extended", "data-borrowed"],
        apps + ["Average"],
        values,
    )


def fig05_in_llc_traffic(scale: "RunScale | None" = None, apps=None) -> Figure:
    """Fig. 5: interconnect traffic split, in-LLC normalized to 2x."""
    scale = scale or scale_from_env()
    apps = _apps(apps)
    columns = ["processor", "writeback", "coherence", "total"]
    values = {}
    for app in apps:
        base = _baseline(app, scale).stats.traffic
        inllc = cached_run(app, InLLCSpec(), scale).stats.traffic
        row = []
        for key in ("processor", "writeback", "coherence"):
            base_bytes = base.as_dict()[key]
            row.append(inllc.as_dict()[key] / base_bytes if base_bytes else 0.0)
        row.append(
            inllc.total_bytes / base.total_bytes if base.total_bytes else 0.0
        )
        values[app] = row
    _with_average(values, len(columns), agg=mean)
    return Figure(
        "Fig. 5",
        "in-LLC interconnect traffic normalized to 2x by message class "
        "(paper: +1% processor/writeback, +5% coherence)",
        columns,
        apps + ["Average"],
        values,
    )


def fig06_lengthened_accesses(scale: "RunScale | None" = None, apps=None) -> Figure:
    """Fig. 6: % LLC accesses with lengthened critical path (in-LLC)."""
    scale = scale or scale_from_env()
    apps = _apps(apps)
    values = {}
    for app in apps:
        stats = cached_run(app, InLLCSpec(), scale).stats
        total = max(1, stats.llc_transactions)
        values[app] = [
            100.0 * stats.lengthened_data / total,
            100.0 * stats.lengthened_code / total,
            100.0 * stats.lengthened / total,
        ]
    _with_average(values, 3, agg=mean)
    return Figure(
        "Fig. 6",
        "% of LLC accesses suffering a 3-hop critical path under in-LLC "
        "tracking (paper avg: 30%; code dominates commercial apps)",
        ["data%", "code%", "total%"],
        apps + ["Average"],
        values,
        fmt="{:.1f}",
    )


def fig07_lengthened_blocks(scale: "RunScale | None" = None, apps=None) -> Figure:
    """Fig. 7: % allocated LLC blocks with lengthened accesses."""
    scale = scale or scale_from_env()
    apps = _apps(apps)
    values = {}
    for app in apps:
        stats = cached_run(app, InLLCSpec(), scale).stats
        values[app] = [100.0 * stats.lengthened_block_fraction]
    _with_average(values, 1, agg=mean)
    return Figure(
        "Fig. 7",
        "% of allocated LLC blocks experiencing lengthened accesses "
        "(paper avg: 8%; barnes: 78%)",
        ["blocks%"],
        apps + ["Average"],
        values,
        fmt="{:.1f}",
    )


def _stra_distribution(scale, apps, access_weighted: bool) -> Figure:
    scale = scale or scale_from_env()
    apps = _apps(apps)
    columns = [f"C{i}%" for i in range(1, 8)]
    values = {}
    for app in apps:
        stats = cached_run(app, InLLCSpec(), scale).stats
        counts = (
            stats.stra_access_categories
            if access_weighted
            else stats.stra_block_categories
        )
        total = max(1, sum(counts[1:]))
        values[app] = [100.0 * counts[i] / total for i in range(1, 8)]
    _with_average(values, len(columns), agg=mean)
    which = "offending LLC accesses" if access_weighted else "allocated LLC blocks"
    fig_id = "Fig. 9" if access_weighted else "Fig. 8"
    note = (
        "paper: C6+C7 cover 54% of offending accesses"
        if access_weighted
        else "paper: C6+C7 cover 12% of non-zero-STRA blocks"
    )
    return Figure(
        fig_id,
        f"distribution of {which} over STRA categories ({note})",
        columns,
        apps + ["Average"],
        values,
        fmt="{:.1f}",
    )


def fig08_stra_blocks(scale: "RunScale | None" = None, apps=None) -> Figure:
    """Fig. 8: STRA-category distribution of non-zero-STRA blocks."""
    return _stra_distribution(scale, apps, access_weighted=False)


def fig09_stra_accesses(scale: "RunScale | None" = None, apps=None) -> Figure:
    """Fig. 9: STRA-category distribution of offending accesses."""
    return _stra_distribution(scale, apps, access_weighted=True)


# ----------------------------------------------------------------------
# Tiny directory results (Section V)
# ----------------------------------------------------------------------

_TINY_SIZE_LABELS = {
    1 / 32: "1/32x",
    1 / 64: "1/64x",
    1 / 128: "1/128x",
    1 / 256: "1/256x",
}

_TINY_FIG_IDS = {
    1 / 32: "Fig. 10",
    1 / 64: "Fig. 11",
    1 / 128: "Fig. 12",
    1 / 256: "Fig. 13",
}

_TINY_PAPER_AVGS = {
    1 / 32: "1.01 / 1.01 / 1.005",
    1 / 64: "1.03 / 1.02 / 1.01",
    1 / 128: "1.06 / 1.05 / 1.01",
    1 / 256: "1.08 / 1.06 / 1.01",
}


def tiny_directory_performance(
    ratio: float, scale: "RunScale | None" = None, apps=None
) -> Figure:
    """Figs. 10-13: tiny directory at ``ratio`` under the three policies."""
    scale = scale or scale_from_env()
    apps = _apps(apps)
    columns = ["DSTRA", "DSTRA+gNRU", "+DynSpill"]
    values = {}
    for app in apps:
        base = _baseline(app, scale)
        values[app] = [
            cached_run(app, scale.tiny_spec(ratio, "dstra"), scale).normalized_cycles(base),
            cached_run(app, scale.tiny_spec(ratio, "gnru"), scale).normalized_cycles(base),
            cached_run(
                app, scale.tiny_spec(ratio, "gnru", spill=True), scale
            ).normalized_cycles(base),
        ]
    _with_average(values, len(columns))
    label = _TINY_SIZE_LABELS[ratio]
    return Figure(
        _TINY_FIG_IDS[ratio],
        f"tiny directory {label} vs 2x sparse "
        f"(paper avg: {_TINY_PAPER_AVGS[ratio]})",
        columns,
        apps + ["Average"],
        values,
    )


def tiny_residual_lengthened(
    ratio: float, scale: "RunScale | None" = None, apps=None
) -> Figure:
    """Figs. 14-15: % lengthened LLC accesses remaining under tiny dir."""
    scale = scale or scale_from_env()
    apps = _apps(apps)
    columns = ["DSTRA", "DSTRA+gNRU", "+DynSpill"]
    values = {}
    for app in apps:
        row = []
        for policy, spill in (("dstra", False), ("gnru", False), ("gnru", True)):
            stats = cached_run(app, scale.tiny_spec(ratio, policy, spill), scale).stats
            row.append(100.0 * stats.lengthened_fraction)
        values[app] = row
    _with_average(values, len(columns), agg=mean)
    label = _TINY_SIZE_LABELS[ratio]
    fig_id = "Fig. 14" if ratio == 1 / 32 else "Fig. 15"
    paper = "3% / 2% / <1%" if ratio == 1 / 32 else "23% / 20% / 4%"
    return Figure(
        fig_id,
        f"% LLC accesses still lengthened with a {label} tiny directory "
        f"(paper avg: {paper})",
        columns,
        apps + ["Average"],
        values,
        fmt="{:.1f}",
    )


def tiny_structure_metric(
    metric: str, scale: "RunScale | None" = None, apps=None
) -> Figure:
    """Figs. 16-18: tiny-directory hits/allocations/hits-per-allocation.

    ``metric`` is ``"hits"``, ``"allocations"``, or ``"hits_per_alloc"``.
    Hits and allocations are reported as gNRU normalized to DSTRA; hits
    per allocation as the absolute gNRU number.
    """
    scale = scale or scale_from_env()
    apps = _apps(apps)
    ratios = [1 / 256, 1 / 128, 1 / 64, 1 / 32]
    columns = [_TINY_SIZE_LABELS[r] for r in ratios]
    values = {}
    for app in apps:
        row = []
        for ratio in ratios:
            gnru = cached_run(app, scale.tiny_spec(ratio, "gnru"), scale).stats
            if metric == "hits_per_alloc":
                allocs = max(1, gnru.structures.get("tiny_allocations", 0))
                row.append(gnru.structures.get("tiny_hits", 0) / allocs)
                continue
            dstra = cached_run(app, scale.tiny_spec(ratio, "dstra"), scale).stats
            key = f"tiny_{metric}"
            denom = max(1, dstra.structures.get(key, 0))
            row.append(gnru.structures.get(key, 0) / denom)
        values[app] = row
    _with_average(values, len(columns), agg=mean)
    titles = {
        "hits": ("Fig. 16", "tiny-directory hits, gNRU normalized to DSTRA "
                 "(paper avg: 1.39 / 1.23 / 1.12 / 1.03)"),
        "allocations": ("Fig. 17", "tiny-directory allocations, gNRU normalized "
                        "to DSTRA (paper avg: 74x / 50x / 7x / 2x)"),
        "hits_per_alloc": ("Fig. 18", "hits per tiny-directory allocation under "
                           "gNRU (paper avg: 17.5 / 16.6 / 46.1 / 59.5)"),
    }
    fig_id, title = titles[metric]
    return Figure(fig_id, title, columns, apps + ["Average"], values, fmt="{:.2f}")


def fig19_spill_benefit(scale: "RunScale | None" = None, apps=None) -> Figure:
    """Fig. 19: % LLC accesses saved from lengthening by spilled entries."""
    scale = scale or scale_from_env()
    apps = _apps(apps)
    ratios = [1 / 256, 1 / 128, 1 / 64, 1 / 32]
    columns = [_TINY_SIZE_LABELS[r] for r in ratios]
    values = {}
    for app in apps:
        values[app] = [
            100.0
            * cached_run(
                app, scale.tiny_spec(ratio, "gnru", spill=True), scale
            ).stats.spill_saved_fraction
            for ratio in ratios
        ]
    _with_average(values, len(columns), agg=mean)
    return Figure(
        "Fig. 19",
        "% of LLC accesses avoiding a lengthened path thanks to spilled "
        "entries (paper avg: 16 / 11 / 5 / 2)",
        columns,
        apps + ["Average"],
        values,
        fmt="{:.1f}",
    )


def fig20_miss_rate_increase(scale: "RunScale | None" = None, apps=None) -> Figure:
    """Fig. 20: LLC miss-rate increase due to spilling vs the 2x baseline."""
    scale = scale or scale_from_env()
    apps = _apps(apps)
    ratios = [1 / 256, 1 / 128, 1 / 64, 1 / 32]
    columns = [_TINY_SIZE_LABELS[r] for r in ratios]
    values = {}
    for app in apps:
        base = _baseline(app, scale).stats.llc_miss_rate
        values[app] = [
            100.0
            * (
                cached_run(
                    app, scale.tiny_spec(ratio, "gnru", spill=True), scale
                ).stats.llc_miss_rate
                - base
            )
            for ratio in ratios
        ]
    _with_average(values, len(columns), agg=mean)
    return Figure(
        "Fig. 20",
        "LLC miss-rate increase (percentage points) with DynSpill vs 2x "
        "(paper: avg < 0.5pp, max 2.1pp)",
        columns,
        apps + ["Average"],
        values,
        fmt="{:+.2f}",
    )


# ----------------------------------------------------------------------
# Energy (Fig. 21) and related proposals (Fig. 22)
# ----------------------------------------------------------------------

def fig21_energy(scale: "RunScale | None" = None, apps=None) -> Figure:
    """Fig. 21: execution cycles and LLC+directory energy across sizes.

    Activity counts come from the scaled runs; structure capacities are
    taken at the paper's 128-core geometry (a full-map directory entry is
    ~160 bits wide there, which is what makes the 2x directory's 10 MB
    leakage worth eliminating — a scaled 16/32-core directory would
    understate that effect).
    """
    from repro.sim.config import SystemConfig

    scale = scale or scale_from_env()
    apps = _apps(apps)
    model = EnergyModel()
    paper_config = SystemConfig.paper()
    sparse_sizes = [(2.0, "2x"), (1.0, "1x"), (0.5, "1/2x"), (0.25, "1/4x"),
                    (1 / 8, "1/8x"), (1 / 16, "1/16x")]
    tiny_sizes = [(1 / 128, "Tiny 1/128x"), (1 / 256, "Tiny 1/256x")]

    def totals(scheme, tiny):
        cycles = 0.0
        dynamic = 0.0
        leakage = 0.0
        for app in apps:
            result = cached_run(app, scheme, scale)
            ratio = scheme.ratio
            kb = directory_kilobytes(paper_config, ratio, tiny=tiny)
            energy = model.system_energy(paper_config, result.stats, kb, tiny=tiny)
            cycles += result.cycles
            dynamic += energy.dynamic
            leakage += energy.leakage
        return cycles, dynamic, leakage

    rows = []
    raw = {}
    for ratio, label in sparse_sizes:
        rows.append(label)
        raw[label] = totals(SparseSpec(ratio=ratio), tiny=False)
    for ratio, label in tiny_sizes:
        rows.append(label)
        raw[label] = totals(scale.tiny_spec(ratio, "gnru", spill=True), tiny=True)

    ref = raw["Tiny 1/256x"]
    values = {
        label: [
            raw[label][0] / ref[0],
            raw[label][1] / ref[1],
            raw[label][2] / ref[2],
            (raw[label][1] + raw[label][2]) / (ref[1] + ref[2]),
        ]
        for label in rows
    }
    return Figure(
        "Fig. 21",
        "cycles and LLC+directory energy normalized to the 1/256x tiny "
        "directory (paper: tiny saves 16-17% total energy vs 2x)",
        ["cycles", "dynamic", "leakage", "total"],
        rows,
        values,
        raw={"totals": raw},
    )


def fig22_mgd_stash(scale: "RunScale | None" = None, apps=None) -> Figure:
    """Fig. 22: multi-grain and Stash directories vs the 2x baseline."""
    scale = scale or scale_from_env()
    apps = _apps(apps)
    specs = [
        (MgdSpec(ratio=1 / 8), "MgD 1/8x"),
        (MgdSpec(ratio=1 / 16), "MgD 1/16x"),
        (MgdSpec(ratio=1 / 32), "MgD 1/32x"),
        (MgdSpec(ratio=1 / 64), "MgD 1/64x"),
        (StashSpec(ratio=1 / 32), "Stash 1/32x"),
    ]
    values = {}
    for app in apps:
        base = _baseline(app, scale)
        values[app] = [
            cached_run(app, spec, scale).normalized_cycles(base)
            for spec, _ in specs
        ]
    _with_average(values, len(specs))
    return Figure(
        "Fig. 22",
        "MgD and Stash directories vs 2x sparse (paper avg: 1.001 / 1.08 "
        "/ 1.29 / 1.63 MgD; 1.41 Stash)",
        [label for _, label in specs],
        apps + ["Average"],
        values,
    )


# ----------------------------------------------------------------------
# Ablations of design choices (DESIGN.md §5)
# ----------------------------------------------------------------------

def ablation_gnru_generation(
    scale: "RunScale | None" = None, apps=None, ratio: float = 1 / 128
) -> Figure:
    """Adaptive generation length (paper) vs fixed lengths, gNRU policy."""
    from repro.sim.config import TinySpec

    scale = scale or scale_from_env()
    apps = _apps(apps)
    variants = [
        (TinySpec(ratio=ratio, policy="gnru", spill_window=scale.spill_window), "adaptive"),
        (TinySpec(ratio=ratio, policy="gnru", gnru_adaptive=False,
                  gnru_default_generation=4, spill_window=scale.spill_window), "fixed-16K"),
        (TinySpec(ratio=ratio, policy="gnru", gnru_adaptive=False,
                  gnru_default_generation=64, spill_window=scale.spill_window), "fixed-256K"),
    ]
    values = {}
    for app in apps:
        base = _baseline(app, scale)
        values[app] = [
            cached_run(app, spec, scale).normalized_cycles(base)
            for spec, _ in variants
        ]
    _with_average(values, len(variants))
    return Figure(
        "Ablation A1",
        f"gNRU generation length at {_TINY_SIZE_LABELS[ratio]}: adaptive "
        "(paper) vs fixed (cycles normalized to 2x)",
        [label for _, label in variants],
        apps + ["Average"],
        values,
    )


def ablation_spill_delta(
    scale: "RunScale | None" = None, apps=None, ratio: float = 1 / 256
) -> Figure:
    """Adaptive delta classes A-D (paper) vs a fixed delta, with spilling."""
    from repro.sim.config import TinySpec

    scale = scale or scale_from_env()
    apps = _apps(apps)
    variants = [
        (scale.tiny_spec(ratio, "gnru", spill=True), "adaptive-delta"),
        (TinySpec(ratio=ratio, policy="gnru", spill=True,
                  spill_window=scale.spill_window,
                  spill_adaptive_delta=False), "fixed-delta"),
    ]
    columns = ["adaptive cyc", "fixed cyc", "adaptive dMR", "fixed dMR"]
    values = {}
    for app in apps:
        base = _baseline(app, scale)
        row = []
        deltas = []
        for spec, _ in variants:
            result = cached_run(app, spec, scale)
            row.append(result.normalized_cycles(base))
            deltas.append(
                100.0 * (result.stats.llc_miss_rate - base.stats.llc_miss_rate)
            )
        values[app] = row + deltas
    _with_average(values, len(columns), agg=mean)
    return Figure(
        "Ablation A2",
        f"spill delta adaptation at {_TINY_SIZE_LABELS[ratio]}: adaptive "
        "classes A-D vs fixed delta_B (normalized cycles and miss-rate "
        "change in pp)",
        columns,
        apps + ["Average"],
        values,
    )


def ablation_stra_width(
    scale: "RunScale | None" = None, apps=None, ratio: float = 1 / 128
) -> Figure:
    """STRA counter width: 4/6/8 bits (the paper uses 6)."""
    from repro.sim.config import TinySpec

    scale = scale or scale_from_env()
    apps = _apps(apps)
    widths = [4, 6, 8]
    values = {}
    for app in apps:
        base = _baseline(app, scale)
        values[app] = [
            cached_run(
                app,
                TinySpec(ratio=ratio, policy="gnru", spill=True,
                         spill_window=scale.spill_window,
                         stra_counter_bits=bits),
                scale,
            ).normalized_cycles(base)
            for bits in widths
        ]
    _with_average(values, len(widths))
    return Figure(
        "Ablation A3",
        f"STRA counter width at {_TINY_SIZE_LABELS[ratio]} with DynSpill "
        "(cycles normalized to 2x; paper uses 6-bit counters)",
        [f"{bits}-bit" for bits in widths],
        apps + ["Average"],
        values,
    )


def halved_hierarchy(scale: "RunScale | None" = None, apps=None) -> Figure:
    """Section V-A robustness run: halved cache hierarchy, 1/128x tiny."""
    from repro.sim.config import SystemConfig

    scale = scale or scale_from_env()
    apps = _apps(apps)
    half = RunScale(
        num_cores=scale.num_cores,
        total_accesses=scale.total_accesses,
        seed=scale.seed,
        l1_kb=max(1, scale.l1_kb // 2),
        l2_kb=max(2, scale.l2_kb // 2),
        spill_window=scale.spill_window,
    )
    values = {}
    for app in apps:
        base = cached_run(app, SparseSpec(ratio=2.0), half)
        gnru = cached_run(app, half.tiny_spec(1 / 128, "gnru"), half)
        spill = cached_run(app, half.tiny_spec(1 / 128, "gnru", spill=True), half)
        values[app] = [
            gnru.normalized_cycles(base),
            spill.normalized_cycles(base),
        ]
    _with_average(values, 2)
    return Figure(
        "§V-A halved",
        "halved hierarchy, 1/128x tiny directory vs 2x sparse "
        "(paper avg: 1.07 gNRU, 1.01 +DynSpill)",
        ["DSTRA+gNRU", "+DynSpill"],
        apps + ["Average"],
        values,
    )
