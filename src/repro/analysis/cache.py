"""On-disk cache of simulation results.

Many of the paper's figures share the same runs (every normalized figure
needs the 2x-sparse baseline of all seventeen applications), so the
benchmark harness caches finished :class:`~repro.sim.results.RunResult`
objects as JSON under ``.repro_cache/``.

The cache key includes the scheme spec, the run scale, and a version
constant that is bumped whenever simulator behaviour changes. Set
``REPRO_CACHE=off`` to disable, or delete the directory to clear.

The cache is crash-safe: entries are written to a temporary file and
published with an atomic ``os.replace``, so a killed sweep never leaves
a truncated JSON behind. If a corrupt entry is found anyway (e.g.
written by an older version), it is quarantined as ``<entry>.bad`` and
the run recomputed instead of aborting the whole figure.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile

from repro.analysis.runner import RunScale, run_app_guarded
from repro.sim.results import RunResult
from repro.sim.stats import SimStats

#: Bump when a simulator change invalidates previously cached results.
CACHE_VERSION = 1


def cache_dir() -> pathlib.Path:
    """The cache directory (``REPRO_CACHE_DIR`` or ``./.repro_cache``)."""
    return pathlib.Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def cache_enabled() -> bool:
    """False when caching is disabled via ``REPRO_CACHE=off``."""
    return os.environ.get("REPRO_CACHE", "on").lower() not in ("off", "0", "no")


def _key(app: str, scheme, scale: RunScale) -> str:
    payload = f"v{CACHE_VERSION}|{app}|{scheme!r}|{scale!r}"
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def _load_entry(path: pathlib.Path) -> "RunResult | None":
    """Read one cache entry; quarantine and return None when corrupt."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
        return RunResult(
            app=payload["app"],
            scheme=payload["scheme"],
            stats=SimStats.load(payload["stats"]),
            meta={"cached": True},
        )
    except FileNotFoundError:
        return None
    except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError):
        _quarantine(path)
        return None


def _quarantine(path: pathlib.Path) -> None:
    """Move a corrupt entry aside as ``<entry>.bad`` for post-mortems."""
    try:
        os.replace(path, path.with_suffix(path.suffix + ".bad"))
    except OSError:
        # Racing process already moved/removed it; recomputing is enough.
        pass


def _store_entry(path: pathlib.Path, result: RunResult) -> None:
    """Atomically publish ``result`` at ``path`` (temp file + replace)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "app": result.app,
        "scheme": result.scheme,
        "stats": result.stats.dump(),
    }
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.stem, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def cached_run(app: str, scheme, scale: "RunScale | None" = None) -> RunResult:
    """Like :func:`repro.analysis.runner.run_app`, but disk-cached.

    Runs go through :func:`~repro.analysis.runner.run_app_guarded`, so a
    ``keep_going`` harness policy applies here too; failed placeholder
    results are returned but never written to the cache.
    """
    from repro.analysis.runner import scale_from_env

    scale = scale or scale_from_env()
    if not cache_enabled():
        return run_app_guarded(app, scheme, scale)
    path = cache_dir() / f"{_key(app, scheme, scale)}.json"
    cached = _load_entry(path)
    if cached is not None:
        return cached
    result = run_app_guarded(app, scheme, scale)
    if not result.meta.get("failed"):
        _store_entry(path, result)
    return result
