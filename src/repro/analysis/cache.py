"""On-disk cache of simulation results.

Many of the paper's figures share the same runs (every normalized figure
needs the 2x-sparse baseline of all seventeen applications), so the
benchmark harness caches finished :class:`~repro.sim.results.RunResult`
objects as JSON under ``.repro_cache/``.

The cache key includes the scheme spec, the run scale, and a version
constant that is bumped whenever simulator behaviour changes. Set
``REPRO_CACHE=off`` to disable, or delete the directory to clear.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib

from repro.analysis.runner import RunScale, run_app
from repro.sim.results import RunResult
from repro.sim.stats import SimStats

#: Bump when a simulator change invalidates previously cached results.
CACHE_VERSION = 1


def cache_dir() -> pathlib.Path:
    """The cache directory (``REPRO_CACHE_DIR`` or ``./.repro_cache``)."""
    return pathlib.Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def cache_enabled() -> bool:
    """False when caching is disabled via ``REPRO_CACHE=off``."""
    return os.environ.get("REPRO_CACHE", "on").lower() not in ("off", "0", "no")


def _key(app: str, scheme, scale: RunScale) -> str:
    payload = f"v{CACHE_VERSION}|{app}|{scheme!r}|{scale!r}"
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def cached_run(app: str, scheme, scale: "RunScale | None" = None) -> RunResult:
    """Like :func:`repro.analysis.runner.run_app`, but disk-cached."""
    from repro.analysis.runner import scale_from_env

    scale = scale or scale_from_env()
    if not cache_enabled():
        return run_app(app, scheme, scale)
    path = cache_dir() / f"{_key(app, scheme, scale)}.json"
    if path.exists():
        with open(path) as handle:
            payload = json.load(handle)
        return RunResult(
            app=payload["app"],
            scheme=payload["scheme"],
            stats=SimStats.load(payload["stats"]),
            meta={"cached": True},
        )
    result = run_app(app, scheme, scale)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(
            {
                "app": result.app,
                "scheme": result.scheme,
                "stats": result.stats.dump(),
            },
            handle,
        )
    return result
