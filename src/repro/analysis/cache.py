"""On-disk cache of simulation results.

Many of the paper's figures share the same runs (every normalized figure
needs the 2x-sparse baseline of all seventeen applications), so the
benchmark harness caches finished :class:`~repro.sim.results.RunResult`
objects as JSON under ``.repro_cache/``.

The cache key includes the scheme spec, the run scale, and a version
constant that is bumped whenever simulator behaviour changes. Set
``REPRO_CACHE=off`` to disable, or delete the directory to clear.

The cache is crash-safe: entries are written to a temporary file and
published with an atomic ``os.replace``, so a killed sweep never leaves
a truncated JSON behind. If a corrupt entry is found anyway (e.g.
written by an older version), it is quarantined as ``<entry>.bad`` and
the run recomputed instead of aborting the whole figure; quarantine is
bounded to the newest ``REPRO_CACHE_BAD_KEEP`` files (default 32).
Writes honour the ``REPRO_DISK_QUOTA`` artifact budget (oldest entries
pruned to make room) and degrade to uncached on ``ENOSPC`` instead of
crashing — see :mod:`repro.guard`. Atomic
publication also makes the cache safe under *concurrent* writers: the
:mod:`repro.parallel` sweep executor routes every completed point
through this module, and two processes racing on the same point both
publish complete, identical entries (runs are deterministic), with the
last ``os.replace`` winning.

Two hooks exist for the parallel sweep engine:

* :func:`recording_points` flips :func:`cached_run` into a planning
  mode that records the requested (app, scheme, scale) points instead
  of simulating, so an experiment's point list can be harvested and
  fanned out over a worker pool (see :mod:`repro.parallel.planner`).
* :func:`mark_failed` registers a point that already exhausted its
  attempts in a pool worker; under a ``keep_going`` policy a later
  :func:`cached_run` for that point replays the recorded failure
  instead of recomputing (and timing out / crashing) a second time.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import pathlib
import sys
import tempfile

from repro.analysis.runner import (
    RunFailure,
    RunScale,
    active_policy,
    run_app_guarded,
)
from repro.errors import ArtifactWriteError
from repro.guard import quota as disk_quota
from repro.sim.results import RunResult
from repro.sim.stats import SimStats

#: Bump when a simulator change invalidates previously cached results.
CACHE_VERSION = 1


def cache_dir() -> pathlib.Path:
    """The cache directory (``REPRO_CACHE_DIR`` or ``./.repro_cache``)."""
    return pathlib.Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def cache_enabled() -> bool:
    """False when caching is disabled via ``REPRO_CACHE=off``."""
    return os.environ.get("REPRO_CACHE", "on").lower() not in ("off", "0", "no")


def _key(app: str, scheme, scale: RunScale) -> str:
    payload = f"v{CACHE_VERSION}|{app}|{scheme!r}|{scale!r}"
    faults = os.environ.get("REPRO_FAULTS", "").strip()
    if faults:
        # Fault-injected runs must never collide with clean entries (or
        # with runs under a different plan/seed/recovery policy). Clean
        # runs keep the historical key, so existing caches stay valid.
        payload += (
            f"|faults={faults}"
            f"|fault_seed={os.environ.get('REPRO_FAULT_SEED', '').strip()}"
            f"|recovery={os.environ.get('REPRO_RECOVERY', '').strip()}"
        )
    metrics = os.environ.get("REPRO_METRICS", "").strip()
    if metrics:
        # Metrics-bearing runs dump an extra (wall-clock) telemetry
        # section; keep them apart from clean entries so a metrics run
        # never poisons the deterministic cache (tracing does not alter
        # the dump and needs no key component).
        payload += f"|metrics={metrics}"
    wall = os.environ.get("REPRO_BUDGET_WALL", "").strip()
    rss = os.environ.get("REPRO_BUDGET_RSS", "").strip()
    if wall or rss:
        # Budgeted runs may publish a (wall-clock) stats.guard pressure
        # section; keep them apart from clean entries for the same
        # reason as metrics runs. REPRO_DISK_QUOTA never alters a
        # result's content and needs no key component.
        payload += f"|budget={wall}/{rss}"
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def point_key(app: str, scheme, scale: RunScale) -> str:
    """The stable cache key of one (app, scheme, scale) sweep point."""
    return _key(app, scheme, scale)


def has_entry(app: str, scheme, scale: RunScale) -> bool:
    """True when a published cache entry exists for this point."""
    if not cache_enabled():
        return False
    return (cache_dir() / f"{_key(app, scheme, scale)}.json").exists()


# ----------------------------------------------------------------------
# Planning mode and worker-failure replay (repro.parallel hooks)
# ----------------------------------------------------------------------

#: When not None, :func:`cached_run` records points here instead of
#: simulating (see :func:`recording_points`).
_RECORDER: "list[tuple] | None" = None

#: Points a pool worker already failed on, keyed by :func:`point_key`.
_FAILED_MARKS: "dict[str, RunFailure]" = {}


@contextlib.contextmanager
def recording_points():
    """Record the points :func:`cached_run` is asked for, run nothing.

    Inside the ``with`` body every :func:`cached_run` call appends its
    ``(app, scheme, scale)`` tuple to the yielded list and returns a
    cheap placeholder result (``meta["planned"]``, ``cycles == 1`` so
    normalizations stay finite). No simulation runs and no cache I/O
    happens. Scopes restore the previous recorder on exit, so they nest.
    """
    global _RECORDER
    previous = _RECORDER
    recorded: "list[tuple]" = []
    _RECORDER = recorded
    try:
        yield recorded
    finally:
        _RECORDER = previous


def _planning_result(app: str, scheme) -> RunResult:
    stats = SimStats()
    stats.cycles = 1
    return RunResult(
        app=app,
        scheme=getattr(scheme, "name", type(scheme).__name__),
        stats=stats,
        meta={"planned": True},
    )


def mark_failed(key: str, failure: RunFailure) -> None:
    """Register a point whose pool-worker run exhausted its attempts.

    Under a ``keep_going`` harness policy, :func:`cached_run` replays
    the failure for that point — appending a copy to the active policy's
    ``failures`` and returning a placeholder result, exactly as a serial
    recompute would, but without paying for the doomed run again.
    """
    _FAILED_MARKS[key] = failure


def clear_failed_marks() -> None:
    """Forget all :func:`mark_failed` registrations (tests, new sweeps)."""
    _FAILED_MARKS.clear()


def _replay_failure(app: str, scheme, failure: RunFailure) -> RunResult:
    policy = active_policy()
    policy.failures.append(dataclasses.replace(failure))
    return RunResult(
        app=app,
        scheme=getattr(scheme, "name", type(scheme).__name__),
        stats=SimStats(),
        meta={"failed": True, "error": failure.error},
    )


def _load_entry(path: pathlib.Path) -> "RunResult | None":
    """Read one cache entry; quarantine and return None when corrupt."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
        return RunResult(
            app=payload["app"],
            scheme=payload["scheme"],
            stats=SimStats.load(payload["stats"]),
            meta={"cached": True},
        )
    except FileNotFoundError:
        return None
    except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError):
        _quarantine(path)
        return None


#: Default number of quarantined ``.bad`` entries kept for post-mortems.
DEFAULT_BAD_KEEP = 32


def _bad_keep() -> int:
    """The ``.bad`` retention cap (``REPRO_CACHE_BAD_KEEP``, default 32).

    ``0`` disables quarantine retention entirely (corrupt entries are
    simply deleted); invalid values warn on stderr and fall back to the
    default — never a silent misconfiguration.
    """
    raw = os.environ.get("REPRO_CACHE_BAD_KEEP", "").strip()
    if not raw:
        return DEFAULT_BAD_KEEP
    try:
        keep = int(raw)
    except ValueError:
        keep = -1
    if keep < 0:
        print(
            f"repro: ignoring invalid REPRO_CACHE_BAD_KEEP={raw!r} (expected "
            f"an integer >= 0); keeping the default of {DEFAULT_BAD_KEEP}",
            file=sys.stderr,
        )
        return DEFAULT_BAD_KEEP
    return keep


def _quarantine(path: pathlib.Path) -> None:
    """Move a corrupt entry aside as ``<entry>.bad`` for post-mortems.

    Quarantine is bounded: only the newest :func:`_bad_keep` ``.bad``
    files are retained (oldest pruned on every quarantine), so a
    recurring corruption source cannot grow the cache directory without
    limit.
    """
    keep = _bad_keep()
    try:
        if keep == 0:
            os.unlink(path)
        else:
            os.replace(path, path.with_suffix(path.suffix + ".bad"))
    except OSError:
        # Racing process already moved/removed it; recomputing is enough.
        pass
    if keep:
        disk_quota.prune_matching(path.parent, ("*.json.bad",), keep=keep)


def _store_entry(path: pathlib.Path, result: RunResult) -> None:
    """Atomically publish ``result`` at ``path`` (temp file + replace).

    Honours the ``REPRO_DISK_QUOTA`` artifact budget: oldest cache
    entries (and quarantined ``.bad`` files) are pruned until the new
    entry fits, and an entry that cannot fit at all is skipped via
    :class:`~repro.errors.ArtifactWriteError` — as is any ``OSError``
    (typically ``ENOSPC``) during the write, after removing the partial
    temp file so no ``*.tmp`` litter survives a full disk.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "app": result.app,
        "scheme": result.scheme,
        "stats": result.stats.dump(),
    }
    encoded = json.dumps(payload)
    if not disk_quota.make_room(
        path.parent, len(encoded), disk_quota.disk_quota_mb()
    ):
        raise ArtifactWriteError(
            f"cache entry {path.name} ({len(encoded)} bytes) does not fit "
            f"the REPRO_DISK_QUOTA budget; run left uncached",
            path=str(path),
        )
    try:
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem, suffix=".tmp"
        )
    except OSError as err:
        raise ArtifactWriteError(
            f"cannot create cache temp file in {path.parent}: {err}",
            path=str(path),
        ) from err
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(encoded)
        os.replace(tmp_name, path)
    except BaseException as err:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        if isinstance(err, OSError):
            raise ArtifactWriteError(
                f"cannot publish cache entry {path.name}: {err}",
                path=str(path),
            ) from err
        raise


def cached_run(app: str, scheme, scale: "RunScale | None" = None) -> RunResult:
    """Like :func:`repro.analysis.runner.run_app`, but disk-cached.

    Runs go through :func:`~repro.analysis.runner.run_app_guarded`, so a
    ``keep_going`` harness policy applies here too; failed placeholder
    results are returned but never written to the cache.

    Inside a :func:`recording_points` scope the point is recorded and a
    placeholder returned instead (planning mode). Points registered via
    :func:`mark_failed` replay their failure under a ``keep_going``
    policy rather than recomputing.
    """
    from repro.analysis.runner import scale_from_env

    scale = scale or scale_from_env()
    if _RECORDER is not None:
        _RECORDER.append((app, scheme, scale))
        return _planning_result(app, scheme)
    if not cache_enabled():
        return run_app_guarded(app, scheme, scale)
    key = _key(app, scheme, scale)
    if _FAILED_MARKS and active_policy().keep_going:
        failure = _FAILED_MARKS.get(key)
        if failure is not None:
            return _replay_failure(app, scheme, failure)
    path = cache_dir() / f"{key}.json"
    cached = _load_entry(path)
    if cached is not None:
        return cached
    result = run_app_guarded(app, scheme, scale)
    if not result.meta.get("failed"):
        try:
            _store_entry(path, result)
        except ArtifactWriteError as err:
            # A full disk (or an exhausted quota) degrades the run to
            # uncached instead of discarding a finished simulation.
            print(f"repro: cache write skipped: {err}", file=sys.stderr)
            result.meta["uncached"] = True
    return result
