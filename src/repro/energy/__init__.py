"""CACTI-style analytical energy model for the LLC and directories."""

from repro.energy.model import EnergyModel, EnergyBreakdown, directory_kilobytes

__all__ = ["EnergyModel", "EnergyBreakdown", "directory_kilobytes"]
