"""Analytical SRAM energy model (substitute for CACTI/McPAT, Fig. 21).

The paper feeds the LLC and sparse-directory geometries into CACTI at
22 nm and reports dynamic, leakage, and total energy normalized between
configurations. CACTI is unavailable offline, so this module provides the
standard first-order scaling laws:

* dynamic energy per access grows roughly with the square root of the
  array's capacity (bitline/wordline lengths of a banked SRAM),
* leakage power grows linearly with capacity,
* leakage energy is leakage power integrated over execution time.

The absolute units are arbitrary (we report normalized figures, exactly
like the paper); the *ordering* and rough ratios between structure sizes
are what the scaling laws preserve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.config import SystemConfig
from repro.types import BLOCK_SIZE


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy totals for one simulated run (arbitrary units)."""

    dynamic: float
    leakage: float

    @property
    def total(self) -> float:
        """Dynamic plus leakage energy."""
        return self.dynamic + self.leakage


def directory_kilobytes(config: SystemConfig, ratio: float, tiny: bool = False) -> float:
    """Storage footprint of a directory of ``ratio x`` size, in KB.

    Entry width follows the paper: a full-map sharer vector plus state
    and tag bits; tiny-directory entries carry twelve STRAC/OAC bits, the
    ten-bit timestamp, and the R/EP bits on top (155 bits plus tag at 128
    cores).
    """
    entries = config.directory_entries(ratio)
    entry_bits = config.num_cores + 3  # sharer vector + state bits
    if tiny:
        entry_bits += 12 + 10 + 2  # STRAC/OAC, timestamp, R/EP
    tag_bits = 35
    return entries * (entry_bits + tag_bits) / 8 / 1024


class EnergyModel:
    """Capacity-scaled SRAM energy model."""

    #: Dynamic energy per access: ``base + slope * sqrt(KB)``.
    DYNAMIC_BASE = 0.01
    DYNAMIC_SLOPE = 0.004
    #: Leakage power per KB per cycle. Calibrated so that, at the paper's
    #: 22 nm 128-core geometry (a ~43 MB LLC+directory SRAM budget) and
    #: the harness's run lengths, leakage energy dominates total energy —
    #: the regime CACTI reports and the premise of the paper's Fig. 21.
    LEAKAGE_PER_KB_CYCLE = 2.0e-6

    def access_energy(self, kilobytes: float) -> float:
        """Dynamic energy of one access to a ``kilobytes``-sized array."""
        return self.DYNAMIC_BASE + self.DYNAMIC_SLOPE * math.sqrt(max(kilobytes, 0.0))

    def leakage_energy(self, kilobytes: float, cycles: int) -> float:
        """Leakage energy of the array over ``cycles``."""
        return self.LEAKAGE_PER_KB_CYCLE * kilobytes * cycles

    # ------------------------------------------------------------------

    def llc_energy(self, config: SystemConfig, stats) -> EnergyBreakdown:
        """LLC tag + data array energy for a finished run."""
        data_kb = config.llc_blocks * BLOCK_SIZE / 1024
        tag_kb = config.llc_blocks * 40 / 8 / 1024
        # Per-bank arrays are what an access actually touches.
        bank_data_kb = data_kb / config.num_banks
        bank_tag_kb = tag_kb / config.num_banks
        structures = stats.structures
        tag_lookups = structures.get("llc_tag_lookups", stats.llc_transactions)
        data_ops = structures.get(
            "llc_data_writes", 0
        ) + stats.llc_transactions  # one data read per transaction
        dynamic = tag_lookups * self.access_energy(bank_tag_kb) + data_ops * (
            self.access_energy(bank_data_kb)
        )
        leakage = self.leakage_energy(data_kb + tag_kb, stats.cycles)
        return EnergyBreakdown(dynamic, leakage)

    def directory_energy(
        self,
        config: SystemConfig,
        stats,
        directory_kb: float,
        lookups_key: str = "dir_lookups",
        allocations_key: str = "dir_allocations",
    ) -> EnergyBreakdown:
        """Directory array energy for a finished run."""
        structures = stats.structures
        ops = structures.get(lookups_key, 0) + structures.get(allocations_key, 0)
        bank_kb = directory_kb / config.num_banks
        dynamic = ops * self.access_energy(bank_kb)
        leakage = self.leakage_energy(directory_kb, stats.cycles)
        return EnergyBreakdown(dynamic, leakage)

    def system_energy(
        self, config: SystemConfig, stats, directory_kb: float, tiny: bool = False
    ) -> EnergyBreakdown:
        """Combined LLC + directory energy (the Fig. 21 quantity)."""
        llc = self.llc_energy(config, stats)
        keys = ("tiny_lookups", "tiny_allocations") if tiny else (
            "dir_lookups",
            "dir_allocations",
        )
        directory = self.directory_energy(
            config, stats, directory_kb, lookups_key=keys[0], allocations_key=keys[1]
        )
        return EnergyBreakdown(
            llc.dynamic + directory.dynamic, llc.leakage + directory.leakage
        )
