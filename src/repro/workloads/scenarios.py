"""The differential scenario corpus: five adversarial workload points.

Each :class:`Scenario` is a complete, deterministic recipe — profile,
geometry, trace length, seed — for one committed ``tests/corpus/*.rtrace``
capture. The five scenarios are chosen to pressure *different* parts of
the coherence-tracking design space, so a regression in any scheme's
machinery trips at least one of them:

* ``private-heavy`` — almost everything hits in the private hierarchy:
  the fast lane's short circuit, DSTRA's do-not-track decision, and the
  minimum-tracking baseline every scheme should handle cheaply.
* ``stra-pumping`` — a hot read-mostly set read by every core pumps
  short-term reuse (STRA) sky-high: the tiny directory's bread and
  butter, and the worst case for in-LLC lengthened critical paths.
* ``spill-pressure`` — a wide shared pool with more simultaneously
  tracked blocks than a tiny directory holds, forcing allocation
  pressure and (with ``TinySpec(spill=True)``) the LLC spill/recall
  machinery.
* ``migratory`` — narrowly shared blocks written by alternating cores:
  ownership migrates constantly, stressing invalidation, upgrade, and
  writeback paths plus directory entry turnover.
* ``multisocket`` — twice the cores with the widest sharer windows:
  cross-bank traffic, wide sharer lists, and broadcast/back-invalidation
  behaviour at the largest scale the corpus can afford.

Scale is deliberately tiny (a few thousand accesses, ≤50 KB per file)
so ``python -m repro diff --trace tests/corpus`` stays a seconds-scale
CI job. Regenerate and staleness-check with ``tools/rebuild_corpus.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.config import SystemConfig
from repro.workloads.profiles import WorkloadProfile

#: Corpus geometry: verification scale (matches the diff defaults).
CORPUS_L1_KB = 1
CORPUS_L2_KB = 4


@dataclass(frozen=True)
class Scenario:
    """One deterministic corpus point."""

    name: str
    description: str
    profile: WorkloadProfile
    num_cores: int = 8
    accesses: int = 2600
    seed: int = 0
    l1_kb: int = CORPUS_L1_KB
    l2_kb: int = CORPUS_L2_KB

    def config(self) -> SystemConfig:
        """The machine this scenario is generated (and replayed) on."""
        return SystemConfig(
            num_cores=self.num_cores, l1_kb=self.l1_kb, l2_kb=self.l2_kb
        )

    def geometry(self) -> dict:
        """Header geometry payload for the recorded capture."""
        return {
            "num_cores": self.num_cores,
            "l1_kb": self.l1_kb,
            "l2_kb": self.l2_kb,
        }


def _profile(name, desc, private, shared, hot, code, stream, **kw):
    return WorkloadProfile(
        name,
        desc,
        private_fraction=private,
        shared_fraction=shared,
        hot_fraction=hot,
        code_fraction=code,
        stream_fraction=stream,
        **kw,
    )


SCENARIOS: "dict[str, Scenario]" = {
    scenario.name: scenario
    for scenario in [
        Scenario(
            "private-heavy",
            "nearly all accesses private: fast-lane and no-track baseline",
            _profile(
                "corpus-private-heavy",
                "synthetic: private-dominated mix",
                0.86, 0.04, 0.03, 0.04, 0.03,
                sharer_bin_weights=(0.8, 0.15, 0.04, 0.01),
                private_region_factor=0.9,
                hot_blocks_per_core=6.0,
                code_blocks_per_core=8.0,
            ),
            seed=11,
        ),
        Scenario(
            "stra-pumping",
            "hot read-mostly set read by every core: maximal STRA",
            _profile(
                "corpus-stra-pumping",
                "synthetic: hot shared read-mostly dominated mix",
                0.20, 0.10, 0.52, 0.12, 0.06,
                sharer_bin_weights=(0.2, 0.25, 0.25, 0.3),
                private_region_factor=0.35,
                hot_blocks_per_core=48.0,
                code_blocks_per_core=16.0,
                hot_write_fraction=0.0,
                write_fraction_shared=0.05,
                hot_zipf_exponent=0.6,
            ),
            seed=23,
        ),
        Scenario(
            "spill-pressure",
            "wide tracked footprint overflowing a tiny directory",
            _profile(
                "corpus-spill-pressure",
                "synthetic: broad shared pool, tracking-entry churn",
                0.22, 0.48, 0.14, 0.08, 0.08,
                sharer_bin_weights=(0.45, 0.3, 0.15, 0.1),
                private_region_factor=0.4,
                pool_factor=0.06,
                hot_blocks_per_core=24.0,
                code_blocks_per_core=12.0,
                write_fraction_shared=0.12,
                zipf_exponent=0.4,
            ),
            accesses=3000,
            seed=37,
        ),
        Scenario(
            "migratory",
            "narrowly shared blocks with alternating writers",
            _profile(
                "corpus-migratory",
                "synthetic: migratory ownership, heavy upgrades",
                0.30, 0.44, 0.08, 0.08, 0.10,
                sharer_bin_weights=(0.9, 0.08, 0.015, 0.005),
                private_region_factor=0.5,
                pool_factor=0.03,
                hot_blocks_per_core=8.0,
                code_blocks_per_core=8.0,
                write_fraction_shared=0.55,
                zipf_exponent=0.8,
            ),
            seed=41,
        ),
        Scenario(
            "multisocket",
            "double-width machine with the widest sharer windows",
            _profile(
                "corpus-multisocket",
                "synthetic: wide sharing across many banks",
                0.34, 0.22, 0.22, 0.14, 0.08,
                sharer_bin_weights=(0.1, 0.2, 0.3, 0.4),
                private_region_factor=0.5,
                pool_factor=0.025,
                hot_blocks_per_core=20.0,
                code_blocks_per_core=16.0,
                write_fraction_shared=0.10,
            ),
            num_cores=16,
            accesses=2400,
            seed=53,
        ),
    ]
}


def scenario_streams(scenario: Scenario):
    """Generate the scenario's per-core streams (deterministic)."""
    from repro.workloads.generator import SyntheticTraceGenerator

    generator = SyntheticTraceGenerator(
        scenario.profile, scenario.config(), scenario.seed
    )
    return generator.generate(scenario.accesses)


def record_scenario(scenario: Scenario, path):
    """Generate and save one scenario capture; returns the path."""
    from repro.workloads.capture import save_capture

    return save_capture(
        path,
        scenario_streams(scenario),
        profile=scenario.profile,
        seed=scenario.seed,
        total_accesses=scenario.accesses,
        geometry=scenario.geometry(),
        meta={"scenario": scenario.name, "description": scenario.description},
    )
