"""Synthetic multi-threaded workloads calibrated to the paper's Table II
applications."""

from repro.workloads.profiles import (
    WorkloadProfile,
    PROFILES,
    APPLICATIONS,
    profile,
)
from repro.workloads.generator import (
    SyntheticTraceGenerator,
    generate_streams,
    load_streams,
)
from repro.workloads.capture import (
    TraceReader,
    TraceWriter,
    load_capture,
    save_capture,
    trace_fingerprint,
)

__all__ = [
    "WorkloadProfile",
    "PROFILES",
    "APPLICATIONS",
    "profile",
    "SyntheticTraceGenerator",
    "TraceReader",
    "TraceWriter",
    "generate_streams",
    "load_capture",
    "load_streams",
    "save_capture",
    "trace_fingerprint",
]
