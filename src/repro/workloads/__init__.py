"""Synthetic multi-threaded workloads calibrated to the paper's Table II
applications."""

from repro.workloads.profiles import (
    WorkloadProfile,
    PROFILES,
    APPLICATIONS,
    profile,
)
from repro.workloads.generator import SyntheticTraceGenerator, generate_streams

__all__ = [
    "WorkloadProfile",
    "PROFILES",
    "APPLICATIONS",
    "profile",
    "SyntheticTraceGenerator",
    "generate_streams",
]
