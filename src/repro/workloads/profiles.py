"""Workload profiles for the paper's seventeen applications (Table II).

The paper drives its simulator with execution traces of PARSEC /
SPLASH-2 / SPEC OMP codes and PIN traces of commercial server workloads.
Those traces are not available, so each application is modelled as a
:class:`WorkloadProfile`: a parameterized generator of per-core access
streams whose *sharing structure* is calibrated to the statistics the
paper itself reports about that application:

* shared-footprint fraction and maximum-sharer-count distribution
  (Fig. 2),
* the fraction of LLC accesses/blocks with lengthened critical paths
  under in-LLC tracking, including the code/data split (Figs. 6-7; e.g.
  barnes's famous 78% of allocated blocks, the commercial applications'
  large shared-code components),
* STRA-ratio concentration (Figs. 8-9),
* baseline LLC miss rates (§V-A: ocean_cp 35%, 314.mgrid 78%, 324.apsi
  12%, 330.art 63%, SPECWeb-B/E/S 14/19/18%),
* relative LLC fill volume (SPECWeb/TPC carry out more fills).

Every access stream is drawn from five address regions: a per-core
private region (heap/stack), a read-write shared pool with per-block
sharer windows, a small hot read-mostly shared set (the high-STRA
blocks), a shared code region touched by instruction fetches, and a
per-core streaming region that never reuses (the miss-rate knob).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class WorkloadProfile:
    """Generator parameters for one application."""

    name: str
    description: str
    # -- access-mix probabilities (must sum to 1) -----------------------
    private_fraction: float
    shared_fraction: float
    hot_fraction: float
    code_fraction: float
    stream_fraction: float
    # -- region sizes ----------------------------------------------------
    #: Private region size as a multiple of one L2's block capacity.
    #: Directory pressure comes from L2 *residency* (bounded by L2
    #: capacity), so regions smaller than the L2 still stress small
    #: directories while keeping cold-miss trickle low in short traces.
    private_region_factor: float = 0.9
    #: Shared pool size as a multiple of the LLC's block capacity.
    pool_factor: float = 0.02
    #: Hot shared read-mostly blocks per core.
    hot_blocks_per_core: float = 4.0
    #: Shared code blocks per core.
    code_blocks_per_core: float = 8.0
    # -- write behaviour ---------------------------------------------------
    write_fraction_private: float = 0.3
    write_fraction_shared: float = 0.15
    hot_write_fraction: float = 0.01
    # -- sharing structure --------------------------------------------------
    #: Weights of the per-block sharer-window bins [2-4], [5-8], [9-16],
    #: [17-C] (Fig. 2 bins).
    sharer_bin_weights: "tuple[float, float, float, float]" = (0.5, 0.25, 0.15, 0.1)
    #: Popularity skew of pool/code blocks.
    zipf_exponent: float = 0.9
    #: Popularity skew of the hot shared read-mostly set. Skew gives the
    #: set an *instantaneous working subset* -- exactly the locality the
    #: tiny directory's DSTRA policy exploits (paper §IV).
    hot_zipf_exponent: float = 0.8
    #: Popularity skew of each core's private region (heap reuse is
    #: heavily skewed in real programs; 0 means uniform).
    private_zipf_exponent: float = 0.55
    #: Mean compute cycles between successive accesses of one core.
    cpi_gap: int = 24

    def __post_init__(self) -> None:
        total = (
            self.private_fraction
            + self.shared_fraction
            + self.hot_fraction
            + self.code_fraction
            + self.stream_fraction
        )
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(
                f"profile {self.name}: access-mix fractions sum to {total}"
            )
        if not all(w >= 0 for w in self.sharer_bin_weights):
            raise ConfigError(f"profile {self.name}: negative sharer weight")


def _p(name, desc, private, shared, hot, code, stream, **kw) -> WorkloadProfile:
    return WorkloadProfile(
        name,
        desc,
        private_fraction=private,
        shared_fraction=shared,
        hot_fraction=hot,
        code_fraction=code,
        stream_fraction=stream,
        **kw,
    )


#: The seventeen applications of Table II.
PROFILES: "dict[str, WorkloadProfile]" = {
    p.name: p
    for p in [
        _p(
            "bodytrack",
            "PARSEC body tracking: moderate shared footprint, noticeable "
            "hot shared reads (>5% lengthened fills in Fig. 7)",
            0.67, 0.12, 0.13, 0.06, 0.02,
            sharer_bin_weights=(0.55, 0.25, 0.12, 0.08),
            hot_blocks_per_core=28.0,
            code_blocks_per_core=16.0,
            pool_factor=0.015,
        ),
        _p(
            "swaptions",
            "PARSEC swaption pricing: small working set, meaningful hot "
            "shared read set",
            0.68, 0.10, 0.13, 0.07, 0.02,
            sharer_bin_weights=(0.6, 0.25, 0.1, 0.05),
            hot_blocks_per_core=24.0,
            code_blocks_per_core=12.0,
            pool_factor=0.01,
        ),
        _p(
            "barnes",
            "SPLASH-2 N-body: most allocated blocks are shared and "
            "read by many cores (78% lengthened fills, Fig. 7)",
            0.18, 0.26, 0.42, 0.10, 0.04,
            sharer_bin_weights=(0.35, 0.3, 0.2, 0.15),
            private_region_factor=0.35,
            pool_factor=0.025,
            hot_blocks_per_core=60.0,
            code_blocks_per_core=16.0,
            write_fraction_shared=0.06,
            zipf_exponent=0.7,
        ),
        _p(
            "ocean_cp",
            "SPLASH-2 ocean (contiguous): nearest-neighbour sharing, "
            "35% LLC miss rate, performance-critical 3-hop accesses",
            0.50, 0.17, 0.08, 0.03, 0.22,
            sharer_bin_weights=(0.8, 0.15, 0.04, 0.01),
            private_region_factor=1.1,
            pool_factor=0.04,
            hot_blocks_per_core=10.0,
            write_fraction_shared=0.3,
        ),
        _p(
            "314.mgrid",
            "SPEC OMP multigrid: streaming grids, 78% LLC miss rate, "
            "little block-level sharing",
            0.16, 0.04, 0.03, 0.01, 0.76,
            sharer_bin_weights=(0.85, 0.1, 0.04, 0.01),
            private_region_factor=1.0,
            hot_blocks_per_core=6.0,
        ),
        _p(
            "316.applu",
            "SPEC OMP LU solver: moderate sharing with noticeable "
            "lengthened fills (>5% in Fig. 7)",
            0.62, 0.12, 0.15, 0.06, 0.05,
            sharer_bin_weights=(0.7, 0.2, 0.07, 0.03),
            private_region_factor=0.9,
            hot_blocks_per_core=20.0,
        ),
        _p(
            "324.apsi",
            "SPEC OMP mesoscale model: 12% LLC miss rate, mostly "
            "private data",
            0.73, 0.11, 0.08, 0.04, 0.04,
            sharer_bin_weights=(0.75, 0.17, 0.06, 0.02),
            private_region_factor=0.9,
            hot_blocks_per_core=10.0,
        ),
        _p(
            "330.art",
            "SPEC OMP neural network: 63% LLC miss rate, small shared "
            "training set",
            0.24, 0.09, 0.08, 0.03, 0.56,
            sharer_bin_weights=(0.6, 0.25, 0.1, 0.05),
            private_region_factor=0.9,
            hot_blocks_per_core=12.0,
        ),
        _p(
            "SPECJBB",
            "Java middleware: large shared heap and code footprint, "
            "many LLC fills",
            0.48, 0.18, 0.13, 0.18, 0.03,
            sharer_bin_weights=(0.45, 0.25, 0.18, 0.12),
            pool_factor=0.05,
            hot_blocks_per_core=20.0,
            code_blocks_per_core=48.0,
            write_fraction_shared=0.2,
        ),
        _p(
            "SPECWeb-B",
            "Apache banking: big shared footprint, 14% miss rate, "
            "code-heavy lengthened accesses",
            0.36, 0.19, 0.12, 0.24, 0.09,
            sharer_bin_weights=(0.35, 0.25, 0.22, 0.18),
            pool_factor=0.06,
            hot_blocks_per_core=16.0,
            code_blocks_per_core=64.0,
            write_fraction_shared=0.18,
        ),
        _p(
            "SPECWeb-E",
            "Apache e-commerce: big shared footprint, 19% miss rate",
            0.34, 0.19, 0.11, 0.24, 0.12,
            sharer_bin_weights=(0.35, 0.25, 0.22, 0.18),
            pool_factor=0.06,
            hot_blocks_per_core=16.0,
            code_blocks_per_core=64.0,
            write_fraction_shared=0.18,
        ),
        _p(
            "SPECWeb-S",
            "Apache support: big shared footprint, 18% miss rate",
            0.35, 0.19, 0.11, 0.24, 0.11,
            sharer_bin_weights=(0.35, 0.25, 0.22, 0.18),
            pool_factor=0.06,
            hot_blocks_per_core=16.0,
            code_blocks_per_core=64.0,
            write_fraction_shared=0.18,
        ),
        _p(
            "TPC-C",
            "MySQL OLTP: hot B-tree/code blocks shared widely, "
            "large fill volume",
            0.40, 0.21, 0.15, 0.21, 0.03,
            sharer_bin_weights=(0.4, 0.25, 0.2, 0.15),
            pool_factor=0.05,
            hot_blocks_per_core=24.0,
            code_blocks_per_core=48.0,
            write_fraction_shared=0.25,
            hot_write_fraction=0.02,
        ),
        _p(
            "TPC-E",
            "MySQL OLTP (brokerage): similar to TPC-C with more reads",
            0.40, 0.22, 0.15, 0.20, 0.03,
            sharer_bin_weights=(0.4, 0.25, 0.2, 0.15),
            pool_factor=0.05,
            hot_blocks_per_core=24.0,
            code_blocks_per_core=48.0,
            write_fraction_shared=0.15,
        ),
        _p(
            "TPC-H",
            "MySQL decision support: scan-heavy with shared hash "
            "tables (>5% lengthened fills in Fig. 7)",
            0.38, 0.20, 0.19, 0.18, 0.05,
            sharer_bin_weights=(0.4, 0.27, 0.2, 0.13),
            pool_factor=0.05,
            code_blocks_per_core=32.0,
            hot_blocks_per_core=28.0,
            write_fraction_shared=0.08,
        ),
        _p(
            "sunflow",
            "SPEC JVM ray tracing: shared scene read by all threads",
            0.52, 0.14, 0.17, 0.14, 0.03,
            sharer_bin_weights=(0.45, 0.28, 0.17, 0.1),
            hot_blocks_per_core=24.0,
            code_blocks_per_core=32.0,
            write_fraction_shared=0.05,
        ),
        _p(
            "compress",
            "SPEC JVM compression: mostly private buffers, shared "
            "dictionary and code",
            0.62, 0.10, 0.12, 0.13, 0.03,
            sharer_bin_weights=(0.55, 0.25, 0.12, 0.08),
            hot_blocks_per_core=16.0,
            code_blocks_per_core=24.0,
        ),
    ]
}

#: Application names in the paper's plotting order.
APPLICATIONS: "tuple[str, ...]" = tuple(PROFILES)


def profile(name: str) -> WorkloadProfile:
    """Look up a profile by application name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ConfigError(
            f"unknown application {name!r}; known: {', '.join(PROFILES)}"
        ) from None
