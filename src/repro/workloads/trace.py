"""Trace file I/O.

Generated workloads can be saved to a compact ``.npz`` file and reloaded
later, so experiments can be repeated bit-for-bit without regenerating
(or so externally captured traces can be fed to the simulator). A trace
file stores four parallel arrays — core, block address, access kind, and
compute gap — plus a small JSON header with provenance.
"""

from __future__ import annotations

import json

import numpy as np

from repro.errors import TraceError
from repro.types import Access, AccessKind

#: Integer encoding of access kinds in trace files.
_KIND_CODES = {AccessKind.READ: 0, AccessKind.WRITE: 1, AccessKind.IFETCH: 2}
_KIND_DECODE = {code: kind for kind, code in _KIND_CODES.items()}

#: Trace file format version.
FORMAT_VERSION = 1


def save_trace(
    path,
    streams: "list[list[Access]]",
    meta: "dict | None" = None,
) -> None:
    """Write per-core access streams to ``path`` (``.npz`` format).

    The interleaving stored is per-core program order; the engine's
    min-clock scheduling reconstructs the global order at replay.
    """
    cores = []
    addrs = []
    kinds = []
    gaps = []
    for stream in streams:
        for acc in stream:
            cores.append(acc.core)
            addrs.append(acc.addr)
            kinds.append(_KIND_CODES[acc.kind])
            gaps.append(acc.gap)
    header = {
        "version": FORMAT_VERSION,
        "num_cores": len(streams),
        "meta": meta or {},
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        core=np.asarray(cores, dtype=np.int32),
        addr=np.asarray(addrs, dtype=np.int64),
        kind=np.asarray(kinds, dtype=np.int8),
        gap=np.asarray(gaps, dtype=np.int32),
    )


def load_trace(path) -> "tuple[list[list[Access]], dict]":
    """Read a trace written by :func:`save_trace`.

    Returns ``(streams, meta)``. Raises :class:`TraceError` on malformed
    or incompatible files.
    """
    try:
        data = np.load(path)
    except (OSError, ValueError) as exc:
        raise TraceError(f"cannot read trace file {path}: {exc}") from exc
    try:
        header = json.loads(bytes(data["header"]).decode())
        cores = data["core"]
        addrs = data["addr"]
        kinds = data["kind"]
        gaps = data["gap"]
    except KeyError as exc:
        raise TraceError(f"trace file {path} is missing field {exc}") from exc
    if header.get("version") != FORMAT_VERSION:
        raise TraceError(
            f"trace file {path} has version {header.get('version')}, "
            f"expected {FORMAT_VERSION}"
        )
    if not (len(cores) == len(addrs) == len(kinds) == len(gaps)):
        raise TraceError(f"trace file {path} has inconsistent array lengths")
    num_cores = header["num_cores"]
    streams: "list[list[Access]]" = [[] for _ in range(num_cores)]
    for core, addr, kind, gap in zip(
        cores.tolist(), addrs.tolist(), kinds.tolist(), gaps.tolist()
    ):
        if not 0 <= core < num_cores:
            raise TraceError(f"trace file {path}: core {core} out of range")
        try:
            decoded = _KIND_DECODE[kind]
        except KeyError:
            raise TraceError(
                f"trace file {path}: unknown access kind code {kind}"
            ) from None
        streams[core].append(Access(core, addr, decoded, gap))
    return streams, header.get("meta", {})
