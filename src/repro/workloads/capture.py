"""Versioned, compact on-disk access-trace format (``.rtrace``).

The ``.npz`` format of :mod:`repro.workloads.trace` needs numpy and
buffers whole arrays; this module is the durable, dependency-free
replacement used by the differential harness and the scenario corpus.
A capture file carries everything a later process needs to re-run the
identical access stream on any scheme:

* a **header** with the format version and full provenance — machine
  geometry (cores, L1/L2 sizes), the generating profile (name plus the
  complete parameter record, so even custom profiles round-trip), the
  seed and requested trace length, and a free-form ``meta`` dict (the
  differential harness stores fault plans and parent-trace provenance
  there);
* one **frame per core**: the core's access records varint-encoded
  (zigzag address deltas, gap and kind packed into one integer) and
  zlib-compressed, so a few thousand accesses land well under 50 KB.

Reading and writing both stream frame-by-frame — a reader never holds
more than one decompressed core stream beyond what it yields, and a
writer flushes each core as it is handed over. Convenience wrappers
(:func:`save_capture` / :func:`load_capture`) cover the common
whole-trace case; :func:`load_capture` is what
:func:`repro.workloads.generator.generate_streams` uses under
``REPRO_TRACE_FILE``, making replayed runs bit-identical to live
generation.

Layout::

    magic   b"RTRC"
    version u16 big-endian (currently 1)
    header  u32 big-endian length + zlib(JSON)
    frames  num_cores x [varint count][varint payload_len][zlib payload]

Record encoding, inside a decompressed frame payload: per access, one
varint ``(gap << 2) | kind_code`` followed by the zigzag-varint delta
of the block address from the previous record's address (starting
from 0).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import zlib
from pathlib import Path

from repro.errors import ArtifactWriteError, TraceError
from repro.types import Access, AccessKind

#: File magic; deliberately distinct from any common archive format.
MAGIC = b"RTRC"

#: Capture format version. Bump on any incompatible layout change.
CAPTURE_VERSION = 1

#: Integer encoding of access kinds (shared with the ``.npz`` format).
KIND_CODES = {AccessKind.READ: 0, AccessKind.WRITE: 1, AccessKind.IFETCH: 2}
KIND_DECODE = {code: kind for kind, code in KIND_CODES.items()}

#: zlib level, pinned so identical content always produces identical
#: frames within one environment (the corpus staleness check compares
#: decoded content, never raw bytes, so zlib-build drift cannot bite).
_ZLIB_LEVEL = 6


# ----------------------------------------------------------------------
# Varint primitives
# ----------------------------------------------------------------------

def _write_varint(out: bytearray, value: int) -> None:
    """Append ``value`` (unsigned) as LEB128."""
    if value < 0:
        raise TraceError(f"cannot varint-encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(buf: bytes, pos: int) -> "tuple[int, int]":
    """Decode one LEB128 integer at ``pos``; returns (value, new_pos)."""
    result = 0
    shift = 0
    length = len(buf)
    while True:
        if pos >= length:
            raise TraceError("truncated varint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _zigzag(value: int) -> int:
    """Fold a signed integer onto unsigned: 0, -1, 1, -2 -> 0, 1, 2, 3."""
    return (value << 1) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    """Inverse of :func:`_zigzag`."""
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


# ----------------------------------------------------------------------
# Streaming writer
# ----------------------------------------------------------------------

class TraceWriter:
    """Streams per-core access frames into an ``.rtrace`` file.

    Frames must be written in core order ``0 .. num_cores - 1`` (one
    :meth:`write_stream` call per core, empty streams included);
    :meth:`close` verifies every frame was written. The file is written
    to a sibling temp path and moved into place on close, so a crashed
    writer never leaves a truncated trace behind.
    """

    def __init__(
        self,
        path,
        num_cores: int,
        *,
        profile=None,
        seed: "int | None" = None,
        total_accesses: "int | None" = None,
        geometry: "dict | None" = None,
        meta: "dict | None" = None,
    ) -> None:
        if num_cores <= 0:
            raise TraceError("a trace needs at least one core stream")
        self.path = Path(path)
        self.num_cores = num_cores
        self._next_core = 0
        self._closed = False
        header = {
            "format_version": CAPTURE_VERSION,
            "num_cores": num_cores,
            "profile": _profile_payload(profile),
            "seed": seed,
            "total_accesses": total_accesses,
            "geometry": dict(geometry) if geometry else None,
            "meta": dict(meta) if meta else {},
        }
        self._tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self._tmp, "wb")
        except OSError as err:
            raise ArtifactWriteError(
                f"cannot create trace file {self.path}: {err}",
                path=str(self.path),
            ) from err
        try:
            self._file.write(MAGIC)
            self._file.write(CAPTURE_VERSION.to_bytes(2, "big"))
            blob = zlib.compress(
                json.dumps(header, sort_keys=True).encode(), _ZLIB_LEVEL
            )
            self._file.write(len(blob).to_bytes(4, "big"))
            self._file.write(blob)
        except OSError as err:
            # Disk full (ENOSPC) and friends: remove the partial temp
            # file and surface a structured, catchable error instead of
            # littering ``*.tmp`` next to the target.
            self._abort()
            raise ArtifactWriteError(
                f"cannot write trace file {self.path}: {err}",
                path=str(self.path),
            ) from err
        except BaseException:
            self._abort()
            raise

    def write_stream(self, core: int, accesses) -> None:
        """Encode and append one core's access stream."""
        if self._closed:
            raise TraceError("writer is closed")
        if core != self._next_core:
            raise TraceError(
                f"frames must be written in core order: expected core "
                f"{self._next_core}, got {core}"
            )
        records = bytearray()
        previous_addr = 0
        count = 0
        for acc in accesses:
            if acc.core != core:
                raise TraceError(
                    f"stream {core} contains an access issued by core "
                    f"{acc.core}"
                )
            if acc.gap < 0:
                raise TraceError(f"negative access gap {acc.gap}")
            _write_varint(records, (acc.gap << 2) | KIND_CODES[acc.kind])
            _write_varint(records, _zigzag(acc.addr - previous_addr))
            previous_addr = acc.addr
            count += 1
        payload = zlib.compress(bytes(records), _ZLIB_LEVEL)
        frame = bytearray()
        _write_varint(frame, count)
        _write_varint(frame, len(payload))
        try:
            self._file.write(bytes(frame))
            self._file.write(payload)
        except OSError as err:
            self._abort()
            raise ArtifactWriteError(
                f"cannot write trace file {self.path}: {err}",
                path=str(self.path),
            ) from err
        except BaseException:
            self._abort()
            raise
        self._next_core += 1

    def close(self) -> None:
        """Finish the file; raises if any core frame is missing."""
        if self._closed:
            return
        if self._next_core != self.num_cores:
            self._abort()
            raise TraceError(
                f"trace writer closed after {self._next_core} of "
                f"{self.num_cores} core frames"
            )
        self._closed = True
        try:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
            os.replace(self._tmp, self.path)
        except OSError as err:
            self._abort()
            raise ArtifactWriteError(
                f"cannot finalize trace file {self.path}: {err}",
                path=str(self.path),
            ) from err

    def _abort(self) -> None:
        self._closed = True
        try:
            self._file.close()
        finally:
            self._tmp.unlink(missing_ok=True)

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self._abort()


# ----------------------------------------------------------------------
# Streaming reader
# ----------------------------------------------------------------------

class TraceReader:
    """Reads an ``.rtrace`` file frame by frame.

    The header is parsed eagerly (so provenance is available before any
    records are decoded); core streams are decoded lazily by iterating
    :meth:`streams`. Every structural problem — bad magic, unsupported
    version, truncation anywhere, unknown kind codes — raises
    :class:`~repro.errors.TraceError`.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        try:
            self._file = open(self.path, "rb")
        except OSError as err:
            raise TraceError(f"cannot read trace file {path}: {err}") from err
        try:
            magic = self._file.read(len(MAGIC))
            if magic != MAGIC:
                raise TraceError(
                    f"{path} is not a repro trace file (bad magic {magic!r})"
                )
            version_raw = self._read_exact(2, "format version")
            version = int.from_bytes(version_raw, "big")
            if version != CAPTURE_VERSION:
                raise TraceError(
                    f"trace file {path} has format version {version}; this "
                    f"build reads version {CAPTURE_VERSION}"
                )
            header_len = int.from_bytes(self._read_exact(4, "header length"), "big")
            blob = self._read_exact(header_len, "header")
            try:
                self.header = json.loads(zlib.decompress(blob).decode())
            except (zlib.error, UnicodeDecodeError, json.JSONDecodeError) as err:
                raise TraceError(
                    f"trace file {path} has a corrupt header: {err}"
                ) from err
            self.num_cores = self.header.get("num_cores")
            if not isinstance(self.num_cores, int) or self.num_cores <= 0:
                raise TraceError(
                    f"trace file {path} declares invalid core count "
                    f"{self.num_cores!r}"
                )
        except BaseException:
            self._file.close()
            raise
        self._frames_read = 0

    def _read_exact(self, n: int, what: str) -> bytes:
        data = self._file.read(n)
        if len(data) != n:
            raise TraceError(f"trace file {self.path} is truncated ({what})")
        return data

    def _read_frame_varint(self, what: str) -> int:
        result = 0
        shift = 0
        while True:
            byte = self._read_exact(1, what)[0]
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7

    def streams(self):
        """Yield ``(core, list[Access])`` for each frame, in core order."""
        while self._frames_read < self.num_cores:
            core = self._frames_read
            count = self._read_frame_varint("frame record count")
            payload_len = self._read_frame_varint("frame payload length")
            payload = self._read_exact(payload_len, f"core {core} frame")
            try:
                records = zlib.decompress(payload)
            except zlib.error as err:
                raise TraceError(
                    f"trace file {self.path}: core {core} frame is corrupt: "
                    f"{err}"
                ) from err
            stream = []
            pos = 0
            previous_addr = 0
            for _ in range(count):
                packed, pos = _read_varint(records, pos)
                kind_code = packed & 0x3
                try:
                    kind = KIND_DECODE[kind_code]
                except KeyError:
                    raise TraceError(
                        f"trace file {self.path}: unknown access kind code "
                        f"{kind_code}"
                    ) from None
                delta, pos = _read_varint(records, pos)
                previous_addr += _unzigzag(delta)
                stream.append(Access(core, previous_addr, kind, packed >> 2))
            if pos != len(records):
                raise TraceError(
                    f"trace file {self.path}: core {core} frame has "
                    f"{len(records) - pos} trailing bytes"
                )
            self._frames_read += 1
            yield core, stream

    def read_all(self) -> "list[list[Access]]":
        """Decode every remaining frame into per-core streams."""
        return [stream for _, stream in self.streams()]

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ----------------------------------------------------------------------
# Whole-trace conveniences
# ----------------------------------------------------------------------

def _profile_payload(profile):
    """Serialize a profile for the header: full record, or pass a dict."""
    if profile is None:
        return None
    if isinstance(profile, dict):
        return dict(profile)
    return dataclasses.asdict(profile)


def save_capture(
    path,
    streams: "list[list[Access]]",
    *,
    profile=None,
    seed: "int | None" = None,
    total_accesses: "int | None" = None,
    geometry: "dict | None" = None,
    meta: "dict | None" = None,
) -> Path:
    """Write per-core ``streams`` to ``path``; returns the path."""
    with TraceWriter(
        path,
        len(streams),
        profile=profile,
        seed=seed,
        total_accesses=total_accesses,
        geometry=geometry,
        meta=meta,
    ) as writer:
        for core, stream in enumerate(streams):
            writer.write_stream(core, stream)
    return Path(path)


def load_capture(path) -> "tuple[list[list[Access]], dict]":
    """Read a capture written by :class:`TraceWriter`.

    Returns ``(streams, header)``; raises :class:`TraceError` on any
    malformed, truncated, or version-incompatible file.
    """
    with TraceReader(path) as reader:
        return reader.read_all(), reader.header


def profile_from_header(header: dict):
    """Rebuild the generating :class:`WorkloadProfile` from a header.

    Returns None when the trace carries no profile provenance.
    """
    from repro.workloads.profiles import WorkloadProfile

    payload = header.get("profile")
    if not payload:
        return None
    # JSON round-trips tuples as lists; restore them so the rebuilt
    # (frozen) profile stays hashable and compares equal to the original.
    fields = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in payload.items()
    }
    return WorkloadProfile(**fields)


def trace_fingerprint(path) -> str:
    """Content hash of a trace file (sha256 hex digest).

    This is what keys the per-process workload cache for replayed
    traces: two files with the same path but different bytes never
    alias, and the same content is recognized wherever it lives.
    """
    digest = hashlib.sha256()
    try:
        with open(path, "rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 16), b""):
                digest.update(chunk)
    except OSError as err:
        raise TraceError(f"cannot read trace file {path}: {err}") from err
    return digest.hexdigest()
