"""Synthetic trace generation from a :class:`WorkloadProfile`.

The generator lays out five disjoint address regions (block addresses):

* a private region per core (``heap/stack``),
* a global read-write shared pool, each block annotated with a *sharer
  window* — the set of cores that ever touch it — drawn from the
  profile's Fig.-2-style bin weights,
* a small hot shared read-mostly set touched by every core (the
  high-STRA blocks),
* a shared code region accessed by instruction fetches from every core,
* a per-core streaming region that never reuses a block (the LLC
  miss-rate knob).

Accesses are drawn i.i.d. from the profile's region mix; shared-pool
accesses are *re-assigned* to a random core inside the block's sharer
window so each block's observed sharer count matches its annotation.
Generation is deterministic for a given (profile, config, seed).
"""

from __future__ import annotations

import os
import sys
import zlib
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.errors import ConfigError, TraceError
from repro.sim.config import SystemConfig
from repro.sim.deadline import CHECK_STRIDE as _DEADLINE_STRIDE
from repro.sim.deadline import check_deadline
from repro.types import Access, AccessKind
from repro.workloads.profiles import WorkloadProfile

# Region base block addresses; spans are generous enough never to overlap
# for any realistic configuration. Per-core strides are deliberately NOT
# powers of two: a real OS hands out pages at effectively randomized
# physical frames, so different cores' heaps do not alias onto the same
# cache/directory sets. A power-of-two stride here would make every
# core's private region collide in the same few sets — a pathology real
# traces do not exhibit.
_PRIVATE_BASE = 1 << 34
_PRIVATE_SPAN = (1 << 24) + 32 * 17
_POOL_BASE = 1 << 35
_HOT_BASE = 1 << 36
_CODE_BASE = (1 << 36) + (1 << 30) + 32 * 11
_STREAM_BASE = 1 << 37
_STREAM_SPAN = (1 << 26) + 32 * 29

#: Stride between consecutive logical blocks of the shared regions.
#: Shared structures (hash buckets, B-tree nodes, hot functions) are
#: scattered through a real address space, not contiguous; a coprime
#: stride spreads the popular head of each region over all LLC sets so
#: no single set (in particular no sampled no-spill set) concentrates
#: the hot traffic.
_SHARED_STRIDE = 97


def _pool_addr(index) -> "int":
    """Block address of pool block ``index`` (scalar or numpy array)."""
    return _POOL_BASE + index * _SHARED_STRIDE


def _hot_addr(index) -> "int":
    """Block address of hot-set block ``index``."""
    return _HOT_BASE + index * _SHARED_STRIDE


def _code_addr(index) -> "int":
    """Block address of code block ``index``."""
    return _CODE_BASE + index * _SHARED_STRIDE

_REGION_PRIVATE = 0
_REGION_SHARED = 1
_REGION_HOT = 2
_REGION_CODE = 3
_REGION_STREAM = 4


def _zipf_pmf(count: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


class SyntheticTraceGenerator:
    """Produces per-core access streams for one application profile."""

    def __init__(
        self,
        profile: WorkloadProfile,
        config: SystemConfig,
        seed: int = 0,
    ) -> None:
        self.profile = profile
        self.config = config
        stable = zlib.crc32(profile.name.encode())
        self._rng = np.random.default_rng((seed << 32) ^ stable)
        cores = config.num_cores
        self.private_blocks = max(64, int(profile.private_region_factor * config.l2_blocks))
        if self.private_blocks > _PRIVATE_SPAN:
            raise ConfigError("private region exceeds its address span")
        self.pool_blocks = max(cores * 8, int(profile.pool_factor * config.llc_blocks))
        self.hot_blocks = max(8, int(profile.hot_blocks_per_core * cores))
        self.code_blocks = max(8, int(profile.code_blocks_per_core * cores))
        # Per-pool-block sharer windows (start core + width).
        self._pool_start, self._pool_width = self._draw_sharer_windows()
        self._pool_pmf = _zipf_pmf(self.pool_blocks, profile.zipf_exponent)
        self._code_pmf = _zipf_pmf(self.code_blocks, profile.zipf_exponent)
        self._private_pmf = (
            _zipf_pmf(self.private_blocks, profile.private_zipf_exponent)
            if profile.private_zipf_exponent > 0
            else None
        )
        self._hot_pmf = (
            _zipf_pmf(self.hot_blocks, profile.hot_zipf_exponent)
            if profile.hot_zipf_exponent > 0
            else None
        )

    def _draw_sharer_windows(self) -> "tuple[np.ndarray, np.ndarray]":
        cores = self.config.num_cores
        weights = np.asarray(self.profile.sharer_bin_weights, dtype=np.float64)
        weights = weights / weights.sum()
        bins = self._rng.choice(4, size=self.pool_blocks, p=weights)
        low = np.array([2, 5, 9, 17])[bins]
        high = np.array([4, 8, 16, max(17, cores)])[bins]
        low = np.minimum(low, cores)
        high = np.minimum(high, cores)
        width = self._rng.integers(low, high + 1)
        start = self._rng.integers(0, cores, size=self.pool_blocks)
        return start, width

    # ------------------------------------------------------------------

    def _init_pass(self) -> "list[list[Access]]":
        """The initialization phase: touch every block of every region
        once, the way a real program's setup loop faults in its data.

        This keeps cold (first-touch) misses inside the engine's warmup
        window, so measured miss rates reflect steady-state behaviour
        instead of trace length.
        """
        cores = self.config.num_cores
        gap = self.profile.cpi_gap
        streams: "list[list[Access]]" = [[] for _ in range(cores)]
        for c in range(cores):
            base = _PRIVATE_BASE + c * _PRIVATE_SPAN
            for offset in range(self.private_blocks):
                streams[c].append(Access(c, base + offset, AccessKind.READ, gap))
        for i in range(self.pool_blocks):
            c = int(self._pool_start[i])
            streams[c].append(Access(c, _pool_addr(i), AccessKind.READ, gap))
        for i in range(self.hot_blocks):
            c = i % cores
            streams[c].append(Access(c, _hot_addr(i), AccessKind.READ, gap))
        for i in range(self.code_blocks):
            c = i % cores
            streams[c].append(Access(c, _code_addr(i), AccessKind.IFETCH, gap))
        return streams

    def generate(self, total_accesses: int) -> "list[list[Access]]":
        """Generate ``total_accesses`` accesses split into per-core streams.

        The returned streams start with an initialization pass over every
        region (see :meth:`_init_pass`) followed by ``total_accesses``
        steady-state accesses drawn from the profile's mix.
        """
        if total_accesses <= 0:
            raise ConfigError("total_accesses must be positive")
        profile = self.profile
        rng = self._rng
        cores = self.config.num_cores
        n = total_accesses

        mix = np.array(
            [
                profile.private_fraction,
                profile.shared_fraction,
                profile.hot_fraction,
                profile.code_fraction,
                profile.stream_fraction,
            ]
        )
        region = rng.choice(5, size=n, p=mix)
        core = rng.integers(0, cores, size=n)
        uniform = rng.random(size=n)
        gaps = rng.poisson(profile.cpi_gap, size=n)

        addr = np.zeros(n, dtype=np.int64)
        is_write = np.zeros(n, dtype=bool)
        is_ifetch = np.zeros(n, dtype=bool)

        # -- private ------------------------------------------------------
        mask = region == _REGION_PRIVATE
        count = int(mask.sum())
        if count:
            if self._private_pmf is not None:
                offsets = rng.choice(
                    self.private_blocks, size=count, p=self._private_pmf
                )
                # Decorrelate the per-core popularity order so hot blocks
                # of different cores do not collide in the same LLC sets.
                offsets = (offsets * 769 + core[mask] * 31) % self.private_blocks
            else:
                offsets = rng.integers(0, self.private_blocks, size=count)
            addr[mask] = _PRIVATE_BASE + core[mask] * _PRIVATE_SPAN + offsets
            is_write[mask] = uniform[mask] < profile.write_fraction_private

        # -- shared pool ----------------------------------------------------
        mask = region == _REGION_SHARED
        count = int(mask.sum())
        if count:
            idx = rng.choice(self.pool_blocks, size=count, p=self._pool_pmf)
            addr[mask] = _pool_addr(idx)
            # Reassign the issuing core into the block's sharer window.
            offset = rng.integers(0, 1 << 30, size=count) % self._pool_width[idx]
            core[mask] = (self._pool_start[idx] + offset) % cores
            is_write[mask] = uniform[mask] < profile.write_fraction_shared

        # -- hot shared read-mostly ------------------------------------------
        mask = region == _REGION_HOT
        count = int(mask.sum())
        if count:
            if self._hot_pmf is not None:
                idx = rng.choice(self.hot_blocks, size=count, p=self._hot_pmf)
            else:
                idx = rng.integers(0, self.hot_blocks, size=count)
            addr[mask] = _hot_addr(idx)
            is_write[mask] = uniform[mask] < profile.hot_write_fraction

        # -- shared code -------------------------------------------------------
        mask = region == _REGION_CODE
        count = int(mask.sum())
        if count:
            idx = rng.choice(self.code_blocks, size=count, p=self._code_pmf)
            addr[mask] = _code_addr(idx)
            is_ifetch[mask] = True

        # -- streaming (assembled with per-core counters below) ----------------
        stream_mask = region == _REGION_STREAM
        is_write[stream_mask] = uniform[stream_mask] < profile.write_fraction_private

        streams = self._init_pass()
        stream_cursor = [0] * cores
        core_list = core.tolist()
        addr_list = addr.tolist()
        region_list = region.tolist()
        write_list = is_write.tolist()
        ifetch_list = is_ifetch.tolist()
        gap_list = gaps.tolist()
        for i in range(n):
            if i % _DEADLINE_STRIDE == 0:
                check_deadline()
            c = core_list[i]
            if region_list[i] == _REGION_STREAM:
                a = _STREAM_BASE + c * _STREAM_SPAN + stream_cursor[c]
                stream_cursor[c] += 1
            else:
                a = addr_list[i]
            if ifetch_list[i]:
                kind = AccessKind.IFETCH
            elif write_list[i]:
                kind = AccessKind.WRITE
            else:
                kind = AccessKind.READ
            streams[c].append(Access(c, a, kind, gap_list[i]))
        return streams


# ----------------------------------------------------------------------
# Per-process trace cache
# ----------------------------------------------------------------------

#: Environment variable sizing the per-process trace cache: an integer
#: capacity, or ``off``/``0`` to disable memoization entirely.
ENV_TRACE_CACHE = "REPRO_TRACE_CACHE"

#: Path to an ``.rtrace`` capture; when set, :func:`generate_streams`
#: *replays* that file instead of generating, making the run
#: bit-identical to the live run that recorded it.
ENV_TRACE_FILE = "REPRO_TRACE_FILE"

#: Directory to record generated streams into; each distinct
#: (profile, cores, accesses, seed) point is written once as
#: ``<profile>-c<cores>-a<accesses>-s<seed>.rtrace``.
ENV_TRACE_RECORD = "REPRO_TRACE_RECORD"

_DEFAULT_CACHE_CAPACITY = 8

_trace_cache: "OrderedDict[tuple, list]" = OrderedDict()
_trace_cache_hits = 0
_trace_cache_misses = 0


def _cache_capacity() -> int:
    raw = os.environ.get(ENV_TRACE_CACHE)
    if raw is None:
        return _DEFAULT_CACHE_CAPACITY
    value = raw.strip().lower()
    if value in ("off", "false", "no"):
        return 0
    try:
        return max(0, int(value))
    except ValueError:
        print(
            f"repro: ignoring unrecognized {ENV_TRACE_CACHE}={raw!r} "
            f"(expected an integer or off)",
            file=sys.stderr,
        )
        return _DEFAULT_CACHE_CAPACITY


def clear_trace_cache() -> None:
    """Drop every memoized stream set and zero the hit/miss counters."""
    global _trace_cache_hits, _trace_cache_misses
    _trace_cache.clear()
    _trace_cache_hits = 0
    _trace_cache_misses = 0


def trace_cache_stats() -> "dict[str, int]":
    """Hit/miss/size counters of the per-process trace cache."""
    return {
        "hits": _trace_cache_hits,
        "misses": _trace_cache_misses,
        "entries": len(_trace_cache),
    }


def _cache_insert(key: tuple, streams: "list[list[Access]]", capacity: int) -> None:
    _trace_cache[key] = streams
    while len(_trace_cache) > capacity:
        _trace_cache.popitem(last=False)


def load_streams(path, config: SystemConfig) -> "list[list[Access]]":
    """Load per-core streams from an ``.rtrace`` capture for replay.

    Results are memoized in the same per-process LRU cache as generated
    streams, keyed on *trace-file identity* — the absolute path plus a
    content hash — so overwriting a file at the same path never serves
    the previous file's streams, while re-reading unchanged content is
    free. Raises :class:`~repro.errors.TraceError` when the capture's
    core count disagrees with ``config`` (a replay on the wrong geometry
    would silently misattribute every access).
    """
    global _trace_cache_hits, _trace_cache_misses
    from repro.workloads.capture import load_capture, trace_fingerprint

    capacity = _cache_capacity()
    key = None
    if capacity > 0:
        key = ("trace-file", os.path.abspath(path), trace_fingerprint(path))
        cached = _trace_cache.get(key)
        if cached is not None:
            _trace_cache_hits += 1
            _trace_cache.move_to_end(key)
            return cached
        _trace_cache_misses += 1
    streams, header = load_capture(path)
    if header["num_cores"] != config.num_cores:
        raise TraceError(
            f"trace file {path} was recorded on {header['num_cores']} cores "
            f"but the configured system has {config.num_cores}"
        )
    if key is not None:
        _cache_insert(key, streams, capacity)
    return streams


def _maybe_record(
    streams: "list[list[Access]]",
    app: WorkloadProfile,
    config: SystemConfig,
    total_accesses: int,
    seed: int,
) -> None:
    """Record ``streams`` under ``REPRO_TRACE_RECORD`` if not yet captured."""
    record_dir = os.environ.get(ENV_TRACE_RECORD)
    if not record_dir:
        return
    from repro.workloads.capture import save_capture

    path = Path(record_dir) / (
        f"{app.name}-c{config.num_cores}-a{total_accesses}-s{seed}.rtrace"
    )
    if path.exists():
        return
    save_capture(
        path,
        streams,
        profile=app,
        seed=seed,
        total_accesses=total_accesses,
        geometry={
            "num_cores": config.num_cores,
            "l2_blocks": config.l2_blocks,
            "llc_blocks": config.llc_blocks,
        },
    )


def generate_streams(
    app: "WorkloadProfile | str",
    config: SystemConfig,
    total_accesses: int,
    seed: int = 0,
) -> "list[list[Access]]":
    """One-call helper: build a generator and produce streams.

    Results are memoized per process (keyed on the profile, the config
    fields generation depends on, the trace length, and the seed), so a
    sweep revisiting the same (app, scale, seed) point reuses the exact
    stream objects instead of regenerating them. Streams are treated as
    immutable by every consumer — the engine only reads them — which is
    what makes sharing the objects safe. Capacity is ``REPRO_TRACE_CACHE``
    (default 8 entries, LRU; ``off`` disables caching).

    Two environment hooks feed the record/replay workflow (see
    ``docs/verification.md``): ``REPRO_TRACE_FILE`` replays a recorded
    ``.rtrace`` capture instead of generating (cached on file identity,
    path + content hash, via :func:`load_streams`), and
    ``REPRO_TRACE_RECORD`` writes each freshly seen point into the named
    directory — including on cache hits, so a warm process still records.
    """
    global _trace_cache_hits, _trace_cache_misses
    from repro.workloads.profiles import profile as lookup

    trace_file = os.environ.get(ENV_TRACE_FILE)
    if trace_file:
        return load_streams(trace_file, config)
    if isinstance(app, str):
        app = lookup(app)
    capacity = _cache_capacity()
    if capacity <= 0:
        streams = SyntheticTraceGenerator(app, config, seed).generate(total_accesses)
        _maybe_record(streams, app, config, total_accesses, seed)
        return streams
    # Generation depends only on the profile (frozen, hashable) and these
    # derived config fields — see SyntheticTraceGenerator.__init__.
    key = (
        app,
        config.num_cores,
        config.l2_blocks,
        config.llc_blocks,
        total_accesses,
        seed,
    )
    cached = _trace_cache.get(key)
    if cached is not None:
        _trace_cache_hits += 1
        _trace_cache.move_to_end(key)
        _maybe_record(cached, app, config, total_accesses, seed)
        return cached
    _trace_cache_misses += 1
    streams = SyntheticTraceGenerator(app, config, seed).generate(total_accesses)
    _maybe_record(streams, app, config, total_accesses, seed)
    _cache_insert(key, streams, capacity)
    return streams
