"""Metrics registry: counters, gauges, histograms, phase timers.

A :class:`MetricsRegistry` is a per-run bag of named instruments that
snapshots into plain JSON-serializable dicts. The harness
(:func:`repro.analysis.runner.run_app`) builds one when
``REPRO_METRICS`` / ``--metrics`` is on, feeds it wall-clock phase
timers plus transaction counters harvested from the finished
:class:`~repro.sim.stats.SimStats`, and publishes the snapshot into the
stats' ``telemetry`` section — which, like the ``recovery`` section, is
included in dumps *only when nonempty*, so metrics-off runs keep a
bit-identical statistics dump.

Snapshots from independent runs (e.g. :mod:`repro.parallel` workers)
merge with :func:`merge_snapshots`: counters and histogram counts add,
gauges keep the last value seen, histogram min/max widen.

Determinism note: counters and gauges derive from simulated state and
are deterministic; the ``phase:*`` timers measure host wall-clock time
and are **not** — they exist to feed performance baselines
(``BENCH_*.json``), not figures. This is why the telemetry section is
excluded from the golden statistics snapshots.
"""

from __future__ import annotations

import math
import os
import sys
import time
from contextlib import contextmanager


class Histogram:
    """A log2-bucketed histogram of non-negative samples.

    Buckets are powers of two (the bucket key is
    ``ceil(log2(value))``, with a dedicated ``0`` bucket), which keeps
    the snapshot tiny over any value range — latencies in cycles and
    phase times in seconds share the same machinery.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: "float | None" = None
        self.max: "float | None" = None
        self.buckets: "dict[int, int]" = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        key = 0 if value <= 0 else max(0, math.ceil(math.log2(value)))
        self.buckets[key] = self.buckets.get(key, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {str(key): self.buckets[key] for key in sorted(self.buckets)},
        }

    def merge_dict(self, payload: dict) -> None:
        """Fold a snapshot produced by :meth:`as_dict` into this histogram."""
        self.count += int(payload.get("count", 0))
        self.total += float(payload.get("total", 0.0))
        for bound in ("min", "max"):
            theirs = payload.get(bound)
            if theirs is None:
                continue
            ours = getattr(self, bound)
            if ours is None:
                setattr(self, bound, theirs)
            else:
                pick = min if bound == "min" else max
                setattr(self, bound, pick(ours, theirs))
        for key, count in (payload.get("buckets") or {}).items():
            key = int(key)
            self.buckets[key] = self.buckets.get(key, 0) + int(count)


class MetricsRegistry:
    """Named counters, gauges, and histograms for one run (or one sweep)."""

    enabled = True

    def __init__(self) -> None:
        self._counters: "dict[str, int]" = {}
        self._gauges: "dict[str, float]" = {}
        self._histograms: "dict[str, Histogram]" = {}

    # -- instruments ---------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name``."""
        self._counters[name] = self._counters.get(name, 0) + int(n)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)

    @contextmanager
    def timer(self, name: str):
        """Time a ``with`` body into histogram ``phase:<name>`` (seconds)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(f"phase:{name}", time.perf_counter() - start)

    # -- snapshots -----------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict snapshot; empty dict when nothing was recorded."""
        payload: dict = {}
        if self._counters:
            payload["counters"] = dict(sorted(self._counters.items()))
        if self._gauges:
            payload["gauges"] = dict(sorted(self._gauges.items()))
        if self._histograms:
            payload["histograms"] = {
                name: hist.as_dict()
                for name, hist in sorted(self._histograms.items())
            }
        return payload

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one."""
        for name, value in (snapshot.get("counters") or {}).items():
            self.count(name, value)
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(name, value)
        for name, payload in (snapshot.get("histograms") or {}).items():
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.merge_dict(payload)

    def publish(self, stats) -> None:
        """Fill ``stats.telemetry`` — only when something was recorded,
        so metrics-off runs keep a bit-identical statistics dump."""
        snapshot = self.snapshot()
        if snapshot:
            stats.telemetry = snapshot


def merge_snapshots(snapshots: "list[dict]") -> dict:
    """Merge per-run telemetry snapshots (e.g. across sweep workers)."""
    merged = MetricsRegistry()
    for snapshot in snapshots:
        if snapshot:
            merged.merge(snapshot)
    return merged.snapshot()


@contextmanager
def phase(metrics: "MetricsRegistry | None", name: str):
    """``metrics.timer(name)`` that degrades to a no-op without metrics."""
    if metrics is None:
        yield
    else:
        with metrics.timer(name):
            yield


def metrics_from_env() -> "MetricsRegistry | None":
    """Build a fresh registry from ``REPRO_METRICS``, or None.

    ``on``/``1``/``yes``/``true`` enable metrics collection;
    ``off``/``0``/``no``/``false``/unset disable it. Anything else
    disables too, with a warning on stderr — never silently, matching
    the other ``*_from_env`` builders.
    """
    raw = os.environ.get("REPRO_METRICS", "").strip().lower()
    if not raw or raw in ("off", "0", "no", "false"):
        return None
    if raw in ("on", "1", "yes", "true"):
        return MetricsRegistry()
    print(
        f"repro: ignoring invalid REPRO_METRICS={raw!r} (expected on or "
        f"off); metrics collection is DISABLED",
        file=sys.stderr,
    )
    return None
