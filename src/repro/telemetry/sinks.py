"""Trace sinks and the tracer front-end.

The tracer follows the same zero-overhead-when-off contract as the
flight recorder (:class:`repro.resilience.recorder.NullRecorder`) and
the coverage map (:class:`repro.coherence.base.NullCoverage`): every
instrumented component carries a shared :data:`NULL_TRACER` whose
``enabled`` flag is False, and every hot-path hook is guarded with
``if self.tracer.enabled:`` — an untraced run executes the exact same
instructions it always did and stays bit-identical (pinned by
``tests/test_telemetry.py``).

A *sink* is anywhere events go. Three backends:

* :class:`NullSink` — drops everything (paired with :class:`NullTracer`
  this is the off state).
* :class:`RingBufferSink` — keeps the last ``capacity`` events in
  memory; cheap enough for tests and post-mortem "what just happened"
  inspection of arbitrarily long runs.
* :class:`JsonlSink` — appends one JSON object per event to a file;
  the durable backend behind ``--trace`` and
  ``tools/trace_report.py``.

Anything with ``write(event)`` and ``close()`` is a valid sink — the
protocol is structural, no registration required.
"""

from __future__ import annotations

import glob
import json
import os
import sys

from repro.telemetry.events import TraceEvent

#: Default JSONL trace path when ``REPRO_TRACE_OUT`` is unset.
DEFAULT_TRACE_OUT = "trace.jsonl"

#: Default ring-buffer capacity (events retained).
DEFAULT_RING_CAPACITY = 65536


class NullSink:
    """Backend that drops every event."""

    def write(self, event: TraceEvent) -> None:  # pragma: no cover - no-op
        pass

    def close(self) -> None:
        pass


class RingBufferSink:
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        from collections import deque

        self.capacity = max(1, int(capacity))
        self._ring: "deque[TraceEvent]" = deque(maxlen=self.capacity)

    def write(self, event: TraceEvent) -> None:
        self._ring.append(event)

    def close(self) -> None:
        pass

    def events(self) -> "list[TraceEvent]":
        """The retained events, oldest first."""
        return list(self._ring)


class JsonlSink:
    """Appends one JSON object per event to ``path``.

    The file is opened lazily on the first event and in append mode, so
    several runs in one process accumulate into a single trace, and a
    tracer that never fires never creates the file.
    """

    def __init__(self, path: "str | os.PathLike") -> None:
        self.path = os.fspath(path)
        self._handle = None

    def write(self, event: TraceEvent) -> None:
        if self._handle is None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._handle = open(self.path, "a")
        self._handle.write(
            json.dumps(event.to_dict(), separators=(",", ":")) + "\n"
        )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class NullTracer:
    """Tracing disabled: the shared default, every hook short-circuits."""

    enabled = False

    def emit(self, kind: str, **context) -> None:  # pragma: no cover - no-op
        pass

    def close(self) -> None:
        pass


#: The shared disabled tracer every instrumented component starts with.
NULL_TRACER = NullTracer()


class Tracer:
    """Stamps sequence numbers onto events and hands them to a sink."""

    enabled = True

    def __init__(self, sink) -> None:
        self.sink = sink
        self.seq = 0
        self.emitted = 0

    def emit(
        self,
        kind: str,
        cycle: "int | None" = None,
        core: "int | None" = None,
        addr: "int | None" = None,
        **data,
    ) -> None:
        self.seq += 1
        self.emitted += 1
        self.sink.write(TraceEvent(self.seq, kind, cycle, core, addr, data))

    def close(self) -> None:
        self.sink.close()


def install_tracer(system, tracer) -> None:
    """Attach ``tracer`` to every instrumented component of ``system``.

    The home controller always carries a ``tracer`` attribute; tracking
    containers (``directory``, ``tiny``) get one when they expose it.
    Passing :data:`NULL_TRACER` (or any disabled tracer) restores the
    off state.
    """
    home = system.home
    home.tracer = tracer
    for attr in ("directory", "tiny"):
        container = getattr(home, attr, None)
        if container is not None and hasattr(container, "tracer"):
            container.tracer = tracer


# ----------------------------------------------------------------------
# Environment mirror and worker fan-in
# ----------------------------------------------------------------------

def trace_base_path() -> str:
    """The JSONL trace destination (``REPRO_TRACE_OUT`` or the default)."""
    return os.environ.get("REPRO_TRACE_OUT", "").strip() or DEFAULT_TRACE_OUT


def trace_output_path() -> str:
    """Where *this process* should write its JSONL trace.

    Pool workers (flagged by ``REPRO_TRACE_WORKER``, set by the
    :mod:`repro.parallel` worker initializer) write per-process
    ``<base>.<pid>.part`` files; :func:`merge_worker_traces` fans them
    into the base file afterwards. Everyone else writes the base file
    directly.
    """
    base = trace_base_path()
    if os.environ.get("REPRO_TRACE_WORKER"):
        return f"{base}.{os.getpid()}.part"
    return base


def merge_worker_traces(base: "str | None" = None) -> int:
    """Append every ``<base>.*.part`` worker trace into ``<base>``.

    Parts are concatenated in sorted filename order (stable across
    reruns) and deleted once merged. Returns the number of merged part
    files. Within one part, events keep their emission order; across
    parts the order is by worker, not by simulated time — consumers
    that need a global order sort on ``(addr, seq)`` or ``cycle``, as
    ``tools/trace_report.py`` does.
    """
    base = base or trace_base_path()
    parts = sorted(glob.glob(f"{base}.*.part"))
    if not parts:
        return 0
    with open(base, "a") as out:
        for part in parts:
            with open(part) as handle:
                out.write(handle.read())
            os.unlink(part)
    return len(parts)


def jsonl_trace_enabled() -> bool:
    """True when ``REPRO_TRACE`` selects the JSONL backend."""
    raw = os.environ.get("REPRO_TRACE", "").strip().lower()
    return raw in ("jsonl", "on", "1", "yes", "true")


def tracer_from_env() -> "Tracer | None":
    """Build a tracer from ``REPRO_TRACE``, or None when disabled.

    Accepted values: ``jsonl`` (or ``on``/``1``/``yes``/``true``) for
    the JSONL backend writing to ``REPRO_TRACE_OUT`` (default
    ``trace.jsonl``); ``ring`` or ``ring:N`` for an in-memory ring
    buffer of N events; ``off``/``0``/``no``/``false``/unset to
    disable. Anything else disables tracing too, but *loudly*: a
    warning on stderr, never a silent None, mirroring
    :func:`repro.resilience.auditor.auditor_from_env`.
    """
    raw = os.environ.get("REPRO_TRACE", "").strip().lower()
    if not raw or raw in ("off", "0", "no", "false"):
        return None
    if raw in ("jsonl", "on", "1", "yes", "true"):
        return Tracer(JsonlSink(trace_output_path()))
    name, _, arg = raw.partition(":")
    if name == "ring":
        capacity = DEFAULT_RING_CAPACITY
        if arg:
            try:
                capacity = int(arg)
            except ValueError:
                capacity = -1
        if capacity > 0:
            return Tracer(RingBufferSink(capacity))
    print(
        f"repro: ignoring invalid REPRO_TRACE={raw!r} (expected jsonl, "
        f"ring[:N], or off); tracing is DISABLED",
        file=sys.stderr,
    )
    return None


def read_trace(path: "str | os.PathLike") -> "list[TraceEvent]":
    """Parse a JSONL trace file back into :class:`TraceEvent` records.

    A torn trailing line (a run killed mid-write) is tolerated and
    skipped, matching the sweep journal's crash-tolerance convention.
    """
    events: "list[TraceEvent]" = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(TraceEvent.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError):
                continue
    return events
