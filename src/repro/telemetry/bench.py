"""Machine-readable performance baselines (``BENCH_*.json``).

The benchmark suite (``benchmarks/``) measures wall-clock cost of
figure points, but until now the numbers died with the pytest-benchmark
terminal table. :func:`write_bench_point` persists one small JSON file
per measured point — name, timing stats, and the telemetry snapshot of
the run — so CI can upload them as artifacts and a perf trajectory can
be accumulated across commits.

Emission is opt-in via ``REPRO_BENCH_DIR``: when the variable is unset
(every local ``pytest benchmarks`` run by default), nothing is written.
"""

from __future__ import annotations

import json
import os
import re


def bench_dir_from_env() -> "str | None":
    """The ``BENCH_*.json`` output directory (``REPRO_BENCH_DIR``), or None."""
    raw = os.environ.get("REPRO_BENCH_DIR", "").strip()
    return raw or None


def write_bench_point(out_dir: "str | os.PathLike", name: str, **fields) -> str:
    """Write one perf point to ``<out_dir>/BENCH_<name>.json``.

    ``name`` is slugged (anything outside ``[A-Za-z0-9._-]`` becomes
    ``_``) so benchmark ids with brackets make valid filenames.
    ``fields`` land in the JSON payload alongside ``name``. Returns the
    written path. The write is atomic (temp file + rename) so a killed
    CI job never leaves a torn artifact.
    """
    out_dir = os.fspath(out_dir)
    os.makedirs(out_dir, exist_ok=True)
    slug = re.sub(r"[^A-Za-z0-9._-]+", "_", name).strip("_")
    path = os.path.join(out_dir, f"BENCH_{slug}.json")
    payload = {"name": name}
    payload.update(fields)
    tmp = f"{path}.tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path
