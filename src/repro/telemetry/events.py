"""Structured trace events.

A :class:`TraceEvent` is one observation of the simulator doing
something interesting: a memory transaction starting or finishing, a
tracking structure allocating or evicting an entry, a spill, a
back-invalidation, an STRA classification, an audit window closing, or
a recovery repair. Events are *structured* — a short ``group:action``
kind string plus typed context fields — so a trace can be filtered,
aggregated, and replayed mechanically instead of being grepped out of
log prose.

The event taxonomy (the authoritative table lives in
``docs/telemetry.md``):

========================  =====================================  ==========================
kind                      emitted from                           extra fields
========================  =====================================  ==========================
``txn:start``             ``repro.sim.engine``                   ``op``
``txn:finish``            ``repro.sim.engine``                   ``latency``
``measure:start``         ``repro.sim.engine``                   ``warmup_accesses``
``inval``                 ``repro.coherence.base``               ``prior``
``back_inval``            ``repro.coherence`` home controllers   ``holders``
``dir:alloc``             ``repro.directory`` containers         ``grain`` (MgD only)
``dir:evict``             ``repro.directory`` containers         ``grain`` (MgD only)
``tiny:alloc``            ``repro.coherence.inllc_home``         —
``tiny:evict``            ``repro.coherence.inllc_home``         —
``tiny:decline``          ``repro.coherence.inllc_home``         —
``tiny:spill``            ``repro.coherence.inllc_home``         —
``tiny:unspill``          ``repro.coherence.inllc_home``         —
``stra:classify``         ``repro.coherence.base``               ``category``, ``fwd_reads``
``audit:window``          ``repro.sim.engine``                   ``audits``
``audit:violation``       ``repro.sim.engine``                   ``error``
``recovery:repair``       ``repro.recovery.manager``             ``action``, ``verified``
``guard:pressure``        ``repro.guard.watchdog``               ``resource``, ``observed``, ``limit``
``guard:throttle``        ``repro.guard.backpressure``           ``reason``, ``jobs_from``, ``jobs_to``
``guard:restore``         ``repro.guard.backpressure``           ``reason``, ``jobs_from``, ``jobs_to``
========================  =====================================  ==========================

Serialization is line-oriented JSON (JSONL): one
:func:`TraceEvent.to_dict` object per line, reversible bit-exactly via
:func:`TraceEvent.from_dict` — the round trip is pinned by
``tests/test_telemetry.py``.
"""

from __future__ import annotations

#: Every event kind the simulator emits, grouped for docs and tooling.
EVENT_KINDS: "tuple[str, ...]" = (
    "txn:start",
    "txn:finish",
    "measure:start",
    "inval",
    "back_inval",
    "dir:alloc",
    "dir:evict",
    "tiny:alloc",
    "tiny:evict",
    "tiny:decline",
    "tiny:spill",
    "tiny:unspill",
    "stra:classify",
    "audit:window",
    "audit:violation",
    "recovery:repair",
    "guard:pressure",
    "guard:throttle",
    "guard:restore",
)


class TraceEvent:
    """One structured simulator observation.

    ``seq`` is a per-tracer monotonic sequence number (emission order),
    ``kind`` one of :data:`EVENT_KINDS`, and ``cycle``/``core``/``addr``
    the simulated context where known. Anything event-specific rides in
    ``data``.
    """

    __slots__ = ("seq", "kind", "cycle", "core", "addr", "data")

    def __init__(
        self,
        seq: int,
        kind: str,
        cycle: "int | None" = None,
        core: "int | None" = None,
        addr: "int | None" = None,
        data: "dict | None" = None,
    ) -> None:
        self.seq = seq
        self.kind = kind
        self.cycle = cycle
        self.core = core
        self.addr = addr
        self.data = data or {}

    def to_dict(self) -> dict:
        """A compact JSON-serializable form (omits absent context)."""
        payload: dict = {"seq": self.seq, "kind": self.kind}
        if self.cycle is not None:
            payload["cycle"] = self.cycle
        if self.core is not None:
            payload["core"] = self.core
        if self.addr is not None:
            payload["addr"] = self.addr
        if self.data:
            payload["data"] = self.data
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        return cls(
            seq=payload["seq"],
            kind=payload["kind"],
            cycle=payload.get("cycle"),
            core=payload.get("core"),
            addr=payload.get("addr"),
            data=dict(payload.get("data") or {}),
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:  # pragma: no cover - events are not keys
        return hash((self.seq, self.kind, self.addr))

    def __repr__(self) -> str:
        parts = [f"#{self.seq} {self.kind}"]
        if self.cycle is not None:
            parts.append(f"@{self.cycle}")
        if self.core is not None:
            parts.append(f"core={self.core}")
        if self.addr is not None:
            parts.append(f"addr={self.addr:#x}")
        parts.extend(f"{key}={value}" for key, value in self.data.items())
        return " ".join(parts)
