"""Observability for the simulator: tracing, metrics, perf baselines.

``repro.telemetry`` is the bottom observability layer — stdlib-only, so
every simulator layer (``directory``, ``coherence``, ``sim``,
``recovery``) can import it without cycles. It has three parts:

* **Tracing** (:mod:`~repro.telemetry.events`,
  :mod:`~repro.telemetry.sinks`): structured :class:`TraceEvent`
  records emitted from instrumented hot paths into a pluggable sink
  (ring buffer, JSONL file, or null). Off by default via the shared
  :data:`NULL_TRACER`; disabled runs are bit-identical.
* **Metrics** (:mod:`~repro.telemetry.metrics`): a
  :class:`MetricsRegistry` of counters, gauges, and log2-bucketed
  histograms that snapshots into the publish-only-when-nonempty
  ``telemetry`` stats section and merges across parallel workers.
* **Bench points** (:mod:`~repro.telemetry.bench`): ``BENCH_*.json``
  perf-baseline emission for CI artifacts.

End-to-end usage is documented in ``docs/telemetry.md``.
"""

from repro.telemetry.events import EVENT_KINDS, TraceEvent
from repro.telemetry.metrics import (
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    metrics_from_env,
    phase,
)
from repro.telemetry.sinks import (
    DEFAULT_RING_CAPACITY,
    DEFAULT_TRACE_OUT,
    NULL_TRACER,
    JsonlSink,
    NullSink,
    NullTracer,
    RingBufferSink,
    Tracer,
    install_tracer,
    jsonl_trace_enabled,
    merge_worker_traces,
    read_trace,
    trace_base_path,
    trace_output_path,
    tracer_from_env,
)
from repro.telemetry.bench import bench_dir_from_env, write_bench_point

__all__ = [
    "EVENT_KINDS",
    "TraceEvent",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "metrics_from_env",
    "phase",
    "DEFAULT_RING_CAPACITY",
    "DEFAULT_TRACE_OUT",
    "NULL_TRACER",
    "JsonlSink",
    "NullSink",
    "NullTracer",
    "RingBufferSink",
    "Tracer",
    "install_tracer",
    "jsonl_trace_enabled",
    "merge_worker_traces",
    "read_trace",
    "trace_base_path",
    "trace_output_path",
    "tracer_from_env",
    "bench_dir_from_env",
    "write_bench_point",
]
