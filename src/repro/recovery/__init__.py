"""Self-healing coherence: bounded detect -> diagnose -> repair -> resume.

PR 1 added fault *injection* and online *detection*; this package closes
the loop. A :class:`RecoveryManager` wraps the
:class:`~repro.resilience.auditor.ProtocolAuditor` audit sites so a
tripped invariant no longer aborts the run: the corrupted address is
quarantined, its tracking state is reconstructed by quiet-probing the
private caches (:meth:`~repro.coherence.base.BaseHome.probe_truth`),
the scheme's home controller rewrites the structure that claims the
block (:meth:`~repro.coherence.base.BaseHome.rebuild_tracking`), the
full audit re-runs to verify the repair, and the simulation resumes.
Repairs are bounded by a :class:`RecoveryPolicy`; exhausting the budget
escalates to :class:`~repro.errors.RecoveryEscalation`.
"""

from repro.recovery.manager import (
    DEFAULT_MAX_REPAIRS,
    RecoveryManager,
    RecoveryPolicy,
    RepairEvent,
    recovery_from_env,
)

__all__ = [
    "DEFAULT_MAX_REPAIRS",
    "RecoveryManager",
    "RecoveryPolicy",
    "RepairEvent",
    "recovery_from_env",
]
