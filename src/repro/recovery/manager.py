"""Bounded repair of tripped coherence invariants.

The manager sits between the engine and the auditor: instead of calling
``auditor.audit(system)`` directly, the engine (and the verify harness)
calls :meth:`RecoveryManager.audit`, which catches
:class:`~repro.errors.InvariantViolation` and runs one repair cycle per
violation —

1. **diagnose**: the violation's ``addr`` names the corrupted block;
   violations without an address are undiagnosable and escalate.
2. **quarantine**: the address is remembered; under ``repair-strict`` a
   second violation on the same block escalates instead of re-repairing.
3. **repair**: :meth:`~repro.coherence.base.BaseHome.probe_truth`
   reconstructs the sharer vector / owner from the private caches
   (ground truth, exactly what scrubbing directory hardware does) and
   :meth:`~repro.coherence.base.BaseHome.rebuild_tracking` rewrites the
   tracking structure in place.
4. **re-verify**: a full invariant check confirms the repair took; the
   outer loop then re-runs the audit until it passes clean.
5. **resume**: control returns to the engine, which continues the trace.

The probe's traffic and latency are charged to a dedicated *recovery*
section of the statistics, **not** to the protocol traffic meters, so a
clean run with recovery enabled stays bit-identical to one without it
(the recovery section is published only when at least one repair ran).
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass

from repro.errors import (
    ConfigError,
    InvariantViolation,
    OracleViolation,
    ProtocolError,
    RecoveryError,
    RecoveryEscalation,
)

#: Default repair budget per run.
DEFAULT_MAX_REPAIRS = 8

_MODES = ("abort", "repair", "repair-strict")


@dataclass(frozen=True)
class RecoveryPolicy:
    """How a run responds to a tripped invariant.

    ``abort`` is the historical behaviour (the violation propagates).
    ``repair`` rebuilds the corrupted tracking state and resumes, up to
    ``max_repairs`` attempts per run. ``repair-strict`` additionally
    escalates when the *same* block trips twice — a recurring violation
    on one address means the repair is not holding.
    """

    mode: str = "abort"
    max_repairs: int = DEFAULT_MAX_REPAIRS

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ConfigError(
                f"unknown recovery mode {self.mode!r}; expected one of {_MODES}"
            )
        if self.max_repairs < 0:
            raise ConfigError("max_repairs must be >= 0")

    @property
    def enabled(self) -> bool:
        return self.mode != "abort"

    @property
    def strict(self) -> bool:
        return self.mode == "repair-strict"


@dataclass
class RepairEvent:
    """One completed repair attempt, for the recovery log."""

    addr: int
    violation: str
    action: str
    attempt: int
    verified: bool


class RecoveryManager:
    """Executes the repair cycle and accounts its cost.

    Counters live on the manager (not on :class:`SimStats`) because the
    engine resets the statistics at the warmup boundary; repairs that
    happen during warmup must still appear in the final report. The
    engine publishes them once, after ``system.finalize()``, via
    :meth:`publish`.
    """

    def __init__(self, policy: "RecoveryPolicy | None" = None) -> None:
        self.policy = policy if policy is not None else RecoveryPolicy("repair")
        self.events: "list[RepairEvent]" = []
        self.repairs = 0
        self.failed_repairs = 0
        self.escalations = 0
        #: Addresses repaired at least once this run.
        self.quarantined: "set[int]" = set()
        #: Probe cost, charged to the recovery section only.
        self.probe_messages = 0
        self.repair_cycles = 0

    # ------------------------------------------------------------------
    # Audit-site entry point
    # ------------------------------------------------------------------

    def audit(self, auditor, system) -> None:
        """Run one audit window, repairing violations until it passes.

        With an ``abort`` policy this is exactly ``auditor.audit``.
        Otherwise each :class:`InvariantViolation` triggers one repair
        attempt and the audit re-runs; the loop is bounded by the repair
        budget (every attempt consumes it, and escalation raises).
        """
        if not self.policy.enabled:
            auditor.audit(system)
            return
        while True:
            try:
                auditor.audit(system)
                return
            except OracleViolation:
                # Wrong *data* was observed; no directory rebuild can
                # undo that. Never repaired, always fatal.
                raise
            except InvariantViolation as err:
                self._attempt_repair(system, err)

    # ------------------------------------------------------------------
    # One repair cycle
    # ------------------------------------------------------------------

    def _attempt_repair(self, system, err: InvariantViolation) -> None:
        addr = err.addr
        if addr is None:
            self._escalate(
                f"violation carries no target address, cannot diagnose: {err}",
                err,
            )
        if self.repairs + self.failed_repairs >= self.policy.max_repairs:
            self._escalate(
                f"repair budget exhausted after {self.policy.max_repairs} "
                f"attempt(s); latest violation: {err}",
                err,
                addr=addr,
            )
        if self.policy.strict and addr in self.quarantined:
            self._escalate(
                f"block {addr:#x} tripped an invariant again after a repair "
                f"(repair-strict): {err}",
                err,
                addr=addr,
            )
        self.quarantined.add(addr)
        attempt = len(self.events) + 1
        try:
            truth = system.home.probe_truth(addr)
            action = system.home.rebuild_tracking(addr, truth)
        except (RecoveryError, ProtocolError) as repair_err:
            self.failed_repairs += 1
            self._escalate(
                f"repair of block {addr:#x} failed: {repair_err}",
                err,
                addr=addr,
            )
        self._charge(system)
        # Re-verify: the repaired block must hold up under a full check.
        # A violation elsewhere does not fail *this* repair — the outer
        # loop will diagnose and repair it on the next pass.
        verified = True
        try:
            system.check_invariants()
        except InvariantViolation as still:
            verified = still.addr is not None and still.addr != addr
        except ProtocolError:
            verified = False
        if verified:
            self.repairs += 1
        else:
            self.failed_repairs += 1
        self.events.append(
            RepairEvent(
                addr=addr,
                violation=err.message,
                action=action,
                attempt=attempt,
                verified=verified,
            )
        )
        tracer = getattr(system.home, "tracer", None)
        if tracer is not None and tracer.enabled:
            tracer.emit(
                "recovery:repair", addr=addr, action=action, verified=verified
            )

    def _escalate(self, message, cause, *, addr=None) -> None:
        self.escalations += 1
        raise RecoveryEscalation(
            message,
            addr=addr if addr is not None else cause.addr,
            cores=cause.cores,
            bank=cause.bank,
            history=cause.history,
        ) from cause

    def _charge(self, system) -> None:
        """Account the probe's cost in the recovery section.

        The rebuild quiet-probes every private hierarchy (one query and
        one response per core) and pays a worst-case round trip across
        the mesh plus the home tag rewrite — the same shape as the Stash
        scheme's broadcast recovery, which is the closest hardware
        analogue in the model.
        """
        config = system.config
        self.probe_messages += 2 * config.num_cores
        mesh = system.mesh
        max_span = (mesh.width - 1 + mesh.height - 1) * mesh.hop_cycles
        self.repair_cycles += 2 * max_span + config.llc_tag_latency

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def publish(self, stats) -> None:
        """Fill ``stats.recovery`` — only when something actually happened,
        so clean runs keep a bit-identical statistics dump."""
        if not self.events:
            return
        stats.recovery = {
            "repairs": self.repairs,
            "failed_repairs": self.failed_repairs,
            "attempts": len(self.events),
            "quarantined_blocks": len(self.quarantined),
            "probe_messages": self.probe_messages,
            "repair_cycles": self.repair_cycles,
            "escalations": self.escalations,
        }

    def report(self) -> "list[str]":
        """Human-readable repair log lines."""
        return [
            f"repair #{event.attempt}: block {event.addr:#x} "
            f"[{event.action}] "
            f"{'verified' if event.verified else 'NOT verified'} "
            f"<- {event.violation}"
            for event in self.events
        ]


def recovery_from_env() -> "RecoveryManager | None":
    """Build a manager from ``REPRO_RECOVERY``, or None.

    Accepted values: ``abort``/``off`` (and friends) disable recovery;
    ``repair`` / ``repair-strict`` / ``on`` enable it, optionally with a
    budget suffix (``repair:16``). Anything else warns on stderr and
    disables recovery — never silently, mirroring ``auditor_from_env``.
    """
    raw = os.environ.get("REPRO_RECOVERY", "").strip().lower()
    if not raw or raw in ("abort", "off", "0", "no", "false"):
        return None
    mode, _, budget = raw.partition(":")
    if mode in ("on", "1", "yes", "true"):
        mode = "repair"
    if mode not in ("repair", "repair-strict"):
        print(
            f"repro: ignoring invalid REPRO_RECOVERY={raw!r} "
            f"(expected abort, repair, repair-strict, or repair[:N]); "
            f"recovery is DISABLED",
            file=sys.stderr,
        )
        return None
    max_repairs = DEFAULT_MAX_REPAIRS
    if budget:
        try:
            max_repairs = int(budget)
        except ValueError:
            max_repairs = -1
        if max_repairs < 0:
            print(
                f"repro: ignoring invalid REPRO_RECOVERY={raw!r} "
                f"(budget must be a non-negative integer); "
                f"recovery is DISABLED",
                file=sys.stderr,
            )
            return None
    return RecoveryManager(RecoveryPolicy(mode=mode, max_repairs=max_repairs))
