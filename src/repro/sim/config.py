"""System configuration: Table I of the paper, plus scheme selection.

:class:`SystemConfig` encodes the simulated machine. The paper's machine
(:meth:`SystemConfig.paper`) has 128 cores; the default constructor is a
proportionally scaled 32-core machine that preserves every capacity
*ratio* (private/LLC/directory) so the pressure on each structure — and
hence the shape of every figure — carries over while runs stay fast.

The coherence-tracking scheme is selected by a spec dataclass:

* :class:`SparseSpec` — baseline sparse directory at some size ratio,
  optionally tracking shared blocks only (the Fig. 3 idealized design)
  and optionally skew-associative (Z-cache).
* :class:`InLLCSpec` — the Section III in-LLC tracking design, either the
  data-bits-borrowed variant or the storage-heavy tag-extended variant.
* :class:`TinySpec` — the tiny directory (Section IV) with the DSTRA or
  DSTRA+gNRU allocation policy and optional dynamic spilling.
* :class:`MgdSpec` / :class:`StashSpec` — the related proposals of
  Fig. 22.

Directory size ratios are relative to ``N``, the aggregate block capacity
of the private L2 caches, following the paper's convention: a ``1/16x``
directory tracks at most ``N/16`` blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.types import BLOCK_SIZE


@dataclass(frozen=True)
class SparseSpec:
    """Baseline sparse directory configuration."""

    ratio: float = 2.0
    assoc: int = 8
    #: Track only shared blocks; private/exclusive blocks are tracked in
    #: an idealized unbounded structure (the Fig. 3 experiment).
    shared_only: bool = False
    #: Use a four-way skew-associative Z-cache organization.
    zcache: bool = False

    name: str = field(default="sparse", init=False, repr=False)


@dataclass(frozen=True)
class InLLCSpec:
    """In-LLC coherence tracking (Section III)."""

    #: True for the storage-heavy variant that extends every LLC tag
    #: (left bars of Fig. 4); False borrows data-block bits instead.
    tag_extended: bool = False

    name: str = field(default="in_llc", init=False, repr=False)


@dataclass(frozen=True)
class TinySpec:
    """Tiny directory configuration (Section IV)."""

    ratio: float = 1 / 32
    #: "dstra" or "gnru" (DSTRA + generational NRU).
    policy: str = "gnru"
    #: Enable dynamic selective spilling into the LLC.
    spill: bool = False
    assoc: int = 8
    #: Spill-policy observation window, in per-bank LLC accesses.
    spill_window: int = 8192
    #: Generation bootstrap length for gNRU, in 4K-cycle ticks.
    gnru_default_generation: int = 16
    #: Ablation: adapt the gNRU generation length to the observed entry
    #: reuse interval (the paper's design) or keep it fixed.
    gnru_adaptive: bool = True
    #: Ablation: adapt the spill tolerance delta to the application phase
    #: (the paper's classes A-D) or keep it fixed at delta_B.
    spill_adaptive_delta: bool = True
    #: STRA counter width in bits (the paper uses six-bit counters).
    stra_counter_bits: int = 6

    name: str = field(default="tiny", init=False, repr=False)

    def __post_init__(self) -> None:
        if self.policy not in ("dstra", "gnru"):
            raise ConfigError(f"unknown tiny-directory policy {self.policy!r}")


@dataclass(frozen=True)
class MgdSpec:
    """Multi-grain directory configuration (Fig. 22)."""

    ratio: float = 1 / 8
    assoc: int = 8

    name: str = field(default="mgd", init=False, repr=False)


@dataclass(frozen=True)
class StashSpec:
    """Stash directory configuration (Fig. 22)."""

    ratio: float = 1 / 32
    assoc: int = 8

    name: str = field(default="stash", init=False, repr=False)


#: Any scheme spec accepted by :class:`SystemConfig`.
SchemeSpec = object


@dataclass
class SystemConfig:
    """Full simulated-machine configuration (Table I, scaled by default)."""

    num_cores: int = 32
    # -- private hierarchy (per core) ----------------------------------
    l1_kb: int = 32
    l1_assoc: int = 8
    l1_latency: int = 2
    l2_kb: int = 128
    l2_assoc: int = 8
    l2_latency: int = 3
    # -- shared LLC ----------------------------------------------------
    llc_assoc: int = 16
    #: LLC block capacity as a multiple of the aggregate private L2
    #: capacity (Table I: 32 MB LLC vs 16 MB aggregate L2 -> 2.0).
    llc_capacity_factor: float = 2.0
    llc_tag_latency: int = 4
    llc_data_latency: int = 2
    #: Extra cycle for decoding extended state from a corrupted block.
    corrupted_decode_latency: int = 1
    # -- interconnect and memory ----------------------------------------
    hop_cycles: int = 6
    dram_channels: int = 8
    dram_banks_per_channel: int = 8
    # -- coherence scheme ------------------------------------------------
    scheme: SchemeSpec = field(default_factory=SparseSpec)

    def __post_init__(self) -> None:
        if self.num_cores < 2:
            raise ConfigError("the simulator needs at least two cores")
        if self.num_cores & (self.num_cores - 1):
            raise ConfigError("num_cores must be a power of two")
        if self.llc_capacity_factor <= 0:
            raise ConfigError("llc_capacity_factor must be positive")
        if self.directory_entries(getattr(self.scheme, "ratio", 1.0)) < self.num_banks:
            raise ConfigError(
                "directory too small: fewer than one entry per bank"
            )

    # -- derived geometry ------------------------------------------------

    @property
    def l1_sets(self) -> int:
        """Sets per L1 cache."""
        return self.l1_kb * 1024 // BLOCK_SIZE // self.l1_assoc

    @property
    def l2_sets(self) -> int:
        """Sets per private L2 cache."""
        return self.l2_kb * 1024 // BLOCK_SIZE // self.l2_assoc

    @property
    def l2_blocks(self) -> int:
        """Block capacity of one private L2."""
        return self.l2_kb * 1024 // BLOCK_SIZE

    @property
    def aggregate_private_blocks(self) -> int:
        """``N``: total private L2 block capacity, the directory-sizing base."""
        return self.num_cores * self.l2_blocks

    @property
    def llc_blocks(self) -> int:
        """Total LLC block capacity."""
        return int(self.aggregate_private_blocks * self.llc_capacity_factor)

    @property
    def num_banks(self) -> int:
        """LLC banks (one per tile, Table I)."""
        return self.num_cores

    @property
    def llc_sets_per_bank(self) -> int:
        """Sets in each LLC bank."""
        return max(1, self.llc_blocks // self.num_banks // self.llc_assoc)

    def directory_entries(self, ratio: float) -> int:
        """Entries in a ``ratio x`` directory (at least one per bank)."""
        return max(self.num_banks, int(self.aggregate_private_blocks * ratio))

    # -- presets ----------------------------------------------------------

    @classmethod
    def paper(cls, scheme: SchemeSpec = None) -> "SystemConfig":
        """The paper's full 128-core configuration (Table I)."""
        return cls(num_cores=128, scheme=scheme or SparseSpec())

    @classmethod
    def scaled(cls, num_cores: int = 32, scheme: SchemeSpec = None) -> "SystemConfig":
        """A proportionally scaled machine with paper-identical ratios."""
        return cls(num_cores=num_cores, scheme=scheme or SparseSpec())

    @classmethod
    def halved_hierarchy(cls, num_cores: int = 32, scheme: SchemeSpec = None) -> "SystemConfig":
        """The Section V-A robustness configuration: every cache level
        halved in sets (capacity ratios maintained, 16 MB LLC at paper
        scale)."""
        return cls(
            num_cores=num_cores,
            l1_kb=16,
            l2_kb=64,
            scheme=scheme or SparseSpec(),
        )
