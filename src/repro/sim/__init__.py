"""Simulation driver: configuration, system assembly, engine, statistics."""

from repro.sim.config import (
    SystemConfig,
    SparseSpec,
    InLLCSpec,
    TinySpec,
    MgdSpec,
    StashSpec,
)
from repro.sim.system import System
from repro.sim.engine import TraceEngine, run_trace
from repro.sim.stats import SimStats
from repro.sim.results import RunResult

__all__ = [
    "SystemConfig",
    "SparseSpec",
    "InLLCSpec",
    "TinySpec",
    "MgdSpec",
    "StashSpec",
    "System",
    "TraceEngine",
    "run_trace",
    "SimStats",
    "RunResult",
]
