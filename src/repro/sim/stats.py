"""Simulation statistics.

Collects every quantity the paper's figures report: execution cycles,
hop counts, lengthened (3-hop shared read) accesses with their code/data
split, interconnect traffic by message class, LLC miss rate, per-residency
sharer histograms (Fig. 2), STRA-ratio distributions over blocks and
accesses (Figs. 8/9), tiny-directory hit/allocation counts (Figs. 16-18),
and spill benefit (Fig. 19).
"""

from __future__ import annotations

from repro.core.stra import NUM_CATEGORIES, stra_category
from repro.interconnect.traffic import TrafficMeter
from repro.types import AccessKind


class SimStats:
    """Mutable statistics bag for one simulation run."""

    def __init__(self) -> None:
        self.traffic = TrafficMeter()
        #: Execution time: the maximum core clock at end of trace.
        self.cycles = 0
        # -- access counts ------------------------------------------------
        self.accesses = 0
        self.reads = 0
        self.writes = 0
        self.ifetches = 0
        self.l1_hits = 0
        self.l2_hits = 0
        self.upgrades = 0
        # -- LLC / home transactions ---------------------------------------
        self.llc_transactions = 0
        self.llc_misses = 0
        self.two_hop = 0
        self.three_hop = 0
        self.lengthened = 0
        self.lengthened_code = 0
        self.lengthened_data = 0
        self.spill_saved = 0
        self.spills = 0
        # -- coherence actions ----------------------------------------------
        self.invalidations = 0
        self.back_invalidations = 0
        self.broadcasts = 0
        # -- per-residency statistics (flushed on LLC eviction/finalize) ----
        self.blocks_allocated = 0
        #: Simultaneous-sharer bins: [0-1], [2-4], [5-8], [9-16], [17+].
        self.sharer_bins = [0] * 5
        self.blocks_lengthened = 0
        self.stra_block_categories = [0] * NUM_CATEGORIES
        self.stra_access_categories = [0] * NUM_CATEGORIES
        #: Structure-level counters harvested at finalize (energy model,
        #: directory hit/allocation figures).
        self.structures: "dict[str, float]" = {}
        #: Recovery section, published by the RecoveryManager after the
        #: run when at least one repair happened; empty (and excluded
        #: from dumps) otherwise, so clean runs stay bit-identical.
        self.recovery: "dict[str, int]" = {}
        #: Telemetry section, published by a MetricsRegistry snapshot
        #: after the run when metrics collection was on; empty (and
        #: excluded from dumps) otherwise — same bit-identity contract
        #: as the recovery section.
        self.telemetry: "dict[str, object]" = {}
        #: Resource-governance (degraded-mode) provenance, published by
        #: the :mod:`repro.guard` watchdog when a run came under
        #: resource pressure (budget near-miss, throttling); empty (and
        #: excluded from dumps) otherwise — same bit-identity contract
        #: as the recovery section, so degraded numbers can never be
        #: silently mixed with clean ones.
        self.guard: "dict[str, object]" = {}

    def reset(self) -> None:
        """Zero every counter in place (end of warmup).

        The :class:`TrafficMeter` object is cleared rather than replaced
        because home controllers hold a direct reference to it.
        Per-residency counts already accumulated on live LLC lines are
        intentionally kept: a block's sharing history spans the warmup
        boundary, just as it does in the paper's measurements.
        """
        traffic = self.traffic
        self.__init__()
        traffic.clear()
        self.traffic = traffic

    # ------------------------------------------------------------------
    # Event hooks
    # ------------------------------------------------------------------

    def on_access(self, kind: AccessKind) -> None:
        """Count one issued access."""
        self.accesses += 1
        if kind is AccessKind.READ:
            self.reads += 1
        elif kind is AccessKind.WRITE:
            self.writes += 1
        else:
            self.ifetches += 1

    def on_outcome(self, kind: AccessKind, out) -> None:
        """Account the result of one home (LLC) transaction."""
        self.llc_transactions += 1
        if out.is_upgrade:
            self.upgrades += 1
        if out.dram_access:
            self.llc_misses += 1
        if out.hops >= 3:
            self.three_hop += 1
        else:
            self.two_hop += 1
        if out.lengthened:
            self.lengthened += 1
            if kind is AccessKind.IFETCH:
                self.lengthened_code += 1
            else:
                self.lengthened_data += 1
        if out.spill_saved:
            self.spill_saved += 1

    def flush_residency(self, line) -> None:
        """Fold one LLC residency's statistics into the histograms."""
        self.blocks_allocated += 1
        sharers = line.distinct_sharers()
        if sharers <= 1:
            self.sharer_bins[0] += 1
        elif sharers <= 4:
            self.sharer_bins[1] += 1
        elif sharers <= 8:
            self.sharer_bins[2] += 1
        elif sharers <= 16:
            self.sharer_bins[3] += 1
        else:
            self.sharer_bins[4] += 1
        if line.fwd_reads > 0:
            self.blocks_lengthened += 1
            ratio = line.fwd_reads / line.total_reads if line.total_reads else 1.0
            category = stra_category(ratio)
            self.stra_block_categories[category] += 1
            self.stra_access_categories[category] += line.fwd_reads

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    @property
    def llc_miss_rate(self) -> float:
        """LLC miss rate over home transactions."""
        if self.llc_transactions == 0:
            return 0.0
        return self.llc_misses / self.llc_transactions

    @property
    def lengthened_fraction(self) -> float:
        """Fraction of LLC accesses with a lengthened critical path."""
        if self.llc_transactions == 0:
            return 0.0
        return self.lengthened / self.llc_transactions

    @property
    def spill_saved_fraction(self) -> float:
        """Fraction of LLC accesses saved from lengthening by spills."""
        if self.llc_transactions == 0:
            return 0.0
        return self.spill_saved / self.llc_transactions

    @property
    def shared_block_fraction(self) -> float:
        """Fraction of allocated LLC blocks that saw 2+ sharers."""
        if self.blocks_allocated == 0:
            return 0.0
        return sum(self.sharer_bins[1:]) / self.blocks_allocated

    @property
    def lengthened_block_fraction(self) -> float:
        """Fraction of allocated LLC blocks with lengthened accesses."""
        if self.blocks_allocated == 0:
            return 0.0
        return self.blocks_lengthened / self.blocks_allocated

    #: Scalar counter attribute names, used by serialization.
    _SCALARS = (
        "cycles",
        "accesses",
        "reads",
        "writes",
        "ifetches",
        "l1_hits",
        "l2_hits",
        "upgrades",
        "llc_transactions",
        "llc_misses",
        "two_hop",
        "three_hop",
        "lengthened",
        "lengthened_code",
        "lengthened_data",
        "spill_saved",
        "spills",
        "invalidations",
        "back_invalidations",
        "broadcasts",
        "blocks_allocated",
        "blocks_lengthened",
    )

    def as_dict(self) -> "dict[str, object]":
        """A plain-dict snapshot (reports and derived metrics)."""
        snapshot = {name: getattr(self, name) for name in self._SCALARS}
        snapshot.update(
            llc_miss_rate=self.llc_miss_rate,
            lengthened_fraction=self.lengthened_fraction,
            traffic=self.traffic.as_dict(),
            sharer_bins=list(self.sharer_bins),
            structures=dict(self.structures),
        )
        if self.recovery:
            snapshot["recovery"] = dict(self.recovery)
        if self.telemetry:
            snapshot["telemetry"] = dict(self.telemetry)
        if self.guard:
            snapshot["guard"] = dict(self.guard)
        return snapshot

    def dump(self) -> "dict[str, object]":
        """A lossless serializable snapshot (see :meth:`load`)."""
        payload = {
            "scalars": {name: getattr(self, name) for name in self._SCALARS},
            "sharer_bins": list(self.sharer_bins),
            "stra_block_categories": list(self.stra_block_categories),
            "stra_access_categories": list(self.stra_access_categories),
            "structures": dict(self.structures),
            "traffic": self.traffic.dump(),
        }
        if self.recovery:
            payload["recovery"] = dict(self.recovery)
        if self.telemetry:
            payload["telemetry"] = dict(self.telemetry)
        if self.guard:
            payload["guard"] = dict(self.guard)
        return payload

    @classmethod
    def load(cls, payload: "dict[str, object]") -> "SimStats":
        """Rebuild a stats object from :meth:`dump` output."""
        stats = cls()
        for name, value in payload["scalars"].items():
            setattr(stats, name, value)
        stats.sharer_bins = list(payload["sharer_bins"])
        stats.stra_block_categories = list(payload["stra_block_categories"])
        stats.stra_access_categories = list(payload["stra_access_categories"])
        stats.structures = dict(payload["structures"])
        stats.recovery = dict(payload.get("recovery") or {})
        stats.telemetry = dict(payload.get("telemetry") or {})
        stats.guard = dict(payload.get("guard") or {})
        stats.traffic = TrafficMeter.load(payload["traffic"])
        return stats
