"""Run-result container shared by the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.stats import SimStats


@dataclass
class RunResult:
    """Outcome of simulating one (application, scheme) pair."""

    app: str
    scheme: str
    stats: SimStats
    meta: "dict[str, object]" = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        """Execution time of the run, in core cycles."""
        return self.stats.cycles

    def normalized_cycles(self, baseline: "RunResult") -> float:
        """Execution time normalized to ``baseline`` (paper convention)."""
        if baseline.cycles == 0:
            return 0.0
        return self.cycles / baseline.cycles

    def normalized_traffic(self, baseline: "RunResult") -> float:
        """Total interconnect bytes normalized to ``baseline``."""
        base = baseline.stats.traffic.total_bytes
        if base == 0:
            return 0.0
        return self.stats.traffic.total_bytes / base
