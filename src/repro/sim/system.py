"""System assembly: cores, LLC, interconnect, DRAM, and the selected
coherence-tracking scheme wired into one simulated machine."""

from __future__ import annotations

from repro.cache.private_cache import PrivateCore
from repro.coherence.inllc_home import InLLCHome, TinyHome
from repro.coherence.sparse_home import (
    MgdHome,
    SharedOnlyHome,
    SparseHome,
    StashHome,
)
from repro.core.spill import SpillConfig
from repro.core.tiny_directory import AllocationPolicy, TinyDirectory
from repro.directory.mgd import MultiGrainDirectory
from repro.directory.sparse import SparseDirectory
from repro.directory.zcache import ZCacheDirectory
from repro.errors import ConfigError, TraceError
from repro.interconnect.mesh import Mesh2D
from repro.memory.dram import DramModel
from repro.sim.config import (
    InLLCSpec,
    MgdSpec,
    SparseSpec,
    StashSpec,
    SystemConfig,
    TinySpec,
)
from repro.sim.stats import SimStats
from repro.types import Access


class System:
    """One simulated chip-multiprocessor.

    The public surface is small: construct with a
    :class:`~repro.sim.config.SystemConfig`, feed
    :class:`~repro.types.Access` records through :meth:`access` (or use
    :func:`repro.sim.engine.run_trace`), then :meth:`finalize` and read
    :attr:`stats`.
    """

    def __init__(self, config: SystemConfig, fault_injector=None) -> None:
        self.config = config
        self.mesh = Mesh2D(
            config.num_cores,
            hop_cycles=config.hop_cycles,
            num_memory_controllers=config.dram_channels,
        )
        self.dram = DramModel(config.dram_channels, config.dram_banks_per_channel)
        self.cores = [
            PrivateCore(
                core,
                config.l1_sets,
                config.l1_assoc,
                config.l2_sets,
                config.l2_assoc,
            )
            for core in range(config.num_cores)
        ]
        self.stats = SimStats()
        self.home = self._build_home(config.scheme)
        self._finalized = False
        #: Completed-access counter (drives fault injection and auditing).
        self.access_index = 0
        #: Optional :class:`~repro.resilience.faults.FaultInjector`.
        self.fault_injector = fault_injector
        if fault_injector is not None:
            fault_injector.attach(self)

    # ------------------------------------------------------------------
    # Scheme wiring
    # ------------------------------------------------------------------

    def _build_home(self, spec):
        config = self.config
        args = (config, self.mesh, self.dram, self.cores, self.stats)
        if isinstance(spec, SparseSpec):
            entries = config.directory_entries(spec.ratio)
            if spec.zcache:
                directory = ZCacheDirectory(entries, config.num_banks)
            else:
                directory = SparseDirectory(entries, config.num_banks, spec.assoc)
            home_cls = SharedOnlyHome if spec.shared_only else SparseHome
            return home_cls(*args, directory)
        if isinstance(spec, InLLCSpec):
            return InLLCHome(*args, tag_extended=spec.tag_extended)
        if isinstance(spec, TinySpec):
            tiny = TinyDirectory(
                config.directory_entries(spec.ratio),
                config.num_banks,
                AllocationPolicy(spec.policy),
                assoc=spec.assoc,
                default_generation_ticks=spec.gnru_default_generation,
                gnru_adaptive=spec.gnru_adaptive,
            )
            return TinyHome(
                *args,
                tiny,
                spill_enabled=spec.spill,
                spill_config=SpillConfig(
                    window_accesses=spec.spill_window,
                    adaptive_delta=spec.spill_adaptive_delta,
                ),
                stra_limit=(1 << spec.stra_counter_bits) - 1,
            )
        if isinstance(spec, MgdSpec):
            directory = MultiGrainDirectory(
                config.directory_entries(spec.ratio), config.num_banks, spec.assoc
            )
            return MgdHome(*args, directory)
        if isinstance(spec, StashSpec):
            directory = SparseDirectory(
                config.directory_entries(spec.ratio), config.num_banks, spec.assoc
            )
            return StashHome(*args, directory)
        raise ConfigError(f"unknown scheme spec {spec!r}")

    # ------------------------------------------------------------------
    # The access path
    # ------------------------------------------------------------------

    def access(self, acc: Access, now: int) -> int:
        """Process one access at cycle ``now``; returns its latency."""
        latency = self._access(acc, now)
        self.access_index += 1
        if self.fault_injector is not None:
            self.fault_injector.on_access(self)
        return latency

    def _access(self, acc: Access, now: int) -> int:
        config = self.config
        if not 0 <= acc.core < config.num_cores:
            raise TraceError(f"access from core {acc.core} outside the system")
        self.stats.on_access(acc.kind)
        core = self.cores[acc.core]
        probe = core.probe(acc.addr, acc.kind)
        if probe.is_hit:
            if probe.level == "l1":
                self.stats.l1_hits += 1
                return config.l1_latency
            self.stats.l2_hits += 1
            return config.l1_latency + config.l2_latency
        upgrade = probe.needs_upgrade
        out = self.home.handle_access(acc.core, acc.addr, acc.kind, now, upgrade)
        self.stats.on_outcome(acc.kind, out)
        if upgrade:
            core.complete_upgrade(acc.addr)
            return config.l1_latency + out.latency
        notices = core.fill(acc.addr, acc.kind, out.fill_state)
        injector = self.fault_injector
        for notice in notices:
            if injector is not None and injector.intercept_eviction(
                acc.core, notice.addr
            ):
                continue
            self.home.handle_private_eviction(
                acc.core, notice.addr, notice.state, now
            )
        return config.l1_latency + config.l2_latency + out.latency

    # ------------------------------------------------------------------
    # Wrap-up
    # ------------------------------------------------------------------

    def finalize(self) -> SimStats:
        """Flush residency statistics and harvest structure counters."""
        if self._finalized:
            return self.stats
        self._finalized = True
        self.home.finalize()
        structures = self.stats.structures
        structures["llc_tag_lookups"] = sum(
            bank.tag_lookups for bank in self.home.banks
        )
        structures["llc_data_writes"] = sum(
            bank.data_writes + bank.fills for bank in self.home.banks
        )
        structures["llc_fills"] = sum(bank.fills for bank in self.home.banks)
        directory = getattr(self.home, "directory", None)
        if directory is not None:
            structures["dir_lookups"] = directory.hits + directory.misses
            structures["dir_hits"] = directory.hits
            structures["dir_allocations"] = directory.allocations
            structures["dir_evictions"] = directory.evictions
        tiny = getattr(self.home, "tiny", None)
        if tiny is not None:
            structures["tiny_lookups"] = tiny.hits + tiny.misses
            structures["tiny_hits"] = tiny.hits
            structures["tiny_allocations"] = tiny.allocations
            structures["tiny_evictions"] = tiny.evictions
            structures["tiny_declined"] = tiny.declined
        return self.stats

    def check_invariants(self) -> None:
        """Verify protocol invariants (used by tests)."""
        self.home.check_invariants()
