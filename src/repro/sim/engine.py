"""Trace-driven execution engine.

Each core executes its access stream with a private clock: an access
costs its ``gap`` (compute cycles since the previous access) plus the
memory latency the system reports. The engine always advances the core
with the smallest clock, which interleaves the streams the way a real
machine's memory system would observe them (fast cores race ahead until
their memory stalls let others catch up). Execution time is the largest
final core clock — the parallel region ends when the slowest thread
finishes, matching the paper's whole-ROI execution-time metric.

When a :class:`~repro.resilience.auditor.ProtocolAuditor` is supplied,
the engine re-verifies every protocol invariant each ``audit_interval``
accesses (and once more at end of trace), so a corruption raises an
:class:`~repro.errors.InvariantViolation` within one audit window
instead of silently poisoning the rest of the run. A
:class:`~repro.verify.oracle.ValueOracle` can likewise be threaded
through: each access is bracketed by a quiet pre-state probe and a
post-access value check, validating every observed load against the
sequentially-consistent reference memory.

A :class:`~repro.recovery.manager.RecoveryManager` turns detection into
self-healing: audit windows are routed through the manager, which
repairs a tripped invariant (probe the private caches, rebuild the
tracking entry, re-verify) and lets the trace loop *resume* from the
same point instead of aborting — the next heap pop continues exactly
where the violation was caught. Recovery costs are published to the
statistics' recovery section after finalize.

The loop also honours the harness deadline
(:mod:`repro.sim.deadline`): every ``CHECK_STRIDE`` accesses it checks
the armed wall-clock limit and raises
:class:`~repro.errors.RunTimeoutError` once exceeded, which is what
makes per-run timeouts work inside process-pool workers. The same
stride samples the :mod:`repro.guard` resource watchdog, so an armed
``RunBudget`` (wall clock, peak RSS) raises a structured
:class:`~repro.errors.BudgetExceeded` within one stride of the limit
being crossed — in any lane, on any platform, in any worker.

The engine has two lanes over the same protocol code (see
:mod:`repro.sim.fastpath`): unobserved runs take the fast lane, whose
private-hit short circuit and batched counters produce statistics
bit-identical to the reference lane; any observer (auditor, oracle,
recovery, tracer, fault injector) or ``REPRO_FAST=off`` selects the
reference lane.
"""

from __future__ import annotations

import heapq

from repro.errors import InvariantViolation, ProtocolError, TraceError
from repro.guard.watchdog import check_watchdog
from repro.sim.deadline import CHECK_STRIDE, check_deadline
from repro.sim.fastpath import fast_lane_from_env
from repro.sim.stats import SimStats
from repro.sim.system import System
from repro.telemetry import NULL_TRACER, install_tracer
from repro.types import Access, AccessKind, PrivateState


class TraceEngine:
    """Interleaves per-core access streams over a :class:`System`.

    ``warmup_fraction`` of the accesses are executed to populate the
    caches and directories but excluded from the reported statistics,
    mirroring the paper's practice of measuring only the region of
    interest after warmup. The warmup window is clamped so that at least
    one access is always measured (guarding against zero or negative
    measurement windows on very short traces).
    """

    def __init__(
        self,
        system: System,
        streams: "list[list[Access]]",
        warmup_fraction: float = 0.4,
        auditor=None,
        oracle=None,
        recovery=None,
        tracer=None,
        fast_path: "bool | None" = None,
    ) -> None:
        if len(streams) > system.config.num_cores:
            raise ValueError(
                f"{len(streams)} streams for {system.config.num_cores} cores"
            )
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        self.system = system
        self.streams = streams
        self.warmup_fraction = warmup_fraction
        self.auditor = auditor
        self.oracle = oracle
        self.recovery = recovery
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Fast-lane preference; None resolves from ``REPRO_FAST``.
        self.fast_path = (
            fast_lane_from_env() if fast_path is None else fast_path
        )

    def fast_lane_engaged(self) -> bool:
        """True when this run will execute on the fast lane.

        The fast lane only engages for *unobserved* runs: no auditor, no
        value oracle, no recovery manager, no enabled tracer, and no
        fault injector — each of those needs to see every individual
        access, which the private-hit short circuit skips. Observed runs
        silently fall back to the reference lane, so correctness tooling
        never has to know the fast lane exists.
        """
        return (
            self.fast_path
            and self.auditor is None
            and self.oracle is None
            and self.recovery is None
            and not self.tracer.enabled
            and self.system.fault_injector is None
        )

    def _audit(self, system) -> None:
        """One audit window, routed through recovery when enabled."""
        try:
            if self.recovery is not None:
                self.recovery.audit(self.auditor, system)
            else:
                self.auditor.audit(system)
        except InvariantViolation as err:
            if self.tracer.enabled:
                self.tracer.emit(
                    "audit:violation", addr=err.addr, error=err.message
                )
            raise
        if self.tracer.enabled:
            self.tracer.emit("audit:window", audits=self.auditor.audits)

    def run(self) -> SimStats:
        """Run every stream to completion; returns finalized stats."""
        if self.fast_lane_engaged():
            return self._run_fast()
        return self._run_reference()

    def _run_reference(self) -> SimStats:
        """The reference lane: full observer support, one
        :meth:`System.access` call per access."""
        system = self.system
        auditor = self.auditor
        oracle = self.oracle
        tracer = self.tracer
        if auditor is not None:
            auditor.install(system)
        if tracer.enabled:
            install_tracer(system, tracer)
        total = sum(len(stream) for stream in self.streams)
        warmup_left = int(total * self.warmup_fraction)
        if total and warmup_left >= total:
            # Degenerate fraction/rounding: always measure >= 1 access.
            warmup_left = total - 1
        heap = [
            (0, core, 0)
            for core, stream in enumerate(self.streams)
            if stream
        ]
        heapq.heapify(heap)
        finish = 0
        measure_start = 0
        processed = 0
        while heap:
            clock, core, index = heapq.heappop(heap)
            acc = self.streams[core][index]
            issue_time = clock + acc.gap
            if tracer.enabled:
                tracer.emit(
                    "txn:start",
                    cycle=issue_time,
                    core=acc.core,
                    addr=acc.addr,
                    op=acc.kind.name,
                )
            pre_state = (
                oracle.pre_state(system, acc.core, acc.addr)
                if oracle is not None
                else None
            )
            latency = system.access(acc, issue_time)
            if oracle is not None:
                oracle.observe(system, acc.core, acc.addr, acc.kind, pre_state)
            done = issue_time + latency
            if tracer.enabled:
                tracer.emit(
                    "txn:finish",
                    cycle=done,
                    core=acc.core,
                    addr=acc.addr,
                    latency=latency,
                )
            if done > finish:
                finish = done
            processed += 1
            if processed % CHECK_STRIDE == 0:
                check_deadline()
                check_watchdog()
            if auditor is not None and processed % auditor.interval == 0:
                self._audit(system)
            if warmup_left and processed == warmup_left:
                system.stats.reset()
                measure_start = finish
                if tracer.enabled:
                    tracer.emit(
                        "measure:start",
                        cycle=finish,
                        warmup_accesses=processed,
                    )
            index += 1
            if index < len(self.streams[core]):
                heapq.heappush(heap, (done, core, index))
        if auditor is not None and (total == 0 or processed % auditor.interval):
            # Close the final (partial) audit window.
            self._audit(system)
        stats = system.finalize()
        stats.cycles = max(0, finish - measure_start)
        if self.recovery is not None:
            self.recovery.publish(stats)
        return stats

    def _run_fast(self) -> SimStats:
        """The fast lane: private hits short-circuit inside the loop.

        Mirrors :meth:`repro.sim.system.System._access` exactly, but a
        private hit costs two inlined LRU lookups and a handful of
        local-variable updates — no ProbeResult allocation, no per-access
        stats method calls, no home dispatch. The inlined lookup is the
        literal twin of :meth:`PrivateCore.classify` (same recency
        touches, same L1 promotion, same silent E->M upgrade, same
        inclusion check); the bit-identity tests in
        ``tests/test_fastpath.py`` pin the two against each other. The
        batched counters commute with everything the miss path touches,
        so flushing them at the warmup boundary and at end of trace
        yields statistics bit-identical to the reference lane.
        """
        system = self.system
        stats = system.stats
        config = system.config
        home = system.home
        cores = system.cores
        streams = self.streams
        l1_latency = config.l1_latency
        hit_latency = config.l1_latency + config.l2_latency
        num_cores = config.num_cores
        read_kind = AccessKind.READ
        write_kind = AccessKind.WRITE
        ifetch_kind = AccessKind.IFETCH
        shared_state = PrivateState.SHARED
        exclusive_state = PrivateState.EXCLUSIVE
        modified_state = PrivateState.MODIFIED
        handle_access = home.handle_access
        handle_eviction = home.handle_private_eviction
        on_outcome = stats.on_outcome
        heappop = heapq.heappop
        heappush = heapq.heappush
        # Per-core lookup tables: (il1_sets, dl1_sets, l1_num_sets,
        # l2_sets, l2_num_sets, core). The L1s share one geometry.
        core_tables = [
            (
                core.il1._sets,
                core.dl1._sets,
                core.dl1.num_sets,
                core.l2._sets,
                core.l2.num_sets,
                core,
            )
            for core in cores
        ]
        total = sum(len(stream) for stream in streams)
        warmup_left = int(total * self.warmup_fraction)
        if total and warmup_left >= total:
            warmup_left = total - 1
        heap = [
            (0, core, 0)
            for core, stream in enumerate(streams)
            if stream
        ]
        heapq.heapify(heap)
        finish = 0
        measure_start = 0
        processed = 0
        # Batched access counters (flushed into stats below).
        accesses = reads = writes = ifetches = l1_hits = l2_hits = 0
        while heap:
            clock, core_id, index = heappop(heap)
            stream = streams[core_id]
            acc = stream[index]
            issue_time = clock + acc.gap
            acc_core = acc.core
            if not 0 <= acc_core < num_cores:
                raise TraceError(
                    f"access from core {acc_core} outside the system"
                )
            kind = acc.kind
            accesses += 1
            is_ifetch = False
            if kind is read_kind:
                reads += 1
            elif kind is write_kind:
                writes += 1
            else:
                ifetches += 1
                is_ifetch = True
            addr = acc.addr
            il1_sets, dl1_sets, l1_num_sets, l2_sets, l2_num_sets, core = (
                core_tables[acc_core]
            )
            # -- inlined PrivateCore.classify ---------------------------
            lines = (il1_sets if is_ifetch else dl1_sets).get(
                addr % l1_num_sets
            )
            l1_line = None
            if lines:
                for position, line in enumerate(lines):
                    if line.tag == addr:
                        if position != len(lines) - 1:
                            del lines[position]
                            lines.append(line)
                        l1_line = line
                        break
            lines = l2_sets.get(addr % l2_num_sets)
            l2_line = None
            if lines:
                for position, line in enumerate(lines):
                    if line.tag == addr:
                        if position != len(lines) - 1:
                            del lines[position]
                            lines.append(line)
                        l2_line = line
                        break
            code = 0
            if l2_line is None:
                if l1_line is not None:
                    raise ProtocolError(
                        f"core {acc_core}: block {addr:#x} in L1 but not L2"
                    )
            else:
                state = l2_line.payload
                if kind is write_kind and state is shared_state:
                    code = 3 if l1_line is not None else 4
                else:
                    if kind is write_kind and state is exclusive_state:
                        l2_line.payload = modified_state
                    if l1_line is not None:
                        code = 1
                    else:
                        core._l1_fill(
                            core.il1 if is_ifetch else core.dl1, addr
                        )
                        code = 2
            # -- end inlined classify -----------------------------------
            if code == 1:  # L1 hit
                l1_hits += 1
                latency = l1_latency
            elif code == 2:  # L2 hit (promoted into the L1)
                l2_hits += 1
                latency = hit_latency
            else:
                upgrade = code >= 3
                out = handle_access(acc_core, addr, kind, issue_time, upgrade)
                on_outcome(kind, out)
                if upgrade:
                    core.complete_upgrade(addr)
                    latency = l1_latency + out.latency
                else:
                    for notice in core.fill(addr, kind, out.fill_state):
                        handle_eviction(
                            acc_core, notice.addr, notice.state, issue_time
                        )
                    latency = hit_latency + out.latency
            done = issue_time + latency
            if done > finish:
                finish = done
            processed += 1
            if processed % CHECK_STRIDE == 0:
                check_deadline()
                check_watchdog()
            if warmup_left and processed == warmup_left:
                # stats.reset() zeroes every counter, so the batch is
                # dropped rather than flushed.
                accesses = reads = writes = ifetches = 0
                l1_hits = l2_hits = 0
                stats.reset()
                measure_start = finish
            index += 1
            if index < len(stream):
                heappush(heap, (done, core_id, index))
        stats.accesses += accesses
        stats.reads += reads
        stats.writes += writes
        stats.ifetches += ifetches
        stats.l1_hits += l1_hits
        stats.l2_hits += l2_hits
        system.access_index += processed
        final = system.finalize()
        final.cycles = max(0, finish - measure_start)
        return final


def run_trace(
    system: System,
    streams: "list[list[Access]]",
    warmup_fraction: float = 0.4,
    auditor=None,
    oracle=None,
    recovery=None,
    tracer=None,
    fast_path: "bool | None" = None,
) -> SimStats:
    """Convenience wrapper: run ``streams`` on ``system`` and return stats."""
    return TraceEngine(
        system,
        streams,
        warmup_fraction,
        auditor=auditor,
        oracle=oracle,
        recovery=recovery,
        tracer=tracer,
        fast_path=fast_path,
    ).run()
