"""Trace-driven execution engine.

Each core executes its access stream with a private clock: an access
costs its ``gap`` (compute cycles since the previous access) plus the
memory latency the system reports. The engine always advances the core
with the smallest clock, which interleaves the streams the way a real
machine's memory system would observe them (fast cores race ahead until
their memory stalls let others catch up). Execution time is the largest
final core clock — the parallel region ends when the slowest thread
finishes, matching the paper's whole-ROI execution-time metric.

When a :class:`~repro.resilience.auditor.ProtocolAuditor` is supplied,
the engine re-verifies every protocol invariant each ``audit_interval``
accesses (and once more at end of trace), so a corruption raises an
:class:`~repro.errors.InvariantViolation` within one audit window
instead of silently poisoning the rest of the run. A
:class:`~repro.verify.oracle.ValueOracle` can likewise be threaded
through: each access is bracketed by a quiet pre-state probe and a
post-access value check, validating every observed load against the
sequentially-consistent reference memory.

A :class:`~repro.recovery.manager.RecoveryManager` turns detection into
self-healing: audit windows are routed through the manager, which
repairs a tripped invariant (probe the private caches, rebuild the
tracking entry, re-verify) and lets the trace loop *resume* from the
same point instead of aborting — the next heap pop continues exactly
where the violation was caught. Recovery costs are published to the
statistics' recovery section after finalize.

The loop also honours the harness deadline
(:mod:`repro.sim.deadline`): every ``CHECK_STRIDE`` accesses it checks
the armed wall-clock limit and raises
:class:`~repro.errors.RunTimeoutError` once exceeded, which is what
makes per-run timeouts work inside process-pool workers.
"""

from __future__ import annotations

import heapq

from repro.errors import InvariantViolation
from repro.sim.deadline import CHECK_STRIDE, check_deadline
from repro.sim.stats import SimStats
from repro.sim.system import System
from repro.telemetry import NULL_TRACER, install_tracer
from repro.types import Access


class TraceEngine:
    """Interleaves per-core access streams over a :class:`System`.

    ``warmup_fraction`` of the accesses are executed to populate the
    caches and directories but excluded from the reported statistics,
    mirroring the paper's practice of measuring only the region of
    interest after warmup. The warmup window is clamped so that at least
    one access is always measured (guarding against zero or negative
    measurement windows on very short traces).
    """

    def __init__(
        self,
        system: System,
        streams: "list[list[Access]]",
        warmup_fraction: float = 0.4,
        auditor=None,
        oracle=None,
        recovery=None,
        tracer=None,
    ) -> None:
        if len(streams) > system.config.num_cores:
            raise ValueError(
                f"{len(streams)} streams for {system.config.num_cores} cores"
            )
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        self.system = system
        self.streams = streams
        self.warmup_fraction = warmup_fraction
        self.auditor = auditor
        self.oracle = oracle
        self.recovery = recovery
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def _audit(self, system) -> None:
        """One audit window, routed through recovery when enabled."""
        try:
            if self.recovery is not None:
                self.recovery.audit(self.auditor, system)
            else:
                self.auditor.audit(system)
        except InvariantViolation as err:
            if self.tracer.enabled:
                self.tracer.emit(
                    "audit:violation", addr=err.addr, error=err.message
                )
            raise
        if self.tracer.enabled:
            self.tracer.emit("audit:window", audits=self.auditor.audits)

    def run(self) -> SimStats:
        """Run every stream to completion; returns finalized stats."""
        system = self.system
        auditor = self.auditor
        oracle = self.oracle
        tracer = self.tracer
        if auditor is not None:
            auditor.install(system)
        if tracer.enabled:
            install_tracer(system, tracer)
        total = sum(len(stream) for stream in self.streams)
        warmup_left = int(total * self.warmup_fraction)
        if total and warmup_left >= total:
            # Degenerate fraction/rounding: always measure >= 1 access.
            warmup_left = total - 1
        heap = [
            (0, core, 0)
            for core, stream in enumerate(self.streams)
            if stream
        ]
        heapq.heapify(heap)
        finish = 0
        measure_start = 0
        processed = 0
        while heap:
            clock, core, index = heapq.heappop(heap)
            acc = self.streams[core][index]
            issue_time = clock + acc.gap
            if tracer.enabled:
                tracer.emit(
                    "txn:start",
                    cycle=issue_time,
                    core=acc.core,
                    addr=acc.addr,
                    op=acc.kind.name,
                )
            pre_state = (
                oracle.pre_state(system, acc.core, acc.addr)
                if oracle is not None
                else None
            )
            latency = system.access(acc, issue_time)
            if oracle is not None:
                oracle.observe(system, acc.core, acc.addr, acc.kind, pre_state)
            done = issue_time + latency
            if tracer.enabled:
                tracer.emit(
                    "txn:finish",
                    cycle=done,
                    core=acc.core,
                    addr=acc.addr,
                    latency=latency,
                )
            if done > finish:
                finish = done
            processed += 1
            if processed % CHECK_STRIDE == 0:
                check_deadline()
            if auditor is not None and processed % auditor.interval == 0:
                self._audit(system)
            if warmup_left and processed == warmup_left:
                system.stats.reset()
                measure_start = finish
            index += 1
            if index < len(self.streams[core]):
                heapq.heappush(heap, (done, core, index))
        if auditor is not None and (total == 0 or processed % auditor.interval):
            # Close the final (partial) audit window.
            self._audit(system)
        stats = system.finalize()
        stats.cycles = max(0, finish - measure_start)
        if self.recovery is not None:
            self.recovery.publish(stats)
        return stats


def run_trace(
    system: System,
    streams: "list[list[Access]]",
    warmup_fraction: float = 0.4,
    auditor=None,
    oracle=None,
    recovery=None,
    tracer=None,
) -> SimStats:
    """Convenience wrapper: run ``streams`` on ``system`` and return stats."""
    return TraceEngine(
        system,
        streams,
        warmup_fraction,
        auditor=auditor,
        oracle=oracle,
        recovery=recovery,
        tracer=tracer,
    ).run()
