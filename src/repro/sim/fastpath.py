"""Fast-lane control for the simulation hot path.

The trace engine has two execution lanes over the same protocol code:

* The **reference lane** (:meth:`repro.sim.engine.TraceEngine.run`'s
  classic loop) calls :meth:`repro.sim.system.System.access` per access
  and supports every observer — auditor, value oracle, recovery manager,
  structured tracer, fault injector.
* The **fast lane** inlines the private-hit short circuit into the trace
  loop: an access that hits the local private hierarchy with sufficient
  permissions never allocates a transaction object, never dispatches to
  the home controller, and batches its statistics in local variables.

Both lanes produce bit-identical statistics (enforced by
``tests/test_fastpath.py`` across all five schemes); the fast lane is
therefore the default and disengages automatically whenever any observer
needs to see individual accesses. ``REPRO_FAST=off`` forces the
reference lane for A/B timing or debugging.
"""

from __future__ import annotations

import os
import sys

#: Environment variable selecting the engine lane: ``on`` (the default)
#: lets eligible runs use the fast lane, ``off`` forces the reference
#: lane everywhere.
ENV_FAST = "REPRO_FAST"

_OFF_VALUES = frozenset({"off", "0", "false", "no"})
_ON_VALUES = frozenset({"on", "1", "true", "yes"})


def fast_lane_from_env(default: bool = True) -> bool:
    """Resolve the fast-lane preference from ``REPRO_FAST``.

    Returns ``default`` when the variable is unset or unrecognized (an
    unrecognized value warns on stderr rather than failing the run, the
    same convention as the other ``REPRO_*`` knobs).
    """
    raw = os.environ.get(ENV_FAST)
    if raw is None:
        return default
    value = raw.strip().lower()
    if value in _OFF_VALUES:
        return False
    if value in _ON_VALUES:
        return True
    print(
        f"repro: ignoring unrecognized {ENV_FAST}={raw!r} "
        f"(expected on/off)",
        file=sys.stderr,
    )
    return default
