"""Cooperative wall-clock deadlines for simulation runs.

The harness timeout used to be implemented with ``SIGALRM``, which only
works on the main thread of a POSIX process — alarms do not survive
inside :class:`~concurrent.futures.ProcessPoolExecutor` workers, whose
tasks run after the pool machinery has already claimed the process.
Instead, a run is bounded by a *deadline*: :func:`deadline_scope` arms a
monotonic-clock expiry for its ``with`` body, and the long-running loops
(the trace engine, stream generation) call :func:`check_deadline` every
few thousand iterations. When the deadline has passed, the check raises
:class:`~repro.errors.RunTimeoutError` at the next opportunity.

The mechanism is cooperative: code that never calls
:func:`check_deadline` (a hung C extension, an arbitrary ``sleep``)
cannot be interrupted. For the simulator that is no restriction — all
run time is spent in the engine loop, which checks every
:data:`CHECK_STRIDE` accesses — and in exchange the timeout works
identically on every platform, in any thread, and in pool workers.

Scopes nest: an inner scope can only tighten the effective deadline,
never extend the outer one.
"""

from __future__ import annotations

import contextlib
import time

from repro.errors import RunTimeoutError

#: How many engine iterations pass between two deadline checks. At the
#: simulator's typical tens of thousands of accesses per second this
#: bounds the detection latency to well under a second.
CHECK_STRIDE = 1024

#: The armed deadline: ``(expiry_monotonic, limit_seconds)`` or ``None``.
_DEADLINE: "tuple[float, float] | None" = None


@contextlib.contextmanager
def deadline_scope(seconds: "float | None"):
    """Bound the ``with`` body to ``seconds`` of wall clock.

    ``None`` or a non-positive limit leaves any enclosing deadline in
    force but arms nothing new. Nested scopes keep whichever deadline
    expires first.
    """
    global _DEADLINE
    if seconds is None or seconds <= 0:
        yield
        return
    previous = _DEADLINE
    expiry = time.monotonic() + seconds
    if previous is None or expiry < previous[0]:
        _DEADLINE = (expiry, seconds)
    try:
        yield
    finally:
        _DEADLINE = previous


def check_deadline() -> None:
    """Raise :class:`RunTimeoutError` when the armed deadline has passed.

    Cheap enough for hot loops: one global read and, when a deadline is
    armed, one ``time.monotonic()`` call.
    """
    armed = _DEADLINE
    if armed is not None and time.monotonic() > armed[0]:
        raise RunTimeoutError(
            f"run exceeded {armed[1]:g}s wall-clock limit"
        )
