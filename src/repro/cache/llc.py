"""Shared banked last-level cache with in-LLC coherence tracking support.

Each :class:`LLCBank` is one bank of the shared LLC (one per tile, Table I
of the paper). Beyond a plain set-associative data cache, a bank supports
the paper's mechanisms:

* **Corrupted blocks** (Table III/IV): a block whose (V, D) bits read
  (0, 1) has part of its data replaced by extended coherence state — the
  owner pointer or the sharer bitvector, the twelve STRAC/OAC bits, and a
  dirty flag for the underlying data.
* **Spilled tracking entries** (§IV-B1): an LLC way in the *same set* as a
  data block ``B`` can hold ``B``'s coherence tracking entry ``E_B``.
  ``B`` and ``E_B`` share a tag; the paper distinguishes them by the V
  bit, this model by an ``is_spill`` flag. The LRU update rule moves
  ``E_B`` to MRU *before* ``B`` so that ``E_B`` is always victimized
  first.
* **No-spill sample sets** (§IV-B2): sixteen sets per bank never admit
  spilled entries and provide the ``MR_no_spill`` estimate for the
  dynamic spill policy.

Per-residency statistics (maximum sharer count, forwarded shared reads)
are carried on the line so the harness can regenerate the paper's
motivation figures (Figs. 2, 7, 8, 9).
"""

from __future__ import annotations

from repro.coherence.info import CohInfo
from repro.core.stra import StraCounters
from repro.errors import ConfigError, ProtocolError
from repro.types import LLCState


class LLCLine:
    """One LLC way: either a data block or a spilled tracking entry."""

    __slots__ = (
        "tag",
        "state",
        "coh",
        "stra",
        "underlying_dirty",
        "is_spill",
        "sharers_seen",
        "fwd_reads",
        "total_reads",
    )

    def __init__(self, tag: int, state: LLCState, is_spill: bool = False) -> None:
        self.tag = tag
        self.state = state
        #: Coherence tracking info; present for corrupted blocks and
        #: spilled entries, None otherwise.
        self.coh: "CohInfo | None" = None
        #: STRA counters travelling with the tracking info.
        self.stra: "StraCounters | None" = None
        #: True when the block's data (wherever authoritative) differs
        #: from memory, so eviction requires a DRAM write.
        self.underlying_dirty = False
        self.is_spill = is_spill
        # -- per-residency statistics (data lines only) -----------------
        #: Bitmask of every core that held the block during residency
        #: (Fig. 2 counts the maximum number of *distinct* sharers a
        #: block experiences while resident).
        self.sharers_seen = 0
        #: Reads that found the block shared (forwarded under in-LLC).
        self.fwd_reads = 0
        #: All reads during residency (denominator of the STRA ratio).
        self.total_reads = 0

    def note_holders(self, coh) -> None:
        """Fold the block's current holders into the residency record."""
        self.sharers_seen |= coh.sharers
        if coh.owner is not None:
            self.sharers_seen |= 1 << coh.owner

    def distinct_sharers(self) -> int:
        """Distinct cores that held the block during this residency."""
        return bin(self.sharers_seen).count("1")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "spill" if self.is_spill else self.state.value
        return f"LLCLine(tag={self.tag:#x}, {kind})"


class LLCBank:
    """One bank of the shared LLC."""

    __slots__ = (
        "num_sets",
        "assoc",
        "bank_stride",
        "_sets",
        "_sample_sets",
        "tag_lookups",
        "data_reads",
        "data_writes",
        "fills",
    )

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        bank_stride: int,
        no_spill_sample_sets: int = 16,
        bank_index: int = 0,
    ) -> None:
        if num_sets <= 0 or assoc <= 0 or bank_stride <= 0:
            raise ConfigError("LLC bank geometry must be positive")
        self.num_sets = num_sets
        self.assoc = assoc
        #: Number of banks in the LLC; consecutive blocks stripe across
        #: banks, so the in-bank set index uses ``addr // bank_stride``.
        self.bank_stride = bank_stride
        self._sets: "dict[int, list[LLCLine]]" = {}
        # Spread the no-spill sample sets evenly across the bank, with a
        # per-bank offset so the same hot sets are not sampled everywhere
        # (sampled sets must be representative of the whole bank).
        sample_count = min(no_spill_sample_sets, max(1, num_sets // 4))
        if sample_count > 0 and no_spill_sample_sets > 0:
            stride = max(1, num_sets // sample_count)
            salt = (bank_index * 7 + 3) % stride
            self._sample_sets = frozenset(
                (salt + i * stride) % num_sets for i in range(sample_count)
            )
        else:
            self._sample_sets = frozenset()
        # -- activity counters (energy model and spill policy) ----------
        self.tag_lookups = 0
        self.data_reads = 0
        self.data_writes = 0
        self.fills = 0

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    def set_index(self, addr: int) -> int:
        """In-bank set index for block address ``addr``."""
        return (addr // self.bank_stride) % self.num_sets

    def is_no_spill_set(self, set_index: int) -> bool:
        """True for the sampled sets that never admit spilled entries."""
        return set_index in self._sample_sets

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(self, addr: int, touch: bool = True) -> "tuple[LLCLine | None, LLCLine | None]":
        """Find the data line and spilled entry for ``addr``.

        Returns ``(data_line, spill_line)``; either may be None. With
        ``touch``, recency is updated with the paper's ordering: the
        spilled entry first, then the data block, leaving the data block
        more recent.
        """
        self.tag_lookups += 1
        lines = self._sets.get(self.set_index(addr))
        if not lines:
            return None, None
        data_line = None
        spill_line = None
        for line in lines:
            if line.tag == addr:
                if line.is_spill:
                    spill_line = line
                else:
                    data_line = line
        if touch:
            if spill_line is not None:
                self._to_mru(lines, spill_line)
            if data_line is not None:
                self._to_mru(lines, data_line)
        return data_line, spill_line

    def peek(self, addr: int) -> "tuple[LLCLine | None, LLCLine | None]":
        """Quiet :meth:`lookup`: no recency update, no activity counters.

        Used by the invariant checkers and the fault injector so that
        auditing a run never perturbs its statistics.
        """
        lines = self._sets.get(self.set_index(addr))
        data_line = None
        spill_line = None
        if lines:
            for line in lines:
                if line.tag == addr:
                    if line.is_spill:
                        spill_line = line
                    else:
                        data_line = line
        return data_line, spill_line

    @staticmethod
    def _to_mru(lines: "list[LLCLine]", line: LLCLine) -> None:
        if lines[-1] is not line:
            lines.remove(line)
            lines.append(line)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert_block(self, addr: int, state: LLCState) -> "tuple[LLCLine, LLCLine | None]":
        """Allocate a data line for ``addr``; returns (line, victim).

        The caller (the home controller) is responsible for handling the
        victim: writing back dirty data, reconstructing corrupted blocks,
        transferring or dropping spilled entries.
        """
        if state is LLCState.SPILLED_ENTRY:
            raise ProtocolError("use insert_spill for spilled tracking entries")
        set_index = self.set_index(addr)
        lines = self._sets.setdefault(set_index, [])
        victim = None
        if len(lines) >= self.assoc:
            victim = lines.pop(0)
        line = LLCLine(addr, state)
        lines.append(line)
        self.fills += 1
        self.data_writes += 1
        return line, victim

    def insert_spill(self, addr: int, coh: CohInfo, stra: StraCounters) -> "tuple[LLCLine | None, LLCLine | None]":
        """Allocate a spilled tracking entry for ``addr``.

        Returns ``(spill_line, victim)``. Refuses (returns ``(None,
        None)``) in no-spill sample sets. The spilled entry is inserted
        *below* its companion data block in recency order when the block
        is resident, preserving the victimize-``E_B``-first rule.
        """
        set_index = self.set_index(addr)
        if self.is_no_spill_set(set_index):
            return None, None
        lines = self._sets.setdefault(set_index, [])
        victim = None
        if len(lines) >= self.assoc:
            victim = lines.pop(0)
        spill = LLCLine(addr, LLCState.SPILLED_ENTRY, is_spill=True)
        spill.coh = coh
        spill.stra = stra
        # Keep E_B just below B in recency order wherever B currently is,
        # so B can never be victimized before E_B.
        companion_index = None
        for index, line in enumerate(lines):
            if line.tag == addr and not line.is_spill:
                companion_index = index
                break
        if companion_index is not None:
            lines.insert(companion_index, spill)
        else:
            lines.append(spill)
        self.data_writes += 1
        return spill, victim

    # ------------------------------------------------------------------
    # Removal
    # ------------------------------------------------------------------

    def remove(self, line: LLCLine) -> None:
        """Remove ``line`` from its set (it must be resident)."""
        lines = self._sets.get(self.set_index(line.tag))
        if lines is None or line not in lines:
            raise ProtocolError(f"line {line!r} is not resident")
        lines.remove(line)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def occupancy(self) -> int:
        """Number of resident lines (data + spilled)."""
        return sum(len(lines) for lines in self._sets.values())

    def iter_lines(self):
        """Yield every resident line."""
        for lines in self._sets.values():
            yield from lines
