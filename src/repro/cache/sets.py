"""Generic set-associative array with LRU or 1-bit NRU replacement.

This array is used for the baseline sparse directory, the tiny directory
slices, and the per-core private caches. Lines carry an arbitrary payload;
the array only manages placement, lookup, and victim selection.

Recency is represented by list order within a set (MRU at the end), which
is both simple and fast at the small associativities used here (8/16-way,
or fully associative slices of at most 64 entries).
"""

from __future__ import annotations

from repro.errors import ConfigError


class Line:
    """One array line: a tag plus a caller-defined payload.

    ``nru_ref`` is the 1-bit NRU reference bit; it is only meaningful when
    the owning array uses NRU replacement.
    """

    __slots__ = ("tag", "payload", "nru_ref")

    def __init__(self, tag: int, payload: object) -> None:
        self.tag = tag
        self.payload = payload
        self.nru_ref = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Line(tag={self.tag:#x}, payload={self.payload!r})"


class SetAssocArray:
    """A set-associative array of :class:`Line` objects.

    Args:
        num_sets: number of sets; 1 makes the array fully associative.
        assoc: number of ways per set.
        replacement: ``"lru"`` or ``"nru"`` (1-bit not-recently-used, the
            paper's sparse-directory policy, Table I).
    """

    __slots__ = ("num_sets", "assoc", "replacement", "_sets")

    def __init__(self, num_sets: int, assoc: int, replacement: str = "lru") -> None:
        if num_sets <= 0 or assoc <= 0:
            raise ConfigError(
                f"num_sets and assoc must be positive, got {num_sets}x{assoc}"
            )
        if replacement not in ("lru", "nru"):
            raise ConfigError(f"unknown replacement policy {replacement!r}")
        self.num_sets = num_sets
        self.assoc = assoc
        self.replacement = replacement
        self._sets: "dict[int, list[Line]]" = {}

    def set_index(self, key: int) -> int:
        """Default set mapping for ``key``."""
        return key % self.num_sets

    def set_lines(self, set_index: int) -> "list[Line]":
        """The lines currently resident in ``set_index`` (MRU last)."""
        return self._sets.get(set_index, [])

    def lookup(self, set_index: int, tag: int, touch: bool = True) -> "Line | None":
        """Find the line with ``tag`` in ``set_index``.

        When ``touch`` is true the line's recency state is updated (moved
        to MRU for LRU; reference bit set for NRU).
        """
        lines = self._sets.get(set_index)
        if not lines:
            return None
        for position, line in enumerate(lines):
            if line.tag == tag:
                if touch:
                    if self.replacement == "lru":
                        if position != len(lines) - 1:
                            del lines[position]
                            lines.append(line)
                    else:
                        line.nru_ref = True
                return line
        return None

    def choose_victim(self, set_index: int) -> "Line | None":
        """Return the line that would be evicted by an insertion, or None
        if the set still has a free way."""
        lines = self._sets.get(set_index)
        if lines is None or len(lines) < self.assoc:
            return None
        if self.replacement == "lru":
            return lines[0]
        for line in lines:
            if not line.nru_ref:
                return line
        # All reference bits set: clear them all and pick the first way,
        # the standard 1-bit NRU behaviour.
        for line in lines:
            line.nru_ref = False
        return lines[0]

    def insert(self, set_index: int, tag: int, payload: object) -> "Line | None":
        """Insert a new line; returns the evicted line, if any.

        The caller must have established that ``tag`` is not present.
        """
        lines = self._sets.setdefault(set_index, [])
        evicted = None
        if len(lines) >= self.assoc:
            evicted = self.choose_victim(set_index)
            lines.remove(evicted)
        line = Line(tag, payload)
        lines.append(line)
        return evicted

    def remove(self, set_index: int, tag: int) -> "Line | None":
        """Remove and return the line with ``tag``, or None if absent."""
        lines = self._sets.get(set_index)
        if not lines:
            return None
        for position, line in enumerate(lines):
            if line.tag == tag:
                del lines[position]
                return line
        return None

    def occupancy(self) -> int:
        """Total number of resident lines."""
        return sum(len(lines) for lines in self._sets.values())

    def iter_lines(self):
        """Yield (set_index, line) for every resident line."""
        for set_index, lines in self._sets.items():
            for line in lines:
                yield set_index, line
