"""Cache structures: set-associative arrays, private hierarchies, the LLC."""

from repro.cache.sets import Line, SetAssocArray
from repro.cache.private_cache import PrivateCore
from repro.cache.llc import LLCBank, LLCLine

__all__ = ["Line", "SetAssocArray", "PrivateCore", "LLCBank", "LLCLine"]
