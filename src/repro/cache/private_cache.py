"""Per-core private cache hierarchy: iL1, dL1, and a unified L2.

Coherence state is kept at the L2 level; the L1s are treated as inclusive
subsets of the L2 (the paper's hierarchy is non-inclusive, but inclusion
changes neither the hop counts nor the directory pressure that drive the
paper's results, and it keeps invalidation handling simple). Evictions
from the L2 are notified to the home LLC bank for every state, per the
paper's baseline protocol [29].
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.sets import SetAssocArray
from repro.errors import ProtocolError
from repro.types import AccessKind, PrivateState


@dataclass(frozen=True)
class EvictionNotice:
    """An L2 victim that must be reported to its home LLC bank."""

    addr: int
    state: PrivateState


class ProbeResult:
    """Outcome of probing the private hierarchy for an access."""

    __slots__ = ("level", "needs_upgrade")

    def __init__(self, level: str, needs_upgrade: bool = False) -> None:
        #: "l1", "l2", or "miss".
        self.level = level
        #: True when the block is held in S but the access is a write, so
        #: an upgrade request must be sent to the home bank.
        self.needs_upgrade = needs_upgrade

    @property
    def is_hit(self) -> bool:
        """True when the access completes within the private hierarchy."""
        return self.level != "miss" and not self.needs_upgrade


class PrivateCore:
    """The private cache hierarchy of one core."""

    __slots__ = ("core_id", "il1", "dl1", "l2")

    def __init__(
        self,
        core_id: int,
        l1_sets: int,
        l1_assoc: int,
        l2_sets: int,
        l2_assoc: int,
    ) -> None:
        self.core_id = core_id
        self.il1 = SetAssocArray(l1_sets, l1_assoc, "lru")
        self.dl1 = SetAssocArray(l1_sets, l1_assoc, "lru")
        self.l2 = SetAssocArray(l2_sets, l2_assoc, "lru")

    # ------------------------------------------------------------------
    # Lookup path
    # ------------------------------------------------------------------

    #: :meth:`classify` return codes.
    MISS = 0
    L1_HIT = 1
    L2_HIT = 2
    UPGRADE_L1 = 3
    UPGRADE_L2 = 4

    def classify(self, addr: int, kind: AccessKind) -> int:
        """Probe the hierarchy for an access; returns an int code.

        The fast-lane twin of :meth:`probe` — identical side effects
        (recency touches in both levels, L1 promotion on an L2 hit, the
        silent E->M write upgrade, the inclusion check) but an int code
        instead of a :class:`ProbeResult` allocation. This is the single
        hottest call in the simulator, so the per-level LRU lookups of
        :meth:`SetAssocArray.lookup` are inlined (the private arrays are
        always LRU).

        Codes: ``MISS`` (0), ``L1_HIT`` (1), ``L2_HIT`` (2, promoted
        into the L1), ``UPGRADE_L1``/``UPGRADE_L2`` (3/4: held in S but
        the access is a write, so the home must serve an upgrade).
        """
        l1 = self.il1 if kind is AccessKind.IFETCH else self.dl1
        lines = l1._sets.get(addr % l1.num_sets)
        l1_line = None
        if lines:
            for position, line in enumerate(lines):
                if line.tag == addr:
                    if position != len(lines) - 1:
                        del lines[position]
                        lines.append(line)
                    l1_line = line
                    break
        l2 = self.l2
        lines = l2._sets.get(addr % l2.num_sets)
        l2_line = None
        if lines:
            for position, line in enumerate(lines):
                if line.tag == addr:
                    if position != len(lines) - 1:
                        del lines[position]
                        lines.append(line)
                    l2_line = line
                    break
        if l2_line is None:
            if l1_line is not None:
                raise ProtocolError(
                    f"core {self.core_id}: block {addr:#x} in L1 but not L2"
                )
            return 0
        state = l2_line.payload
        if kind is AccessKind.WRITE:
            if state is PrivateState.SHARED:
                return 3 if l1_line is not None else 4
            if state is PrivateState.EXCLUSIVE:
                l2_line.payload = PrivateState.MODIFIED
        if l1_line is not None:
            return 1
        # L2 hit: promote into L1 (inclusive, so no notice is needed for
        # the L1 victim -- the L2 still holds it).
        self._l1_fill(l1, addr)
        return 2

    def probe(self, addr: int, kind: AccessKind) -> ProbeResult:
        """Probe the hierarchy for an access without filling anything.

        On an L2 hit the block is promoted into the appropriate L1. A
        write that finds the block in S state reports ``needs_upgrade``;
        a write that finds it in E state silently upgrades to M.
        Delegates to :meth:`classify`, so the reference and fast lanes
        share one probe implementation.
        """
        code = self.classify(addr, kind)
        if code == 0:
            return ProbeResult("miss")
        if code == 3:
            return ProbeResult("l1", needs_upgrade=True)
        if code == 4:
            return ProbeResult("l2", needs_upgrade=True)
        return ProbeResult("l1" if code == 1 else "l2")

    def _l1_fill(self, l1: SetAssocArray, addr: int) -> None:
        l1.insert(l1.set_index(addr), addr, None)

    # ------------------------------------------------------------------
    # Fill and state-change paths (driven by the home controller)
    # ------------------------------------------------------------------

    def fill(self, addr: int, kind: AccessKind, state: PrivateState) -> "list[EvictionNotice]":
        """Install a block granted in ``state``; returns eviction notices.

        At most one L2 victim is produced; its L1 copies are removed to
        preserve inclusion.
        """
        if state is PrivateState.INVALID:
            raise ProtocolError("cannot fill a block in state I")
        notices = []
        evicted = self.l2.insert(self.l2.set_index(addr), addr, state)
        if evicted is not None:
            self._drop_from_l1s(evicted.tag)
            notices.append(EvictionNotice(evicted.tag, evicted.payload))
        l1 = self.il1 if kind is AccessKind.IFETCH else self.dl1
        self._l1_fill(l1, addr)
        return notices

    def complete_upgrade(self, addr: int) -> None:
        """Transition a block held in S to M after an upgrade response."""
        line = self.l2.lookup(self.l2.set_index(addr), addr, touch=False)
        if line is None or line.payload is not PrivateState.SHARED:
            raise ProtocolError(
                f"core {self.core_id}: upgrade completion for block {addr:#x} "
                f"not held in S"
            )
        line.payload = PrivateState.MODIFIED

    def invalidate(self, addr: int) -> PrivateState:
        """Invalidate a block everywhere in this hierarchy.

        Returns the state the block was held in (``INVALID`` when the
        block was not present, which callers treat as a stale-tracker
        protocol error where appropriate).
        """
        line = self.l2.remove(self.l2.set_index(addr), addr)
        self._drop_from_l1s(addr)
        if line is None:
            return PrivateState.INVALID
        return line.payload

    def downgrade(self, addr: int) -> PrivateState:
        """Downgrade an exclusively held block to S (intervention).

        Returns the prior state (M or E) so the caller can account for a
        dirty writeback.
        """
        line = self.l2.lookup(self.l2.set_index(addr), addr, touch=False)
        if line is None or not line.payload.is_exclusive:
            raise ProtocolError(
                f"core {self.core_id}: downgrade of block {addr:#x} "
                f"not held exclusively"
            )
        prior = line.payload
        line.payload = PrivateState.SHARED
        return prior

    def _drop_from_l1s(self, addr: int) -> None:
        self.il1.remove(self.il1.set_index(addr), addr)
        self.dl1.remove(self.dl1.set_index(addr), addr)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def state_of(self, addr: int) -> PrivateState:
        """The MESI state of ``addr`` in this hierarchy (I if absent)."""
        line = self.l2.lookup(self.l2.set_index(addr), addr, touch=False)
        if line is None:
            return PrivateState.INVALID
        return line.payload

    def holds(self, addr: int) -> bool:
        """True when the block is valid anywhere in this hierarchy."""
        return self.state_of(addr) is not PrivateState.INVALID

    def resident_blocks(self):
        """Yield (addr, state) for every valid block (for invariants)."""
        for _, line in self.l2.iter_lines():
            yield line.tag, line.payload
