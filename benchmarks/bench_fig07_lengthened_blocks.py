"""Fig. 7: allocated LLC blocks experiencing lengthened accesses.

Regenerates the experiment via ``repro.analysis.experiments.fig07_lengthened_blocks`` at the
``REPRO_SCALE`` scale and prints the paper-style table (run pytest with
``-s`` to see it; EXPERIMENTS.md records the comparison).
"""

from repro.analysis.experiments import fig07_lengthened_blocks


def test_fig07_lengthened_blocks(figure_runner):
    figure = figure_runner(fig07_lengthened_blocks)
    assert figure.values
