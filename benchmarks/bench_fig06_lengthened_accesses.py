"""Fig. 6: LLC accesses whose critical path lengthens to three hops.

Regenerates the experiment via ``repro.analysis.experiments.fig06_lengthened_accesses`` at the
``REPRO_SCALE`` scale and prints the paper-style table (run pytest with
``-s`` to see it; EXPERIMENTS.md records the comparison).
"""

from repro.analysis.experiments import fig06_lengthened_accesses


def test_fig06_lengthened_accesses(figure_runner):
    figure = figure_runner(fig06_lengthened_accesses)
    assert figure.values
