"""Fig. 3: sparse directories dedicated to tracking shared blocks only.

Both the set-associative and the four-way skew-associative (Z-cache)
variants, at 1/16x through 1/128x, normalized to the 2x baseline.
"""

from repro.analysis.experiments import fig03_shared_only


def test_fig03_shared_only_set_assoc(figure_runner):
    figure = figure_runner(fig03_shared_only, zcache=False)
    assert figure.values


def test_fig03_shared_only_zcache(figure_runner):
    figure = figure_runner(fig03_shared_only, zcache=True)
    assert figure.values
