"""Figs. 14-15: residual lengthened accesses under the tiny directory.

The percentage of LLC accesses that still take a 3-hop critical path at
the two extreme tiny-directory sizes (1/32x and 1/256x), for the three
policies.
"""

import pytest

from repro.analysis.experiments import tiny_residual_lengthened

SIZES = [
    pytest.param(1 / 32, id="fig14_residual_1_32"),
    pytest.param(1 / 256, id="fig15_residual_1_256"),
]


@pytest.mark.parametrize("ratio", SIZES)
def test_residual_lengthened(figure_runner, ratio):
    figure = figure_runner(tiny_residual_lengthened, ratio)
    assert figure.values
