"""Fig. 1: undersized baseline sparse directories vs the 2x directory.

Regenerates the experiment via ``repro.analysis.experiments.fig01_sparse_sizes`` at the
``REPRO_SCALE`` scale and prints the paper-style table (run pytest with
``-s`` to see it; EXPERIMENTS.md records the comparison).
"""

from repro.analysis.experiments import fig01_sparse_sizes


def test_fig01_sparse_sizes(figure_runner):
    figure = figure_runner(fig01_sparse_sizes)
    assert figure.values
