"""Fig. 2: maximum-sharer-count distribution of allocated LLC blocks.

Regenerates the experiment via ``repro.analysis.experiments.fig02_sharer_distribution`` at the
``REPRO_SCALE`` scale and prints the paper-style table (run pytest with
``-s`` to see it; EXPERIMENTS.md records the comparison).
"""

from repro.analysis.experiments import fig02_sharer_distribution


def test_fig02_sharer_distribution(figure_runner):
    figure = figure_runner(fig02_sharer_distribution)
    assert figure.values
