"""Fig. 8: STRA-category distribution of non-zero-STRA blocks.

Regenerates the experiment via ``repro.analysis.experiments.fig08_stra_blocks`` at the
``REPRO_SCALE`` scale and prints the paper-style table (run pytest with
``-s`` to see it; EXPERIMENTS.md records the comparison).
"""

from repro.analysis.experiments import fig08_stra_blocks


def test_fig08_stra_blocks(figure_runner):
    figure = figure_runner(fig08_stra_blocks)
    assert figure.values
