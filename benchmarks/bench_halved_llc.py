"""Section V-A robustness: halved hierarchy with a 1/128x tiny directory.

Regenerates the experiment via ``repro.analysis.experiments.halved_hierarchy`` at the
``REPRO_SCALE`` scale and prints the paper-style table (run pytest with
``-s`` to see it; EXPERIMENTS.md records the comparison).
"""

from repro.analysis.experiments import halved_hierarchy


def test_halved_llc(figure_runner):
    figure = figure_runner(halved_hierarchy)
    assert figure.values
