"""Figs. 10-13: tiny directory performance at 1/32x .. 1/256x.

Each size is evaluated with the three policies the paper ablates:
DSTRA, DSTRA+gNRU, and DSTRA+gNRU+DynSpill, normalized to the 2x
sparse baseline.
"""

import pytest

from repro.analysis.experiments import tiny_directory_performance

SIZES = [
    pytest.param(1 / 32, id="fig10_tiny_1_32"),
    pytest.param(1 / 64, id="fig11_tiny_1_64"),
    pytest.param(1 / 128, id="fig12_tiny_1_128"),
    pytest.param(1 / 256, id="fig13_tiny_1_256"),
]


@pytest.mark.parametrize("ratio", SIZES)
def test_tiny_directory_size(figure_runner, ratio):
    figure = figure_runner(tiny_directory_performance, ratio)
    assert figure.values
