#!/usr/bin/env python3
"""Hot-path microbenchmarks: fast lane vs reference lane, trace cache.

Unlike the ``bench_fig*.py`` suite (which regenerates paper figures),
this script times the *simulator itself*: the engine's private-hit fast
lane against the reference lane on a private-hit-dominated workload and
on a mixed tiny-directory workload, and the memoized trace cache against
cold generation. Each point is emitted as a ``BENCH_*.json`` file via
:func:`repro.telemetry.write_bench_point` so CI can gate regressions
with ``tools/compare_bench.py`` against the committed baselines in
``benchmarks/baselines/``.

Every timing point also asserts that the fast and reference lanes
produce bit-identical statistics — the perf gate doubles as a
correctness gate.

Gated metrics are wall-clock *ratios* (speedups), which are stable
across machines; absolute seconds ride along as informational fields.

Usage::

    python benchmarks/bench_micro_hotpath.py --out .repro_bench
    python benchmarks/bench_micro_hotpath.py --out benchmarks/baselines  # refresh baselines
"""

from __future__ import annotations

import argparse
import gc
import os
import subprocess
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.sim.config import SparseSpec, SystemConfig, TinySpec
from repro.sim.engine import run_trace
from repro.sim.system import System
from repro.telemetry import write_bench_point
from repro.workloads.generator import (
    clear_trace_cache,
    generate_streams,
    trace_cache_stats,
)
from repro.workloads.profiles import WorkloadProfile

#: The private-hit-dominated microbenchmark workload: a tight per-core
#: working set (8% of the private L2, zipf 1.1) that settles into >98%
#: L1 hits after the init pass, with just enough shared traffic to keep
#: the home controllers honest. This is the acceptance workload for the
#: fast lane's >= 1.5x speedup criterion.
MICRO_PRIVATE_HIT = WorkloadProfile(
    name="micro_private_hit",
    description="hot-path microbenchmark: private-hit-dominated mix",
    private_fraction=0.97,
    shared_fraction=0.01,
    hot_fraction=0.01,
    code_fraction=0.01,
    stream_fraction=0.0,
    private_region_factor=0.08,
    pool_factor=0.005,
    hot_blocks_per_core=8.0,
    code_blocks_per_core=8.0,
    write_fraction_private=0.3,
    write_fraction_shared=0.1,
    hot_write_fraction=0.01,
    sharer_bin_weights=(0.7, 0.2, 0.07, 0.03),
    zipf_exponent=0.9,
    hot_zipf_exponent=0.8,
    private_zipf_exponent=1.1,
    cpi_gap=24,
)

_CORES = 16
_SEED = 1


def _best_of(fn, repeats: int) -> float:
    """Best (minimum) wall-clock of ``repeats`` calls to ``fn``.

    The collector is drained before and disabled during each timed
    call, so a collection triggered by garbage from an *earlier* point
    cannot land inside a later point's measurement window.
    """
    best = None
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - started
        finally:
            gc.enable()
        if best is None or elapsed < best:
            best = elapsed
    return best


def _time_lanes(config: SystemConfig, streams, repeats: int) -> dict:
    """Time both lanes over ``streams``; assert bit-identical stats."""
    results = {}

    def run_lane(fast: bool):
        return run_trace(System(config), streams, fast_path=fast)

    reference_stats = run_lane(False)
    fast_stats = run_lane(True)
    if reference_stats.dump() != fast_stats.dump():
        raise SystemExit(
            "bench_micro_hotpath: fast lane diverged from the reference "
            "lane — statistics are not bit-identical"
        )
    results["ref_seconds"] = _best_of(lambda: run_lane(False), repeats)
    results["fast_seconds"] = _best_of(lambda: run_lane(True), repeats)
    results["speedup"] = results["ref_seconds"] / results["fast_seconds"]
    results["accesses"] = reference_stats.accesses
    results["l1_hit_fraction"] = reference_stats.l1_hits / max(
        1, reference_stats.accesses
    )
    return results


def bench_private_hit(total_accesses: int, repeats: int) -> dict:
    """Fast vs reference lane on the private-hit-dominated workload."""
    config = SystemConfig(num_cores=_CORES, scheme=SparseSpec())
    streams = generate_streams(
        MICRO_PRIVATE_HIT, config, total_accesses, seed=_SEED
    )
    metrics = _time_lanes(config, streams, repeats)
    return {
        "metrics": metrics,
        # The acceptance criterion: >= 1.5x on this workload, and no
        # tolerated regression below baseline * (1 - tolerance).
        "gate": {"speedup": {"direction": "higher", "floor": 1.5}},
        "workload": MICRO_PRIVATE_HIT.name,
        "scheme": "sparse",
    }


def bench_mixed_tiny(total_accesses: int, repeats: int) -> dict:
    """Fast vs reference lane on a mixed workload under TinySpec(spill)."""
    config = SystemConfig(
        num_cores=_CORES, scheme=TinySpec(spill=True)
    )
    streams = generate_streams("bodytrack", config, total_accesses, seed=_SEED)
    metrics = _time_lanes(config, streams, repeats)
    return {
        "metrics": metrics,
        # Mixed traffic spends most of its time in the home controllers,
        # so the lane gain is modest and noisy — the gate only demands
        # the fast lane never loses to the reference lane (floor_only:
        # no baseline-relative tolerance check).
        "gate": {
            "speedup": {"direction": "higher", "floor": 1.0, "floor_only": True}
        },
        "workload": "bodytrack",
        "scheme": "tiny+spill",
    }


def bench_trace_cache(total_accesses: int, repeats: int) -> dict:
    """Cold stream generation vs a per-process trace-cache hit."""
    config = SystemConfig(num_cores=_CORES, scheme=SparseSpec())

    def cold():
        clear_trace_cache()
        generate_streams("bodytrack", config, total_accesses, seed=_SEED)

    def cached():
        generate_streams("bodytrack", config, total_accesses, seed=_SEED)

    cold_seconds = _best_of(cold, repeats)
    cached()  # ensure the entry is resident
    cached_seconds = _best_of(cached, max(repeats, 10))
    stats = trace_cache_stats()
    return {
        "metrics": {
            "cold_seconds": cold_seconds,
            "cached_seconds": cached_seconds,
            "speedup": cold_seconds / max(cached_seconds, 1e-9),
            "cache_hits": stats["hits"],
        },
        # A cache hit is a dict lookup; its absolute time is sub-µs
        # noise, so the ratio swings wildly between runs — gate only the
        # floor: anything under 10x means the memoization is broken.
        "gate": {
            "speedup": {"direction": "higher", "floor": 10.0, "floor_only": True}
        },
        "workload": "bodytrack",
    }


POINTS = {
    "micro_private_hit": bench_private_hit,
    "micro_mixed_tiny": bench_mixed_tiny,
    "micro_trace_cache": bench_trace_cache,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=os.environ.get("REPRO_BENCH_DIR") or ".repro_bench",
        help="directory for BENCH_*.json points (default: REPRO_BENCH_DIR "
        "or .repro_bench)",
    )
    parser.add_argument(
        "--accesses",
        type=int,
        default=150000,
        help="steady-state accesses per timing point (default 150000; "
        "long enough that the miss-heavy init pass does not dilute the "
        "steady-state hit rate)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repetitions; the best (minimum) is reported",
    )
    parser.add_argument(
        "--only",
        choices=sorted(POINTS),
        action="append",
        help="run a subset of points (repeatable)",
    )
    args = parser.parse_args(argv)
    names = args.only or sorted(POINTS)
    if args.only is None and len(names) > 1:
        # One clean subprocess per point: residual state from an earlier
        # point (trace-cache entries, allocator fragmentation, warmed-up
        # code objects) must not leak into a later point's timings.
        for name in names:
            command = [
                sys.executable,
                os.path.abspath(__file__),
                "--only",
                name,
                "--out",
                args.out,
                "--accesses",
                str(args.accesses),
                "--repeats",
                str(args.repeats),
            ]
            completed = subprocess.run(command)
            if completed.returncode != 0:
                return completed.returncode
        return 0
    for name in names:
        payload = POINTS[name](args.accesses, args.repeats)
        payload["accesses_requested"] = args.accesses
        payload["repeats"] = args.repeats
        path = write_bench_point(args.out, name, **payload)
        metrics = payload["metrics"]
        summary = ", ".join(
            f"{key}={value:.4g}" if isinstance(value, float) else f"{key}={value}"
            for key, value in sorted(metrics.items())
        )
        print(f"{name}: {summary}")
        print(f"  -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
