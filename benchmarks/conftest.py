"""Benchmark harness support.

Each ``bench_fig*.py`` regenerates one of the paper's figures at the
scale selected by ``REPRO_SCALE`` (quick / default / full) and prints the
figure's series as a text table; pytest-benchmark records the wall time.
Results are cached under ``.repro_cache/`` so figures sharing runs (all
normalized figures share the 2x baselines) do not recompute them.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def figure_runner(benchmark):
    """Run an experiment function once and print its rendered table."""

    def run(experiment, *args, **kwargs):
        figure = benchmark.pedantic(
            lambda: experiment(*args, **kwargs), rounds=1, iterations=1
        )
        print()
        print(figure.render())
        return figure

    return run
