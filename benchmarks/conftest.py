"""Benchmark harness support.

Each ``bench_fig*.py`` regenerates one of the paper's figures at the
scale selected by ``REPRO_SCALE`` (quick / default / full) and prints the
figure's series as a text table; pytest-benchmark records the wall time.
Results are cached under ``.repro_cache/`` so figures sharing runs (all
normalized figures share the 2x baselines) do not recompute them.

Figure point lists are submitted through the parallel sweep executor
(:mod:`repro.parallel`): the experiment is planned once to harvest its
(app, scheme, scale) points, the uncached points are fanned out over
``REPRO_JOBS`` worker processes (default: all cores), and the figure is
then rendered from the warm cache — bit-identical to a serial run, but
wall-clock bound by the slowest point instead of the sum of all points.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.cache import cache_enabled
from repro.parallel import collect_points, pending_points, resolve_jobs, run_sweep
from repro.telemetry import bench_dir_from_env, write_bench_point


@pytest.fixture
def figure_runner(benchmark, request):
    """Run an experiment function once and print its rendered table.

    When more than one worker is available (``REPRO_JOBS`` or cpu
    count) and the result cache is enabled, the experiment's uncached
    points are executed through the parallel sweep executor first.

    With ``REPRO_BENCH_DIR`` set, each benchmark additionally persists
    a ``BENCH_<test>.json`` perf point (wall-clock seconds, computed
    point count, scale, worker count) for CI to archive; see
    ``docs/telemetry.md``.
    """

    def run(experiment, *args, **kwargs):
        jobs = resolve_jobs()
        computed = 0
        started = time.perf_counter()
        if jobs > 1 and cache_enabled():
            points = pending_points(collect_points(experiment, *args, **kwargs))
            if points:
                computed = len(points)
                run_sweep(points, jobs=jobs)
        figure = benchmark.pedantic(
            lambda: experiment(*args, **kwargs), rounds=1, iterations=1
        )
        elapsed = time.perf_counter() - started
        bench_dir = bench_dir_from_env()
        if bench_dir is not None:
            write_bench_point(
                bench_dir,
                request.node.name,
                seconds=round(elapsed, 3),
                computed_points=computed,
                scale=os.environ.get("REPRO_SCALE", "default"),
                jobs=jobs,
                experiment=getattr(experiment, "__name__", str(experiment)),
            )
        print()
        print(figure.render())
        return figure

    return run
