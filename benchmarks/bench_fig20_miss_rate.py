"""Fig. 20: LLC miss-rate increase under dynamic spilling.

Regenerates the experiment via ``repro.analysis.experiments.fig20_miss_rate_increase`` at the
``REPRO_SCALE`` scale and prints the paper-style table (run pytest with
``-s`` to see it; EXPERIMENTS.md records the comparison).
"""

from repro.analysis.experiments import fig20_miss_rate_increase


def test_fig20_miss_rate(figure_runner):
    figure = figure_runner(fig20_miss_rate_increase)
    assert figure.values
