"""Fig. 19: LLC accesses saved from lengthening by spilled entries.

Regenerates the experiment via ``repro.analysis.experiments.fig19_spill_benefit`` at the
``REPRO_SCALE`` scale and prints the paper-style table (run pytest with
``-s`` to see it; EXPERIMENTS.md records the comparison).
"""

from repro.analysis.experiments import fig19_spill_benefit


def test_fig19_spill_benefit(figure_runner):
    figure = figure_runner(fig19_spill_benefit)
    assert figure.values
