"""§VI future direction: tiny directory for inter-socket coherence.

Quantifies the paper's closing proposal on an 8-socket machine modelled
at socket granularity (see repro/multisocket/).
"""

from repro.analysis.experiments import Figure
from repro.multisocket.experiment import intersocket_directory_study


def test_multisocket_directory_study(figure_runner):
    figure = figure_runner(intersocket_directory_study)
    assert isinstance(figure, Figure)
    assert figure.average("tiny 1/32x") <= figure.average("sparse 1/32x")
