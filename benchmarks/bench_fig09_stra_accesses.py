"""Fig. 9: STRA-category distribution of offending accesses.

Regenerates the experiment via ``repro.analysis.experiments.fig09_stra_accesses`` at the
``REPRO_SCALE`` scale and prints the paper-style table (run pytest with
``-s`` to see it; EXPERIMENTS.md records the comparison).
"""

from repro.analysis.experiments import fig09_stra_accesses


def test_fig09_stra_accesses(figure_runner):
    figure = figure_runner(fig09_stra_accesses)
    assert figure.values
