"""Fig. 22: multi-grain (MgD) and Stash directories vs the 2x baseline.

Regenerates the experiment via ``repro.analysis.experiments.fig22_mgd_stash`` at the
``REPRO_SCALE`` scale and prints the paper-style table (run pytest with
``-s`` to see it; EXPERIMENTS.md records the comparison).
"""

from repro.analysis.experiments import fig22_mgd_stash


def test_fig22_mgd_stash(figure_runner):
    figure = figure_runner(fig22_mgd_stash)
    assert figure.values
