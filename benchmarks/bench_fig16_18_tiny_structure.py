"""Figs. 16-18: tiny-directory structural metrics.

Fig. 16: entry hits under gNRU normalized to DSTRA.
Fig. 17: allocations under gNRU normalized to DSTRA.
Fig. 18: hits per allocation under gNRU.
"""

import pytest

from repro.analysis.experiments import tiny_structure_metric

METRICS = [
    pytest.param("hits", id="fig16_hits"),
    pytest.param("allocations", id="fig17_allocations"),
    pytest.param("hits_per_alloc", id="fig18_hits_per_alloc"),
]


@pytest.mark.parametrize("metric", METRICS)
def test_tiny_structure_metric(figure_runner, metric):
    figure = figure_runner(tiny_structure_metric, metric)
    assert figure.values
