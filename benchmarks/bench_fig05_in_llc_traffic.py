"""Fig. 5: interconnect traffic of in-LLC tracking by message class.

Regenerates the experiment via ``repro.analysis.experiments.fig05_in_llc_traffic`` at the
``REPRO_SCALE`` scale and prints the paper-style table (run pytest with
``-s`` to see it; EXPERIMENTS.md records the comparison).
"""

from repro.analysis.experiments import fig05_in_llc_traffic


def test_fig05_in_llc_traffic(figure_runner):
    figure = figure_runner(fig05_in_llc_traffic)
    assert figure.values
