"""Fig. 4: in-LLC coherence tracking (tag-extended vs data-borrowed).

Regenerates the experiment via ``repro.analysis.experiments.fig04_in_llc_performance`` at the
``REPRO_SCALE`` scale and prints the paper-style table (run pytest with
``-s`` to see it; EXPERIMENTS.md records the comparison).
"""

from repro.analysis.experiments import fig04_in_llc_performance


def test_fig04_in_llc_perf(figure_runner):
    figure = figure_runner(fig04_in_llc_performance)
    assert figure.values
