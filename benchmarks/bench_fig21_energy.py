"""Fig. 21: execution cycles and LLC+directory energy across sizes.

Regenerates the experiment via ``repro.analysis.experiments.fig21_energy`` at the
``REPRO_SCALE`` scale and prints the paper-style table (run pytest with
``-s`` to see it; EXPERIMENTS.md records the comparison).
"""

from repro.analysis.experiments import fig21_energy


def test_fig21_energy(figure_runner):
    figure = figure_runner(fig21_energy)
    assert figure.values
