"""Ablation benches for the design choices called out in DESIGN.md §5.

A1: gNRU generation length — adaptive (paper) vs fixed.
A2: spill tolerance delta — adaptive classes A-D (paper) vs fixed delta_B.
A3: STRA counter width — 4/6/8 bits (paper: 6).
"""

from repro.analysis.experiments import (
    ablation_gnru_generation,
    ablation_spill_delta,
    ablation_stra_width,
)


def test_ablation_gnru_generation(figure_runner):
    figure = figure_runner(ablation_gnru_generation)
    assert figure.values


def test_ablation_spill_delta(figure_runner):
    figure = figure_runner(ablation_spill_delta)
    assert figure.values


def test_ablation_stra_width(figure_runner):
    figure = figure_runner(ablation_stra_width)
    assert figure.values
