"""Tests for the parallel sweep executor (``repro.parallel``).

The acceptance bar (ISSUE 2): a 2-worker sweep over >= 3 (app, scheme)
points yields bit-identical stats to the serial path; concurrent cache
writes neither corrupt entries nor recompute points; and the harness
semantics — timeout, retry, keep-going — hold inside pool workers,
where SIGALRM-based timeouts would be inert.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.analysis import cache as result_cache
from repro.analysis.cache import cached_run, clear_failed_marks
from repro.analysis.runner import (
    HarnessPolicy,
    RunScale,
    harness,
    run_app,
)
from repro.errors import RunTimeoutError
from repro.parallel import (
    SweepPoint,
    collect_points,
    dedupe_points,
    pending_points,
    resolve_jobs,
    run_sweep,
)
from repro.sim.config import InLLCSpec, SparseSpec, TinySpec

SCALE = RunScale(num_cores=8, total_accesses=3000, spill_window=64)


def _points(scale=SCALE):
    """Three small, scheme-diverse sweep points."""
    return [
        SweepPoint("barnes", SparseSpec(ratio=2.0), scale),
        SweepPoint("ocean_cp", InLLCSpec(), scale),
        SweepPoint("barnes", TinySpec(ratio=1 / 64, policy="gnru",
                                      spill_window=scale.spill_window), scale),
    ]


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_CACHE", "on")
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    clear_failed_marks()
    yield
    clear_failed_marks()


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_invalid_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        assert resolve_jobs() >= 1

    def test_clamped_to_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1


class TestPlanner:
    def test_collects_grid_without_running(self, tmp_path):
        from repro.analysis import experiments

        points = collect_points(
            experiments.tiny_directory_performance, 1 / 256, SCALE,
            apps=["barnes"],
        )
        # One 2x baseline plus the three tiny policies.
        assert len(points) == 4
        assert {p.scheme_name for p in points} == {"sparse", "tiny"}
        assert all(p.app == "barnes" for p in points)
        # Planning must not simulate or touch the cache directory.
        assert not (tmp_path / "cache").exists()

    def test_derived_figure_plans_despite_placeholder_math(self):
        from repro.analysis import experiments

        # Fig. 21 divides aggregate totals; placeholders may break the
        # division but every point must still be harvested.
        points = collect_points(experiments.fig21_energy, SCALE,
                                apps=["barnes"])
        assert len(points) == 8  # six sparse sizes + two tiny sizes

    def test_pending_points_filters_cached(self):
        point = _points()[0]
        assert pending_points([point]) == [point]
        cached_run(point.app, point.scheme, point.scale)
        assert pending_points([point]) == []

    def test_dedupe_preserves_first_seen_order(self):
        points = _points()
        assert dedupe_points(points + points[::-1]) == points


class TestParallelSerialEquivalence:
    def test_two_workers_bit_identical_to_serial(self, tmp_path, monkeypatch):
        points = _points()
        assert len(points) >= 3

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
        report = run_sweep(points, jobs=2)
        assert all(not p.cache_hit for p in report.profiles)

        serial = [run_app(p.app, p.scheme, p.scale) for p in points]
        for computed, reference in zip(report.results, serial):
            assert computed.stats.dump() == reference.stats.dump()

    def test_serial_inline_path_matches_too(self, tmp_path, monkeypatch):
        points = _points()
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "a"))
        first = run_sweep(points, jobs=1)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "b"))
        second = run_sweep(points, jobs=2)
        for left, right in zip(first.results, second.results):
            assert left.stats.dump() == right.stats.dump()
        # The published cache entries are byte-comparable as well.
        entries_a = {p.name: p.read_bytes()
                     for p in (tmp_path / "a").glob("*.json")}
        entries_b = {p.name: p.read_bytes()
                     for p in (tmp_path / "b").glob("*.json")}
        assert entries_a == entries_b
        assert len(entries_a) == len(points)


class TestCacheUnderConcurrency:
    def test_duplicate_points_compute_once(self):
        points = _points()
        report = run_sweep(points + list(points), jobs=2)
        assert len(report.points) == len(points)
        assert sum(1 for p in report.profiles if not p.cache_hit) == len(points)

    def test_second_sweep_is_all_cache_hits(self):
        points = _points()
        run_sweep(points, jobs=2)
        again = run_sweep(points, jobs=2)
        assert all(p.cache_hit for p in again.profiles)
        assert all(r.meta.get("cached") for r in again.results)

    def test_racing_writers_never_corrupt_an_entry(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "race"))
        point = _points()[0]
        result = run_app(point.app, point.scheme, point.scale)
        path = result_cache.cache_dir() / f"{point.key()}.json"

        errors = []

        def writer():
            try:
                for _ in range(30):
                    result_cache._store_entry(path, result)
            except Exception as err:  # pragma: no cover - failure path
                errors.append(err)

        def reader():
            try:
                for _ in range(60):
                    loaded = result_cache._load_entry(path)
                    if loaded is not None:
                        assert loaded.stats.dump() == result.stats.dump()
            except Exception as err:  # pragma: no cover - failure path
                errors.append(err)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Atomic publication: the entry is whole and never quarantined.
        assert json.loads(path.read_text())
        assert not list(path.parent.glob("*.bad"))


class TestHarnessSemanticsInWorkers:
    def test_timeout_and_retry_in_pool(self):
        huge = RunScale(num_cores=8, total_accesses=2_000_000)
        points = [
            SweepPoint("barnes", SparseSpec(ratio=2.0), huge),
            SweepPoint("ocean_cp", SparseSpec(ratio=2.0), huge),
        ]
        policy = HarnessPolicy(keep_going=True, timeout_s=0.2, max_retries=1)
        start = time.monotonic()
        report = run_sweep(points, jobs=2, policy=policy)
        assert time.monotonic() - start < 120
        assert len(report.failures) == 2
        for failure in report.failures:
            assert "RunTimeoutError" in failure.error
            assert failure.attempts == 2  # the retry also ran and timed out
        assert all(r.meta.get("failed") for r in report.results)

    def test_keep_going_healthy_points_complete(self, monkeypatch):
        from repro.analysis import runner

        real_run_app = runner.run_app

        def flaky(app, scheme, scale=None, config=None):
            if app == "barnes":
                raise RuntimeError("synthetic failure")
            return real_run_app(app, scheme, scale, config)

        # Pool workers fork after the patch, so they inherit it.
        monkeypatch.setattr("repro.analysis.runner.run_app", flaky)
        points = _points()[:2]  # barnes (fails) + ocean_cp (healthy)
        policy = HarnessPolicy(keep_going=True)
        report = run_sweep(points, jobs=2, policy=policy)
        [failure] = report.failures
        assert failure.app == "barnes"
        assert "synthetic failure" in failure.error
        assert report.results[0].meta.get("failed")
        # The healthy point still completed and was cached.
        assert not report.results[1].meta.get("failed")
        assert pending_points([points[1]]) == []

    def test_worker_failure_reraised_without_keep_going(self):
        huge = RunScale(num_cores=8, total_accesses=2_000_000)
        points = [
            SweepPoint("barnes", SparseSpec(ratio=2.0), huge),
            SweepPoint("ocean_cp", SparseSpec(ratio=2.0), huge),
        ]
        with pytest.raises(RunTimeoutError):
            run_sweep(points, jobs=2, policy=HarnessPolicy(timeout_s=0.2))

    def test_failed_points_replay_without_recompute(self, monkeypatch):
        def boom(app, scheme, scale=None, config=None):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr("repro.analysis.runner.run_app", boom)
        points = _points()[:2]
        policy = HarnessPolicy(keep_going=True)
        report = run_sweep(points, jobs=2, policy=policy)
        assert len(report.failures) == 2
        # run_sweep leaves the parent policy untouched; the render pass
        # owns failure accounting via the replay registry.
        assert not policy.failures
        # The failed runs were never cached...
        assert pending_points(points) == points

        def forbidden(app, scheme, scale=None, config=None):
            raise AssertionError("marked point must not recompute")

        monkeypatch.setattr("repro.analysis.runner.run_app", forbidden)
        # ...and a keep-going render pass replays the recorded failure
        # instead of recomputing the doomed run.
        point = points[0]
        with harness(HarnessPolicy(keep_going=True)) as render_policy:
            replayed = cached_run(point.app, point.scheme, point.scale)
        assert replayed.meta.get("failed")
        [failure] = render_policy.failures
        assert "synthetic failure" in failure.error


class TestProfiles:
    def test_profiles_and_summary(self, tmp_path):
        points = _points()
        report = run_sweep(points, jobs=2,
                           profile_dir=str(tmp_path / "profiles"))
        summary = report.summary()
        assert summary.points == len(points)
        assert summary.computed == len(points)
        assert summary.cache_hits == 0
        assert summary.wall_s > 0
        assert summary.slowest is not None
        assert summary.slowest.accesses_per_s > 0
        assert all(p.worker for p in report.profiles)
        rendered = summary.render()
        assert "jobs=2" in rendered and "slowest:" in rendered
        # Every computed point dumped cProfile stats.
        assert all(p.stats_path for p in report.profiles)
        assert len(list((tmp_path / "profiles").glob("*.prof"))) == len(points)

    def test_print_slowest_profile(self, tmp_path, capsys):
        from repro.parallel import print_slowest_profile

        report = run_sweep(_points()[:2], jobs=2,
                           profile_dir=str(tmp_path / "profiles"))
        slowest = print_slowest_profile(report.profiles)
        out = capsys.readouterr().out
        assert slowest is not None
        assert "cProfile of slowest point" in out
        assert "cumulative" in out

    def test_cache_hits_are_not_profiled(self, tmp_path):
        points = _points()[:2]
        run_sweep(points, jobs=2)
        report = run_sweep(points, jobs=2,
                           profile_dir=str(tmp_path / "profiles"))
        assert all(p.cache_hit for p in report.profiles)
        assert all(p.stats_path is None for p in report.profiles)
        assert all(p.accesses_per_s == 0.0 for p in report.profiles)


class TestCliIntegration:
    def test_jobs_flag_parallel_matches_serial(self, tmp_path, monkeypatch):
        from repro.__main__ import main

        argv = ["fig07", "--scale", "quick", "--apps", "compress"]
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
        assert main(argv + ["--jobs", "1"]) == 0
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
        assert main(argv + ["--jobs", "2"]) == 0
        serial = {p.name: json.loads(p.read_text())
                  for p in (tmp_path / "serial").glob("*.json")}
        parallel = {p.name: json.loads(p.read_text())
                    for p in (tmp_path / "parallel").glob("*.json")}
        assert serial == parallel
        assert serial  # at least the in-LLC point ran

    def test_profile_flag_prints_summary(self, tmp_path, monkeypatch, capsys):
        from repro.__main__ import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = main(["fig07", "--scale", "quick", "--apps", "compress",
                     "--profile"])
        assert code == 0
        captured = capsys.readouterr()
        assert "sweep:" in captured.err
        assert "cProfile of slowest point" in captured.out
        assert "Fig. 7" in captured.out
