"""Unit tests for workload profiles and the synthetic trace generator."""

import pytest

from repro.errors import ConfigError
from repro.sim.config import SparseSpec, SystemConfig
from repro.types import AccessKind
from repro.workloads.generator import (
    SyntheticTraceGenerator,
    _CODE_BASE,
    _HOT_BASE,
    _POOL_BASE,
    _PRIVATE_BASE,
    _STREAM_BASE,
    generate_streams,
)
from repro.workloads.profiles import APPLICATIONS, PROFILES, WorkloadProfile, profile


def small_config() -> SystemConfig:
    return SystemConfig(num_cores=4, l1_kb=1, l2_kb=4, scheme=SparseSpec())


class TestProfiles:
    def test_table_ii_applications_present(self):
        expected = {
            "bodytrack", "swaptions", "barnes", "ocean_cp", "314.mgrid",
            "316.applu", "324.apsi", "330.art", "SPECJBB", "SPECWeb-B",
            "SPECWeb-E", "SPECWeb-S", "TPC-C", "TPC-E", "TPC-H",
            "sunflow", "compress",
        }
        assert set(APPLICATIONS) == expected
        assert len(APPLICATIONS) == 17

    def test_fractions_sum_to_one(self):
        for app in PROFILES.values():
            total = (
                app.private_fraction + app.shared_fraction + app.hot_fraction
                + app.code_fraction + app.stream_fraction
            )
            assert total == pytest.approx(1.0), app.name

    def test_lookup(self):
        assert profile("barnes").name == "barnes"

    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigError):
            profile("doom")

    def test_invalid_mix_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadProfile("bad", "", 0.5, 0.5, 0.5, 0.0, 0.0)

    def test_high_miss_apps_stream_heavily(self):
        """§V-A: mgrid/art/ocean have the biggest streaming shares."""
        high = {"314.mgrid", "330.art", "ocean_cp"}
        low = set(APPLICATIONS) - high
        min_high = min(PROFILES[a].stream_fraction for a in high)
        max_low = max(PROFILES[a].stream_fraction for a in low)
        assert min_high > max_low

    def test_barnes_has_largest_hot_share(self):
        """Fig. 7: barnes's lengthened accesses dwarf everyone else's."""
        barnes = PROFILES["barnes"].hot_fraction
        assert barnes == max(p.hot_fraction for p in PROFILES.values())

    def test_commercial_apps_code_heavy(self):
        """Fig. 6: code accesses dominate lengthened paths for
        SPECWeb/TPC."""
        for app in ("SPECWeb-B", "TPC-C", "SPECJBB"):
            assert PROFILES[app].code_fraction > PROFILES["barnes"].code_fraction


class TestGenerator:
    def _streams(self, app="bodytrack", total=3000, seed=3, config=None):
        return generate_streams(app, config or small_config(), total, seed=seed)

    def test_deterministic(self):
        a = self._streams()
        b = self._streams()
        assert a == b

    def test_seed_changes_trace(self):
        a = self._streams(seed=1)
        b = self._streams(seed=2)
        assert a != b

    def test_one_stream_per_core(self):
        config = small_config()
        streams = self._streams(config=config)
        assert len(streams) == config.num_cores

    def test_total_includes_init_pass(self):
        config = small_config()
        generator = SyntheticTraceGenerator(profile("bodytrack"), config, seed=0)
        footprint = (
            config.num_cores * generator.private_blocks
            + generator.pool_blocks
            + generator.hot_blocks
            + generator.code_blocks
        )
        streams = generator.generate(1000)
        assert sum(len(s) for s in streams) == 1000 + footprint

    def test_cores_only_touch_their_private_region(self):
        streams = self._streams()
        for core, stream in enumerate(streams):
            for acc in stream:
                assert acc.core == core
                if _PRIVATE_BASE <= acc.addr < _POOL_BASE:
                    region = (acc.addr - _PRIVATE_BASE) // ((1 << 24) + 32 * 17)
                    assert region == core

    def test_stream_addresses_never_repeat(self):
        streams = self._streams(app="314.mgrid", total=4000)
        seen = set()
        for stream in streams:
            for acc in stream:
                if acc.addr >= _STREAM_BASE:
                    assert acc.addr not in seen
                    seen.add(acc.addr)
        assert seen

    def test_code_accesses_are_ifetches(self):
        streams = self._streams(app="SPECWeb-B", total=4000)
        for stream in streams:
            for acc in stream:
                if _CODE_BASE <= acc.addr < _STREAM_BASE:
                    assert acc.kind is AccessKind.IFETCH

    def test_hot_blocks_mostly_reads(self):
        streams = self._streams(app="barnes", total=6000)
        hot = [
            acc
            for stream in streams
            for acc in stream
            if _HOT_BASE <= acc.addr < _CODE_BASE
        ]
        writes = sum(1 for acc in hot if acc.kind is AccessKind.WRITE)
        assert hot and writes / len(hot) < 0.1

    def test_pool_sharer_windows_respected(self):
        config = small_config()
        generator = SyntheticTraceGenerator(profile("TPC-C"), config, seed=5)
        streams = generator.generate(6000)
        stride = 97
        touched = {}
        for stream in streams:
            for acc in stream:
                if _POOL_BASE <= acc.addr < _HOT_BASE:
                    index = (acc.addr - _POOL_BASE) // stride
                    touched.setdefault(index, set()).add(acc.core)
        for index, cores in touched.items():
            width = int(generator._pool_width[index])
            assert len(cores) <= width

    def test_gaps_near_profile_cpi(self):
        streams = self._streams(total=5000)
        gaps = [acc.gap for stream in streams for acc in stream]
        average = sum(gaps) / len(gaps)
        assert abs(average - profile("bodytrack").cpi_gap) < 3

    def test_invalid_total_rejected(self):
        generator = SyntheticTraceGenerator(profile("barnes"), small_config())
        with pytest.raises(ConfigError):
            generator.generate(0)

    def test_all_seventeen_apps_generate(self):
        config = small_config()
        for app in APPLICATIONS:
            streams = generate_streams(app, config, 500, seed=1)
            assert sum(len(s) for s in streams) > 500
