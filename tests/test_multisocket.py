"""Tests for the multi-socket (§VI future work) extension."""

import random

import pytest

from repro.analysis.runner import RunScale
from repro.errors import ConfigError
from repro.multisocket.experiment import intersocket_directory_study
from repro.multisocket.system import (
    INTER_SOCKET_HOP_CYCLES,
    MultiSocketConfig,
    build_multisocket_system,
)
from repro.sim.config import SparseSpec, TinySpec
from repro.types import Access, AccessKind
from repro.verify import (
    AccessStep,
    CoverageMap,
    FaultStep,
    R,
    VerifyHarness,
    W,
    run_schedule,
)


class TestConfiguration:
    def test_lowering_to_system_config(self):
        config = MultiSocketConfig(num_sockets=4, socket_cache_kb=128)
        system_config = config.to_system_config()
        assert system_config.num_cores == 4
        assert system_config.l2_kb == 128
        assert system_config.hop_cycles == INTER_SOCKET_HOP_CYCLES

    def test_home_capacity_ratio_preserved(self):
        system_config = MultiSocketConfig(num_sockets=4).to_system_config()
        assert system_config.llc_blocks == 2 * system_config.aggregate_private_blocks

    def test_odd_socket_count_rejected(self):
        with pytest.raises(ConfigError):
            MultiSocketConfig(num_sockets=3)

    def test_single_socket_rejected(self):
        with pytest.raises(ConfigError):
            MultiSocketConfig(num_sockets=1)


class TestBehaviour:
    def _drive(self, scheme, steps=800):
        config = MultiSocketConfig(num_sockets=4, socket_cache_kb=16, scheme=scheme)
        system = build_multisocket_system(config)
        import random

        rng = random.Random(5)
        kinds = [AccessKind.READ, AccessKind.WRITE, AccessKind.IFETCH]
        now = 0
        for _ in range(steps):
            acc = Access(rng.randrange(4), rng.randrange(300), rng.choice(kinds))
            now += system.access(acc, now)
        system.check_invariants()
        return system

    def test_sparse_socket_directory_runs(self):
        system = self._drive(SparseSpec(ratio=2.0))
        assert system.stats.llc_transactions > 0

    def test_tiny_socket_directory_runs(self):
        system = self._drive(
            TinySpec(ratio=1 / 32, policy="gnru", spill=True, spill_window=32)
        )
        assert system.stats.llc_transactions > 0

    def test_intersocket_hops_cost_more(self):
        """A socket-forwarded read pays inter-socket link latency."""
        config = MultiSocketConfig(num_sockets=4, socket_cache_kb=16)
        system = build_multisocket_system(config)
        system.access(Access(0, 0x40, AccessKind.READ), 0)
        forwarded = system.access(Access(1, 0x40, AccessKind.READ), 100)
        assert forwarded >= INTER_SOCKET_HOP_CYCLES


class TestConformance:
    """The repro.verify harness applied to multi-socket systems.

    ``build_multisocket_system`` lowers to a plain :class:`System`
    (sockets become cores), so the oracle, auditor, and coverage
    instrumentation all apply unchanged; these tests pin that the
    conformance guarantees hold across the inter-socket link too.
    """

    def _system(self, scheme, num_sockets=4, cache_kb=16):
        config = MultiSocketConfig(
            num_sockets=num_sockets, socket_cache_kb=cache_kb, scheme=scheme
        )
        return build_multisocket_system(config)

    def _random_steps(self, steps, sockets=4, blocks=300, write_frac=0.3, seed=11):
        rng = random.Random(seed)
        out = []
        for _ in range(steps):
            ctor = W if rng.random() < write_frac else R
            out.append(ctor(rng.randrange(sockets), rng.randrange(blocks)))
        return out

    def test_clean_sharing_schedule(self):
        """Classic migratory sharing across all four sockets runs clean
        under the oracle and per-step auditing."""
        steps = []
        for addr in (0x10, 0x11, 0x12):
            for socket in range(4):
                steps += [W(socket, addr), R((socket + 1) % 4, addr)]
        system = self._system(SparseSpec(ratio=2.0))
        result = run_schedule(steps, system=system, audit_interval=1)
        assert result.violation is None
        assert result.executed == len(steps)

    def test_oracle_validates_cross_socket_handoff(self):
        """A value written on one socket must be the value every other
        socket reads; 400 random steps of shared traffic stay clean."""
        steps = self._random_steps(400, blocks=40, write_frac=0.4)
        system = self._system(SparseSpec(ratio=2.0))
        result = run_schedule(steps, system=system, audit_interval=16)
        assert result.violation is None

    def test_dropped_copy_detected_on_sparse(self):
        steps = [W(0, 5), FaultStep("drop_private_copy", 5, 0), R(1, 5), R(0, 5)]
        system = self._system(SparseSpec(ratio=2.0))
        result = run_schedule(steps, system=system, audit_interval=1)
        assert result.failed
        assert result.injected

    def test_dropped_copy_detected_on_tiny(self):
        steps = [W(2, 9), FaultStep("drop_private_copy", 9, 2), R(1, 9), R(2, 9)]
        system = self._system(
            TinySpec(ratio=1 / 32, policy="gnru", spill=True, spill_window=32)
        )
        result = run_schedule(steps, system=system, audit_interval=1)
        assert result.failed

    def _tiny_spill_run(self, coverage=None):
        """A hot bank-0 pool drives STRA spill admission across sockets."""
        system = self._system(
            TinySpec(ratio=1 / 32, policy="gnru", spill=True, spill_window=32)
        )
        banks = system.config.num_banks
        rng = random.Random(7)
        pool = [banks * k for k in range(1, 81)]
        steps = []
        for _ in range(4000):
            ctor = W if rng.random() < 0.08 else R
            steps.append(ctor(rng.randrange(4), rng.choice(pool)))
        result = run_schedule(
            steps, system=system, audit_interval=16, coverage=coverage
        )
        return system, result

    def test_tiny_spill_crosses_sockets(self):
        """Spilled tracking entries serve sharers on other sockets, and
        the audited run stays violation-free throughout."""
        system, result = self._tiny_spill_run()
        assert result.violation is None
        assert system.stats.spills > 0
        assert system.stats.spill_saved > 0

    def test_coverage_collected_on_multisocket(self):
        coverage = CoverageMap()
        _, result = self._tiny_spill_run(coverage=coverage)
        assert result.violation is None
        covered = coverage.covered()
        assert "tiny:spill" in covered
        assert "tiny:spill_hit" in covered
        assert any(label.startswith("mesi:") for label in covered)

    def test_back_invalidation_crosses_sockets(self):
        """An undersized socket directory evicts live entries, forcing
        back-invalidations of copies held on other sockets — still clean
        under full monitoring."""
        system = self._system(SparseSpec(ratio=0.125))
        steps = self._random_steps(3000, blocks=400, write_frac=0.2, seed=3)
        result = run_schedule(steps, system=system, audit_interval=16)
        assert result.violation is None
        assert system.stats.back_invalidations > 0

    def test_harnessed_multisocket_matches_bare(self):
        """Full monitoring must not perturb a multi-socket machine:
        stats stay bit-identical to an unmonitored run."""
        steps = self._random_steps(300, blocks=60, write_frac=0.3, seed=9)
        spec = TinySpec(ratio=1 / 32, policy="gnru", spill=True, spill_window=32)

        bare = self._system(spec)
        now = 0
        for step in steps:
            acc = Access(step.core, step.addr, step.access_kind())
            now += max(1, bare.access(acc, now))

        monitored = self._system(spec)
        harness = VerifyHarness(
            monitored, audit_interval=1, coverage=CoverageMap()
        )
        for step in steps:
            harness.run_step(step)
        assert monitored.stats.dump() == bare.stats.dump()
        assert harness.now == now
    def test_study_structure_and_ordering(self):
        scale = RunScale(num_cores=8, total_accesses=4_000, spill_window=48)
        figure = intersocket_directory_study(
            scale, apps=["barnes", "compress"], num_sockets=8
        )
        assert figure.rows == ["barnes", "compress", "Average"]
        assert len(figure.columns) == 4
        # The paper's §VI claim, quantified: an equal-sized tiny
        # directory beats the undersized sparse directory.
        tiny = figure.average("tiny 1/32x")
        sparse = figure.average("sparse 1/32x")
        assert tiny < sparse
