"""Tests for the multi-socket (§VI future work) extension."""

import pytest

from repro.analysis.runner import RunScale
from repro.errors import ConfigError
from repro.multisocket.experiment import intersocket_directory_study
from repro.multisocket.system import (
    INTER_SOCKET_HOP_CYCLES,
    MultiSocketConfig,
    build_multisocket_system,
)
from repro.sim.config import SparseSpec, TinySpec
from repro.types import Access, AccessKind


class TestConfiguration:
    def test_lowering_to_system_config(self):
        config = MultiSocketConfig(num_sockets=4, socket_cache_kb=128)
        system_config = config.to_system_config()
        assert system_config.num_cores == 4
        assert system_config.l2_kb == 128
        assert system_config.hop_cycles == INTER_SOCKET_HOP_CYCLES

    def test_home_capacity_ratio_preserved(self):
        system_config = MultiSocketConfig(num_sockets=4).to_system_config()
        assert system_config.llc_blocks == 2 * system_config.aggregate_private_blocks

    def test_odd_socket_count_rejected(self):
        with pytest.raises(ConfigError):
            MultiSocketConfig(num_sockets=3)

    def test_single_socket_rejected(self):
        with pytest.raises(ConfigError):
            MultiSocketConfig(num_sockets=1)


class TestBehaviour:
    def _drive(self, scheme, steps=800):
        config = MultiSocketConfig(num_sockets=4, socket_cache_kb=16, scheme=scheme)
        system = build_multisocket_system(config)
        import random

        rng = random.Random(5)
        kinds = [AccessKind.READ, AccessKind.WRITE, AccessKind.IFETCH]
        now = 0
        for _ in range(steps):
            acc = Access(rng.randrange(4), rng.randrange(300), rng.choice(kinds))
            now += system.access(acc, now)
        system.check_invariants()
        return system

    def test_sparse_socket_directory_runs(self):
        system = self._drive(SparseSpec(ratio=2.0))
        assert system.stats.llc_transactions > 0

    def test_tiny_socket_directory_runs(self):
        system = self._drive(
            TinySpec(ratio=1 / 32, policy="gnru", spill=True, spill_window=32)
        )
        assert system.stats.llc_transactions > 0

    def test_intersocket_hops_cost_more(self):
        """A socket-forwarded read pays inter-socket link latency."""
        config = MultiSocketConfig(num_sockets=4, socket_cache_kb=16)
        system = build_multisocket_system(config)
        system.access(Access(0, 0x40, AccessKind.READ), 0)
        forwarded = system.access(Access(1, 0x40, AccessKind.READ), 100)
        assert forwarded >= INTER_SOCKET_HOP_CYCLES


class TestExperiment:
    def test_study_structure_and_ordering(self):
        scale = RunScale(num_cores=8, total_accesses=4_000, spill_window=48)
        figure = intersocket_directory_study(
            scale, apps=["barnes", "compress"], num_sockets=8
        )
        assert figure.rows == ["barnes", "compress", "Average"]
        assert len(figure.columns) == 4
        # The paper's §VI claim, quantified: an equal-sized tiny
        # directory beats the undersized sparse directory.
        tiny = figure.average("tiny 1/32x")
        sparse = figure.average("sparse 1/32x")
        assert tiny < sparse
