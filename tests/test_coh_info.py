"""Unit tests for the CohInfo tracking record."""

import pytest

from repro.coherence.info import CohInfo
from repro.errors import ProtocolError


class TestConstruction:
    def test_default_is_idle(self):
        assert CohInfo().is_idle

    def test_owner_constructor(self):
        coh = CohInfo(owner=3)
        assert coh.is_exclusive and coh.owner == 3

    def test_sharers_constructor(self):
        coh = CohInfo(sharers=0b101)
        assert coh.is_shared and coh.sharer_list() == [0, 2]

    def test_owner_and_sharers_rejected(self):
        with pytest.raises(ProtocolError):
            CohInfo(owner=1, sharers=0b10)


class TestTransitions:
    def test_set_owner_clears_sharers(self):
        coh = CohInfo(sharers=0b111)
        coh.set_owner(5)
        assert coh.owner == 5 and coh.sharers == 0

    def test_add_sharer_demotes_owner(self):
        coh = CohInfo(owner=2)
        coh.add_sharer(4)
        assert not coh.is_exclusive
        assert coh.sharer_list() == [2, 4]

    def test_add_sharer_idempotent(self):
        coh = CohInfo()
        coh.add_sharer(1)
        coh.add_sharer(1)
        assert coh.sharer_count() == 1

    def test_remove_owner(self):
        coh = CohInfo(owner=2)
        coh.remove(2)
        assert coh.is_idle

    def test_remove_sharer(self):
        coh = CohInfo(sharers=0b110)
        coh.remove(1)
        assert coh.sharer_list() == [2]

    def test_remove_absent_core_is_noop(self):
        coh = CohInfo(sharers=0b10)
        coh.remove(5)
        assert coh.sharer_list() == [1]

    def test_clear(self):
        coh = CohInfo(sharers=0b11)
        coh.clear()
        assert coh.is_idle


class TestQueries:
    def test_holds_owner(self):
        assert CohInfo(owner=7).holds(7)
        assert not CohInfo(owner=7).holds(6)

    def test_holds_sharer(self):
        coh = CohInfo(sharers=1 << 9)
        assert coh.holds(9) and not coh.holds(8)

    def test_holders_for_owner(self):
        assert CohInfo(owner=4).holders() == [4]

    def test_holders_for_sharers(self):
        assert CohInfo(sharers=0b1010).holders() == [1, 3]

    def test_sharer_count_large_mask(self):
        coh = CohInfo(sharers=(1 << 128) - 1)
        assert coh.sharer_count() == 128

    def test_copy_is_independent(self):
        coh = CohInfo(sharers=0b11)
        clone = coh.copy()
        clone.add_sharer(5)
        assert coh.sharer_count() == 2
        assert clone.sharer_count() == 3
