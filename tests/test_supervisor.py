"""Supervised sweep executor tests: crashes, hangs, journal, resume.

The acceptance bar (ISSUE 6): killing a sweep worker no longer aborts
the sweep — the pool is respawned (bounded, with backoff) and crashed
points are retried; a poison point that keeps killing its worker is
isolated and blamed as a ``WorkerCrashError`` while healthy points'
results survive; per-point completion is journaled crash-safely and
``resume=True`` recomputes only the non-journaled points.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.analysis.cache import clear_failed_marks, point_key
from repro.analysis.runner import HarnessPolicy, RunScale
from repro.parallel import (
    SupervisorPolicy,
    SweepJournal,
    SweepPoint,
    run_sweep,
    run_tasks,
    supervisor_from_env,
)
from repro.parallel.executor import _rebuild_error
from repro.analysis.runner import RunFailure
from repro.sim.config import InLLCSpec, SparseSpec, TinySpec

SCALE = RunScale(num_cores=8, total_accesses=3000, spill_window=64)

#: Fast supervision bounds so crash tests do not sleep for real.
FAST = dict(backoff_base_s=0.01, backoff_cap_s=0.05, jitter_s=0.0)


def _points(scale=SCALE):
    return [
        SweepPoint("barnes", SparseSpec(ratio=2.0), scale),
        SweepPoint("ocean_cp", InLLCSpec(), scale),
        SweepPoint("barnes", TinySpec(ratio=1 / 64, policy="gnru",
                                      spill_window=scale.spill_window), scale),
    ]


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_CACHE", "on")
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_HEARTBEAT", raising=False)
    clear_failed_marks()
    yield
    clear_failed_marks()


def _kill_once(tmp_path, monkeypatch, app="ocean_cp", code=42):
    """Patch run_app so ``app`` kills its worker process exactly once."""
    from repro.analysis import runner

    marker = tmp_path / "armed"
    marker.write_text("armed")
    real_run_app = runner.run_app

    def killer(app_arg, scheme, scale=None, config=None):
        name = app_arg if isinstance(app_arg, str) else app_arg.name
        if name == app and marker.exists():
            marker.unlink()
            os._exit(code)
        return real_run_app(app_arg, scheme, scale, config)

    # Pool workers fork after the patch, so they inherit it.
    monkeypatch.setattr("repro.analysis.runner.run_app", killer)
    return marker


def _kill_always(monkeypatch, app="ocean_cp", code=42):
    """Patch run_app so ``app`` kills its worker on every attempt."""
    from repro.analysis import runner

    real_run_app = runner.run_app

    def poison(app_arg, scheme, scale=None, config=None):
        name = app_arg if isinstance(app_arg, str) else app_arg.name
        if name == app:
            os._exit(code)
        return real_run_app(app_arg, scheme, scale, config)

    monkeypatch.setattr("repro.analysis.runner.run_app", poison)


class TestSupervisorPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(heartbeat_s=0)
        with pytest.raises(ValueError):
            SupervisorPolicy(max_pool_respawns=-1)
        with pytest.raises(ValueError):
            SupervisorPolicy(max_point_retries=-1)

    def test_backoff_is_exponential_and_capped(self):
        import random

        policy = SupervisorPolicy(backoff_base_s=0.25, backoff_cap_s=2.0,
                                  jitter_s=0.0)
        rng = random.Random(1)
        delays = [policy.backoff_delay(n, rng) for n in (1, 2, 3, 4, 5)]
        assert delays == [0.25, 0.5, 1.0, 2.0, 2.0]

    def test_jitter_bounded(self):
        import random

        policy = SupervisorPolicy(backoff_base_s=0.5, jitter_s=0.25)
        rng = random.Random(7)
        for _ in range(20):
            delay = policy.backoff_delay(1, rng)
            assert 0.5 <= delay <= 0.75

    def test_from_env_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_HEARTBEAT", raising=False)
        assert supervisor_from_env().heartbeat_s is None

    def test_from_env_seconds(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT", "2.5")
        assert supervisor_from_env().heartbeat_s == 2.5

    @pytest.mark.parametrize("value", ["soon", "-3", "0"])
    def test_from_env_invalid_warns(self, monkeypatch, capsys, value):
        monkeypatch.setenv("REPRO_HEARTBEAT", value)
        assert supervisor_from_env().heartbeat_s is None
        if value != "0":  # "0" is an explicit off, not a mistake
            err = capsys.readouterr().err
            assert "REPRO_HEARTBEAT" in err and "DISABLED" in err


class TestWorkerCrash:
    def test_transient_crash_is_survived(self, tmp_path, monkeypatch):
        # Regression (pre-supervision): one worker os._exit mid-point
        # raised BrokenProcessPool in the parent and lost every point.
        marker = _kill_once(tmp_path, monkeypatch)
        report = run_sweep(
            _points(), jobs=2, policy=HarnessPolicy(keep_going=True),
            supervisor=SupervisorPolicy(max_pool_respawns=2,
                                        max_point_retries=1, **FAST),
        )
        assert not marker.exists()  # the kill really fired
        assert report.pool_respawns >= 1
        assert not report.failures
        assert all(not r.meta.get("failed") for r in report.results)
        assert not report.degraded_serial
        assert report.crashed_points == 0

    def test_poison_point_is_isolated_and_blamed(self, monkeypatch):
        _kill_always(monkeypatch)
        report = run_sweep(
            _points(), jobs=2, policy=HarnessPolicy(keep_going=True),
            supervisor=SupervisorPolicy(max_pool_respawns=1,
                                        max_point_retries=1, **FAST),
        )
        assert report.degraded_serial
        assert report.crashed_points == 1
        [failure] = report.failures
        assert failure.app == "ocean_cp"
        assert "WorkerCrashError" in failure.error
        assert failure.attempts == 2  # initial isolated try + one retry
        # Healthy points' results survived the poison point.
        healthy = [r for r in report.results if not r.meta.get("failed")]
        assert len(healthy) == 2
        for result in healthy:
            assert result.stats.dump()  # real simulated stats

    def test_poison_point_raises_under_strict_policy(self, monkeypatch):
        from repro.errors import WorkerCrashError

        _kill_always(monkeypatch)
        with pytest.raises(WorkerCrashError):
            run_sweep(
                _points()[:2], jobs=2, policy=HarnessPolicy(),
                supervisor=SupervisorPolicy(max_pool_respawns=0,
                                            max_point_retries=0, **FAST),
            )

    @pytest.mark.xfail(
        reason="the pre-supervision executor pattern loses every point "
        "when one worker dies; kept as a record of the failure mode the "
        "supervised run_sweep exists to prevent",
        raises=Exception,
        strict=True,
    )
    def test_unsupervised_pool_loses_the_sweep(self, monkeypatch):
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool  # noqa: F401
        from repro.parallel.executor import _init_worker, _run_point

        _kill_always(monkeypatch)
        points = _points()
        env = {k: v for k, v in os.environ.items() if k.startswith("REPRO_")}
        with ProcessPoolExecutor(
            max_workers=2, initializer=_init_worker,
            initargs=(env, None, 0, None),
        ) as pool:
            futures = [pool.submit(_run_point, i, p)
                       for i, p in enumerate(points)]
            for future in futures:
                future.result()  # raises BrokenProcessPool

    def test_hung_worker_tripped_by_heartbeat(self, monkeypatch):
        from repro.analysis import runner

        real_run_app = runner.run_app

        def sleeper(app_arg, scheme, scale=None, config=None):
            name = app_arg if isinstance(app_arg, str) else app_arg.name
            if name == "ocean_cp":
                time.sleep(120)  # hangs far beyond the heartbeat
            return real_run_app(app_arg, scheme, scale, config)

        monkeypatch.setattr("repro.analysis.runner.run_app", sleeper)
        start = time.monotonic()
        report = run_sweep(
            _points(), jobs=2, policy=HarnessPolicy(keep_going=True),
            supervisor=SupervisorPolicy(heartbeat_s=2.0, max_pool_respawns=0,
                                        max_point_retries=0, **FAST),
        )
        assert time.monotonic() - start < 60
        assert report.degraded_serial
        assert report.crashed_points == 1
        [failure] = report.failures
        assert "WorkerCrashError" in failure.error
        assert "no progress" in failure.error
        assert len([r for r in report.results
                    if not r.meta.get("failed")]) == 2


class TestJournal:
    def test_records_round_trip(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.journal")
        journal.record_ok("abc")
        journal.record_failed("def", "barnes", "tiny", "KaboomError: x", 2)
        records = journal.load()
        assert records["abc"] == {"key": "abc", "status": "ok"}
        assert records["def"]["error"] == "KaboomError: x"
        assert records["def"]["attempts"] == 2

    def test_torn_trailing_line_tolerated(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.journal")
        journal.record_ok("abc")
        with open(journal.path, "a") as handle:
            handle.write('{"key": "def", "sta')  # killed mid-write
        records = journal.load()
        assert set(records) == {"abc"}

    def test_reset_and_missing_file(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.journal")
        assert journal.load() == {}
        journal.reset()  # no file: a no-op
        journal.record_ok("abc")
        journal.reset()
        assert journal.load() == {}

    def test_default_lives_next_to_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        assert SweepJournal.default().path == tmp_path / "c" / "sweep.journal"

    def test_run_sweep_journals_every_point(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.journal")
        points = _points()
        run_sweep(points, jobs=1, journal=journal)
        records = journal.load()
        assert len(records) == len(points)
        for point in points:
            assert records[point.key()]["status"] == "ok"
        # Every line is whole JSON (fsync'd append, never torn).
        for line in journal.path.read_text().splitlines():
            assert json.loads(line)

    def test_fresh_sweep_resets_journal(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.journal")
        journal.record_ok("stale-key")
        run_sweep(_points()[:1], jobs=1, journal=journal)
        assert "stale-key" not in journal.load()


class TestResume:
    def test_resume_skips_journaled_points(self, tmp_path, monkeypatch):
        from repro.analysis import runner

        journal = SweepJournal(tmp_path / "sweep.journal")
        points = _points()
        # Interrupted sweep: the first two points completed and were
        # journaled; the third never ran.
        run_sweep(points[:2], jobs=1, journal=journal)
        journal_before = journal.path.read_text()

        computed = []
        real_run_app = runner.run_app

        def counting(app_arg, scheme, scale=None, config=None):
            name = app_arg if isinstance(app_arg, str) else app_arg.name
            computed.append(name)
            return real_run_app(app_arg, scheme, scale, config)

        monkeypatch.setattr("repro.analysis.runner.run_app", counting)
        report = run_sweep(points, jobs=1, journal=journal, resume=True)
        assert report.resumed_points == 2
        assert computed == ["barnes"]  # only the tiny point recomputed
        assert all(not r.meta.get("failed") for r in report.results)
        # Resumed points loaded from cache; the journal grew by one.
        assert journal.path.read_text().startswith(journal_before)
        assert len(journal.load()) == 3

    def test_resume_replays_journaled_failure(self, tmp_path, monkeypatch):
        from repro.analysis import runner

        journal = SweepJournal(tmp_path / "sweep.journal")
        points = _points()[:2]
        journal.record_failed(points[0].key(), points[0].app,
                              points[0].scheme_name,
                              "RunTimeoutError: run exceeded 600s", 2)

        def forbidden(app_arg, scheme, scale=None, config=None):
            raise AssertionError("journaled-failed point must not recompute")

        real_run_app = runner.run_app

        def guarded(app_arg, scheme, scale=None, config=None):
            name = app_arg if isinstance(app_arg, str) else app_arg.name
            if name == points[0].app:
                return forbidden(app_arg, scheme, scale, config)
            return real_run_app(app_arg, scheme, scale, config)

        monkeypatch.setattr("repro.analysis.runner.run_app", guarded)
        report = run_sweep(points, jobs=1,
                           policy=HarnessPolicy(keep_going=True),
                           journal=journal, resume=True)
        assert report.resumed_points == 1
        [failure] = report.failures
        assert failure.app == points[0].app
        assert "RunTimeoutError" in failure.error
        assert failure.attempts == 2
        assert report.results[0].meta.get("failed")
        assert not report.results[1].meta.get("failed")

    def test_resume_with_missing_cache_entry_recomputes(self, tmp_path):
        # A journaled-ok point whose cache entry vanished (cache pruned)
        # must recompute rather than return nothing.
        journal = SweepJournal(tmp_path / "sweep.journal")
        [point] = _points()[:1]
        journal.record_ok(point.key())
        report = run_sweep([point], jobs=1, journal=journal, resume=True)
        assert report.resumed_points == 0
        assert not report.results[0].meta.get("failed")

    def test_resume_after_worker_kill_end_to_end(self, tmp_path, monkeypatch):
        # The full crash story: sweep with a one-shot killer completes
        # under supervision and journals everything; a resumed re-run
        # recomputes nothing.
        _kill_once(tmp_path, monkeypatch)
        journal = SweepJournal(tmp_path / "sweep.journal")
        points = _points()
        report = run_sweep(
            points, jobs=2, policy=HarnessPolicy(keep_going=True),
            supervisor=SupervisorPolicy(max_pool_respawns=2,
                                        max_point_retries=1, **FAST),
            journal=journal,
        )
        assert report.pool_respawns >= 1
        assert len(journal.load()) == len(points)
        again = run_sweep(points, jobs=2, journal=journal, resume=True)
        assert again.resumed_points == len(points)
        for left, right in zip(report.results, again.results):
            assert left.stats.dump() == right.stats.dump()


class TestRunTasksInitializer:
    def test_workers_receive_harness_configuration(self):
        # Regression: run_tasks built its pool without the initializer,
        # so spawn/forkserver workers silently dropped REPRO_* settings.
        # _WORKER is only populated by the initializer (the parent's
        # copy stays empty), so seeing its keys proves the fix.
        keys = run_tasks(_probe_worker, [0, 1], jobs=2)
        assert keys == [["max_retries", "profile_dir", "timeout_s"]] * 2

    def test_inline_path_unchanged(self):
        assert run_tasks(_probe_worker, [0], jobs=2) == [[]]


def _probe_worker(_payload):
    from repro.parallel import executor

    return sorted(executor._WORKER.keys())


class TestRebuildError:
    def test_typed_failure_with_message(self):
        err = _rebuild_error(RunFailure("a", "s", "KeyError: 'scheme'", 1))
        assert isinstance(err, KeyError)
        assert "'scheme'" in str(err)

    def test_repro_error_namespace(self):
        from repro.errors import RunTimeoutError

        err = _rebuild_error(
            RunFailure("a", "s", "RunTimeoutError: exceeded 600s", 1)
        )
        assert isinstance(err, RunTimeoutError)

    def test_bare_typed_failure_reconstructs(self):
        # Regression: "KeyError" with no ": " separator collapsed to
        # RuntimeError because the message split left an empty name.
        err = _rebuild_error(RunFailure("a", "s", "KeyError", 1))
        assert isinstance(err, KeyError)

    def test_unknown_type_falls_back_to_runtime_error(self):
        failure = RunFailure("a", "s", "NoSuchError: boom", 1)
        err = _rebuild_error(failure)
        assert isinstance(err, RuntimeError)
        assert "NoSuchError: boom" in str(err)

    def test_non_exception_name_falls_back(self):
        # "int: 3" names a type, but not an exception type.
        err = _rebuild_error(RunFailure("a", "s", "int: 3", 1))
        assert isinstance(err, RuntimeError)
