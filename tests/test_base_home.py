"""Unit tests for shared home-controller machinery (latency, traffic)."""

import pytest

from conftest import Driver, make_system
from repro.coherence.info import CohInfo
from repro.interconnect.traffic import (
    CONTROL_BYTES,
    DATA_BYTES,
    MessageClass,
)
from repro.sim.config import SparseSpec
from repro.types import AccessKind, PrivateState


@pytest.fixture
def home():
    return make_system(SparseSpec(ratio=2.0)).home


class TestLatencyHelpers:
    def test_two_hop_includes_round_trip_and_llc(self, home):
        config = home.config
        lat = home._two_hop(0, 3)
        expected = (
            2 * home.mesh.latency(0, 3)
            + config.llc_tag_latency
            + config.llc_data_latency
        )
        assert lat == expected

    def test_two_hop_without_data(self, home):
        diff = home._two_hop(0, 3) - home._two_hop(0, 3, with_data=False)
        assert diff == home.config.llc_data_latency

    def test_three_hop_visits_target(self, home):
        lat = home._three_hop(0, 1, 2)
        expected = (
            home.mesh.latency(0, 1)
            + home.config.llc_tag_latency
            + home.mesh.latency(1, 2)
            + home.config.l2_latency
            + home.mesh.latency(2, 0)
        )
        assert lat == expected

    def test_three_hop_extra_serialization(self, home):
        assert home._three_hop(0, 1, 2, llc_extra=3) == home._three_hop(0, 1, 2) + 3

    def test_invalidation_latency_takes_slowest_path(self, home):
        holders = [1, 2, 3]
        lat = home._invalidation_latency(0, holders, 0)
        expected = max(
            home.mesh.latency(0, h) + home.mesh.latency(h, 0) for h in holders
        )
        assert lat == expected

    def test_invalidation_latency_empty(self, home):
        assert home._invalidation_latency(0, [], 0) == 0

    def test_closest_sharer_minimizes_distance(self, home):
        coh = CohInfo(sharers=0b1110)
        elected = home._closest_sharer(coh, home=1)
        assert elected == 1

    def test_bank_mapping_interleaves(self, home):
        banks = {home.bank_of(addr) for addr in range(home.num_banks)}
        assert len(banks) == home.num_banks


class TestTrafficAccounting:
    def test_llc_hit_read_traffic(self):
        d = Driver(make_system(SparseSpec(ratio=2.0)))
        d.read(0, 0x40)  # miss -> DRAM, but interconnect: request + data
        meter = d.system.stats.traffic
        assert meter.bytes_for(MessageClass.PROCESSOR) == CONTROL_BYTES + DATA_BYTES

    def test_clean_eviction_notice_is_control_only(self):
        d = Driver(make_system(SparseSpec(ratio=2.0)))
        d.read(0, 0x40)
        before = d.system.stats.traffic.bytes_for(MessageClass.WRITEBACK)
        step = d.system.config.l2_sets
        for i in range(1, 9):
            d.read(0, 0x40 + i * step)
        after = d.system.stats.traffic.bytes_for(MessageClass.WRITEBACK)
        # Eight fills into an 8-way set evict exactly one block; its
        # clean (E) notice and the ack are both control-sized.
        assert (after - before) == 2 * CONTROL_BYTES

    def test_dirty_eviction_notice_carries_data(self):
        d = Driver(make_system(SparseSpec(ratio=2.0)))
        d.write(0, 0x40)
        before = d.system.stats.traffic.bytes_for(MessageClass.WRITEBACK)
        step = d.system.config.l2_sets
        for i in range(1, 9):
            d.read(0, 0x40 + i * step)
        after = d.system.stats.traffic.bytes_for(MessageClass.WRITEBACK)
        # The single victim is the dirty block: an M notice carrying the
        # data block plus a control acknowledgement.
        assert after - before == DATA_BYTES + CONTROL_BYTES

    def test_invalidations_counted_as_coherence(self):
        d = Driver(make_system(SparseSpec(ratio=2.0)))
        d.read(0, 0x40)
        d.read(1, 0x40)
        before = d.system.stats.traffic.bytes_for(MessageClass.COHERENCE)
        d.write(2, 0x40)
        after = d.system.stats.traffic.bytes_for(MessageClass.COHERENCE)
        assert after - before >= 2 * 2 * CONTROL_BYTES


class TestDirtyDataPaths:
    def test_store_dirty_data_marks_llc_dirty(self):
        d = Driver(make_system(SparseSpec(ratio=2.0)))
        d.write(0, 0x40)
        d.write(1, 0x40)  # steals ownership, data direct to requester
        d.read(2, 0x40)  # downgrade deposits dirty data at the LLC
        bank = d.system.home.banks[d.system.home.bank_of(0x40)]
        line, _ = bank.lookup(0x40, touch=False)
        from repro.types import LLCState

        assert line.state is LLCState.DIRTY

    def test_dram_write_on_llc_dirty_eviction(self):
        d = Driver(make_system(SparseSpec(ratio=2.0)))
        writes_before = d.system.dram.writes
        # Dirty a block, evict it from the private cache (data to LLC),
        # then flood that LLC set to evict the dirty line.
        d.write(0, 0x40)
        step = d.system.config.l2_sets
        for i in range(1, 9):
            d.read(0, 0x40 + i * step)
        llc_step = d.system.config.num_banks * d.system.config.llc_sets_per_bank
        for i in range(1, 20):
            d.read(1, 0x40 + i * llc_step)
        assert d.system.dram.writes > writes_before
