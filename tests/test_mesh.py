"""Unit tests for the 2D mesh interconnect model."""

import pytest

from repro.errors import ConfigError
from repro.interconnect.mesh import Mesh2D


class TestGeometry:
    def test_square_mesh(self):
        mesh = Mesh2D(64)
        assert (mesh.width, mesh.height) == (8, 8)

    def test_rectangular_mesh(self):
        mesh = Mesh2D(128)
        assert (mesh.width, mesh.height) == (16, 8)

    def test_small_meshes(self):
        assert (Mesh2D(2).width, Mesh2D(2).height) == (2, 1)
        assert (Mesh2D(4).width, Mesh2D(4).height) == (2, 2)

    def test_coordinates_cover_all_tiles(self):
        mesh = Mesh2D(32)
        coords = {mesh.coordinates(tile) for tile in range(32)}
        assert len(coords) == 32

    def test_invalid_tiles_rejected(self):
        with pytest.raises(ConfigError):
            Mesh2D(0)

    def test_invalid_hop_cycles_rejected(self):
        with pytest.raises(ConfigError):
            Mesh2D(16, hop_cycles=0)


class TestDistance:
    def test_self_distance_zero(self):
        mesh = Mesh2D(16)
        for tile in range(16):
            assert mesh.distance(tile, tile) == 0

    def test_symmetry(self):
        mesh = Mesh2D(32)
        for src in range(0, 32, 5):
            for dst in range(0, 32, 7):
                assert mesh.distance(src, dst) == mesh.distance(dst, src)

    def test_triangle_inequality(self):
        mesh = Mesh2D(16)
        for a in range(16):
            for b in range(16):
                for c in range(0, 16, 3):
                    assert mesh.distance(a, c) <= mesh.distance(a, b) + mesh.distance(b, c)

    def test_adjacent_tiles(self):
        mesh = Mesh2D(16)  # 4x4
        assert mesh.distance(0, 1) == 1
        assert mesh.distance(0, 4) == 1
        assert mesh.distance(0, 15) == 6  # corner to corner: 3 + 3

    def test_latency_scales_with_hop_cycles(self):
        fast = Mesh2D(16, hop_cycles=1)
        slow = Mesh2D(16, hop_cycles=6)
        assert slow.latency(0, 15) == 6 * fast.latency(0, 15)


class TestMemoryControllers:
    def test_memory_latency_nonnegative(self):
        mesh = Mesh2D(64, num_memory_controllers=8)
        for tile in range(64):
            assert mesh.memory_latency(tile) >= 0

    def test_more_controllers_never_hurt(self):
        few = Mesh2D(64, num_memory_controllers=2)
        many = Mesh2D(64, num_memory_controllers=8)
        total_few = sum(few.memory_latency(t) for t in range(64))
        total_many = sum(many.memory_latency(t) for t in range(64))
        assert total_many <= total_few

    def test_average_distance_positive(self):
        assert Mesh2D(16).average_distance > 0
