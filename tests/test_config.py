"""Unit tests for SystemConfig (Table I encoding) and scheme specs."""

import pytest

from repro.errors import ConfigError
from repro.sim.config import (
    InLLCSpec,
    MgdSpec,
    SparseSpec,
    StashSpec,
    SystemConfig,
    TinySpec,
)


class TestPaperConfiguration:
    """The paper preset must reproduce Table I's derived geometry."""

    def test_128_cores(self):
        assert SystemConfig.paper().num_cores == 128

    def test_l1_geometry(self):
        config = SystemConfig.paper()
        assert config.l1_kb == 32 and config.l1_assoc == 8
        assert config.l1_sets == 64
        assert config.l1_latency == 2

    def test_l2_geometry(self):
        config = SystemConfig.paper()
        assert config.l2_kb == 128 and config.l2_assoc == 8
        assert config.l2_blocks == 2048
        assert config.l2_latency == 3

    def test_aggregate_private_blocks(self):
        # N = 128 cores x 128 KB / 64 B = 256K blocks.
        assert SystemConfig.paper().aggregate_private_blocks == 256 * 1024

    def test_llc_is_32mb(self):
        # 512K blocks x 64 B = 32 MB, with 128 banks of 16 ways.
        config = SystemConfig.paper()
        assert config.llc_blocks == 512 * 1024
        assert config.num_banks == 128
        assert config.llc_assoc == 16
        assert config.llc_sets_per_bank == 256

    def test_llc_latencies(self):
        config = SystemConfig.paper()
        assert config.llc_tag_latency == 4
        assert config.llc_data_latency == 2

    def test_directory_sizing(self):
        config = SystemConfig.paper()
        # 2x directory has as many entries as LLC blocks (paper setup).
        assert config.directory_entries(2.0) == config.llc_blocks
        assert config.directory_entries(1 / 16) == 16 * 1024

    def test_hop_is_3ns_at_2ghz(self):
        assert SystemConfig.paper().hop_cycles == 6

    def test_eight_memory_controllers(self):
        assert SystemConfig.paper().dram_channels == 8


class TestScaledConfigurations:
    def test_scaled_preserves_llc_ratio(self):
        config = SystemConfig.scaled(32)
        assert config.llc_blocks == 2 * config.aggregate_private_blocks

    def test_halved_hierarchy(self):
        full = SystemConfig.scaled(32)
        half = SystemConfig.halved_hierarchy(32)
        assert half.l2_blocks == full.l2_blocks // 2
        assert half.llc_blocks == full.llc_blocks // 2

    def test_directory_never_below_one_entry_per_bank(self):
        config = SystemConfig.scaled(32)
        assert config.directory_entries(1e-9) == config.num_banks


class TestValidation:
    def test_single_core_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_cores=1)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_cores=24)

    def test_negative_llc_factor_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_cores=4, llc_capacity_factor=-1)

    def test_unknown_tiny_policy_rejected(self):
        with pytest.raises(ConfigError):
            TinySpec(policy="random")


class TestSchemeSpecs:
    def test_spec_names(self):
        assert SparseSpec().name == "sparse"
        assert InLLCSpec().name == "in_llc"
        assert TinySpec().name == "tiny"
        assert MgdSpec().name == "mgd"
        assert StashSpec().name == "stash"

    def test_specs_are_frozen(self):
        spec = SparseSpec()
        with pytest.raises(Exception):
            spec.ratio = 1.0

    def test_tiny_defaults_match_paper(self):
        spec = TinySpec()
        assert spec.policy == "gnru"
        assert spec.spill_window == 8192
