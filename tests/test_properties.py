"""Property-based tests (hypothesis) on protocol and structure invariants."""

from hypothesis import HealthCheck, given, settings, strategies as st

from conftest import make_system
from repro.coherence.info import CohInfo
from repro.core.stra import STRA_COUNTER_MAX, StraCounters, stra_category
from repro.sim.config import (
    InLLCSpec,
    MgdSpec,
    SparseSpec,
    StashSpec,
    TinySpec,
)
from repro.types import Access, AccessKind

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

access_strategy = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=120),
    st.sampled_from([AccessKind.READ, AccessKind.WRITE, AccessKind.IFETCH]),
)

trace_strategy = st.lists(access_strategy, min_size=1, max_size=250)


def run_and_check(scheme, trace):
    system = make_system(scheme)
    now = 0
    for core, addr, kind in trace:
        latency = system.access(Access(core, addr, kind), now)
        assert latency > 0
        now += latency
    system.check_invariants()
    return system


class TestProtocolInvariants:
    """For every scheme: after any access sequence, tracking structures
    and private caches agree exactly, and a single writer holds any
    modified block."""

    @SLOW
    @given(trace=trace_strategy)
    def test_sparse(self, trace):
        run_and_check(SparseSpec(ratio=1 / 8), trace)

    @SLOW
    @given(trace=trace_strategy)
    def test_shared_only(self, trace):
        run_and_check(SparseSpec(ratio=1 / 16, shared_only=True), trace)

    @SLOW
    @given(trace=trace_strategy)
    def test_in_llc(self, trace):
        run_and_check(InLLCSpec(), trace)

    @SLOW
    @given(trace=trace_strategy)
    def test_tiny_dstra(self, trace):
        run_and_check(TinySpec(ratio=1 / 16, policy="dstra"), trace)

    @SLOW
    @given(trace=trace_strategy)
    def test_tiny_gnru_spill(self, trace):
        run_and_check(
            TinySpec(ratio=1 / 32, policy="gnru", spill=True, spill_window=32),
            trace,
        )

    @SLOW
    @given(trace=trace_strategy)
    def test_mgd(self, trace):
        run_and_check(MgdSpec(ratio=1 / 8), trace)

    @SLOW
    @given(trace=trace_strategy)
    def test_stash(self, trace):
        run_and_check(StashSpec(ratio=1 / 16), trace)

    @SLOW
    @given(trace=trace_strategy)
    def test_write_read_visibility(self, trace):
        """After a write, the writer holds M until someone else accesses
        the block; a subsequent read from another core always succeeds."""
        system = run_and_check(SparseSpec(ratio=2.0), trace)
        system.access(Access(0, 5, AccessKind.WRITE), 10**9)
        from repro.types import PrivateState

        assert system.cores[0].state_of(5) is PrivateState.MODIFIED
        system.access(Access(1, 5, AccessKind.READ), 10**9 + 100)
        assert system.cores[1].state_of(5) is PrivateState.SHARED
        system.check_invariants()


class TestCohInfoProperties:
    @given(cores=st.lists(st.integers(0, 127), min_size=1, max_size=40))
    def test_sharer_list_matches_added(self, cores):
        coh = CohInfo()
        for core in cores:
            coh.add_sharer(core)
        assert coh.sharer_list() == sorted(set(cores))

    @given(
        cores=st.lists(st.integers(0, 63), min_size=1, max_size=30),
        removed=st.lists(st.integers(0, 63), max_size=30),
    )
    def test_remove_is_set_difference(self, cores, removed):
        coh = CohInfo()
        for core in cores:
            coh.add_sharer(core)
        for core in removed:
            coh.remove(core)
        assert coh.sharer_list() == sorted(set(cores) - set(removed))

    @given(owner=st.integers(0, 127))
    def test_owner_roundtrip(self, owner):
        coh = CohInfo()
        coh.set_owner(owner)
        assert coh.holders() == [owner]
        coh.remove(owner)
        assert coh.is_idle


class TestStraProperties:
    @given(ratio=st.floats(min_value=0.0, max_value=1.0))
    def test_category_in_range(self, ratio):
        assert 0 <= stra_category(ratio) <= 7

    @given(
        ratios=st.tuples(
            st.floats(min_value=0.0, max_value=1.0),
            st.floats(min_value=0.0, max_value=1.0),
        )
    )
    def test_category_monotone(self, ratios):
        low, high = sorted(ratios)
        assert stra_category(low) <= stra_category(high)

    @given(
        events=st.lists(st.booleans(), min_size=1, max_size=500)
    )
    def test_counters_always_bounded(self, events):
        counters = StraCounters()
        for is_shared_read in events:
            if is_shared_read:
                counters.record_shared_read()
            else:
                counters.record_other()
            assert counters.strac <= STRA_COUNTER_MAX
            assert counters.oac <= STRA_COUNTER_MAX
            assert 0.0 <= counters.ratio() <= 1.0


class TestLatencyProperties:
    @SLOW
    @given(trace=trace_strategy)
    def test_execution_time_monotone_in_trace_length(self, trace):
        """Adding accesses never makes the run finish earlier."""
        from repro.sim.engine import run_trace

        def cycles(accesses):
            system = make_system(SparseSpec(ratio=2.0))
            streams = [[] for _ in range(4)]
            for core, addr, kind in accesses:
                streams[core].append(Access(core, addr, kind, gap=1))
            return run_trace(system, streams, warmup_fraction=0.0).cycles

        assert cycles(trace) <= cycles(trace + trace[-1:])
