"""Unit tests for the analysis layer: tables, runner, cache."""

import pytest

from repro.analysis.cache import cached_run
from repro.analysis.runner import RunScale, run_app, scale_from_env
from repro.analysis.tables import format_table, geomean, mean
from repro.sim.config import SparseSpec, TinySpec


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(
            "T", ["a", "bb"], ["c1", "c2"],
            {"a": [1.0, 2.0], "bb": [3.0, 4.0]},
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "c1" in lines[1] and "c2" in lines[1]
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_format_table_handles_none(self):
        text = format_table("T", ["a"], ["c"], {"a": [None]})
        assert "-" in text.splitlines()[-1]

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_skips_nonpositive(self):
        assert geomean([0.0, 4.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0

    def test_mean(self):
        assert mean([1.0, 3.0]) == 2.0
        assert mean([]) == 0.0


class TestRunScale:
    def test_presets_ordered_by_size(self):
        quick, default, full = RunScale.quick(), RunScale.default(), RunScale.full()
        assert quick.total_accesses < default.total_accesses < full.total_accesses

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert scale_from_env() == RunScale.quick()
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert scale_from_env() == RunScale.full()
        monkeypatch.delenv("REPRO_SCALE")
        assert scale_from_env() == RunScale.default()

    def test_make_config_preserves_ratios(self):
        config = RunScale().make_config(SparseSpec())
        assert config.llc_blocks == 2 * config.aggregate_private_blocks

    def test_tiny_spec_uses_scaled_window(self):
        scale = RunScale(spill_window=77)
        spec = scale.tiny_spec(1 / 64, spill=True)
        assert isinstance(spec, TinySpec)
        assert spec.spill_window == 77 and spec.spill


SMALL = RunScale(num_cores=4, total_accesses=1500, l1_kb=1, l2_kb=4)


class TestRunApp:
    def test_returns_result_with_stats(self):
        result = run_app("compress", SparseSpec(ratio=2.0), SMALL)
        assert result.app == "compress"
        assert result.scheme == "sparse"
        assert result.cycles > 0
        assert result.stats.accesses > 0

    def test_accepts_profile_object(self):
        from repro.workloads.profiles import profile

        result = run_app(profile("compress"), SparseSpec(ratio=2.0), SMALL)
        assert result.app == "compress"

    def test_normalized_cycles(self):
        base = run_app("compress", SparseSpec(ratio=2.0), SMALL)
        assert base.normalized_cycles(base) == 1.0


class TestDiskCache:
    def test_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE", "on")
        first = cached_run("compress", SparseSpec(ratio=2.0), SMALL)
        assert not first.meta.get("cached")
        second = cached_run("compress", SparseSpec(ratio=2.0), SMALL)
        assert second.meta.get("cached")
        assert second.cycles == first.cycles
        assert second.stats.llc_misses == first.stats.llc_misses

    def test_distinct_schemes_distinct_entries(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE", "on")
        a = cached_run("compress", SparseSpec(ratio=2.0), SMALL)
        b = cached_run("compress", SparseSpec(ratio=1 / 16), SMALL)
        assert a.cycles != b.cycles or a.stats.back_invalidations != b.stats.back_invalidations

    def test_cache_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE", "off")
        cached_run("compress", SparseSpec(ratio=2.0), SMALL)
        assert not list(tmp_path.iterdir())
