"""Unit tests for the DRAM timing model."""

import pytest

from repro.errors import ConfigError
from repro.memory.dram import (
    BLOCKS_PER_ROW,
    CHANNEL_SERVICE_CYCLES,
    ROW_CONFLICT_CYCLES,
    ROW_CLOSED_CYCLES,
    ROW_HIT_CYCLES,
    DramModel,
)


class TestDramMapping:
    def test_same_row_same_bank(self):
        dram = DramModel()
        assert dram._map(0) == dram._map(BLOCKS_PER_ROW - 1)

    def test_adjacent_rows_different_channels(self):
        dram = DramModel(num_channels=8)
        channel_a = dram._map(0)[0]
        channel_b = dram._map(BLOCKS_PER_ROW)[0]
        assert channel_a != channel_b

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigError):
            DramModel(num_channels=0)


class TestDramTiming:
    def test_first_access_is_closed_row(self):
        dram = DramModel()
        assert dram.access(0, now=0) == ROW_CLOSED_CYCLES

    def test_second_access_same_row_hits(self):
        dram = DramModel()
        dram.access(0, now=0)
        latency = dram.access(1, now=10_000)
        assert latency == ROW_HIT_CYCLES

    def test_row_conflict_costs_most(self):
        dram = DramModel(num_channels=1, banks_per_channel=1)
        dram.access(0, now=0)
        latency = dram.access(BLOCKS_PER_ROW, now=10_000)
        assert latency == ROW_CONFLICT_CYCLES

    def test_queueing_delay_under_back_to_back_requests(self):
        dram = DramModel(num_channels=1)
        first = dram.access(0, now=0)
        second = dram.access(1, now=0)  # same instant: must queue
        assert second == first - ROW_CLOSED_CYCLES + ROW_HIT_CYCLES + CHANNEL_SERVICE_CYCLES

    def test_no_queueing_when_spread_out(self):
        dram = DramModel(num_channels=1)
        dram.access(0, now=0)
        assert dram.access(1, now=1_000_000) == ROW_HIT_CYCLES


class TestDramCounters:
    def test_read_write_counts(self):
        dram = DramModel()
        dram.access(0, 0, is_write=False)
        dram.access(1, 0, is_write=True)
        assert (dram.reads, dram.writes, dram.accesses) == (1, 1, 2)

    def test_row_hit_rate(self):
        dram = DramModel()
        dram.access(0, 0)
        dram.access(1, 0)
        dram.access(2, 0)
        assert dram.row_hit_rate() == pytest.approx(2 / 3)

    def test_row_hit_rate_empty(self):
        assert DramModel().row_hit_rate() == 0.0
