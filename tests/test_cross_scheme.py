"""Integration tests comparing schemes on identical workloads.

These check the qualitative relationships the paper's evaluation rests
on — who wins, in which direction — on scaled-down runs.
"""

import pytest

from repro.analysis.runner import RunScale, run_app
from repro.sim.config import InLLCSpec, SparseSpec, TinySpec

SCALE = RunScale(num_cores=8, total_accesses=8_000, l1_kb=2, l2_kb=8, spill_window=64)

APP = "TPC-C"


@pytest.fixture(scope="module")
def results():
    """Shared runs for the comparison tests (module-scoped for speed)."""
    return {
        "sparse2x": run_app(APP, SparseSpec(ratio=2.0), SCALE),
        "sparse16": run_app(APP, SparseSpec(ratio=1 / 16), SCALE),
        "inllc": run_app(APP, InLLCSpec(), SCALE),
        "tag_ext": run_app(APP, InLLCSpec(tag_extended=True), SCALE),
        "tiny": run_app(
            APP, TinySpec(ratio=1 / 32, policy="gnru", spill_window=64), SCALE
        ),
        "tiny_spill": run_app(
            APP,
            TinySpec(ratio=1 / 32, policy="gnru", spill=True, spill_window=64),
            SCALE,
        ),
    }


class TestOrderings:
    def test_undersized_sparse_slower_than_2x(self, results):
        assert results["sparse16"].cycles > results["sparse2x"].cycles

    def test_inllc_slower_than_tag_extended(self, results):
        """Fig. 4: borrowing data bits lengthens shared reads."""
        assert results["inllc"].cycles > results["tag_ext"].cycles

    def test_tiny_beats_inllc(self, results):
        """Figs. 10-13: the tiny directory recovers the in-LLC loss."""
        assert results["tiny"].cycles < results["inllc"].cycles

    def test_tiny_close_to_2x(self, results):
        """The headline claim: tiny 1/32x within a few % of 2x sparse."""
        ratio = results["tiny_spill"].normalized_cycles(results["sparse2x"])
        assert ratio < 1.10

    def test_tiny_much_better_than_equal_size_sparse(self, results):
        sparse32 = run_app(APP, SparseSpec(ratio=1 / 32), SCALE)
        assert results["tiny_spill"].cycles < sparse32.cycles


class TestLengthenedAccesses:
    def test_baseline_never_lengthened(self, results):
        assert results["sparse2x"].stats.lengthened == 0
        assert results["tag_ext"].stats.lengthened == 0

    def test_inllc_lengthens_shared_reads(self, results):
        assert results["inllc"].stats.lengthened > 0

    def test_tiny_reduces_lengthened(self, results):
        assert results["tiny"].stats.lengthened < results["inllc"].stats.lengthened

    def test_spill_reduces_lengthened_further(self, results):
        assert (
            results["tiny_spill"].stats.lengthened
            <= results["tiny"].stats.lengthened
        )


class TestMissRates:
    def test_spilling_respects_miss_rate_guarantee(self, results):
        """Fig. 20: DynSpill's miss-rate increase stays within delta."""
        increase = (
            results["tiny_spill"].stats.llc_miss_rate
            - results["sparse2x"].stats.llc_miss_rate
        )
        assert increase < 0.25  # delta_A, the loosest bound

    def test_schemes_see_same_workload(self, results):
        accesses = {r.stats.accesses for r in results.values()}
        assert len(accesses) == 1


class TestTraffic:
    def test_inllc_coherence_traffic_exceeds_baseline(self, results):
        """Fig. 5: forwarded shared reads add coherence traffic."""
        base = results["sparse2x"].stats.traffic.as_dict()["coherence"]
        inllc = results["inllc"].stats.traffic.as_dict()["coherence"]
        assert inllc > base

    def test_all_traffic_classes_nonzero(self, results):
        for name, result in results.items():
            for cls, amount in result.stats.traffic.as_dict().items():
                assert amount > 0, (name, cls)
