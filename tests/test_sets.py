"""Unit tests for the generic set-associative array."""

import pytest

from repro.cache.sets import SetAssocArray
from repro.errors import ConfigError


class TestBasics:
    def test_lookup_missing_returns_none(self):
        array = SetAssocArray(4, 2)
        assert array.lookup(0, 0x10) is None

    def test_insert_then_lookup(self):
        array = SetAssocArray(4, 2)
        array.insert(1, 0x10, "payload")
        line = array.lookup(1, 0x10)
        assert line is not None and line.payload == "payload"

    def test_set_index_wraps(self):
        array = SetAssocArray(4, 2)
        assert array.set_index(5) == 1

    def test_remove_returns_line(self):
        array = SetAssocArray(2, 2)
        array.insert(0, 7, "x")
        assert array.remove(0, 7).payload == "x"
        assert array.lookup(0, 7) is None

    def test_remove_missing_returns_none(self):
        assert SetAssocArray(2, 2).remove(0, 7) is None

    def test_occupancy(self):
        array = SetAssocArray(2, 4)
        for tag in range(3):
            array.insert(0, tag, None)
        assert array.occupancy() == 3

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigError):
            SetAssocArray(0, 2)
        with pytest.raises(ConfigError):
            SetAssocArray(2, 0)

    def test_invalid_replacement_rejected(self):
        with pytest.raises(ConfigError):
            SetAssocArray(2, 2, "fifo")

    def test_iter_lines(self):
        array = SetAssocArray(2, 2)
        array.insert(0, 1, None)
        array.insert(1, 2, None)
        tags = {line.tag for _, line in array.iter_lines()}
        assert tags == {1, 2}


class TestLRU:
    def test_evicts_least_recently_used(self):
        array = SetAssocArray(1, 2, "lru")
        array.insert(0, 1, None)
        array.insert(0, 2, None)
        evicted = array.insert(0, 3, None)
        assert evicted.tag == 1

    def test_lookup_refreshes_recency(self):
        array = SetAssocArray(1, 2, "lru")
        array.insert(0, 1, None)
        array.insert(0, 2, None)
        array.lookup(0, 1)  # 1 becomes MRU
        evicted = array.insert(0, 3, None)
        assert evicted.tag == 2

    def test_untouched_lookup_preserves_order(self):
        array = SetAssocArray(1, 2, "lru")
        array.insert(0, 1, None)
        array.insert(0, 2, None)
        array.lookup(0, 1, touch=False)
        evicted = array.insert(0, 3, None)
        assert evicted.tag == 1

    def test_no_eviction_with_free_ways(self):
        array = SetAssocArray(1, 4, "lru")
        assert array.insert(0, 1, None) is None
        assert array.insert(0, 2, None) is None

    def test_choose_victim_matches_insert(self):
        array = SetAssocArray(1, 2, "lru")
        array.insert(0, 1, None)
        array.insert(0, 2, None)
        assert array.choose_victim(0).tag == 1


class TestNRU:
    def test_victimizes_unreferenced_line(self):
        array = SetAssocArray(1, 3, "nru")
        for tag in range(3):
            array.insert(0, tag, None)
        # Clear all reference bits, then touch tags 0 and 2.
        for line in array.set_lines(0):
            line.nru_ref = False
        array.lookup(0, 0)
        array.lookup(0, 2)
        evicted = array.insert(0, 9, None)
        assert evicted.tag == 1

    def test_all_referenced_falls_back_to_first_way(self):
        array = SetAssocArray(1, 2, "nru")
        array.insert(0, 1, None)
        array.insert(0, 2, None)
        evicted = array.insert(0, 3, None)
        assert evicted.tag == 1

    def test_gang_clear_on_saturation(self):
        array = SetAssocArray(1, 2, "nru")
        array.insert(0, 1, None)
        array.insert(0, 2, None)
        array.choose_victim(0)  # all referenced: clears bits
        remaining = [line for line in array.set_lines(0)]
        # The victim line was not evicted by choose_victim; all bits are
        # now cleared.
        assert all(not line.nru_ref for line in remaining)
