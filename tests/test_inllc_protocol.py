"""Protocol tests for in-LLC coherence tracking (paper §III)."""

import pytest

from conftest import Driver, make_system
from repro.sim.config import InLLCSpec
from repro.types import LLCState, PrivateState


@pytest.fixture
def d() -> Driver:
    return Driver(make_system(InLLCSpec()))


def llc_line(d: Driver, addr: int):
    bank = d.system.home.banks[d.system.home.bank_of(addr)]
    line, _ = bank.lookup(addr, touch=False)
    return line


class TestCorruptedStates:
    def test_read_corrupts_block_exclusive(self, d):
        d.read(0, 0x40)
        line = llc_line(d, 0x40)
        assert line.state is LLCState.CORRUPTED
        assert line.coh.owner == 0

    def test_ifetch_corrupts_block_shared(self, d):
        d.ifetch(0, 0x40)
        line = llc_line(d, 0x40)
        assert line.state is LLCState.CORRUPTED
        assert line.coh.sharer_list() == [0]

    def test_second_reader_makes_corrupted_shared(self, d):
        d.read(0, 0x40)
        d.read(1, 0x40)
        line = llc_line(d, 0x40)
        assert line.coh.sharer_list() == [0, 1]

    def test_write_keeps_corrupted_exclusive(self, d):
        d.read(0, 0x40)
        d.read(1, 0x40)
        d.write(2, 0x40)
        line = llc_line(d, 0x40)
        assert line.coh.owner == 2
        assert d.state(0, 0x40) is PrivateState.INVALID


class TestLengthenedAccesses:
    def test_shared_read_is_lengthened(self, d):
        d.ifetch(0, 0x40)
        before = d.system.stats.lengthened
        d.ifetch(1, 0x40)  # read to corrupted-shared: 3-hop
        assert d.system.stats.lengthened == before + 1

    def test_exclusive_read_not_lengthened(self, d):
        d.read(0, 0x40)
        before = d.system.stats.lengthened
        d.read(1, 0x40)  # forward to owner: baseline also 3-hop
        assert d.system.stats.lengthened == before

    def test_write_not_lengthened(self, d):
        d.ifetch(0, 0x40)
        d.ifetch(1, 0x40)
        before = d.system.stats.lengthened
        d.write(2, 0x40)
        assert d.system.stats.lengthened == before

    def test_code_data_split(self, d):
        d.ifetch(0, 0x40)
        d.ifetch(1, 0x40)  # lengthened code access
        d.read(2, 0x40)  # lengthened data access
        assert d.system.stats.lengthened_code == 1
        assert d.system.stats.lengthened_data == 1

    def test_tag_extended_variant_not_lengthened(self):
        d = Driver(make_system(InLLCSpec(tag_extended=True)))
        d.ifetch(0, 0x40)
        d.ifetch(1, 0x40)
        d.read(2, 0x40)
        assert d.system.stats.lengthened == 0


class TestReconstruction:
    def _evict_from_core(self, d, core, addr):
        """Evict ``addr`` from the core's L2 via set-conflicting fills."""
        step = d.system.config.l2_sets
        for i in range(1, 9):
            d.read(core, addr + i * step)

    def test_exclusive_eviction_restores_clean(self, d):
        d.read(0, 0x40)
        self._evict_from_core(d, 0, 0x40)
        line = llc_line(d, 0x40)
        assert line.state is LLCState.CLEAN
        assert line.coh is None

    def test_modified_eviction_restores_dirty(self, d):
        d.write(0, 0x40)
        self._evict_from_core(d, 0, 0x40)
        line = llc_line(d, 0x40)
        assert line.state is LLCState.DIRTY

    def test_last_sharer_eviction_restores(self, d):
        d.ifetch(0, 0x40)
        self._evict_from_core(d, 0, 0x40)
        line = llc_line(d, 0x40)
        assert line.state is LLCState.CLEAN

    def test_partial_sharer_eviction_keeps_corrupted(self, d):
        d.ifetch(0, 0x40)
        d.ifetch(1, 0x40)
        self._evict_from_core(d, 0, 0x40)
        line = llc_line(d, 0x40)
        assert line.state is LLCState.CORRUPTED
        assert line.coh.sharer_list() == [1]

    def test_dirty_data_tracked_through_downgrade(self, d):
        d.write(0, 0x40)
        d.read(1, 0x40)  # M -> S, dirty data deposited in corrupted line
        line = llc_line(d, 0x40)
        assert line.underlying_dirty
        self._evict_from_core(d, 0, 0x40)
        self._evict_from_core(d, 1, 0x40)
        assert llc_line(d, 0x40).state is LLCState.DIRTY


class TestStraTracking:
    def test_shared_reads_increment_strac(self, d):
        d.ifetch(0, 0x40)
        d.ifetch(1, 0x40)
        d.ifetch(2, 0x40)
        line = llc_line(d, 0x40)
        assert line.stra.strac == 2

    def test_other_accesses_increment_oac(self, d):
        d.read(0, 0x40)
        line = llc_line(d, 0x40)
        assert line.stra.oac == 1
        d.read(1, 0x40)  # found exclusive: other
        assert line.stra.oac == 2

    def test_counters_reset_on_unowned(self, d):
        d.ifetch(0, 0x40)
        d.ifetch(1, 0x40)
        step = d.system.config.l2_sets
        for core in (0, 1):
            for i in range(1, 9):
                d.read(core, 0x40 + i * step)
        line = llc_line(d, 0x40)
        assert line.stra is None


class TestPerformanceShape:
    def test_inllc_slower_than_tag_extended(self):
        """The Fig. 4 gap on a micro scale: borrowing data bits costs."""
        borrow = Driver(make_system(InLLCSpec(tag_extended=False)))
        tag = Driver(make_system(InLLCSpec(tag_extended=True)))
        for d in (borrow, tag):
            # Heavy shared-read traffic: every core re-reads shared code.
            for round_ in range(60):
                for core in range(4):
                    d.ifetch(core, 0x40 * (round_ % 7))
        assert borrow.now > tag.now

    def test_invariants_after_fuzz(self, d):
        d.fuzz(3000)

    def test_tag_extended_invariants_after_fuzz(self):
        Driver(make_system(InLLCSpec(tag_extended=True))).fuzz(3000)
