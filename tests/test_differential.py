"""Differential harness smoke tests: agreement, detection, bisection.

The load-bearing scenario: seed a known corrupted-state fault into a
recorded trace, and the harness must (a) flag the faulted scheme as
divergent, (b) bisect the divergence down to a replayable sub-trace of
at most 64 accesses, and (c) re-trigger the violation when that
sub-trace is replayed — both through the API and the CLI.
"""

import json

import pytest

from repro.errors import TraceError
from repro.resilience.faults import Fault, FaultKind, FaultPlan
from repro.sim.config import SystemConfig
from repro.types import Access, AccessKind
from repro.verify.diff_cli import main as diff_main
from repro.verify.differential import (
    ALL_SCHEMES,
    DEFAULT_TOLERANCES,
    EXACT_KEYS,
    PAIR_TOLERANCES,
    bisect_divergence,
    diff_trace,
    plan_from_dict,
    plan_to_dict,
    replay_subtrace,
    run_monitored,
    run_stats,
    tolerance_for,
    truncate_streams,
)
from repro.verify.reproducer import default_verify_spec
from repro.workloads.capture import save_capture
from repro.workloads.generator import SyntheticTraceGenerator
from repro.workloads.profiles import profile

CORES = 4
ACCESSES = 600
SEED = 5

#: The canonical seeded corruption: drop a private copy after access 40.
#: Applicable under every scheme (unlike directory-entry kinds, which
#: need a block-grain tracking record to exist at the firing point).
FAULT_PLAN = FaultPlan(
    faults=(Fault(FaultKind.DROP_PRIVATE_COPY, after_access=40),), seed=1
)


@pytest.fixture(scope="module")
def small_streams():
    app = profile("barnes")
    config = SystemConfig(num_cores=CORES, l1_kb=1, l2_kb=4)
    return SyntheticTraceGenerator(app, config, SEED).generate(ACCESSES)


@pytest.fixture(scope="module")
def small_trace(small_streams, tmp_path_factory):
    path = tmp_path_factory.mktemp("diff") / "small.rtrace"
    save_capture(
        path,
        small_streams,
        profile=profile("barnes"),
        seed=SEED,
        total_accesses=ACCESSES,
        geometry={"num_cores": CORES, "l1_kb": 1, "l2_kb": 4},
    )
    return path


# ----------------------------------------------------------------------
# Monitored runs and truncation
# ----------------------------------------------------------------------

def test_clean_monitored_run(small_streams):
    run = run_monitored("tiny", default_verify_spec("tiny"), small_streams)
    assert run.ok
    assert run.violation is None
    assert run.processed == sum(len(s) for s in small_streams)
    assert run.executed == [len(s) for s in small_streams]
    assert run.injected == []


def test_bounded_prefix_replays_exactly(small_streams):
    spec = default_verify_spec("tiny")
    bounded = run_monitored("tiny", spec, small_streams, limit=50)
    assert bounded.processed == 50
    sub = truncate_streams(small_streams, bounded.executed)
    assert [len(s) for s in sub] == bounded.executed
    replayed = run_monitored("tiny", spec, sub)
    assert replayed.ok
    assert replayed.processed == 50
    assert replayed.executed == bounded.executed


def test_seeded_fault_is_detected(small_streams):
    run = run_monitored(
        "tiny",
        default_verify_spec("tiny"),
        small_streams,
        fault_plan=FAULT_PLAN,
        audit_interval=16,
    )
    assert not run.ok
    assert run.violation
    assert len(run.injected) == 1
    assert run.injected[0]["kind"] == "drop_private_copy"


def test_exact_keys_are_scheme_independent(small_streams):
    dumps = [
        run_stats(default_verify_spec(name), small_streams)
        for name in ("sparse", "tiny", "stash")
    ]
    for key in EXACT_KEYS:
        values = {dump["scalars"][key] for dump in dumps}
        assert len(values) == 1, f"{key} differs across schemes: {values}"


# ----------------------------------------------------------------------
# The satellite scenario: flag, bisect, replay
# ----------------------------------------------------------------------

def test_fault_flagged_bisected_and_replayable(small_trace, tmp_path):
    report = diff_trace(
        small_trace,
        ("tiny", "sparse"),
        fault_plan=FAULT_PLAN,
        bisect=True,
        out_dir=tmp_path,
        jobs=1,
        audit_interval=16,
    )
    assert report["ok"], report["failures"]
    assert sorted(report["detection"]["detected"]) == ["sparse", "tiny"]
    assert report["detection"]["missed"] == []
    for name in ("tiny", "sparse"):
        result = report["schemes"][name]
        assert not result["ok"]
        assert result["reproducer"] is not None
        assert result["reproducer_accesses"] <= 64

    # The minimal sub-trace must re-trigger the violation on replay...
    reproducer = report["schemes"]["tiny"]["reproducer"]
    rerun = replay_subtrace(reproducer)
    assert not rerun.ok
    assert rerun.scheme == "tiny"

    # ...including when handed straight back to diff_trace, which must
    # pick up the scheme, spec, and fault plan pinned in its header.
    sub_report = diff_trace(reproducer, jobs=1)
    assert tuple(sub_report["schemes"]) == ("tiny",)
    assert sub_report["ok"], sub_report["failures"]
    assert sub_report["detection"]["detected"] == ["tiny"]

    # And the JSON report landed next to the reproducers.
    report_path = tmp_path / f"diff-{small_trace.stem}.json"
    assert report_path.exists()
    assert json.loads(report_path.read_text())["ok"] is True


def test_bisect_finds_minimal_failing_prefix(small_streams):
    spec = default_verify_spec("tiny")
    failing = run_monitored(
        "tiny",
        spec,
        small_streams,
        fault_plan=FAULT_PLAN,
        audit_interval=16,
    )
    assert not failing.ok
    limit, minimal = bisect_divergence(
        "tiny",
        spec,
        small_streams,
        fault_plan=FAULT_PLAN,
        fail_processed=failing.processed,
        audit_interval=16,
    )
    assert not minimal.ok
    assert limit <= 64
    # One shorter must pass: that is what "minimal" means.
    shorter = run_monitored(
        "tiny",
        spec,
        small_streams,
        limit=limit - 1,
        fault_plan=FAULT_PLAN,
        audit_interval=16,
    )
    assert shorter.ok


def test_missed_fault_is_a_failure(small_trace, monkeypatch, tmp_path):
    # A fault planned far past the end of the trace never fires, so every
    # scheme stays clean — the report must call that a miss, not a pass.
    late = FaultPlan(
        faults=(Fault(FaultKind.DROP_PRIVATE_COPY, after_access=10**9),),
        seed=1,
    )
    report = diff_trace(small_trace, ("tiny",), fault_plan=late, jobs=1)
    assert not report["ok"]
    assert report["detection"]["missed"] == ["tiny"]
    assert any("FAULT MISSED" in failure for failure in report["failures"])


# ----------------------------------------------------------------------
# Tolerances and plan serialization
# ----------------------------------------------------------------------

def test_tolerance_for_is_symmetric_and_merged():
    assert tolerance_for("sparse", "tiny") == tolerance_for("tiny", "sparse")
    merged = tolerance_for("sparse", "tiny")
    assert merged["cycles"] == PAIR_TOLERANCES[frozenset({"sparse", "tiny"})]["cycles"]
    assert merged["llc_misses"] == DEFAULT_TOLERANCES["llc_misses"]
    assert tolerance_for("in_llc", "tiny") == DEFAULT_TOLERANCES


def test_fault_plan_round_trip():
    plan = FaultPlan(
        faults=(
            Fault(FaultKind.DROP_PRIVATE_COPY, after_access=40, addr=7, core=2),
            Fault(FaultKind.CORRUPT_DIRECTORY_ENTRY, after_access=99),
        ),
        seed=17,
    )
    assert plan_from_dict(plan_to_dict(plan)) == plan


def test_malformed_plan_payload_raises():
    with pytest.raises(TraceError, match="malformed fault plan"):
        plan_from_dict({"faults": [{"kind": "no_such_kind"}]})


def test_replay_subtrace_rejects_plain_traces(small_trace):
    with pytest.raises(TraceError, match="not a differential sub-trace"):
        replay_subtrace(small_trace)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_record_then_clean_diff(tmp_path, capsys):
    trace = tmp_path / "cli.rtrace"
    assert diff_main(
        [
            "--record", str(trace),
            "--app", "barnes",
            "--cores", str(CORES),
            "--accesses", str(ACCESSES),
            "--seed", str(SEED),
        ]
    ) == 0
    assert trace.exists()
    out = tmp_path / "reports"
    assert diff_main(
        [
            "--trace", str(trace),
            "--schemes", "tiny,stash",
            "--jobs", "1",
            "--out", str(out),
        ]
    ) == 0
    report = json.loads((out / "diff-cli.json").read_text())
    assert report["ok"]
    assert sorted(report["schemes"]) == ["stash", "tiny"]
    assert "diff: OK" in capsys.readouterr().out


def test_cli_fault_detection_bisects(small_trace, tmp_path, capsys):
    out = tmp_path / "reports"
    assert diff_main(
        [
            "--trace", str(small_trace),
            "--schemes", "tiny",
            "--fault", "drop_private_copy@40",
            "--fault-seed", "1",
            "--audit-interval", "16",
            "--bisect",
            "--jobs", "1",
            "--out", str(out),
        ]
    ) == 0
    printed = capsys.readouterr().out
    assert "DIVERGED" in printed
    assert "reproducer" in printed
    reproducers = list(out.glob("repro-*.rtrace"))
    assert len(reproducers) == 1
    assert not replay_subtrace(reproducers[0]).ok


def test_cli_usage_errors(tmp_path, capsys):
    assert diff_main([]) == 2
    assert diff_main(["--trace", str(tmp_path / "missing.rtrace")]) == 2
    assert diff_main(["--trace", str(tmp_path), "--schemes", "bogus"]) == 2
    err = capsys.readouterr().err
    assert "need --trace" in err


def test_cli_unknown_fault_kind(small_trace, capsys):
    assert diff_main(
        ["--trace", str(small_trace), "--fault", "melt_the_llc"]
    ) == 2
    assert "unknown fault kind" in capsys.readouterr().err


def test_all_schemes_constant_matches_specs():
    assert set(ALL_SCHEMES) == {"sparse", "in_llc", "tiny", "mgd", "stash"}
    for name in ALL_SCHEMES:
        assert default_verify_spec(name) is not None
