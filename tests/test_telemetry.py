"""The telemetry subsystem: tracing, metrics, bench points.

Pins the three contracts ``docs/telemetry.md`` documents:

1. **Zero overhead when off** — a traced run and an untraced run of the
   same (streams, system) produce bit-identical statistics dumps, and
   an unmetered run's dump carries no ``telemetry`` section at all.
2. **Lossless trace round trip** — events emitted through the JSONL
   sink read back equal (``seq``, ``kind``, context, and data) to the
   same run's in-memory ring capture.
3. **Mergeable metrics** — snapshots from independent runs/workers fold
   together with counters adding, gauges last-wins, and histogram
   bounds widening.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

import pytest

from repro.analysis.runner import RunScale, run_app
from repro.sim.system import System
from repro.telemetry import (
    EVENT_KINDS,
    JsonlSink,
    MetricsRegistry,
    NULL_TRACER,
    RingBufferSink,
    TraceEvent,
    Tracer,
    install_tracer,
    merge_snapshots,
    merge_worker_traces,
    metrics_from_env,
    read_trace,
    tracer_from_env,
    write_bench_point,
)
from repro.telemetry.metrics import Histogram
from repro.workloads.generator import generate_streams
from repro.sim.engine import run_trace

SCALE = RunScale(num_cores=8, total_accesses=4_000, spill_window=64)


def small_run(tracer=None, scheme=None):
    scheme = scheme or SCALE.tiny_spec(1 / 32, "gnru", spill=True)
    config = SCALE.make_config(scheme)
    system = System(config)
    streams = generate_streams(
        "compress", config, SCALE.total_accesses, seed=SCALE.seed
    )
    stats = run_trace(system, streams, tracer=tracer)
    return system, stats


class TestTraceEvent:
    def test_dict_round_trip(self):
        event = TraceEvent(3, "txn:start", cycle=40, core=2, addr=0x1000,
                           data={"op": "READ"})
        clone = TraceEvent.from_dict(event.to_dict())
        assert clone == event
        assert clone.data == {"op": "READ"}

    def test_to_dict_omits_absent_context(self):
        payload = TraceEvent(1, "tiny:decline").to_dict()
        assert payload == {"seq": 1, "kind": "tiny:decline"}

    def test_json_round_trip_is_bit_exact(self):
        event = TraceEvent(7, "recovery:repair", addr=12,
                           data={"action": "rebuild", "verified": True})
        wire = json.dumps(event.to_dict(), separators=(",", ":"))
        assert TraceEvent.from_dict(json.loads(wire)) == event


class TestBitIdentity:
    def test_traced_run_is_bit_identical_to_untraced(self):
        _, plain = small_run()
        _, traced = small_run(tracer=Tracer(RingBufferSink()))
        assert traced.dump() == plain.dump()

    def test_untraced_dump_has_no_telemetry_section(self):
        _, stats = small_run()
        assert "telemetry" not in stats.dump()
        assert "telemetry" not in stats.as_dict()

    def test_metrics_section_round_trips_through_dump(self):
        from repro.sim.stats import SimStats

        _, stats = small_run()
        metrics = MetricsRegistry()
        metrics.count("txn:accesses", 4000)
        metrics.publish(stats)
        reloaded = SimStats.load(stats.dump())
        assert reloaded.telemetry["counters"]["txn:accesses"] == 4000


class TestTraceCapture:
    def test_txn_events_cover_every_access(self):
        tracer = Tracer(RingBufferSink(capacity=1_000_000))
        _, stats = small_run(tracer=tracer)
        events = tracer.sink.events()
        starts = [e for e in events if e.kind == "txn:start"]
        finishes = [e for e in events if e.kind == "txn:finish"]
        # Every processed transaction is traced: the measured accesses
        # plus the warmup window the stats exclude.
        assert len(starts) == len(finishes)
        assert len(starts) >= stats.accesses > 0
        assert all(e.kind in EVENT_KINDS for e in events)
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_tiny_scheme_emits_structure_events(self):
        tracer = Tracer(RingBufferSink(capacity=1_000_000))
        small_run(tracer=tracer)
        kinds = {e.kind for e in tracer.sink.events()}
        assert "tiny:alloc" in kinds
        assert "stra:classify" in kinds

    def test_jsonl_capture_equals_ring_capture(self, tmp_path):
        path = tmp_path / "t.jsonl"
        ring = RingBufferSink(capacity=1_000_000)

        class Tee:
            def __init__(self, *sinks):
                self.sinks = sinks

            def write(self, event):
                for sink in self.sinks:
                    sink.write(event)

            def close(self):
                for sink in self.sinks:
                    sink.close()

        small_run(tracer=Tracer(Tee(JsonlSink(path), ring)))
        assert read_trace(path) == ring.events()

    def test_read_trace_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.write(TraceEvent(1, "txn:start"))
        sink.write(TraceEvent(2, "txn:finish"))
        sink.close()
        with open(path, "a") as handle:
            handle.write('{"seq":3,"kind":"txn')  # killed mid-write
        events = read_trace(path)
        assert [e.seq for e in events] == [1, 2]

    def test_install_tracer_reaches_containers_and_reverts(self):
        system, _ = small_run()
        tracer = Tracer(RingBufferSink())
        install_tracer(system, tracer)
        assert system.home.tracer is tracer
        tiny = getattr(system.home, "tiny", None)
        if tiny is not None and hasattr(tiny, "tracer"):
            assert tiny.tracer is tracer
        install_tracer(system, NULL_TRACER)
        assert system.home.tracer is NULL_TRACER


class TestWorkerTraceFanIn:
    def test_parts_merge_sorted_and_deleted(self, tmp_path, monkeypatch):
        base = tmp_path / "trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE_OUT", str(base))
        base.write_text('{"seq":1,"kind":"txn:start"}\n')
        for pid, seq in [(222, 2), (111, 3)]:
            part = tmp_path / f"trace.jsonl.{pid}.part"
            part.write_text(f'{{"seq":{seq},"kind":"txn:finish"}}\n')
        merged = merge_worker_traces()
        assert merged == 2
        assert not list(tmp_path.glob("*.part"))
        # Sorted filename order: 111 before 222.
        assert [e.seq for e in read_trace(base)] == [1, 3, 2]

    def test_merge_without_parts_is_a_noop(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_OUT", str(tmp_path / "none.jsonl"))
        assert merge_worker_traces() == 0


class TestEnvBuilders:
    def test_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        monkeypatch.delenv("REPRO_METRICS", raising=False)
        assert tracer_from_env() is None
        assert metrics_from_env() is None

    def test_jsonl_and_ring_selectors(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_OUT", str(tmp_path / "t.jsonl"))
        monkeypatch.setenv("REPRO_TRACE", "jsonl")
        tracer = tracer_from_env()
        assert isinstance(tracer.sink, JsonlSink)
        monkeypatch.setenv("REPRO_TRACE", "ring:128")
        tracer = tracer_from_env()
        assert isinstance(tracer.sink, RingBufferSink)
        assert tracer.sink.capacity == 128

    def test_invalid_trace_warns_and_disables(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TRACE", "csv")
        assert tracer_from_env() is None
        assert "REPRO_TRACE" in capsys.readouterr().err

    def test_invalid_metrics_warns_and_disables(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_METRICS", "always")
        assert metrics_from_env() is None
        assert "REPRO_METRICS" in capsys.readouterr().err

    def test_metrics_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "on")
        assert isinstance(metrics_from_env(), MetricsRegistry)


class TestMetrics:
    def test_histogram_buckets_and_merge(self):
        left, right = Histogram(), Histogram()
        for value in (1, 2, 100):
            left.observe(value)
        right.observe(0.5)
        right.merge_dict(left.as_dict())
        assert right.count == 4
        assert right.min == 0.5 and right.max == 100
        assert sum(right.buckets.values()) == 4

    def test_merge_snapshots_semantics(self):
        a = MetricsRegistry()
        a.count("txn:accesses", 100)
        a.gauge("llc_miss_rate", 0.25)
        a.observe("phase:simulate", 1.0)
        b = MetricsRegistry()
        b.count("txn:accesses", 50)
        b.gauge("llc_miss_rate", 0.5)
        b.observe("phase:simulate", 4.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot(), {}])
        assert merged["counters"]["txn:accesses"] == 150
        assert merged["gauges"]["llc_miss_rate"] == 0.5  # last wins
        hist = merged["histograms"]["phase:simulate"]
        assert hist["count"] == 2 and hist["max"] == 4.0

    def test_empty_registry_publishes_nothing(self):
        from repro.sim.stats import SimStats

        stats = SimStats()
        MetricsRegistry().publish(stats)
        assert stats.telemetry == {}
        assert "telemetry" not in stats.dump()

    def test_run_app_with_metrics_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_METRICS", "on")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        result = run_app("compress", SCALE.tiny_spec(1 / 32, "gnru"), SCALE)
        telemetry = result.stats.telemetry
        assert telemetry["counters"]["txn:accesses"] == result.stats.accesses
        assert telemetry["counters"]["txn:accesses"] > 0
        assert "phase:simulate" in telemetry["histograms"]
        assert "phase:generate" in telemetry["histograms"]


class TestBenchPoints:
    def test_write_bench_point_payload(self, tmp_path):
        path = write_bench_point(tmp_path, "fig16[quick]", seconds=1.25,
                                 jobs=2)
        name = pathlib.Path(path).name
        assert name == "BENCH_fig16_quick.json"
        payload = json.loads(pathlib.Path(path).read_text())
        assert payload == {"name": "fig16[quick]", "seconds": 1.25, "jobs": 2}

    def test_unset_env_means_no_dir(self, monkeypatch):
        from repro.telemetry import bench_dir_from_env

        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        assert bench_dir_from_env() is None
        monkeypatch.setenv("REPRO_BENCH_DIR", "bench-points")
        assert bench_dir_from_env() == "bench-points"


class TestTraceReport:
    @pytest.fixture(scope="class")
    def report(self):
        spec = importlib.util.spec_from_file_location(
            "trace_report",
            pathlib.Path(__file__).resolve().parent.parent
            / "tools" / "trace_report.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_render_timeline(self, report):
        events = [
            TraceEvent(1, "txn:start", cycle=40, core=3, addr=0x1000,
                       data={"op": "READ"}),
            TraceEvent(2, "txn:finish", cycle=104, core=3, addr=0x1000,
                       data={"latency": 64}),
            TraceEvent(3, "tiny:decline", addr=0x2000),
        ]
        lines = report.render(events)
        text = "\n".join(lines)
        assert "3 events" in lines[0] and "2 addresses" in lines[0]
        assert "addr 0x1000" in text
        assert "op=READ" in text and "latency=64" in text

    def test_cli_end_to_end(self, report, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.write(TraceEvent(1, "txn:start", cycle=1, core=0, addr=4096,
                              data={"op": "WRITE"}))
        sink.close()
        assert report.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "txn:start" in out and "0x1000" in out

    def test_missing_trace_fails(self, report, tmp_path, capsys):
        assert report.main([str(tmp_path / "absent.jsonl")]) == 1
        assert "no such trace" in capsys.readouterr().err


class TestPublicSurface:
    def test_reexported_from_repro(self):
        import repro

        for name in ("TraceEvent", "Tracer", "MetricsRegistry",
                     "merge_snapshots", "read_trace", "write_bench_point"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None


class TestSweepTelemetry:
    def test_worker_metrics_merge_across_sweep(self, monkeypatch, tmp_path):
        from repro.parallel import SweepPoint, run_sweep

        monkeypatch.setenv("REPRO_METRICS", "on")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        points = [
            SweepPoint("compress", SCALE.tiny_spec(1 / 32, "gnru"), SCALE),
            SweepPoint("compress", SCALE.tiny_spec(1 / 64, "gnru"), SCALE),
        ]
        report = run_sweep(points, jobs=2)
        merged = report.telemetry()
        per_run = [r.stats.telemetry["counters"]["txn:accesses"]
                   for r in report.results]
        assert merged["counters"]["txn:accesses"] == sum(per_run)
        assert "phase:simulate" in merged["histograms"]
        assert merged["histograms"]["phase:simulate"]["count"] == len(points)
