"""Integration tests for the per-figure experiment harness.

Each experiment is exercised at a micro scale on a two-application
subset; the assertions check structure (rows/columns/averages) and the
qualitative relationships each figure exists to show.
"""

import pytest

from repro.analysis import experiments
from repro.analysis.runner import RunScale

MICRO = RunScale(num_cores=8, total_accesses=6_000, l1_kb=2, l2_kb=8, spill_window=64)
APPS = ["barnes", "compress"]


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


def check_shape(figure, rows, columns):
    assert figure.rows == rows + ["Average"]
    assert len(figure.columns) == columns
    for row in figure.rows:
        assert len(figure.values[row]) == columns
    assert figure.render().startswith(figure.figure_id)


class TestMotivationFigures:
    def test_fig01_shape_and_monotonicity(self):
        figure = experiments.fig01_sparse_sizes(MICRO, apps=APPS)
        check_shape(figure, APPS, 3)
        averages = figure.values["Average"]
        # Smaller directories never help on average (ocean_cp-style
        # outliers aside, our subset is monotone).
        assert averages[0] <= averages[1] <= averages[2]
        assert averages[0] > 0.9

    def test_fig02_percentages(self):
        figure = experiments.fig02_sharer_distribution(MICRO, apps=APPS)
        check_shape(figure, APPS, 5)
        for app in APPS:
            bins = figure.values[app][:4]
            assert all(0.0 <= value <= 100.0 for value in bins)
            assert figure.values[app][4] == pytest.approx(sum(bins), abs=0.1)

    def test_fig02_barnes_shares_more(self):
        figure = experiments.fig02_sharer_distribution(MICRO, apps=APPS)
        assert figure.values["barnes"][4] > figure.values["compress"][4]

    def test_fig03_shared_only(self):
        figure = experiments.fig03_shared_only(MICRO, apps=APPS)
        check_shape(figure, APPS, 4)

    def test_fig04_borrowed_worse_than_tag_extended(self):
        figure = experiments.fig04_in_llc_performance(MICRO, apps=APPS)
        check_shape(figure, APPS, 2)
        assert figure.average("data-borrowed") > figure.average("tag-extended")

    def test_fig05_coherence_traffic_grows(self):
        figure = experiments.fig05_in_llc_traffic(MICRO, apps=APPS)
        check_shape(figure, APPS, 4)
        assert figure.average("coherence") > 1.0

    def test_fig06_lengthened_split(self):
        figure = experiments.fig06_lengthened_accesses(MICRO, apps=APPS)
        check_shape(figure, APPS, 3)
        for app in APPS:
            data, code, total = figure.values[app]
            assert total == pytest.approx(data + code, abs=0.1)

    def test_fig07_barnes_dominates(self):
        figure = experiments.fig07_lengthened_blocks(MICRO, apps=APPS)
        assert figure.values["barnes"][0] > figure.values["compress"][0]

    def test_fig08_fig09_distributions(self):
        blocks = experiments.fig08_stra_blocks(MICRO, apps=APPS)
        accesses = experiments.fig09_stra_accesses(MICRO, apps=APPS)
        for figure in (blocks, accesses):
            check_shape(figure, APPS, 7)
            for app in APPS:
                assert sum(figure.values[app]) == pytest.approx(100.0, abs=0.5)

    def test_fig09_high_categories_concentrate_accesses(self):
        """The paper's key observation: the offending-access distribution
        is shifted toward higher STRA categories than the block
        distribution (C6+C7 cover 54% of accesses but 12% of blocks)."""
        blocks = experiments.fig08_stra_blocks(MICRO, apps=["barnes"])
        accesses = experiments.fig09_stra_accesses(MICRO, apps=["barnes"])

        def weighted_mean_category(values):
            total = sum(values)
            return sum((i + 1) * v for i, v in enumerate(values)) / total

        assert weighted_mean_category(
            accesses.values["barnes"]
        ) >= weighted_mean_category(blocks.values["barnes"])


class TestTinyFigures:
    def test_tiny_performance_figure(self):
        figure = experiments.tiny_directory_performance(1 / 64, MICRO, apps=APPS)
        check_shape(figure, APPS, 3)
        # Spilling never hurts on average.
        assert figure.average("+DynSpill") <= figure.average("DSTRA") + 0.02

    def test_residual_lengthened_spill_lowest(self):
        figure = experiments.tiny_residual_lengthened(1 / 256, MICRO, apps=APPS)
        check_shape(figure, APPS, 3)
        assert figure.average("+DynSpill") <= figure.average("DSTRA+gNRU") + 0.2

    def test_structure_metrics(self):
        for metric in ("hits", "allocations", "hits_per_alloc"):
            figure = experiments.tiny_structure_metric(metric, MICRO, apps=APPS)
            check_shape(figure, APPS, 4)
            for app in APPS:
                assert all(value >= 0 for value in figure.values[app])

    def test_fig19_spill_benefit_nonnegative(self):
        figure = experiments.fig19_spill_benefit(MICRO, apps=APPS)
        check_shape(figure, APPS, 4)
        assert all(value >= 0 for app in APPS for value in figure.values[app])

    def test_fig20_miss_rate_within_delta(self):
        figure = experiments.fig20_miss_rate_increase(MICRO, apps=APPS)
        check_shape(figure, APPS, 4)
        for app in APPS:
            for value in figure.values[app]:
                assert value < 25.0  # delta_A = 1/4 is the loosest bound


class TestRemainingFigures:
    def test_fig21_energy_rows(self):
        figure = experiments.fig21_energy(MICRO, apps=APPS)
        assert figure.rows[-1] == "Tiny 1/256x"
        assert figure.values["Tiny 1/256x"] == [1.0, 1.0, 1.0, 1.0]
        # The headline: the 2x baseline burns more total energy.
        assert figure.values["2x"][3] > 1.0

    def test_fig22_mgd_degrades_with_size(self):
        figure = experiments.fig22_mgd_stash(MICRO, apps=APPS)
        check_shape(figure, APPS, 5)
        assert figure.average("MgD 1/64x") >= figure.average("MgD 1/8x")

    def test_halved_hierarchy(self):
        figure = experiments.halved_hierarchy(MICRO, apps=APPS)
        check_shape(figure, APPS, 2)

    def test_ablation_gnru(self):
        figure = experiments.ablation_gnru_generation(MICRO, apps=APPS)
        check_shape(figure, APPS, 3)

    def test_ablation_spill_delta(self):
        figure = experiments.ablation_spill_delta(MICRO, apps=APPS)
        check_shape(figure, APPS, 4)

    def test_ablation_stra_width(self):
        figure = experiments.ablation_stra_width(MICRO, apps=APPS)
        check_shape(figure, APPS, 3)

    def test_figure_column_accessors(self):
        figure = experiments.fig01_sparse_sizes(MICRO, apps=APPS)
        column = figure.column("1/4x")
        assert len(column) == len(APPS)
        assert figure.average("1/4x") > 0
