"""Property-based tests (hypothesis) on the ``.rtrace`` capture format.

The format's contract is simple to state and worth pinning hard: any
per-core access streams round-trip bit-exactly through save/load, and
any structurally damaged file — truncated anywhere, wrong magic, wrong
version, corrupt header — is rejected with :class:`TraceError`, never
decoded into silently wrong streams.
"""

import json
import zlib

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import TraceError
from repro.types import Access, AccessKind
from repro.workloads.capture import (
    CAPTURE_VERSION,
    MAGIC,
    TraceReader,
    TraceWriter,
    _read_varint,
    _unzigzag,
    _write_varint,
    _zigzag,
    load_capture,
    profile_from_header,
    save_capture,
    trace_fingerprint,
)
from repro.workloads.profiles import profile

FORMAT = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)

kinds = st.sampled_from([AccessKind.READ, AccessKind.WRITE, AccessKind.IFETCH])

# Addresses span the generator's real regions (up to ~2^37) plus small
# values, so zigzag deltas cover multi-byte varints in both directions.
record_strategy = st.tuples(
    st.integers(min_value=0, max_value=1 << 38),
    kinds,
    st.integers(min_value=0, max_value=500),
)

streams_strategy = st.integers(min_value=1, max_value=4).flatmap(
    lambda cores: st.lists(
        st.lists(record_strategy, min_size=0, max_size=60),
        min_size=cores,
        max_size=cores,
    )
)


def build_streams(raw):
    return [
        [Access(core, addr, kind, gap) for addr, kind, gap in stream]
        for core, stream in enumerate(raw)
    ]


# ----------------------------------------------------------------------
# Encoding primitives
# ----------------------------------------------------------------------

@given(value=st.integers(min_value=-(1 << 62), max_value=1 << 62))
def test_zigzag_round_trip(value):
    folded = _zigzag(value)
    assert folded >= 0
    assert _unzigzag(folded) == value


@given(value=st.integers(min_value=0, max_value=1 << 70))
def test_varint_round_trip(value):
    buf = bytearray()
    _write_varint(buf, value)
    decoded, pos = _read_varint(bytes(buf), 0)
    assert decoded == value
    assert pos == len(buf)


def test_varint_rejects_negative():
    with pytest.raises(TraceError):
        _write_varint(bytearray(), -1)


def test_varint_rejects_truncation():
    buf = bytearray()
    _write_varint(buf, 1 << 40)
    with pytest.raises(TraceError, match="truncated varint"):
        _read_varint(bytes(buf[:-1]), 0)


# ----------------------------------------------------------------------
# Round trip
# ----------------------------------------------------------------------

@FORMAT
@given(raw=streams_strategy)
def test_round_trip_arbitrary_streams(raw, tmp_path):
    streams = build_streams(raw)
    path = tmp_path / "trace.rtrace"
    save_capture(path, streams, seed=3)
    loaded, header = load_capture(path)
    assert loaded == streams
    assert header["num_cores"] == len(streams)
    assert header["seed"] == 3
    assert header["format_version"] == CAPTURE_VERSION


def test_round_trip_empty_streams(tmp_path):
    path = tmp_path / "empty.rtrace"
    streams = [[], [], []]
    save_capture(path, streams)
    loaded, header = load_capture(path)
    assert loaded == streams
    assert header["num_cores"] == 3


def test_round_trip_single_access(tmp_path):
    path = tmp_path / "one.rtrace"
    streams = [[Access(0, 123456789, AccessKind.WRITE, 7)]]
    save_capture(path, streams)
    loaded, _header = load_capture(path)
    assert loaded == streams


def test_header_provenance_round_trip(tmp_path):
    path = tmp_path / "prov.rtrace"
    app = profile("barnes")
    save_capture(
        path,
        [[Access(0, 1, AccessKind.READ, 0)]],
        profile=app,
        seed=9,
        total_accesses=1,
        geometry={"num_cores": 1, "l1_kb": 1, "l2_kb": 4},
        meta={"note": "hello"},
    )
    _streams, header = load_capture(path)
    assert profile_from_header(header) == app
    assert header["seed"] == 9
    assert header["total_accesses"] == 1
    assert header["geometry"] == {"num_cores": 1, "l1_kb": 1, "l2_kb": 4}
    assert header["meta"] == {"note": "hello"}


# ----------------------------------------------------------------------
# Damage rejection
# ----------------------------------------------------------------------

@FORMAT
@given(raw=streams_strategy, cut=st.floats(min_value=0.0, max_value=1.0))
def test_any_truncation_is_rejected(raw, cut, tmp_path):
    streams = build_streams(raw)
    path = tmp_path / "whole.rtrace"
    save_capture(path, streams)
    blob = path.read_bytes()
    keep = min(int(len(blob) * cut), len(blob) - 1)
    broken = tmp_path / "broken.rtrace"
    broken.write_bytes(blob[:keep])
    with pytest.raises(TraceError):
        load_capture(broken)


def test_bad_magic_is_rejected(tmp_path):
    path = tmp_path / "bad.rtrace"
    good = tmp_path / "good.rtrace"
    save_capture(good, [[Access(0, 1, AccessKind.READ, 0)]])
    blob = good.read_bytes()
    path.write_bytes(b"NOPE" + blob[len(MAGIC):])
    with pytest.raises(TraceError, match="bad magic"):
        load_capture(path)


def test_future_version_is_rejected(tmp_path):
    path = tmp_path / "future.rtrace"
    good = tmp_path / "good.rtrace"
    save_capture(good, [[Access(0, 1, AccessKind.READ, 0)]])
    blob = good.read_bytes()
    future = (CAPTURE_VERSION + 1).to_bytes(2, "big")
    path.write_bytes(blob[:4] + future + blob[6:])
    with pytest.raises(TraceError, match="format version"):
        load_capture(path)


def test_corrupt_header_is_rejected(tmp_path):
    path = tmp_path / "header.rtrace"
    junk = zlib.compress(b"not json at all")
    path.write_bytes(
        MAGIC
        + CAPTURE_VERSION.to_bytes(2, "big")
        + len(junk).to_bytes(4, "big")
        + junk
    )
    with pytest.raises(TraceError, match="corrupt header"):
        load_capture(path)


def test_invalid_core_count_is_rejected(tmp_path):
    path = tmp_path / "cores.rtrace"
    header = zlib.compress(
        json.dumps({"format_version": CAPTURE_VERSION, "num_cores": 0}).encode()
    )
    path.write_bytes(
        MAGIC
        + CAPTURE_VERSION.to_bytes(2, "big")
        + len(header).to_bytes(4, "big")
        + header
    )
    with pytest.raises(TraceError, match="core count"):
        load_capture(path)


def test_missing_file_is_a_trace_error(tmp_path):
    with pytest.raises(TraceError, match="cannot read"):
        load_capture(tmp_path / "nope.rtrace")


# ----------------------------------------------------------------------
# Writer discipline
# ----------------------------------------------------------------------

def test_writer_enforces_core_order(tmp_path):
    writer = TraceWriter(tmp_path / "order.rtrace", 2)
    with pytest.raises(TraceError, match="core order"):
        writer.write_stream(1, [])
    writer._abort()


def test_writer_rejects_foreign_access(tmp_path):
    writer = TraceWriter(tmp_path / "foreign.rtrace", 2)
    with pytest.raises(TraceError, match="issued by core"):
        writer.write_stream(0, [Access(1, 5, AccessKind.READ, 0)])
    writer._abort()


def test_writer_rejects_negative_gap(tmp_path):
    writer = TraceWriter(tmp_path / "gap.rtrace", 1)
    with pytest.raises(TraceError, match="negative access gap"):
        writer.write_stream(0, [Access(0, 5, AccessKind.READ, -1)])
    writer._abort()


def test_incomplete_writer_leaves_no_file(tmp_path):
    path = tmp_path / "partial.rtrace"
    writer = TraceWriter(path, 4)
    writer.write_stream(0, [])
    with pytest.raises(TraceError, match="core frames"):
        writer.close()
    assert not path.exists()
    assert not path.with_name(path.name + ".tmp").exists()


def test_writer_context_manager_cleans_up_on_error(tmp_path):
    path = tmp_path / "ctx.rtrace"
    with pytest.raises(RuntimeError):
        with TraceWriter(path, 2) as writer:
            writer.write_stream(0, [])
            raise RuntimeError("boom")
    assert not path.exists()
    assert not path.with_name(path.name + ".tmp").exists()


def test_reader_streams_in_core_order(tmp_path):
    path = tmp_path / "ordered.rtrace"
    streams = [
        [Access(0, 10, AccessKind.READ, 0)],
        [],
        [Access(2, 20, AccessKind.WRITE, 1)],
    ]
    save_capture(path, streams)
    with TraceReader(path) as reader:
        cores = [core for core, _stream in reader.streams()]
    assert cores == [0, 1, 2]


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------

def test_fingerprint_tracks_content_not_path(tmp_path):
    a = tmp_path / "a.rtrace"
    b = tmp_path / "b.rtrace"
    save_capture(a, [[Access(0, 1, AccessKind.READ, 0)]], seed=1)
    save_capture(b, [[Access(0, 1, AccessKind.READ, 0)]], seed=1)
    assert trace_fingerprint(a) == trace_fingerprint(b)
    save_capture(b, [[Access(0, 2, AccessKind.READ, 0)]], seed=1)
    assert trace_fingerprint(a) != trace_fingerprint(b)
