"""Tests for resource governance (``repro.guard``) — ISSUE 10.

The acceptance bar: budget watchdogs trip mid-run with structured
errors, ENOSPC on any artifact writer degrades instead of crashing (and
leaves no ``*.tmp`` litter), SIGINT during a sweep flushes the journal
and ``--resume`` recomputes only the rest, and a guarded-but-idle run
stays bit-identical to an unguarded one.
"""

from __future__ import annotations

import errno
import io
import os
import signal
import time

import pytest

from repro.analysis import cache as result_cache
from repro.analysis.cache import cached_run, clear_failed_marks
from repro.analysis.runner import (
    HarnessPolicy,
    RunScale,
    run_app,
    run_app_guarded,
)
from repro.errors import ArtifactWriteError, BudgetExceeded, ShutdownRequested
from repro.guard import (
    DEFAULT_MIN_FREE_MB,
    EXIT_INTERRUPTED,
    PressureMonitor,
    PressurePolicy,
    RunBudget,
    Watchdog,
    active_watchdog,
    budget_from_env,
    check_watchdog,
    graceful_scope,
    guard_scope,
    make_room,
    preflight,
    pressure_from_env,
    prune_matching,
    resume_hint,
)
from repro.parallel import SweepJournal, SweepPoint, run_sweep
from repro.parallel import executor as executor_module
from repro.sim.config import InLLCSpec, SparseSpec, TinySpec
from repro.sim.stats import SimStats
from repro.types import Access, AccessKind
from repro.workloads.capture import TraceWriter

SCALE = RunScale(num_cores=8, total_accesses=3000, spill_window=64)

SPEC = TinySpec(ratio=1 / 64, policy="gnru", spill_window=SCALE.spill_window)


def _points(scale=SCALE):
    """Three small, scheme-diverse sweep points."""
    return [
        SweepPoint("barnes", SparseSpec(ratio=2.0), scale),
        SweepPoint("ocean_cp", InLLCSpec(), scale),
        SweepPoint("barnes", SPEC, scale),
    ]


@pytest.fixture(autouse=True)
def isolated_guard(tmp_path, monkeypatch):
    """Isolated cache dir and a clean guard/budget environment."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_CACHE", "on")
    for name in (
        "REPRO_BUDGET_WALL",
        "REPRO_BUDGET_RSS",
        "REPRO_DISK_QUOTA",
        "REPRO_CACHE_BAD_KEEP",
        "REPRO_JOBS",
    ):
        monkeypatch.delenv(name, raising=False)
    clear_failed_marks()
    yield
    clear_failed_marks()


# ----------------------------------------------------------------------
# Budget declaration and parsing
# ----------------------------------------------------------------------

class TestBudgetParsing:
    def test_unset_is_empty(self):
        budget = budget_from_env()
        assert budget.empty
        assert not budget.armed
        assert budget.describe() == {}

    def test_valid_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_BUDGET_WALL", "120")
        monkeypatch.setenv("REPRO_BUDGET_RSS", "512")
        monkeypatch.setenv("REPRO_DISK_QUOTA", "64")
        budget = budget_from_env()
        assert budget.armed
        assert budget.describe() == {
            "wall_s": 120.0, "rss_mb": 512.0, "disk_mb": 64.0,
        }

    def test_invalid_warns_and_disables(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BUDGET_WALL", "a lot")
        monkeypatch.setenv("REPRO_BUDGET_RSS", "-4")
        budget = budget_from_env()
        assert budget.empty
        err = capsys.readouterr().err
        assert "REPRO_BUDGET_WALL" in err
        assert "REPRO_BUDGET_RSS" in err
        assert "DISABLED" in err

    def test_off_is_silently_unlimited(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BUDGET_WALL", "off")
        assert budget_from_env().wall_s is None
        assert capsys.readouterr().err == ""

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            RunBudget(wall_s=0)
        with pytest.raises(ValueError):
            RunBudget(rss_mb=-1)

    def test_disk_only_budget_is_not_watchdog_armed(self):
        budget = RunBudget(disk_mb=64)
        assert not budget.armed
        assert not budget.empty


# ----------------------------------------------------------------------
# Watchdog sampling, trips, and pressure provenance
# ----------------------------------------------------------------------

class TestWatchdog:
    def test_wall_trip(self):
        watchdog = Watchdog(RunBudget(wall_s=1.0), now=time.monotonic() - 2.0)
        with pytest.raises(BudgetExceeded) as excinfo:
            watchdog.check()
        assert excinfo.value.resource == "wall"
        assert excinfo.value.observed > excinfo.value.limit == 1.0

    def test_rss_trip(self, monkeypatch):
        monkeypatch.setattr(
            "repro.guard.watchdog.process_rss_mb", lambda pid="self": 999.0
        )
        watchdog = Watchdog(RunBudget(rss_mb=10.0))
        with pytest.raises(BudgetExceeded) as excinfo:
            watchdog.check()
        assert excinfo.value.resource == "rss"
        assert excinfo.value.observed == 999.0

    def test_wall_pressure_recorded_once(self):
        watchdog = Watchdog(
            RunBudget(wall_s=100.0), now=time.monotonic() - 85.0
        )
        watchdog.check()
        watchdog.check()
        assert len(watchdog.pressure_events) == 1
        resource, observed, limit = watchdog.pressure_events[0]
        assert resource == "wall"
        assert 80.0 < observed < 100.0 == limit

    def test_publish_roundtrips_through_stats(self):
        watchdog = Watchdog(
            RunBudget(wall_s=100.0), now=time.monotonic() - 85.0
        )
        watchdog.check()
        stats = SimStats()
        watchdog.publish(stats)
        assert stats.guard["budget"] == {"wall_s": 100.0}
        assert stats.guard["pressure_events"][0]["resource"] == "wall"
        reloaded = SimStats.load(stats.dump())
        assert reloaded.guard == stats.guard

    def test_publish_is_noop_without_pressure(self):
        watchdog = Watchdog(RunBudget(wall_s=3600.0))
        watchdog.check()
        stats = SimStats()
        watchdog.publish(stats)
        assert stats.guard == {}
        assert "guard" not in stats.dump()

    def test_guard_scope_unarmed_yields_none(self):
        with guard_scope(None) as watchdog:
            assert watchdog is None
        with guard_scope(RunBudget(disk_mb=64.0)) as watchdog:
            assert watchdog is None
        check_watchdog()  # unarmed check is a no-op, not an error

    def test_guard_scope_nests_and_restores(self):
        outer_budget = RunBudget(wall_s=3600.0)
        inner_budget = RunBudget(wall_s=1800.0)
        assert active_watchdog() is None
        with guard_scope(outer_budget) as outer:
            assert active_watchdog() is outer
            with guard_scope(inner_budget) as inner:
                assert active_watchdog() is inner
            assert active_watchdog() is outer
        assert active_watchdog() is None

    def test_run_app_trips_mid_run(self, monkeypatch):
        monkeypatch.setenv("REPRO_BUDGET_WALL", "0.005")
        with pytest.raises(BudgetExceeded) as excinfo:
            run_app("barnes", SPEC, SCALE)
        assert excinfo.value.resource == "wall"
        assert active_watchdog() is None  # scope unwound

    def test_keep_going_records_budget_failure(self, monkeypatch):
        monkeypatch.setenv("REPRO_BUDGET_WALL", "0.005")
        policy = HarnessPolicy(keep_going=True)
        result = run_app_guarded("barnes", SPEC, SCALE, policy=policy)
        assert result.meta["failed"]
        assert len(policy.failures) == 1
        assert "BudgetExceeded" in policy.failures[0].error


class TestGuardIdleBitIdentity:
    def test_generous_budgets_change_nothing(self, monkeypatch):
        baseline = run_app("barnes", SPEC, SCALE)
        monkeypatch.setenv("REPRO_BUDGET_WALL", "3600")
        monkeypatch.setenv("REPRO_BUDGET_RSS", "1000000")
        guarded = run_app("barnes", SPEC, SCALE)
        assert guarded.stats.guard == {}
        assert guarded.stats.dump() == baseline.stats.dump()

    def test_disk_quota_never_partitions_cache_key(self, monkeypatch):
        clean = result_cache.point_key("barnes", SPEC, SCALE)
        monkeypatch.setenv("REPRO_DISK_QUOTA", "64")
        assert result_cache.point_key("barnes", SPEC, SCALE) == clean
        monkeypatch.setenv("REPRO_BUDGET_WALL", "3600")
        assert result_cache.point_key("barnes", SPEC, SCALE) != clean


# ----------------------------------------------------------------------
# Cache quota, quarantine retention, and ENOSPC degradation
# ----------------------------------------------------------------------

class TestCacheGovernance:
    def test_quarantine_keeps_newest_n(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BAD_KEEP", "2")
        cdir = result_cache.cache_dir()
        cdir.mkdir(parents=True, exist_ok=True)
        for age in range(3):
            stale = cdir / f"old{age}.json.bad"
            stale.write_text("x")
            os.utime(stale, (age, age))
        corrupt = cdir / "corrupt.json"
        corrupt.write_text("{this is not json")
        assert result_cache._load_entry(corrupt) is None
        assert not corrupt.exists()
        assert len(list(cdir.glob("*.json.bad"))) <= 2

    def test_quarantine_keep_zero_deletes(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BAD_KEEP", "0")
        cdir = result_cache.cache_dir()
        cdir.mkdir(parents=True, exist_ok=True)
        corrupt = cdir / "corrupt.json"
        corrupt.write_text("{this is not json")
        assert result_cache._load_entry(corrupt) is None
        assert not corrupt.exists()
        assert list(cdir.glob("*.json.bad")) == []

    def test_invalid_bad_keep_warns_and_defaults(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_BAD_KEEP", "many")
        assert result_cache._bad_keep() == result_cache.DEFAULT_BAD_KEEP
        assert "REPRO_CACHE_BAD_KEEP" in capsys.readouterr().err

    def test_tiny_quota_degrades_to_uncached(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_DISK_QUOTA", "0.0005")
        result = cached_run("barnes", SPEC, SCALE)
        assert result.meta.get("uncached")
        assert "cache write skipped" in capsys.readouterr().err
        cdir = result_cache.cache_dir()
        assert list(cdir.glob("*.json")) == []
        assert list(cdir.glob("*.tmp")) == []

    def test_enospc_degrades_to_uncached_without_litter(
        self, monkeypatch, capsys
    ):
        cdir = result_cache.cache_dir()
        real_replace = os.replace

        def exploding_replace(src, dst, **kwargs):
            if os.fspath(dst).startswith(os.fspath(cdir)):
                raise OSError(errno.ENOSPC, "No space left on device")
            return real_replace(src, dst, **kwargs)

        monkeypatch.setattr(os, "replace", exploding_replace)
        result = cached_run("barnes", SPEC, SCALE)
        assert result.meta.get("uncached")
        assert "cache write skipped" in capsys.readouterr().err
        assert list(cdir.glob("*.tmp")) == []


# ----------------------------------------------------------------------
# Journal and capture writers under ENOSPC
# ----------------------------------------------------------------------

class TestJournalWriteFailure:
    def test_append_failure_is_structured(self, tmp_path):
        blocked = tmp_path / "journal-as-dir"
        blocked.mkdir()
        journal = SweepJournal(blocked)
        with pytest.raises(ArtifactWriteError) as excinfo:
            journal.record_ok("some-key")
        assert excinfo.value.path == str(blocked)

    def test_sweep_degrades_to_journal_less(self, monkeypatch, capsys):
        journal = SweepJournal(result_cache.cache_dir() / "sweep.journal")

        def exploding_append(*args, **kwargs):
            raise ArtifactWriteError(
                "simulated full disk", path=str(journal.path)
            )

        monkeypatch.setattr(journal, "record_ok", exploding_append)
        points = _points()[:2]
        report = run_sweep(points, jobs=1, journal=journal)
        assert len(report.results) == 2
        assert all(r is not None for r in report.results)
        assert "simulated full disk" in report.guard["journal_disabled"]
        assert "sweep journal disabled" in capsys.readouterr().err
        summary = report.summary().render()
        assert "journal: disabled mid-sweep" in summary


class TestCaptureWriteFailure:
    class _ExplodingFile:
        def __init__(self, real):
            self._real = real

        def write(self, data):
            raise OSError(errno.ENOSPC, "No space left on device")

        def flush(self):
            raise OSError(errno.ENOSPC, "No space left on device")

        def fileno(self):
            return self._real.fileno()

        def close(self):
            self._real.close()

    def test_create_failure_is_structured(self, tmp_path):
        blocking_file = tmp_path / "not-a-dir"
        blocking_file.write_text("x")
        with pytest.raises(ArtifactWriteError):
            TraceWriter(blocking_file / "t.rtrace", num_cores=1)

    def test_stream_write_failure_cleans_tmp(self, tmp_path):
        writer = TraceWriter(tmp_path / "t.rtrace", num_cores=1)
        writer._file = self._ExplodingFile(writer._file)
        accesses = [Access(0, 4, AccessKind.READ)]
        with pytest.raises(ArtifactWriteError):
            writer.write_stream(0, accesses)
        assert not writer._tmp.exists()
        assert not writer.path.exists()

    def test_finalize_failure_cleans_tmp(self, tmp_path):
        writer = TraceWriter(tmp_path / "t.rtrace", num_cores=1)
        writer.write_stream(0, [])
        writer._file = self._ExplodingFile(writer._file)
        with pytest.raises(ArtifactWriteError):
            writer.close()
        assert not writer._tmp.exists()
        assert not writer.path.exists()


# ----------------------------------------------------------------------
# Graceful shutdown and the interrupt/resume round trip
# ----------------------------------------------------------------------

class TestShutdown:
    def test_sigint_becomes_shutdown_requested(self):
        with pytest.raises(ShutdownRequested) as excinfo:
            with graceful_scope():
                os.kill(os.getpid(), signal.SIGINT)
                for _ in range(10_000):  # let the signal land
                    pass
        assert excinfo.value.signum == signal.SIGINT

    def test_handlers_restored_after_scope(self):
        before = signal.getsignal(signal.SIGTERM)
        with graceful_scope():
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before

    def test_keep_going_never_swallows_shutdown(self, monkeypatch):
        def interrupted_run(*args, **kwargs):
            raise ShutdownRequested(signal.SIGTERM)

        monkeypatch.setattr("repro.analysis.runner.run_app", interrupted_run)
        with pytest.raises(ShutdownRequested):
            run_app_guarded(
                "barnes", SPEC, SCALE, policy=HarnessPolicy(keep_going=True)
            )

    def test_interrupted_sweep_flushes_journal_and_resumes(
        self, tmp_path, monkeypatch
    ):
        points = _points()
        journal = SweepJournal(result_cache.cache_dir() / "sweep.journal")
        real_cached_run = result_cache.cached_run
        calls = {"n": 0}

        def interrupt_on_second(app, scheme, scale):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise ShutdownRequested(signal.SIGINT)
            return real_cached_run(app, scheme, scale)

        monkeypatch.setattr(result_cache, "cached_run", interrupt_on_second)
        with pytest.raises(ShutdownRequested):
            run_sweep(points, jobs=1, journal=journal)
        # The completed first point survived the interrupt in the journal.
        records = journal.load()
        assert records[points[0].key()]["status"] == "ok"
        assert points[1].key() not in records

        # Resume recomputes only the non-journaled points.
        monkeypatch.setattr(result_cache, "cached_run", real_cached_run)
        report = run_sweep(points, jobs=1, journal=journal, resume=True)
        assert report.resumed_points == 1
        assert all(r is not None for r in report.results)

        # ... and the resumed sweep is bit-identical to a fresh one.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "fresh-cache"))
        baseline = run_sweep(points, jobs=1)
        assert [r.stats.dump() for r in report.results] == [
            r.stats.dump() for r in baseline.results
        ]

    def test_resume_hint_names_the_flag(self, tmp_path):
        hint = resume_hint(tmp_path / "sweep.journal", ["fig13", "--jobs", "2"])
        assert "python -m repro fig13 --jobs 2 --resume" in hint
        assert str(tmp_path / "sweep.journal") in hint

    def test_exit_code_is_distinct(self):
        assert EXIT_INTERRUPTED == 75

    def test_cli_exits_interrupted_with_hint(self, monkeypatch, capsys):
        import repro.__main__ as cli

        def interrupted_figure(scale, **kwargs):
            raise ShutdownRequested(signal.SIGTERM)

        monkeypatch.setitem(cli.FIGURES, "fig01", (interrupted_figure, ()))
        code = cli.main(["fig01", "--jobs", "1"])
        assert code == EXIT_INTERRUPTED
        err = capsys.readouterr().err
        assert "shutdown requested" in err
        assert "--resume" in err


# ----------------------------------------------------------------------
# Sweep backpressure
# ----------------------------------------------------------------------

class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestPressureMonitor:
    def _monitor(self, jobs, policy, rss, free=None):
        clock = _FakeClock()
        monitor = PressureMonitor(
            jobs,
            policy,
            rss_reader=lambda pid: rss["mb"],
            free_reader=lambda path: free,
            clock=clock,
        )
        return monitor, clock

    def test_throttles_by_halving_and_restores_stepwise(self):
        policy = PressurePolicy(rss_mb=100.0, sample_interval_s=1.0)
        rss = {"mb": 1000.0}
        monitor, clock = self._monitor(8, policy, rss)
        pids = [1]
        for expected in (4, 2, 1, 1):
            clock.advance(1.0)
            monitor.update(pids, ".")
            assert monitor.effective_jobs == expected
        assert monitor.min_effective_jobs == 1
        rss["mb"] = 1.0  # pressure clears: below the low-water mark
        for expected in (2, 3, 4, 5, 6, 7, 8, 8):
            clock.advance(1.0)
            monitor.update(pids, ".")
            assert monitor.effective_jobs == expected
        described = monitor.describe()
        assert described["min_effective_jobs"] == 1
        assert described["jobs"] == 8
        actions = [e["action"] for e in described["throttle_events"]]
        assert actions.count("throttle") == 3
        assert actions.count("restore") == 7

    def test_disk_floor_throttles(self):
        policy = PressurePolicy(disk_floor_mb=64.0, sample_interval_s=1.0)
        monitor, clock = self._monitor(4, policy, {"mb": 0.0}, free=8.0)
        clock.advance(1.0)
        monitor.update([], ".")
        assert monitor.effective_jobs == 2
        assert monitor.events[0].reason == "disk"

    def test_samples_are_rate_limited(self):
        policy = PressurePolicy(rss_mb=100.0, sample_interval_s=10.0)
        monitor, clock = self._monitor(8, policy, {"mb": 1000.0})
        clock.advance(10.0)
        monitor.update([1], ".")
        assert monitor.samples == 1
        monitor.update([1], ".")  # same instant: no new sample
        assert monitor.samples == 1
        assert monitor.effective_jobs == 4

    def test_untouched_monitor_describes_empty(self):
        policy = PressurePolicy(rss_mb=100.0, sample_interval_s=1.0)
        monitor, clock = self._monitor(4, policy, {"mb": 1.0})
        clock.advance(1.0)
        assert monitor.update([1], ".") == 4
        assert monitor.describe() == {}

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            PressurePolicy(rss_mb=10.0, low_water=0.9, high_water=0.5)
        with pytest.raises(ValueError):
            PressurePolicy(rss_mb=10.0, min_jobs=0)


class TestPressureFromEnv:
    def test_unset_is_disarmed(self):
        assert pressure_from_env(4) is None

    def test_aggregate_rss_scales_with_jobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_BUDGET_RSS", "100")
        policy = pressure_from_env(4)
        assert policy.rss_mb == 400.0
        assert policy.disk_floor_mb is None

    def test_disk_quota_arms_the_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_QUOTA", "10")
        policy = pressure_from_env(2)
        assert policy.rss_mb is None
        assert policy.disk_floor_mb == DEFAULT_MIN_FREE_MB


class TestThrottledSweepBitIdentity:
    def test_throttled_sweep_matches_serial(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            executor_module,
            "pressure_from_env",
            lambda jobs: PressurePolicy(rss_mb=100.0, sample_interval_s=0.0),
        )

        def saturated_monitor(jobs, policy):
            return PressureMonitor(
                jobs,
                policy,
                rss_reader=lambda pid: 1000.0,
                free_reader=lambda path: None,
            )

        monkeypatch.setattr(
            executor_module, "PressureMonitor", saturated_monitor
        )
        points = _points()
        report = run_sweep(points, jobs=2)
        backpressure = report.guard["backpressure"]
        assert backpressure["min_effective_jobs"] == 1
        assert "backpressure:" in report.summary().render()

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial-cache"))
        monkeypatch.setattr(
            executor_module, "pressure_from_env", lambda jobs: None
        )
        baseline = run_sweep(points, jobs=1)
        assert [r.stats.dump() for r in report.results] == [
            r.stats.dump() for r in baseline.results
        ]


# ----------------------------------------------------------------------
# Disk quota primitives and preflight
# ----------------------------------------------------------------------

class TestQuota:
    def test_prune_matching_keeps_newest(self, tmp_path):
        for age in range(3):
            path = tmp_path / f"artifact{age}.json"
            path.write_text("x" * 10)
            os.utime(path, (age, age))
        pruned = prune_matching(tmp_path, ("*.json",), keep=1)
        assert len(pruned) == 2
        survivors = list(tmp_path.glob("*.json"))
        assert survivors == [tmp_path / "artifact2.json"]

    def test_make_room_without_quota(self, tmp_path):
        assert make_room(tmp_path, 10**9, None)

    def test_make_room_rejects_oversized_write(self, tmp_path):
        assert not make_room(tmp_path, 2 * 1024 * 1024, 1.0)

    def test_make_room_prunes_to_fit(self, tmp_path):
        for age in range(4):
            path = tmp_path / f"artifact{age}.json"
            path.write_text("x" * 400 * 1024)
            os.utime(path, (age, age))
        quota_mb = 1.0
        assert make_room(tmp_path, 300 * 1024, quota_mb, ("*.json",))
        remaining = sum(p.stat().st_size for p in tmp_path.glob("*.json"))
        assert remaining + 300 * 1024 <= quota_mb * 1024 * 1024
        assert (tmp_path / "artifact3.json").exists()  # newest survives

    def test_preflight_warns_once_per_dir(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.guard.quota.free_mb", lambda path: 1.0)
        first = io.StringIO()
        warnings = preflight([tmp_path], stream=first)
        assert warnings and "low disk" in warnings[0]
        assert "low disk" in first.getvalue()
        second = io.StringIO()
        assert preflight([tmp_path], stream=second)  # still reported...
        assert second.getvalue() == ""  # ...but printed only once

    def test_preflight_silent_with_headroom(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            "repro.guard.quota.free_mb", lambda path: 10_000.0
        )
        stream = io.StringIO()
        assert preflight([tmp_path], stream=stream) == []
        assert stream.getvalue() == ""


# ----------------------------------------------------------------------
# Soak harness CLI surface
# ----------------------------------------------------------------------

class TestSoakCli:
    def test_parser_defaults(self):
        from repro.guard.soak import SCENARIOS, build_parser

        args = build_parser().parse_args(["--quick"])
        assert args.quick
        assert args.rounds == 4
        assert args.seed == 0
        assert not args.scenario
        assert set(SCENARIOS) == {
            "wall_budget", "disk_quota", "rss_throttle", "interrupt",
        }

    def test_parser_rejects_unknown_scenario(self, capsys):
        from repro.guard.soak import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scenario", "meteor_strike"])
