"""Tests for the System facade."""

import pytest

from conftest import Driver, make_system
from repro.errors import ConfigError
from repro.sim.config import (
    InLLCSpec,
    MgdSpec,
    SparseSpec,
    StashSpec,
    SystemConfig,
    TinySpec,
)
from repro.sim.system import System


class TestConstruction:
    @pytest.mark.parametrize(
        "spec",
        [
            SparseSpec(ratio=2.0),
            SparseSpec(ratio=1 / 16, shared_only=True),
            SparseSpec(ratio=1 / 16, zcache=True),
            InLLCSpec(),
            InLLCSpec(tag_extended=True),
            TinySpec(ratio=1 / 16, policy="dstra"),
            TinySpec(ratio=1 / 16, policy="gnru", spill=True),
            MgdSpec(ratio=1 / 8),
            StashSpec(ratio=1 / 16),
        ],
        ids=lambda s: f"{s.name}-{getattr(s, 'ratio', '')}",
    )
    def test_every_scheme_builds_and_runs(self, spec):
        d = Driver(make_system(spec))
        d.fuzz(600)
        assert d.system.stats.accesses == 600

    def test_unknown_scheme_rejected(self):
        config = SystemConfig(num_cores=4, l1_kb=1, l2_kb=4)
        config.scheme = object()
        with pytest.raises(ConfigError):
            System(config)

    def test_one_private_core_per_core(self):
        system = make_system(SparseSpec())
        assert len(system.cores) == system.config.num_cores

    def test_one_llc_bank_per_tile(self):
        system = make_system(SparseSpec())
        assert len(system.home.banks) == system.config.num_banks


class TestFinalize:
    def test_finalize_harvests_structure_counters(self):
        d = Driver(make_system(SparseSpec(ratio=2.0)))
        d.fuzz(500)
        stats = d.system.finalize()
        assert stats.structures["llc_tag_lookups"] > 0
        assert "dir_lookups" in stats.structures

    def test_finalize_idempotent(self):
        d = Driver(make_system(SparseSpec(ratio=2.0)))
        d.fuzz(500)
        first = d.system.finalize()
        allocated = first.blocks_allocated
        second = d.system.finalize()
        assert second.blocks_allocated == allocated

    def test_tiny_scheme_exports_tiny_counters(self):
        d = Driver(make_system(TinySpec(ratio=1 / 16, policy="gnru")))
        d.fuzz(500)
        stats = d.system.finalize()
        assert "tiny_hits" in stats.structures
        assert "tiny_allocations" in stats.structures

    def test_residency_flush_counts_resident_blocks(self):
        d = Driver(make_system(SparseSpec(ratio=2.0)))
        for addr in range(10):
            d.read(0, addr)
        stats = d.system.finalize()
        assert stats.blocks_allocated >= 10


class TestLatencyReporting:
    def test_l1_hit_is_cheapest(self):
        d = Driver(make_system(SparseSpec(ratio=2.0)))
        miss_latency = d.read(0, 0x40)
        hit_latency = d.read(0, 0x40)
        assert hit_latency == d.system.config.l1_latency
        assert miss_latency > hit_latency

    def test_l2_hit_latency(self):
        d = Driver(make_system(SparseSpec(ratio=2.0)))
        d.read(0, 0x40)
        d.ifetch(0, 0x40)  # in dL1+L2; ifetch finds it at L2
        latency = d.ifetch(0, 0x40)  # now in iL1
        assert latency == d.system.config.l1_latency

    def test_dram_miss_is_most_expensive(self):
        d = Driver(make_system(SparseSpec(ratio=2.0)))
        miss = d.read(0, 0x40)
        d.read(1, 0x80)
        hit_in_llc = d.read(0, 0x80)  # LLC hit (filled by core 1's miss)
        assert miss > hit_in_llc
