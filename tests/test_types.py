"""Unit tests for the common value types."""

from repro.types import (
    Access,
    AccessKind,
    BLOCK_SIZE,
    LLCState,
    PrivateState,
    block_address,
    byte_address,
)


class TestAccessKind:
    def test_read_is_read(self):
        assert AccessKind.READ.is_read

    def test_ifetch_is_read(self):
        assert AccessKind.IFETCH.is_read

    def test_write_is_not_read(self):
        assert not AccessKind.WRITE.is_read


class TestPrivateState:
    def test_modified_is_exclusive(self):
        assert PrivateState.MODIFIED.is_exclusive

    def test_exclusive_is_exclusive(self):
        assert PrivateState.EXCLUSIVE.is_exclusive

    def test_shared_not_exclusive(self):
        assert not PrivateState.SHARED.is_exclusive

    def test_invalid_not_exclusive(self):
        assert not PrivateState.INVALID.is_exclusive


class TestAddressConversion:
    def test_block_address_strips_offset(self):
        assert block_address(BLOCK_SIZE - 1) == 0
        assert block_address(BLOCK_SIZE) == 1

    def test_byte_address_roundtrip(self):
        for block in (0, 1, 12345):
            assert block_address(byte_address(block)) == block

    def test_block_size_is_64(self):
        assert BLOCK_SIZE == 64


class TestAccess:
    def test_fields(self):
        acc = Access(3, 0x10, AccessKind.WRITE, gap=7)
        assert (acc.core, acc.addr, acc.kind, acc.gap) == (3, 0x10, AccessKind.WRITE, 7)

    def test_default_gap_zero(self):
        assert Access(0, 0, AccessKind.READ).gap == 0

    def test_equality(self):
        assert Access(1, 2, AccessKind.READ) == Access(1, 2, AccessKind.READ)
        assert Access(1, 2, AccessKind.READ) != Access(1, 2, AccessKind.WRITE)

    def test_llc_states_distinct(self):
        assert len({state.value for state in LLCState}) == len(list(LLCState))
