"""Unit tests for the trace engine and stats plumbing."""

import pytest

from repro.sim.config import SparseSpec, SystemConfig
from repro.sim.engine import TraceEngine, run_trace
from repro.sim.system import System
from repro.types import Access, AccessKind


def small_system() -> System:
    return System(SystemConfig(num_cores=4, l1_kb=1, l2_kb=4, scheme=SparseSpec(ratio=2.0)))


def reads(core, addrs, gap=5):
    return [Access(core, addr, AccessKind.READ, gap) for addr in addrs]


class TestEngineBasics:
    def test_runs_all_accesses(self):
        system = small_system()
        streams = [reads(0, range(10)), reads(1, range(100, 110))]
        stats = run_trace(system, streams, warmup_fraction=0.0)
        assert stats.accesses == 20

    def test_execution_time_is_max_core_clock(self):
        system = small_system()
        streams = [reads(0, range(50)), reads(1, [100])]
        stats = run_trace(system, streams, warmup_fraction=0.0)
        assert stats.cycles > 50 * 5  # at least the busy core's gaps

    def test_too_many_streams_rejected(self):
        system = small_system()
        with pytest.raises(ValueError):
            TraceEngine(system, [[] for _ in range(5)])

    def test_invalid_warmup_rejected(self):
        system = small_system()
        with pytest.raises(ValueError):
            TraceEngine(system, [[]], warmup_fraction=1.0)

    def test_empty_streams_allowed(self):
        system = small_system()
        stats = run_trace(system, [[], reads(1, range(5))], warmup_fraction=0.0)
        assert stats.accesses == 5


class TestWarmup:
    def test_warmup_excluded_from_stats(self):
        def run(warmup):
            system = small_system()
            streams = [reads(0, range(40))]
            return run_trace(system, streams, warmup_fraction=warmup)

        cold = run(0.0)
        warm = run(0.5)
        assert warm.accesses == 20
        assert cold.accesses == 40
        # The warm run's measured window repeats already-cached blocks.
        assert warm.llc_misses < cold.llc_misses

    def test_warmup_preserves_traffic_meter_identity(self):
        system = small_system()
        meter = system.stats.traffic
        run_trace(system, [reads(0, range(20))], warmup_fraction=0.5)
        assert system.stats.traffic is meter
        assert meter.total_bytes > 0

    def test_cycles_measure_post_warmup_region(self):
        system = small_system()
        streams = [reads(0, range(100))]
        stats = run_trace(system, streams, warmup_fraction=0.5)
        system2 = small_system()
        full = run_trace(system2, [reads(0, range(100))], warmup_fraction=0.0)
        assert 0 < stats.cycles < full.cycles


class TestEdgeCases:
    def test_all_streams_empty(self):
        system = small_system()
        stats = run_trace(system, [[], [], []], warmup_fraction=0.4)
        assert stats.accesses == 0
        assert stats.cycles == 0

    def test_no_streams_at_all(self):
        system = small_system()
        stats = run_trace(system, [], warmup_fraction=0.4)
        assert stats.accesses == 0
        assert stats.cycles == 0

    def test_single_access_stream(self):
        system = small_system()
        stats = run_trace(system, [reads(0, [0x40])], warmup_fraction=0.4)
        assert stats.accesses == 1
        assert stats.cycles > 0

    def test_single_access_with_high_warmup_still_measures_it(self):
        # int(1 * 0.99) == 0 warmup accesses, so the one access counts.
        system = small_system()
        stats = run_trace(system, [reads(0, [0x40])], warmup_fraction=0.99)
        assert stats.accesses == 1
        assert stats.cycles >= 0

    def test_warmup_consuming_nearly_everything(self):
        # int(10 * 0.99) == 9: the clamp must leave >= 1 measured access
        # and a non-negative cycle count.
        system = small_system()
        stats = run_trace(system, [reads(0, range(10))], warmup_fraction=0.99)
        assert stats.accesses >= 1
        assert stats.cycles >= 0

    def test_zero_warmup_measures_everything(self):
        system = small_system()
        stats = run_trace(system, [reads(0, range(7)), reads(1, range(7))],
                          warmup_fraction=0.0)
        assert stats.accesses == 14

    def test_empty_run_with_auditor(self):
        from repro.resilience import ProtocolAuditor

        system = small_system()
        stats = run_trace(system, [[]], auditor=ProtocolAuditor(interval=10))
        assert stats.accesses == 0


class TestDeterminism:
    def test_same_trace_same_result(self):
        def run():
            system = small_system()
            streams = [reads(c, range(c * 100, c * 100 + 30)) for c in range(4)]
            return run_trace(system, streams).cycles

        assert run() == run()
