"""Unit tests for the directory organizations (sparse, zcache, MgD, stash)."""

import pytest

from repro.coherence.info import CohInfo
from repro.directory.mgd import BLOCKS_PER_REGION, MultiGrainDirectory, RegionEntry
from repro.directory.sparse import FULLY_ASSOC_THRESHOLD, SparseDirectory
from repro.directory.stash import StashState
from repro.directory.zcache import ZCacheDirectory
from repro.errors import ConfigError


class TestSparseDirectory:
    def test_lookup_miss(self):
        directory = SparseDirectory(64, 2)
        assert directory.lookup(5) is None
        assert directory.misses == 1

    def test_allocate_and_lookup(self):
        directory = SparseDirectory(64, 2)
        coh = CohInfo(owner=1)
        assert directory.allocate(5, coh) is None
        assert directory.lookup(5) is coh
        assert directory.hits == 1

    def test_eviction_returns_victim(self):
        directory = SparseDirectory(4, 1, assoc=4)  # one set of 4
        for addr in range(4):
            directory.allocate(addr, CohInfo(owner=0))
        victim = directory.allocate(99, CohInfo(owner=0))
        assert victim is not None
        victim_addr, victim_coh = victim
        assert victim_addr in range(4)
        assert victim_coh.owner == 0
        assert directory.evictions == 1

    def test_remove(self):
        directory = SparseDirectory(64, 2)
        directory.allocate(5, CohInfo(owner=1))
        assert directory.remove(5) is not None
        assert directory.remove(5) is None

    def test_small_slices_fully_associative(self):
        directory = SparseDirectory(FULLY_ASSOC_THRESHOLD * 2, 2)
        assert directory.slice_assoc == FULLY_ASSOC_THRESHOLD

    def test_too_small_rejected(self):
        with pytest.raises(ConfigError):
            SparseDirectory(2, 4)

    def test_banked_isolation(self):
        directory = SparseDirectory(32, 4)
        directory.allocate(0, CohInfo(owner=0))  # bank 0
        directory.allocate(1, CohInfo(owner=1))  # bank 1
        assert directory.lookup(0).owner == 0
        assert directory.lookup(1).owner == 1

    def test_occupancy_and_iter(self):
        directory = SparseDirectory(64, 2)
        directory.allocate(3, CohInfo(owner=0))
        directory.allocate(4, CohInfo(owner=1))
        assert directory.occupancy() == 2
        assert {addr for addr, _ in directory.iter_entries()} == {3, 4}


class TestZCacheDirectory:
    def test_allocate_and_lookup(self):
        directory = ZCacheDirectory(64, 2)
        coh = CohInfo(owner=3)
        directory.allocate(10, coh)
        assert directory.lookup(10) is coh

    def test_remove(self):
        directory = ZCacheDirectory(64, 2)
        directory.allocate(10, CohInfo(owner=3))
        assert directory.remove(10) is not None
        assert directory.lookup(10) is None

    def test_eviction_reports_correct_address(self):
        directory = ZCacheDirectory(16, 2, ways=4)
        victims = []
        for addr in range(0, 200, 2):  # all in bank 0
            victim = directory.allocate(addr, CohInfo(owner=0))
            if victim is not None:
                victims.append(victim[0])
        assert victims, "expected evictions from a small z-cache"
        for addr in victims:
            assert addr % 2 == 0  # bank preserved in reconstruction

    def test_relocation_extends_reach(self):
        """Skewed hashing + relocation should beat a direct-mapped fill."""
        directory = ZCacheDirectory(64, 1, ways=4)
        inserted = 0
        evictions = 0
        for addr in range(48):
            if directory.allocate(addr, CohInfo(owner=0)) is not None:
                evictions += 1
            inserted += 1
        assert directory.occupancy() > 40  # holds most of 48 in 64 slots

    def test_too_small_rejected(self):
        with pytest.raises(ConfigError):
            ZCacheDirectory(4, 2, ways=4)

    def test_deterministic_across_instances(self):
        a = ZCacheDirectory(64, 2, seed=1)
        b = ZCacheDirectory(64, 2, seed=1)
        for addr in range(30):
            a.allocate(addr, CohInfo(owner=0))
            b.allocate(addr, CohInfo(owner=0))
        assert a.occupancy() == b.occupancy()


class TestMultiGrainDirectory:
    def test_region_of(self):
        assert MultiGrainDirectory.region_of(BLOCKS_PER_REGION - 1) == 0
        assert MultiGrainDirectory.region_of(BLOCKS_PER_REGION) == 1

    def test_region_entry_blocks(self):
        entry = RegionEntry(owner=2, presence=0b101)
        assert entry.blocks(1) == [BLOCKS_PER_REGION, BLOCKS_PER_REGION + 2]

    def test_block_and_region_do_not_alias(self):
        directory = MultiGrainDirectory(64, 2)
        directory.allocate_block(0, CohInfo(owner=0))
        directory.allocate_region(0, RegionEntry(owner=1, presence=1))
        assert directory.lookup_block(0).owner == 0
        assert directory.lookup_region(0).owner == 1

    def test_remove_block(self):
        directory = MultiGrainDirectory(64, 2)
        directory.allocate_block(5, CohInfo(owner=0))
        assert directory.remove_block(5) is not None
        assert directory.lookup_block(5) is None

    def test_remove_region(self):
        directory = MultiGrainDirectory(64, 2)
        directory.allocate_region(3, RegionEntry(owner=0, presence=0b11))
        assert directory.remove_region(3) is not None
        assert directory.lookup_region(3 * BLOCKS_PER_REGION) is None

    def test_victim_decoding(self):
        directory = MultiGrainDirectory(4, 1, assoc=4)
        for addr in range(4):
            directory.allocate_block(addr * 64, CohInfo(owner=0))
        victim = directory.allocate_region(9, RegionEntry(owner=1, presence=1))
        assert victim is not None
        kind, key, payload = victim
        assert kind == "block"
        assert isinstance(payload, CohInfo)


class TestStashState:
    def test_stash_and_query(self):
        stash = StashState()
        stash.stash(5, owner=3)
        assert stash.is_stashed(5)
        assert stash.owner_of(5) == 3

    def test_unstash(self):
        stash = StashState()
        stash.stash(5, owner=3)
        assert stash.unstash(5) == 3
        assert not stash.is_stashed(5)
        assert stash.unstash(5) is None

    def test_counters(self):
        stash = StashState()
        stash.stash(1, 0)
        stash.stash(2, 1)
        stash.unstash(1)
        assert stash.stashed_total == 2
        assert stash.count() == 1
