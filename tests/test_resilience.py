"""Resilience subsystem tests: auditing, flight recorder, hardened harness.

The acceptance bar (ISSUE): a fault injected via a FaultPlan into each
scheme is detected by the online auditor within one audit interval,
raising :class:`InvariantViolation` naming the corrupted address and the
involved cores; with auditing disabled, clean runs are bit-identical;
corrupt cache entries are quarantined and recomputed; ``keep_going``
collects per-run failures instead of aborting.
"""

import json

import pytest

from repro.analysis.cache import cached_run
from repro.analysis.runner import (
    HarnessPolicy,
    RunFailure,
    RunScale,
    harness,
    run_app_guarded,
)
from repro.errors import InvariantViolation, RunTimeoutError
from repro.resilience import (
    Fault,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FlightRecorder,
    NullRecorder,
    ProtocolAuditor,
    auditor_from_env,
)
from repro.sim.config import (
    InLLCSpec,
    MgdSpec,
    SparseSpec,
    StashSpec,
    SystemConfig,
    TinySpec,
)
from repro.sim.engine import run_trace
from repro.sim.system import System
from repro.workloads.generator import generate_streams
from repro.workloads.profiles import profile

AUDIT_INTERVAL = 250
INJECT_AT = 1000  # audit-window boundary: corruption is seen immediately


def _build(spec, fault_kind=None, num_cores: int = 8):
    """System + streams for a small real workload, optionally faulted."""
    config = SystemConfig(num_cores=num_cores, l1_kb=1, l2_kb=4, scheme=spec)
    streams = generate_streams(profile("barnes"), config, 6000, seed=3)
    injector = None
    if fault_kind is not None:
        plan = FaultPlan(
            faults=(Fault(kind=fault_kind, after_access=INJECT_AT),), seed=7
        )
        injector = FaultInjector(plan)
    system = System(config, fault_injector=injector)
    return system, streams


SCHEMES = [
    pytest.param(SparseSpec(ratio=2.0), id="sparse"),
    pytest.param(InLLCSpec(), id="inllc"),
    pytest.param(TinySpec(ratio=1 / 32, policy="dstra"), id="tiny"),
    pytest.param(MgdSpec(ratio=1 / 8), id="mgd"),
    pytest.param(StashSpec(ratio=1 / 32), id="stash"),
]


class TestOnlineAuditor:
    @pytest.mark.parametrize("spec", SCHEMES)
    def test_fault_detected_within_one_audit_interval(self, spec):
        system, streams = _build(spec, FaultKind.DROP_PRIVATE_COPY)
        auditor = ProtocolAuditor(interval=AUDIT_INTERVAL)
        with pytest.raises(InvariantViolation) as excinfo:
            run_trace(system, streams, auditor=auditor)
        [injected] = system.fault_injector.injected
        assert injected.access_index == INJECT_AT
        assert system.access_index - injected.access_index <= AUDIT_INTERVAL
        message = str(excinfo.value)
        assert f"{excinfo.value.addr:#x}" in message
        assert excinfo.value.cores, "violation must name the involved cores"
        for core in excinfo.value.cores:
            assert str(core) in message

    @pytest.mark.parametrize("spec", SCHEMES)
    def test_corrupt_tracking_entry_detected(self, spec):
        system, streams = _build(spec, FaultKind.CORRUPT_DIRECTORY_ENTRY)
        auditor = ProtocolAuditor(interval=AUDIT_INTERVAL)
        with pytest.raises(InvariantViolation):
            run_trace(system, streams, auditor=auditor)

    def test_diagnostics_include_bank_and_history(self):
        system, streams = _build(SparseSpec(ratio=2.0), FaultKind.DROP_PRIVATE_COPY)
        auditor = ProtocolAuditor(interval=AUDIT_INTERVAL)
        with pytest.raises(InvariantViolation) as excinfo:
            run_trace(system, streams, auditor=auditor)
        violation = excinfo.value
        assert violation.bank == system.home.bank_of(violation.addr)
        assert violation.history, "flight recorder should hold transactions"
        assert "last_transactions" in str(violation)
        # The injected fault itself is on the record for that address.
        assert any("fault:" in str(record) for record in violation.history)

    @pytest.mark.parametrize("spec", SCHEMES)
    def test_clean_run_bit_identical_with_auditing(self, spec):
        system_plain, streams = _build(spec)
        stats_plain = run_trace(system_plain, streams)
        system_audited, streams = _build(spec)
        stats_audited = run_trace(
            system_audited, streams, auditor=ProtocolAuditor(interval=100)
        )
        assert stats_plain.dump() == stats_audited.dump()

    def test_clean_run_passes_audits(self):
        system, streams = _build(TinySpec(ratio=1 / 32, policy="gnru", spill=True,
                                          spill_window=64))
        run_trace(system, streams, auditor=ProtocolAuditor(interval=50))


class TestAuditorFromEnv:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        assert auditor_from_env() is None

    @pytest.mark.parametrize("value", ["off", "0", "no", "false"])
    def test_explicitly_disabled(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_AUDIT", value)
        assert auditor_from_env() is None

    @pytest.mark.parametrize("value", ["on", "1", "yes", "true"])
    def test_enabled(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_AUDIT", value)
        auditor = auditor_from_env()
        assert auditor is not None

    def test_numeric_interval(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "123")
        assert auditor_from_env().interval == 123

    @pytest.mark.parametrize("value", ["ture", "-5", "0x10", "1.5"])
    def test_invalid_value_warns_instead_of_silently_disabling(
        self, monkeypatch, capsys, value
    ):
        # Regression: "ture" (typo for "true") or "-5" used to disable
        # auditing without a word — a chaos run silently became clean.
        monkeypatch.setenv("REPRO_AUDIT", value)
        assert auditor_from_env() is None
        err = capsys.readouterr().err
        assert "REPRO_AUDIT" in err and value in err
        assert "DISABLED" in err

    @pytest.mark.parametrize("value", ["off", "0", "no", "false", ""])
    def test_explicit_off_does_not_warn(self, monkeypatch, capsys, value):
        monkeypatch.setenv("REPRO_AUDIT", value)
        assert auditor_from_env() is None
        assert capsys.readouterr().err == ""


class TestFaultPlanFromEnv:
    def test_disabled_by_default(self, monkeypatch):
        from repro.resilience import injector_from_env, plan_from_env

        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert plan_from_env() is None
        assert injector_from_env() is None

    def test_parses_kinds_positions_and_seed(self, monkeypatch):
        from repro.resilience import plan_from_env

        monkeypatch.setenv(
            "REPRO_FAULTS", "corrupt_directory_entry@8000,flip_sharer_bit"
        )
        monkeypatch.setenv("REPRO_FAULT_SEED", "42")
        plan = plan_from_env()
        assert plan is not None and plan.seed == 42
        assert [f.kind for f in plan.faults] == [
            FaultKind.CORRUPT_DIRECTORY_ENTRY,
            FaultKind.FLIP_SHARER_BIT,
        ]
        assert [f.after_access for f in plan.faults] == [8000, 1]

    @pytest.mark.parametrize(
        "value", ["corrupt_dir_entry@10", "flip_sharer_bit@x", "," ]
    )
    def test_invalid_value_warns_and_disables(self, monkeypatch, capsys, value):
        from repro.resilience import plan_from_env

        monkeypatch.setenv("REPRO_FAULTS", value)
        assert plan_from_env() is None
        err = capsys.readouterr().err
        assert "REPRO_FAULTS" in err and "DISABLED" in err

    def test_bad_seed_warns_and_disables(self, monkeypatch, capsys):
        from repro.resilience import plan_from_env

        monkeypatch.setenv("REPRO_FAULTS", "flip_sharer_bit@10")
        monkeypatch.setenv("REPRO_FAULT_SEED", "lots")
        assert plan_from_env() is None
        assert "REPRO_FAULT_SEED" in capsys.readouterr().err


class TestFlightRecorder:
    def test_null_recorder_is_inert(self):
        recorder = NullRecorder()
        assert not recorder.enabled
        recorder.record(0x40, "fill", core=1)
        assert recorder.history(0x40) == ()

    def test_bounded_depth(self):
        recorder = FlightRecorder(depth=3)
        for i in range(10):
            recorder.record(0x40, f"event{i}", core=0)
        history = recorder.history(0x40)
        assert len(history) == 3
        assert [r.event for r in history] == ["event7", "event8", "event9"]

    def test_sequence_numbers_are_global(self):
        recorder = FlightRecorder()
        recorder.record(0x40, "a", core=0)
        recorder.record(0x80, "b", core=1)
        seqs = [recorder.history(addr)[0].seq for addr in (0x40, 0x80)]
        assert seqs == sorted(seqs) and len(set(seqs)) == 2

    def test_bounded_address_count(self):
        recorder = FlightRecorder(depth=2, max_addresses=4)
        for addr in range(8):
            recorder.record(addr, "touch", core=0)
        assert recorder.history(0) == ()  # oldest addresses dropped
        assert recorder.history(7)


class TestCrashSafeCache:
    def _scale(self):
        return RunScale(num_cores=4, total_accesses=800)

    def test_truncated_entry_quarantined_and_recomputed(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE", "on")
        scale = self._scale()
        first = cached_run("barnes", SparseSpec(ratio=2.0), scale)
        [entry] = list(tmp_path.glob("*.json"))
        # Simulate a kill mid-write (pre-hardening): truncate the JSON.
        entry.write_text(entry.read_text()[: len(entry.read_text()) // 2])
        again = cached_run("barnes", SparseSpec(ratio=2.0), scale)
        assert again.stats.dump() == first.stats.dump()
        assert not again.meta.get("cached")
        assert list(tmp_path.glob("*.json.bad")), "corrupt entry quarantined"
        # And the recomputed entry is valid and served from cache now.
        third = cached_run("barnes", SparseSpec(ratio=2.0), scale)
        assert third.meta.get("cached")

    def test_no_temp_files_left_behind(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE", "on")
        cached_run("barnes", SparseSpec(ratio=2.0), self._scale())
        assert not list(tmp_path.glob("*.tmp"))
        [entry] = list(tmp_path.glob("*.json"))
        json.loads(entry.read_text())  # parseable, complete

    def test_failed_runs_are_not_cached(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE", "on")

        def boom(*args, **kwargs):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr("repro.analysis.runner.run_app", boom)
        policy = HarnessPolicy(keep_going=True)
        with harness(policy):
            result = cached_run("barnes", SparseSpec(ratio=2.0), self._scale())
        assert result.meta.get("failed")
        assert not list(tmp_path.glob("*.json"))


class TestHardenedHarness:
    def test_keep_going_collects_failures(self, monkeypatch):
        calls = []

        def boom(app, scheme, scale=None, config=None):
            calls.append(app)
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr("repro.analysis.runner.run_app", boom)
        policy = HarnessPolicy(keep_going=True, max_retries=1)
        with harness(policy):
            result = run_app_guarded("barnes", SparseSpec(ratio=2.0))
        assert result.meta.get("failed")
        assert "synthetic failure" in result.meta["error"]
        [failure] = policy.failures
        assert isinstance(failure, RunFailure)
        assert failure.app == "barnes"
        assert failure.attempts == 2
        assert len(calls) == 2  # one retry

    def test_without_keep_going_the_error_propagates(self, monkeypatch):
        def boom(app, scheme, scale=None, config=None):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr("repro.analysis.runner.run_app", boom)
        with pytest.raises(RuntimeError):
            run_app_guarded("barnes", SparseSpec(ratio=2.0))

    def test_retry_can_succeed(self, monkeypatch):
        attempts = []
        real_run_app = __import__(
            "repro.analysis.runner", fromlist=["run_app"]
        ).run_app

        def flaky(app, scheme, scale=None, config=None):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return real_run_app(
                app, scheme, RunScale(num_cores=4, total_accesses=400)
            )

        monkeypatch.setattr("repro.analysis.runner.run_app", flaky)
        policy = HarnessPolicy(keep_going=True, max_retries=2)
        with harness(policy):
            result = run_app_guarded("barnes", SparseSpec(ratio=2.0))
        assert not result.meta.get("failed")
        assert not policy.failures
        assert len(attempts) == 2

    def test_timeout_raises_runtimeout(self):
        # The timeout is a cooperative deadline checked inside the trace
        # engine and the stream generator, so a run far larger than the
        # limit allows is cut off shortly after the limit — on any
        # platform and in any thread (no signals involved).
        import time

        huge = RunScale(num_cores=8, total_accesses=2_000_000)
        policy = HarnessPolicy(timeout_s=0.2)
        start = time.monotonic()
        with harness(policy):
            with pytest.raises(RunTimeoutError):
                run_app_guarded("barnes", SparseSpec(ratio=2.0), huge)
        assert time.monotonic() - start < 20


class TestInvariantViolationDiagnostics:
    def test_structured_fields_render_in_message(self):
        violation = InvariantViolation(
            "phantom sharer", addr=0x1234, cores=(1, 5), bank=3
        )
        message = str(violation)
        assert "phantom sharer" in message
        assert "0x1234" in message
        assert "[1, 5]" in message
        assert "home_bank=3" in message

    def test_plain_message_unchanged(self):
        assert str(InvariantViolation("just text")) == "just text"
