"""Failure-injection tests: corrupted internal state must be detected.

The invariant checkers exist to catch simulator bugs; these tests verify
they actually fire when the state is deliberately broken — using the
declarative :class:`~repro.resilience.faults.FaultPlan` machinery rather
than ad-hoc state poking — and that the protocol error paths raise
instead of silently mis-tracking.
"""

import pytest

from conftest import Driver, make_system, tiny_config
from repro.coherence.info import CohInfo
from repro.errors import FaultInjectionError, ProtocolError, TraceError
from repro.resilience import Fault, FaultInjector, FaultKind, FaultPlan
from repro.sim.config import InLLCSpec, MgdSpec, SparseSpec, StashSpec, TinySpec
from repro.sim.system import System
from repro.types import Access, AccessKind, PrivateState


def faulted_driver(scheme, *faults, seed: int = 0, **overrides) -> Driver:
    """A Driver over a System with a FaultInjector attached."""
    injector = FaultInjector(FaultPlan(faults=tuple(faults), seed=seed))
    system = System(tiny_config(scheme, **overrides), fault_injector=injector)
    return Driver(system)


class TestInvariantCheckersFire:
    def test_stale_directory_entry_detected(self):
        d = faulted_driver(
            SparseSpec(ratio=2.0),
            Fault(kind=FaultKind.DROP_PRIVATE_COPY, after_access=1,
                  addr=0x40, core=0),
        )
        d.read(0, 0x40)  # fault fires after this access completes
        with pytest.raises(ProtocolError):
            d.system.check_invariants()
        assert d.state(0, 0x40) is PrivateState.INVALID

    def test_untracked_private_block_detected(self):
        d = faulted_driver(
            SparseSpec(ratio=2.0),
            Fault(kind=FaultKind.CORRUPT_DIRECTORY_ENTRY, after_access=1,
                  addr=0x40),
        )
        d.read(0, 0x40)
        with pytest.raises(ProtocolError):
            d.system.check_invariants()

    def test_phantom_sharer_detected(self):
        d = faulted_driver(
            SparseSpec(ratio=2.0),
            Fault(kind=FaultKind.FLIP_SHARER_BIT, after_access=1,
                  addr=0x40, core=3),
        )
        d.read(0, 0x40)
        with pytest.raises(ProtocolError):
            d.system.check_invariants()

    def test_lost_eviction_notice_detected(self):
        d = faulted_driver(
            SparseSpec(ratio=2.0),
            Fault(kind=FaultKind.LOSE_EVICTION_NOTICE, after_access=1),
        )
        d.read(0, 0x40)
        # Exceed private-cache capacity until a notice is swallowed.
        for block in range(0x100, 0x400):
            d.read(0, block)
            if d.system.fault_injector.injected:
                break
        assert d.system.fault_injector.injected
        with pytest.raises(ProtocolError):
            d.system.check_invariants()

    def test_double_writer_detected(self):
        d = Driver(make_system(SparseSpec(ratio=2.0)))
        d.write(0, 0x40)
        # Corrupt: force a second exclusive copy (no FaultKind models a
        # spontaneous fill, so this one pokes the private cache directly).
        d.system.cores[1].fill(0x40, AccessKind.WRITE, PrivateState.MODIFIED)
        with pytest.raises(ProtocolError):
            d.system.check_invariants()

    def test_inllc_stale_tracking_detected(self):
        d = faulted_driver(
            InLLCSpec(),
            Fault(kind=FaultKind.DROP_PRIVATE_COPY, after_access=1,
                  addr=0x40, core=0),
        )
        d.read(0, 0x40)
        with pytest.raises(ProtocolError):
            d.system.check_invariants()

    def test_tiny_stale_entry_detected(self):
        d = faulted_driver(
            TinySpec(ratio=1 / 16, policy="dstra"),
            Fault(kind=FaultKind.DROP_PRIVATE_COPY, after_access=1,
                  addr=0x40, core=0),
        )
        d.ifetch(0, 0x40)  # allocates a tiny entry
        with pytest.raises(ProtocolError):
            d.system.check_invariants()

    def test_corrupt_tiny_entry_detected(self):
        d = faulted_driver(
            TinySpec(ratio=1 / 16, policy="dstra"),
            Fault(kind=FaultKind.CORRUPT_TINY_ENTRY, after_access=1,
                  addr=0x40),
        )
        d.ifetch(0, 0x40)
        with pytest.raises(ProtocolError):
            d.system.check_invariants()


class TestInjectorMechanics:
    def test_fault_applies_at_declared_access(self):
        d = faulted_driver(
            SparseSpec(ratio=2.0),
            Fault(kind=FaultKind.DROP_PRIVATE_COPY, after_access=3,
                  addr=0x40, core=0),
        )
        d.read(0, 0x40)
        d.read(0, 0x80)
        assert not d.system.fault_injector.injected
        d.read(0, 0xC0)
        [fault] = d.system.fault_injector.injected
        assert fault.kind is FaultKind.DROP_PRIVATE_COPY
        assert fault.addr == 0x40
        assert fault.access_index == 3

    def test_seeded_target_resolution_is_deterministic(self):
        def run():
            d = faulted_driver(
                SparseSpec(ratio=2.0),
                Fault(kind=FaultKind.DROP_PRIVATE_COPY, after_access=4),
                seed=11,
            )
            for i in range(4):
                d.read(i, 0x40 * (i + 1))
            [fault] = d.system.fault_injector.injected
            return (fault.addr, fault.core)

        assert run() == run()

    def test_drop_on_non_holder_rejected(self):
        d = faulted_driver(
            SparseSpec(ratio=2.0),
            Fault(kind=FaultKind.DROP_PRIVATE_COPY, after_access=1,
                  addr=0x40, core=2),
        )
        with pytest.raises(FaultInjectionError):
            d.read(0, 0x40)  # core 2 does not hold 0x40

    def test_corrupt_tiny_entry_needs_tiny_scheme(self):
        d = faulted_driver(
            SparseSpec(ratio=2.0),
            Fault(kind=FaultKind.CORRUPT_TINY_ENTRY, after_access=1),
        )
        with pytest.raises(FaultInjectionError):
            d.read(0, 0x40)

    @pytest.mark.parametrize("spec", [
        SparseSpec(ratio=2.0),
        InLLCSpec(),
        TinySpec(ratio=1 / 16, policy="dstra"),
        MgdSpec(ratio=1 / 4),
        StashSpec(ratio=1 / 4),
    ], ids=lambda s: type(s).__name__)
    def test_drop_private_copy_detected_under_every_scheme(self, spec):
        d = faulted_driver(
            spec,
            Fault(kind=FaultKind.DROP_PRIVATE_COPY, after_access=1,
                  addr=0x40, core=0),
        )
        d.read(0, 0x40)
        with pytest.raises(ProtocolError):
            d.system.check_invariants()


class TestProtocolErrorPaths:
    def test_access_from_unknown_core_rejected(self):
        d = Driver(make_system(SparseSpec(ratio=2.0)))
        with pytest.raises(TraceError):
            d.system.access(Access(99, 0x40, AccessKind.READ), 0)

    def test_forward_to_vanished_owner_detected(self):
        d = faulted_driver(
            SparseSpec(ratio=2.0),
            Fault(kind=FaultKind.DROP_PRIVATE_COPY, after_access=1,
                  addr=0x40, core=0),
        )
        d.write(0, 0x40)  # owner silently loses its copy afterwards
        with pytest.raises(ProtocolError):
            d.write(1, 0x40)

    def test_inllc_upgrade_for_untracked_block_detected(self):
        d = Driver(make_system(InLLCSpec()))
        with pytest.raises(ProtocolError):
            d.system.home.handle_access(
                0, 0x40, AccessKind.WRITE, 0, upgrade=True
            )

    def test_cohinfo_owner_plus_sharers_rejected(self):
        with pytest.raises(ProtocolError):
            CohInfo(owner=0, sharers=0b10)


class TestRecoveryAfterHeavyChurn:
    """Long adversarial patterns must leave the system consistent."""

    def test_write_storm_single_block(self):
        d = Driver(make_system(SparseSpec(ratio=1 / 16)))
        for i in range(400):
            d.write(i % 4, 0x40)
        d.system.check_invariants()
        assert d.state(3, 0x40) is PrivateState.MODIFIED

    def test_reader_writer_pingpong(self):
        d = Driver(make_system(InLLCSpec()))
        for i in range(300):
            d.read(0, 0x40)
            d.read(1, 0x40)
            d.write(2, 0x40)
        d.system.check_invariants()

    def test_tiny_directory_thrash(self):
        d = Driver(make_system(TinySpec(ratio=1 / 64, policy="gnru", spill=True,
                                        spill_window=32)))
        # Far more hot shared blocks than tiny entries, with writes mixed
        # in so entries keep migrating between structures.
        for round_ in range(150):
            block = 0x40 * (round_ % 40)
            d.ifetch(round_ % 4, block)
            if round_ % 7 == 0:
                d.write((round_ + 1) % 4, block)
        d.system.check_invariants()
