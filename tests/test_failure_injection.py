"""Failure-injection tests: corrupted internal state must be detected.

The invariant checkers exist to catch simulator bugs; these tests verify
they actually fire when the state is deliberately broken, and that the
protocol error paths raise rather than silently mis-track.
"""

import pytest

from conftest import Driver, make_system
from repro.coherence.info import CohInfo
from repro.errors import ProtocolError, TraceError
from repro.sim.config import InLLCSpec, SparseSpec, TinySpec
from repro.types import Access, AccessKind, PrivateState


class TestInvariantCheckersFire:
    def test_stale_directory_entry_detected(self):
        d = Driver(make_system(SparseSpec(ratio=2.0)))
        d.read(0, 0x40)
        # Corrupt: drop the private copy without telling the directory.
        d.system.cores[0].invalidate(0x40)
        with pytest.raises(ProtocolError):
            d.system.check_invariants()

    def test_untracked_private_block_detected(self):
        d = Driver(make_system(SparseSpec(ratio=2.0)))
        d.read(0, 0x40)
        # Corrupt: remove the directory entry behind the protocol's back.
        d.system.home.directory.remove(0x40)
        with pytest.raises(ProtocolError):
            d.system.check_invariants()

    def test_double_writer_detected(self):
        d = Driver(make_system(SparseSpec(ratio=2.0)))
        d.write(0, 0x40)
        # Corrupt: force a second exclusive copy.
        d.system.cores[1].fill(0x40, AccessKind.WRITE, PrivateState.MODIFIED)
        with pytest.raises(ProtocolError):
            d.system.check_invariants()

    def test_inllc_stale_tracking_detected(self):
        d = Driver(make_system(InLLCSpec()))
        d.read(0, 0x40)
        d.system.cores[0].invalidate(0x40)
        with pytest.raises(ProtocolError):
            d.system.check_invariants()

    def test_tiny_stale_entry_detected(self):
        d = Driver(make_system(TinySpec(ratio=1 / 16, policy="dstra")))
        d.ifetch(0, 0x40)  # allocates a tiny entry
        d.system.cores[0].invalidate(0x40)
        with pytest.raises(ProtocolError):
            d.system.check_invariants()


class TestProtocolErrorPaths:
    def test_access_from_unknown_core_rejected(self):
        d = Driver(make_system(SparseSpec(ratio=2.0)))
        with pytest.raises(TraceError):
            d.system.access(Access(99, 0x40, AccessKind.READ), 0)

    def test_forward_to_vanished_owner_detected(self):
        d = Driver(make_system(SparseSpec(ratio=2.0)))
        d.write(0, 0x40)
        d.system.cores[0].invalidate(0x40)  # owner silently loses copy
        with pytest.raises(ProtocolError):
            d.write(1, 0x40)

    def test_inllc_upgrade_for_untracked_block_detected(self):
        d = Driver(make_system(InLLCSpec()))
        with pytest.raises(ProtocolError):
            d.system.home.handle_access(
                0, 0x40, AccessKind.WRITE, 0, upgrade=True
            )

    def test_cohinfo_owner_plus_sharers_rejected(self):
        with pytest.raises(ProtocolError):
            CohInfo(owner=0, sharers=0b10)


class TestRecoveryAfterHeavyChurn:
    """Long adversarial patterns must leave the system consistent."""

    def test_write_storm_single_block(self):
        d = Driver(make_system(SparseSpec(ratio=1 / 16)))
        for i in range(400):
            d.write(i % 4, 0x40)
        d.system.check_invariants()
        assert d.state(3, 0x40) is PrivateState.MODIFIED

    def test_reader_writer_pingpong(self):
        d = Driver(make_system(InLLCSpec()))
        for i in range(300):
            d.read(0, 0x40)
            d.read(1, 0x40)
            d.write(2, 0x40)
        d.system.check_invariants()

    def test_tiny_directory_thrash(self):
        d = Driver(make_system(TinySpec(ratio=1 / 64, policy="gnru", spill=True,
                                        spill_window=32)))
        # Far more hot shared blocks than tiny entries, with writes mixed
        # in so entries keep migrating between structures.
        for round_ in range(150):
            block = 0x40 * (round_ % 40)
            d.ifetch(round_ % 4, block)
            if round_ % 7 == 0:
                d.write((round_ + 1) % 4, block)
        d.system.check_invariants()
