"""Unit tests for the per-core private hierarchy."""

import pytest

from repro.cache.private_cache import PrivateCore
from repro.errors import ProtocolError
from repro.types import AccessKind, PrivateState


def make_core(l1_sets=2, l1_assoc=2, l2_sets=4, l2_assoc=2) -> PrivateCore:
    return PrivateCore(0, l1_sets, l1_assoc, l2_sets, l2_assoc)


class TestProbe:
    def test_miss_when_empty(self):
        core = make_core()
        assert core.probe(0x10, AccessKind.READ).level == "miss"

    def test_l1_hit_after_fill(self):
        core = make_core()
        core.fill(0x10, AccessKind.READ, PrivateState.EXCLUSIVE)
        assert core.probe(0x10, AccessKind.READ).level == "l1"

    def test_ifetch_and_data_use_separate_l1s(self):
        core = make_core()
        core.fill(0x10, AccessKind.READ, PrivateState.SHARED)
        # The block is in dL1 + L2; an ifetch probe hits only at L2.
        assert core.probe(0x10, AccessKind.IFETCH).level == "l2"

    def test_l2_hit_promotes_to_l1(self):
        core = make_core()
        core.fill(0x10, AccessKind.IFETCH, PrivateState.SHARED)
        assert core.probe(0x10, AccessKind.READ).level == "l2"
        assert core.probe(0x10, AccessKind.READ).level == "l1"

    def test_write_to_shared_needs_upgrade(self):
        core = make_core()
        core.fill(0x10, AccessKind.READ, PrivateState.SHARED)
        probe = core.probe(0x10, AccessKind.WRITE)
        assert probe.needs_upgrade and not probe.is_hit

    def test_write_to_exclusive_silently_modifies(self):
        core = make_core()
        core.fill(0x10, AccessKind.READ, PrivateState.EXCLUSIVE)
        probe = core.probe(0x10, AccessKind.WRITE)
        assert probe.is_hit
        assert core.state_of(0x10) is PrivateState.MODIFIED

    def test_write_to_modified_hits(self):
        core = make_core()
        core.fill(0x10, AccessKind.WRITE, PrivateState.MODIFIED)
        assert core.probe(0x10, AccessKind.WRITE).is_hit


class TestFillAndEvict:
    def test_fill_invalid_state_rejected(self):
        with pytest.raises(ProtocolError):
            make_core().fill(0x10, AccessKind.READ, PrivateState.INVALID)

    def test_l2_eviction_produces_notice(self):
        core = make_core(l2_sets=1, l2_assoc=2)
        core.fill(0, AccessKind.READ, PrivateState.EXCLUSIVE)
        core.fill(1, AccessKind.READ, PrivateState.SHARED)
        notices = core.fill(2, AccessKind.READ, PrivateState.EXCLUSIVE)
        assert len(notices) == 1
        assert notices[0].addr == 0
        assert notices[0].state is PrivateState.EXCLUSIVE

    def test_eviction_preserves_inclusion(self):
        core = make_core(l2_sets=1, l2_assoc=2)
        core.fill(0, AccessKind.READ, PrivateState.EXCLUSIVE)
        core.fill(1, AccessKind.READ, PrivateState.EXCLUSIVE)
        core.fill(2, AccessKind.READ, PrivateState.EXCLUSIVE)
        # Block 0 left the L2, so it must not linger in any L1.
        assert core.probe(0, AccessKind.READ).level == "miss"

    def test_no_notice_when_way_free(self):
        core = make_core()
        assert core.fill(0x10, AccessKind.READ, PrivateState.SHARED) == []


class TestStateChanges:
    def test_invalidate_returns_prior_state(self):
        core = make_core()
        core.fill(0x10, AccessKind.WRITE, PrivateState.MODIFIED)
        assert core.invalidate(0x10) is PrivateState.MODIFIED
        assert not core.holds(0x10)

    def test_invalidate_absent_returns_invalid(self):
        assert make_core().invalidate(0x99) is PrivateState.INVALID

    def test_downgrade_m_to_s(self):
        core = make_core()
        core.fill(0x10, AccessKind.WRITE, PrivateState.MODIFIED)
        assert core.downgrade(0x10) is PrivateState.MODIFIED
        assert core.state_of(0x10) is PrivateState.SHARED

    def test_downgrade_requires_exclusive(self):
        core = make_core()
        core.fill(0x10, AccessKind.READ, PrivateState.SHARED)
        with pytest.raises(ProtocolError):
            core.downgrade(0x10)

    def test_complete_upgrade(self):
        core = make_core()
        core.fill(0x10, AccessKind.READ, PrivateState.SHARED)
        core.complete_upgrade(0x10)
        assert core.state_of(0x10) is PrivateState.MODIFIED

    def test_complete_upgrade_requires_shared(self):
        core = make_core()
        core.fill(0x10, AccessKind.READ, PrivateState.EXCLUSIVE)
        with pytest.raises(ProtocolError):
            core.complete_upgrade(0x10)

    def test_resident_blocks_enumeration(self):
        core = make_core()
        core.fill(1, AccessKind.READ, PrivateState.SHARED)
        core.fill(2, AccessKind.WRITE, PrivateState.MODIFIED)
        resident = dict(core.resident_blocks())
        assert resident == {1: PrivateState.SHARED, 2: PrivateState.MODIFIED}
