"""tools/check_docs.py: the CI docs-consistency gate.

The checker must pass on the repo as committed, and must actually
detect the two drift classes it exists for: broken intra-repo links and
flags that drifted between a parser module and its paired doc (the
pairs in ``FLAG_PAIRS``: the harness CLI and the verify CLI).
"""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
TOOL = REPO / "tools" / "check_docs.py"

PAIR = ("src/repro/__main__.py", "docs/harness.md")


@pytest.fixture
def checker(monkeypatch, tmp_path):
    """A check_docs module re-pointed at a scratch repo layout."""
    spec = importlib.util.spec_from_file_location("check_docs", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    (tmp_path / "docs").mkdir()
    (tmp_path / "src" / "repro").mkdir(parents=True)
    main = tmp_path / "src" / "repro" / "__main__.py"
    main.write_text(
        "import argparse\n"
        "p = argparse.ArgumentParser()\n"
        "p.add_argument('--alpha')\n"
        "p.add_argument('--beta-two', '-b', action='store_true')\n"
    )
    (tmp_path / "README.md").write_text("# scratch\n")
    monkeypatch.setattr(module, "REPO", tmp_path)
    monkeypatch.setattr(module, "FLAG_PAIRS", [PAIR])
    return module, tmp_path


def test_real_repo_is_clean():
    result = subprocess.run(
        [sys.executable, str(TOOL)], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stderr
    assert "OK" in result.stdout


def test_real_repo_tracks_both_cli_pairs():
    spec = importlib.util.spec_from_file_location("check_docs", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert PAIR in module.FLAG_PAIRS
    assert ("src/repro/verify/cli.py", "docs/verification.md") in module.FLAG_PAIRS


def test_parser_flags_found_via_ast(checker):
    module, root = checker
    main = root / "src" / "repro" / "__main__.py"
    assert module.parser_flags(main) == {"--alpha", "--beta-two"}


def test_clean_scratch_repo_passes(checker):
    module, root = checker
    (root / "docs" / "harness.md").write_text(
        "| `--alpha X` | sets alpha |\n| `--beta-two` | flag |\n"
        "See [readme](../README.md).\n"
    )
    assert module.check_flags(*PAIR) == []
    assert module.check_links() == []


def test_broken_link_detected(checker):
    module, root = checker
    (root / "docs" / "harness.md").write_text(
        "| `--alpha` | a |\n| `--beta-two` | b |\n"
        "See [missing](no-such-file.md) and [ok](harness.md).\n"
    )
    problems = module.check_links()
    assert len(problems) == 1
    assert "no-such-file.md" in problems[0]


def test_external_links_ignored(checker):
    module, root = checker
    (root / "docs" / "harness.md").write_text(
        "| `--alpha` | a |\n| `--beta-two` | b |\n"
        "[w](https://example.com) [m](mailto:x@y.z) [a](#anchor)\n"
    )
    assert module.check_links() == []


def test_undocumented_flag_detected(checker):
    module, root = checker
    (root / "docs" / "harness.md").write_text("| `--alpha` | only one |\n")
    problems = module.check_flags(*PAIR)
    assert any("--beta-two" in p and "undocumented" in p for p in problems)


def test_stale_documented_flag_detected(checker):
    module, root = checker
    (root / "docs" / "harness.md").write_text(
        "| `--alpha` | a |\n| `--beta-two` | b |\n"
        "| `--gamma` | removed long ago |\n"
    )
    problems = module.check_stale_flags()
    assert any("--gamma" in p and "no longer" in p for p in problems)


def test_two_parsers_sharing_one_doc_do_not_cross_flag(checker, monkeypatch):
    # The verify and diff CLIs both document into docs/verification.md;
    # a row defined by either parser is not stale for the other.
    module, root = checker
    other = root / "src" / "repro" / "other_cli.py"
    other.write_text(
        "import argparse\n"
        "p = argparse.ArgumentParser()\n"
        "p.add_argument('--gamma')\n"
    )
    (root / "docs" / "harness.md").write_text(
        "| `--alpha` | a |\n| `--beta-two` | b |\n| `--gamma` | other's |\n"
    )
    monkeypatch.setattr(
        module,
        "FLAG_PAIRS",
        [PAIR, ("src/repro/other_cli.py", "docs/harness.md")],
    )
    assert module.check_stale_flags() == []
    assert module.check_flags(*PAIR) == []


def test_missing_doc_reported(checker):
    module, _ = checker
    problems = module.check_flags(*PAIR)
    assert any("docs/harness.md" in p and "missing" in p for p in problems)


def test_real_repo_tracks_telemetry_pair():
    spec = importlib.util.spec_from_file_location("check_docs", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert ("src/repro/__main__.py", "docs/telemetry.md",
            ("--trace", "--trace-out", "--metrics")) in module.FLAG_PAIRS


def test_undocumented_env_var_detected(checker):
    module, root = checker
    source = root / "src" / "repro" / "knobs.py"
    source.write_text("import os\nX = os.environ.get('REPRO_NEW_KNOB')\n")
    (root / "docs" / "harness.md").write_text("no env vars here\n")
    problems = module.check_env_vars()
    assert any("REPRO_NEW_KNOB" in p and "undocumented" in p for p in problems)


def test_stale_documented_env_var_detected(checker):
    module, root = checker
    (root / "docs" / "harness.md").write_text(
        "| `REPRO_GONE` | long removed |\n"
    )
    problems = module.check_env_vars()
    assert any("REPRO_GONE" in p and "never" in p for p in problems)


def test_internal_env_vars_exempt(checker):
    module, root = checker
    source = root / "src" / "repro" / "knobs.py"
    source.write_text("import os\nos.environ['REPRO_TRACE_WORKER'] = '1'\n")
    assert module.check_env_vars() == []
