"""Unit tests for the LLC bank (corrupted states, spills, LRU rules)."""

import pytest

from repro.cache.llc import LLCBank
from repro.coherence.info import CohInfo
from repro.core.stra import StraCounters
from repro.errors import ConfigError, ProtocolError
from repro.types import LLCState


def make_bank(num_sets=4, assoc=2, stride=1, samples=0, bank_index=0) -> LLCBank:
    return LLCBank(
        num_sets, assoc, bank_stride=stride,
        no_spill_sample_sets=samples, bank_index=bank_index,
    )


class TestLookupAndInsert:
    def test_miss_returns_nones(self):
        assert make_bank().lookup(5) == (None, None)

    def test_insert_then_lookup(self):
        bank = make_bank()
        line, victim = bank.insert_block(5, LLCState.CLEAN)
        assert victim is None
        found, spill = bank.lookup(5)
        assert found is line and spill is None

    def test_lru_eviction(self):
        bank = make_bank(num_sets=1, assoc=2)
        bank.insert_block(0, LLCState.CLEAN)
        bank.insert_block(1, LLCState.CLEAN)
        bank.lookup(0)  # 0 becomes MRU
        _, victim = bank.insert_block(2, LLCState.CLEAN)
        assert victim.tag == 1

    def test_spilled_state_rejected_for_blocks(self):
        with pytest.raises(ProtocolError):
            make_bank().insert_block(0, LLCState.SPILLED_ENTRY)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigError):
            LLCBank(0, 1, 1)

    def test_set_index_uses_bank_stride(self):
        bank = make_bank(num_sets=4, stride=8)
        assert bank.set_index(8) == 1
        assert bank.set_index(16) == 2

    def test_remove_non_resident_rejected(self):
        bank = make_bank()
        line, _ = bank.insert_block(0, LLCState.CLEAN)
        bank.remove(line)
        with pytest.raises(ProtocolError):
            bank.remove(line)


class TestSpilledEntries:
    def _spill(self, bank, addr):
        return bank.insert_spill(addr, CohInfo(sharers=0b11), StraCounters())

    def test_spill_found_alongside_block(self):
        bank = make_bank()
        bank.insert_block(0, LLCState.CLEAN)
        spill, victim = self._spill(bank, 0)
        assert spill is not None and victim is None
        data, found_spill = bank.lookup(0)
        assert data.tag == 0 and not data.is_spill
        assert found_spill is spill

    def test_spill_sits_below_companion(self):
        """E_B must be victimized before B (paper §IV-B1)."""
        bank = make_bank(num_sets=1, assoc=2)
        bank.insert_block(0, LLCState.CLEAN)
        self._spill(bank, 0)
        _, victim = bank.insert_block(1, LLCState.CLEAN)
        assert victim is not None and victim.is_spill

    def test_pair_touch_keeps_block_more_recent(self):
        bank = make_bank(num_sets=1, assoc=3)
        bank.insert_block(0, LLCState.CLEAN)
        self._spill(bank, 0)
        bank.insert_block(1, LLCState.CLEAN)
        bank.lookup(0)  # touches E_B then B
        _, victim = bank.insert_block(2, LLCState.CLEAN)
        assert victim.tag == 1  # not the pair

    def test_no_spill_sample_sets_refuse(self):
        bank = LLCBank(4, 2, bank_stride=1, no_spill_sample_sets=4, bank_index=0)
        refused = 0
        for set_index in range(4):
            if bank.is_no_spill_set(set_index):
                spill, victim = bank.insert_spill(
                    set_index, CohInfo(sharers=0b1), StraCounters()
                )
                assert spill is None and victim is None
                refused += 1
        assert refused > 0

    def test_sample_sets_differ_across_banks(self):
        banks = [
            LLCBank(16, 2, bank_stride=1, no_spill_sample_sets=4, bank_index=i)
            for i in range(4)
        ]
        patterns = {
            tuple(bank.is_no_spill_set(s) for s in range(16)) for bank in banks
        }
        assert len(patterns) > 1


class TestResidencyStats:
    def test_note_holders_accumulates_distinct_cores(self):
        bank = make_bank()
        line, _ = bank.insert_block(0, LLCState.CLEAN)
        line.note_holders(CohInfo(sharers=0b011))
        line.note_holders(CohInfo(owner=3))
        line.note_holders(CohInfo(sharers=0b010))
        assert line.distinct_sharers() == 3

    def test_counters_start_zero(self):
        bank = make_bank()
        line, _ = bank.insert_block(0, LLCState.CLEAN)
        assert (line.fwd_reads, line.total_reads) == (0, 0)

    def test_activity_counters(self):
        bank = make_bank()
        bank.insert_block(0, LLCState.CLEAN)
        bank.lookup(0)
        assert bank.fills == 1
        assert bank.tag_lookups >= 1
        assert bank.occupancy() == 1
