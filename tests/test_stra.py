"""Unit tests for STRA counters and categories (paper §IV-A)."""

import pytest

from repro.core.stra import (
    NUM_CATEGORIES,
    STRA_COUNTER_MAX,
    StraCounters,
    stra_category,
)


class TestCategoryBoundaries:
    def test_zero_ratio_is_c0(self):
        assert stra_category(0.0) == 0

    def test_c1_covers_up_to_half(self):
        assert stra_category(0.01) == 1
        assert stra_category(0.5) == 1

    def test_c2_boundary(self):
        assert stra_category(0.500001) == 2
        assert stra_category(0.75) == 2

    @pytest.mark.parametrize(
        "i", range(1, 7), ids=[f"C{i}" for i in range(1, 7)]
    )
    def test_interval_upper_bounds(self, i):
        """Ci for i in [1,6] covers (1 - 1/2^(i-1), 1 - 1/2^i]."""
        upper = 1 - 1 / (1 << i)
        lower = 1 - 1 / (1 << (i - 1))
        assert stra_category(upper) == i
        if lower > 0:
            assert stra_category(lower) == i - 1

    def test_c7_covers_top(self):
        assert stra_category(1.0) == 7
        assert stra_category(1 - 1 / 64 + 1e-9) == 7

    def test_exactly_63_64_is_c6(self):
        assert stra_category(1 - 1 / 64) == 6

    def test_num_categories(self):
        assert NUM_CATEGORIES == 8


class TestStraCounters:
    def test_fresh_ratio_zero(self):
        counters = StraCounters()
        assert counters.ratio() == 0.0
        assert counters.category() == 0

    def test_pure_shared_reads_reach_c7(self):
        counters = StraCounters()
        counters.record_other()  # the initial fill access
        for _ in range(200):
            counters.record_shared_read()
        assert counters.category() == 7

    def test_mixed_traffic_mid_category(self):
        counters = StraCounters()
        for _ in range(10):
            counters.record_shared_read()
            counters.record_other()
        assert counters.category() == 1  # ratio 0.5

    def test_halving_on_strac_saturation(self):
        counters = StraCounters()
        for _ in range(STRA_COUNTER_MAX):
            counters.record_shared_read()
        assert counters.strac < STRA_COUNTER_MAX

    def test_halving_on_oac_saturation(self):
        counters = StraCounters(strac=10)
        for _ in range(STRA_COUNTER_MAX):
            counters.record_other()
        assert counters.oac < STRA_COUNTER_MAX
        assert counters.strac <= 10 // 2 + 1

    def test_halving_preserves_ratio_roughly(self):
        counters = StraCounters()
        for _ in range(3):
            counters.record_other()
        for _ in range(100):
            counters.record_shared_read()
        assert counters.ratio() > 0.9

    def test_reset(self):
        counters = StraCounters(strac=5, oac=5)
        counters.reset()
        assert (counters.strac, counters.oac) == (0, 0)

    def test_counters_bounded_by_six_bits(self):
        counters = StraCounters()
        for _ in range(10_000):
            counters.record_shared_read()
            counters.record_other()
        assert counters.strac <= STRA_COUNTER_MAX
        assert counters.oac <= STRA_COUNTER_MAX
